//! Lazy release consistency for software distributed shared memory.
//!
//! A full reproduction of *Keleher, Cox, Zwaenepoel: Lazy Release
//! Consistency for Software Distributed Shared Memory* (ISCA 1992) as a
//! Rust workspace. This facade crate re-exports every subsystem:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `lrc-core` | the LRC protocol engine (the paper's contribution) |
//! | [`eager`] | `lrc-eager` | the Munin-style eager RC baseline |
//! | [`sim`] | `lrc-sim` | trace-driven simulator, SC oracle, sweeps |
//! | [`dsm`] | `lrc-dsm` | threaded runtime DSM with locks/barriers, node runtime |
//! | [`hist`] | `lrc-hist` | recorded-history conformance checking (SC witness search) |
//! | [`net`] | `lrc-net` | wire protocol and pluggable transports |
//! | [`workloads`] | `lrc-workloads` | SPLASH-like trace generators |
//! | [`trace`] | `lrc-trace` | trace model, validation, race detection |
//! | [`pagemem`] | `lrc-pagemem` | pages, twins, diffs |
//! | [`simnet`] | `lrc-simnet` | message fabric and accounting |
//! | [`sync`] | `lrc-sync` | lock directory and barrier masters |
//! | [`vclock`] | `lrc-vclock` | vector timestamps and intervals |
//!
//! # Quickstart
//!
//! Reproduce a slice of the paper's evaluation in a few lines — generate a
//! SPLASH-like trace, sweep it across protocols and page sizes, and print
//! the figure:
//!
//! ```
//! use lrc::sim::{sweep, Metric, SweepConfig};
//! use lrc::workloads::{AppKind, Scale};
//!
//! let trace = AppKind::Cholesky.generate(&Scale::small(4));
//! let result = sweep(&trace, &SweepConfig::default())?;
//! println!("{}", result.render(Metric::Messages));
//! # Ok::<(), lrc::sim::SimError>(())
//! ```
//!
//! Or program against the runtime DSM directly — see [`dsm`] and the
//! `examples/` directory.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lrc_core as core;
pub use lrc_dsm as dsm;
pub use lrc_eager as eager;
pub use lrc_hist as hist;
pub use lrc_net as net;
pub use lrc_pagemem as pagemem;
pub use lrc_sim as sim;
pub use lrc_simnet as simnet;
pub use lrc_sync as sync;
pub use lrc_trace as trace;
pub use lrc_vclock as vclock;
pub use lrc_workloads as workloads;
