//! The unbounded-history problem and its TreadMarks-style answer.
//!
//! LRC must remember interval records and diffs so that late acquirers can
//! pull the modifications they missed — and without intervention that
//! history grows forever (a cost the paper acknowledges when it calls LRC
//! "more complex to implement"). This example runs the same barrier-phased
//! workload twice on the lazy-invalidate protocol:
//!
//! * without garbage collection — watch the retained history climb;
//! * with barrier-time GC — the history returns to zero at every barrier,
//!   for a measurable amount of extra barrier traffic.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bounded_history
//! ```

use lrc::sim::{run_trace, ProtocolKind, SimOptions};
use lrc::workloads::{AppKind, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale {
        procs: 8,
        units: 120,
        seed: 1992,
    };
    let trace = AppKind::Mp3d.generate(&scale);
    println!(
        "mp3d, {} processors, {} events, LI at 4096-byte pages\n",
        scale.procs,
        trace.len()
    );

    let plain = run_trace(
        &trace,
        ProtocolKind::LazyInvalidate,
        4096,
        &SimOptions::fast(),
    )?;
    let collected = run_trace(
        &trace,
        ProtocolKind::LazyInvalidate,
        4096,
        &SimOptions {
            gc_at_barriers: true,
            ..SimOptions::fast()
        },
    )?;

    println!(
        "{:<22} {:>12} {:>14} {:>18}",
        "", "messages", "data (KB)", "retained history"
    );
    println!(
        "{:<22} {:>12} {:>14.1} {:>15.1} KB",
        "without GC",
        plain.messages(),
        plain.data_kbytes(),
        plain.history_bytes.unwrap_or(0) as f64 / 1024.0
    );
    println!(
        "{:<22} {:>12} {:>14.1} {:>15.1} KB",
        "GC at barriers",
        collected.messages(),
        collected.data_kbytes(),
        collected.history_bytes.unwrap_or(0) as f64 / 1024.0
    );
    println!();
    println!(
        "Bounding the history cost {:.0}% more messages — the price of\n\
         validating every resident page at each barrier so the diff and\n\
         interval records can be discarded.",
        100.0 * (collected.messages() as f64 / plain.messages() as f64 - 1.0)
    );
    Ok(())
}
