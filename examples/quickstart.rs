//! Quickstart: program against the runtime DSM, then watch the protocol.
//!
//! Four threads ("processors") cooperatively increment a shared counter
//! under a lock and exchange per-processor results through a barrier —
//! the two synchronization primitives of release consistency. Afterwards
//! the example prints the network traffic the protocol generated.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart [LI|LU|EI|EU]
//! ```

use lrc::dsm::DsmBuilder;
use lrc::sim::ProtocolKind;
use lrc::sync::{BarrierId, LockId};
use lrc::vclock::ProcId;

const PROCS: usize = 4;
const ROUNDS: u64 = 250;
/// Shared layout: one counter word, then one result word per processor.
const COUNTER: u64 = 0;
const RESULTS: u64 = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = std::env::args()
        .nth(1)
        .map(|s| ProtocolKind::from_label(&s).expect("protocol must be LI, LU, EI or EU"))
        .unwrap_or(ProtocolKind::LazyInvalidate);

    let dsm = DsmBuilder::new(kind, PROCS, 1 << 16)
        .page_size(4096)
        .build()?;
    let lock = LockId::new(0);
    let barrier = BarrierId::new(0);

    dsm.parallel(|proc| {
        let me = proc.proc().index() as u64;
        let mut taken = 0u64;
        for _ in 0..ROUNDS {
            proc.acquire(lock)?;
            let v = proc.read_u64(COUNTER);
            proc.write_u64(COUNTER, v + 1);
            proc.release(lock)?;
            taken += 1;
            // Give the other processors a chance to grab the lock, so the
            // printout shows real lock migration instead of one thread
            // re-acquiring its own lock for free.
            std::thread::yield_now();
        }
        // Publish the per-processor tally, then synchronize so everyone
        // can read everyone else's.
        proc.write_u64(RESULTS + 8 * me, taken);
        proc.barrier(barrier)?;
        let total: u64 = (0..PROCS as u64)
            .map(|q| proc.read_u64(RESULTS + 8 * q))
            .sum();
        assert_eq!(total, PROCS as u64 * ROUNDS);
        Ok(())
    })?;

    let mut check = dsm.handle(ProcId::new(0));
    check.acquire(lock)?;
    let counter = check.read_u64(COUNTER);
    check.release(lock)?;
    println!(
        "protocol {kind}: counter = {counter} (expected {})",
        PROCS as u64 * ROUNDS
    );
    println!();
    println!("network traffic:");
    println!("{}", dsm.net_stats());
    Ok(())
}
