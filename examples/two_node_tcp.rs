//! Two DSM nodes over real TCP on loopback.
//!
//! Node 0 hosts the protocol engine and processors p0/p1; node 1 connects
//! over TCP and drives p2/p3 through the wire protocol. All four run the
//! same lock / barrier / page-miss workload concurrently, then the
//! example reports both sides of the byte accounting:
//!
//! * the **modeled** protocol traffic the engine charged to its simulated
//!   fabric (what the paper's evaluation counts),
//! * the **measured** wire traffic the TCP transport actually moved
//!   (frames and encoded bytes of the op plane), and
//! * a cross-check table of the payload encodings against the simulation
//!   model's sizes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example two_node_tcp
//! ```

use lrc::dsm::{DsmBuilder, NodeClient, NodeServer};
use lrc::net::{NoticeBatch, NoticeInterval, TcpTransport, WireMsg, FRAME_HEADER_BYTES};
use lrc::pagemem::{Diff, PageBuf, PageId, PageSize};
use lrc::sim::ProtocolKind;
use lrc::simnet::{
    notice_batch_bytes, vc_bytes, OpClass, SizeCrosscheck, LOCK_ID_BYTES, MSG_HEADER_BYTES,
};
use lrc::sync::{BarrierId, LockId};
use lrc::vclock::{IntervalId, ProcId, VectorClock};

const PROCS: usize = 4;
const REMOTE: usize = 2;
const ROUNDS: u64 = 25;
const COUNTER: u64 = 0;
/// Each processor also hammers one private page (pure fast path locally,
/// pure wire traffic remotely).
const PRIVATE_BASE: u64 = 8 * 512;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, PROCS, 1 << 16)
        .page_size(512)
        .locks(2)
        .barriers(1)
        .build()?;
    let lock = LockId::new(0);
    let barrier = BarrierId::new(0);

    let hub = TcpTransport::bind("127.0.0.1:0", 0)?;
    let addr = hub.local_addr();
    println!("node 0: engine + p0,p1 listening on {addr}");

    // ---- node 1: a separate "machine" on its own thread ----
    let node1 = std::thread::spawn(move || {
        let transport = TcpTransport::connect(&addr, 1, 0).expect("connect to node 0");
        let procs: Vec<ProcId> = (PROCS - REMOTE..PROCS)
            .map(|i| ProcId::new(i as u16))
            .collect();
        let client = NodeClient::connect(transport, 0, procs.clone()).expect("announce node 1");
        std::thread::scope(|scope| {
            for &p in &procs {
                let mut h = client.handle(p);
                scope.spawn(move || {
                    let me = h.proc().index() as u64;
                    for round in 0..ROUNDS {
                        h.write_u64(PRIVATE_BASE + 512 * me, round).unwrap();
                        h.acquire(lock).unwrap();
                        let v = h.read_u64(COUNTER).unwrap();
                        h.write_u64(COUNTER, v + 1).unwrap();
                        h.release(lock).unwrap();
                        h.barrier(barrier).unwrap();
                    }
                });
            }
        });
        let wire = client.wire_stats();
        client.shutdown().expect("clean shutdown");
        wire
    });

    // ---- node 0: accept, serve, and drive the local processors ----
    let server = NodeServer::new(dsm.clone(), hub.accept(1)?);
    let serving = std::thread::spawn(move || {
        let result = server.serve();
        (result, server.wire_stats())
    });
    std::thread::scope(|scope| {
        for i in 0..PROCS - REMOTE {
            let mut h = dsm.handle(ProcId::new(i as u16));
            scope.spawn(move || {
                let me = h.proc().index() as u64;
                for round in 0..ROUNDS {
                    h.write_u64(PRIVATE_BASE + 512 * me, round);
                    h.acquire(lock).unwrap();
                    let v = h.read_u64(COUNTER);
                    h.write_u64(COUNTER, v + 1);
                    h.release(lock).unwrap();
                    h.barrier(barrier).unwrap();
                }
            });
        }
    });

    let client_wire = node1.join().expect("node 1 completes");
    let (serve_result, server_wire) = serving.join().expect("server thread completes");
    serve_result?;

    // The workload really ran: every increment arrived.
    let mut check = dsm.handle(ProcId::new(0));
    check.acquire(lock)?;
    let total = check.read_u64(COUNTER);
    check.release(lock)?;
    assert_eq!(total, PROCS as u64 * ROUNDS, "lost increments");
    println!(
        "workload complete: {total} lock-guarded increments across {PROCS} procs on 2 nodes\n"
    );

    // ---- modeled protocol traffic (the engine's simulated fabric) ----
    let stats = dsm.net_stats();
    println!("modeled protocol traffic (simnet):");
    for class in OpClass::ALL {
        let c = stats.class(class);
        println!(
            "  {:<8} {:>6} msgs  {:>9} bytes",
            class.label(),
            c.msgs,
            c.bytes
        );
    }
    let t = stats.total();
    println!(
        "  {:<8} {:>6} msgs  {:>9} bytes\n",
        "total", t.msgs, t.bytes
    );

    // ---- measured wire traffic (the op plane over TCP) ----
    println!("measured wire traffic (TCP loopback, op plane):");
    println!(
        "  node 1 sent     {:>6} frames  {:>9} bytes",
        client_wire.msgs_sent, client_wire.bytes_sent
    );
    println!(
        "  node 1 received {:>6} frames  {:>9} bytes",
        client_wire.msgs_received, client_wire.bytes_received
    );
    println!(
        "  node 0 sent     {:>6} frames  {:>9} bytes",
        server_wire.msgs_sent, server_wire.bytes_sent
    );
    println!(
        "  node 0 received {:>6} frames  {:>9} bytes\n",
        server_wire.msgs_received, server_wire.bytes_received
    );

    // ---- payload encodings vs the simulation model ----
    let mut cc = SizeCrosscheck::new();
    cc.record("frame header", MSG_HEADER_BYTES, FRAME_HEADER_BYTES as u64);

    let mut clock = VectorClock::new(PROCS);
    for i in 0..PROCS {
        clock.set(ProcId::new(i as u16), 3 + i as u32);
    }
    cc.record("vector clock", vc_bytes(PROCS), clock.wire_len() as u64);

    let hop = WireMsg::LockRequest {
        lock,
        acquirer: ProcId::new(2),
        clock: clock.clone(),
    };
    cc.record(
        "lock hop payload",
        LOCK_ID_BYTES + vc_bytes(PROCS),
        hop.encode_body().len() as u64,
    );

    let notices = NoticeBatch {
        intervals: (0..2)
            .map(|i| NoticeInterval {
                id: IntervalId::new(ProcId::new(i), 4),
                stamp_entry: 4,
                pages: vec![PageId::new(1), PageId::new(9)],
            })
            .collect(),
    };
    let batch_msg = WireMsg::Notices {
        clock: clock.clone(),
        notices: notices.clone(),
    };
    cc.record(
        "notice batch (2 ivs, 4 pages)",
        notice_batch_bytes(2, 4),
        (batch_msg.encode_body().len() - clock.wire_len()) as u64,
    );

    let twin = PageBuf::zeroed(PageSize::new(512)?);
    let mut cur = twin.clone();
    cur.write(40, &[7; 96]);
    cur.write(300, &[9; 16]);
    let diff = Diff::between(&twin, &cur);
    let mut diff_bytes = Vec::new();
    diff.write_wire(1, 4, &mut diff_bytes);
    cc.record(
        "diff (2 runs, 112B modified)",
        diff.encoded_size() as u64,
        diff_bytes.len() as u64,
    );

    println!("payload encodings vs simnet model:");
    println!("{cc}");
    println!(
        "\nlargest relative deviation: {:.1}% (explicit list counts are the only overhead)",
        cc.max_relative_error() * 100.0
    );
    Ok(())
}
