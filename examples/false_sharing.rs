//! False sharing across page sizes (§4.3.1, §5.4).
//!
//! Every processor owns one word; the words are packed a fixed stride
//! apart, so the page size alone decides how many "owners" share a page.
//! Multiple-writer protocols let them all write concurrently and merge
//! diffs at synchronization — but the *eager* protocols still exchange
//! messages between processors that share a page without sharing data,
//! while the lazy ones communicate only along real causal chains.
//!
//! The example sweeps page sizes over the identical trace and prints the
//! data volume per protocol: watch the eager columns grow with the page
//! size while the lazy columns stay nearly flat.
//!
//! Run with:
//!
//! ```text
//! cargo run --example false_sharing
//! ```

use lrc::sim::{sweep, Metric, SimOptions, SweepConfig};
use lrc::trace::TraceStats;
use lrc::workloads::micro::false_sharing;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let procs = 8;
    let trace = false_sharing(procs, 40, 16); // owner words 128 bytes apart
    let stats = TraceStats::compute(&trace);
    println!("false-sharing pattern: {procs} owner words, 128 bytes apart\n");
    println!("writers per written page (false sharing) by page size:");
    for page in [128usize, 512, 2048, 8192] {
        println!(
            "  {:>5} B pages: {:.1} writers/page",
            page,
            stats
                .mean_writers_per_page(&trace, page)
                .expect("trace has writes")
        );
    }
    println!();

    let config = SweepConfig {
        page_sizes: vec![128, 512, 2048, 8192],
        kinds: lrc::sim::ProtocolKind::ALL.to_vec(),
        options: SimOptions::checked(),
    };
    let result = sweep(&trace, &config)?;
    println!("{}", result.render(Metric::Messages));
    println!("{}", result.render(Metric::DataKbytes));
    println!("Processors that falsely share a page are unlikely to be causally");
    println!("related, so the lazy protocols skip the communication the eager");
    println!("ones perform at every synchronization point (paper, section 5.4).");
    Ok(())
}
