//! The paper's whole evaluation, one command.
//!
//! Generates all five SPLASH-like workloads and replays each across the
//! four protocols and the paper's page-size sweep (512–8192 bytes),
//! printing the message and data series behind Figures 5–14.
//!
//! Run with (release mode recommended; takes ~20 s):
//!
//! ```text
//! cargo run --release --example splash_report [procs] [units]
//! ```

use lrc::sim::{sweep, Metric, SweepConfig};
use lrc::trace::TraceStats;
use lrc::workloads::{AppKind, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let procs: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(16);
    let units: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(400);
    let scale = Scale {
        procs,
        units,
        seed: 1992,
    };

    println!(
        "SPLASH evaluation, {procs} processors, {units} work units, seed {}\n",
        scale.seed
    );
    for app in AppKind::ALL {
        let trace = app.generate(&scale);
        let stats = TraceStats::compute(&trace);
        let (fig_msgs, fig_data) = app.figures();
        println!("=== {app} — paper figures {fig_msgs} (messages) and {fig_data} (data)");
        println!("    trace: {stats}");
        let result = sweep(&trace, &SweepConfig::default())?;
        println!("{}", result.render(Metric::Messages));
        println!("{}", result.render(Metric::DataKbytes));
    }
    Ok(())
}
