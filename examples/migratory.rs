//! Figures 3 and 4 of the paper, measured.
//!
//! Processors repeatedly acquire a lock, update the protected data, and
//! release — the migratory pattern that motivates lazy release
//! consistency. Eager RC pushes every release's modifications to *all*
//! cached copies (Figure 3); LRC moves the data with the lock, to the one
//! processor that will actually use it (Figure 4).
//!
//! The example replays the identical trace under all four protocols and
//! prints the per-operation-class message counts, making the difference
//! concrete: the eager protocols pay at unlocks, the lazy ones pay nothing
//! there and far less overall.
//!
//! Run with:
//!
//! ```text
//! cargo run --example migratory
//! ```

use lrc::sim::{run_trace, ProtocolKind, SimOptions};
use lrc::simnet::OpClass;
use lrc::workloads::micro::migratory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let procs = 4;
    let rounds = 100;
    let trace = migratory(procs, rounds, 16);
    println!("migratory pattern: {procs} processors x {rounds} rounds of acquire-update-release\n");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "protocol", "miss", "lock", "unlock", "barrier", "total", "data (KB)"
    );
    for kind in ProtocolKind::ALL {
        let report = run_trace(&trace, kind, 1024, &SimOptions::checked())?;
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>10} {:>12.1}",
            kind.label(),
            report.class(OpClass::Miss).msgs,
            report.class(OpClass::Lock).msgs,
            report.class(OpClass::Unlock).msgs,
            report.class(OpClass::Barrier).msgs,
            report.messages(),
            report.data_kbytes(),
        );
    }
    println!();
    println!("Lazy protocols send nothing at unlocks (releases are purely local)");
    println!("and piggyback both lock and data on one exchange per acquire --");
    println!("the message traffic of Figure 4 versus Figure 3.");
    Ok(())
}
