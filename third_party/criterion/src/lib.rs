//! A small, dependency-free, offline re-implementation of the subset of the
//! [`criterion`](https://docs.rs/criterion) API this workspace's benches use.
//!
//! The container this repository builds in has no crates.io access. This
//! stub keeps the bench sources compiling and produces honest wall-clock
//! measurements (median of timed batches) as a plain-text report — without
//! the real crate's statistics, plotting, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many timed batches to run per benchmark (each batch auto-sizes its
/// iteration count to roughly [`Criterion::target_batch_time`]).
const DEFAULT_BATCHES: usize = 11;

/// Entry point handed to each `criterion_group!` function.
pub struct Criterion {
    batches: usize,
    target_batch_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            batches: DEFAULT_BATCHES,
            target_batch_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Run one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.batches, self.target_batch_time, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            batches: None,
        }
    }

    /// Final hook called by `criterion_main!`.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    batches: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Reduce/raise the number of timed batches for this group only (maps
    /// criterion's sample-size knob onto this stub's batch count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.batches = Some(n.max(3));
        self
    }

    fn batches(&self) -> usize {
        self.batches.unwrap_or(self.criterion.batches)
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.batches(),
            self.criterion.target_batch_time,
            &mut f,
        );
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.batches(),
            self.criterion.target_batch_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the measured closure; call [`Bencher::iter`] with the hot loop.
pub struct Bencher {
    iters_per_batch: u64,
    batch_times: Vec<Duration>,
    batches: usize,
    target_batch_time: Duration,
}

impl Bencher {
    /// Time `routine`, called in auto-sized batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: grow the batch until it takes long enough to time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_batch_time || iters >= 1 << 24 {
                self.iters_per_batch = iters;
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (self.target_batch_time.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            iters = (iters * grow.clamp(2, 16)).min(1 << 24);
        }
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                std::hint::black_box(routine());
            }
            self.batch_times.push(start.elapsed());
        }
    }
}

fn run_one<F>(id: &str, batches: usize, target_batch_time: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters_per_batch: 1,
        batch_times: Vec::new(),
        batches,
        target_batch_time,
    };
    f(&mut bencher);
    if bencher.batch_times.is_empty() {
        println!("{id:<56} (no measurement)");
        return;
    }
    bencher.batch_times.sort();
    let median = bencher.batch_times[bencher.batch_times.len() / 2];
    let per_iter = median.as_nanos() as f64 / bencher.iters_per_batch as f64;
    println!(
        "{id:<56} {:>12}/iter   ({} iters x {} batches)",
        fmt_ns(per_iter),
        bencher.iters_per_batch,
        bencher.batch_times.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into one group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (bench targets set
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
