//! End-to-end checks that the offline proptest stub really generates varied
//! inputs, honors configuration, and fails failing properties. These guard
//! the whole workspace's property pyramid: a stub that generated constants
//! (or zero cases) would turn every downstream suite green vacuously.

use proptest::prelude::*;
use std::cell::Cell;

#[test]
fn ranges_cover_their_domain() {
    let strat = 0u32..10;
    let mut seen = [false; 10];
    let mut rng = TestRng::for_case("smoke::ranges", 0);
    for _ in 0..512 {
        seen[strat.sample(&mut rng) as usize] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "512 draws missed a value in 0..10: {seen:?}"
    );
}

#[test]
fn inclusive_range_hits_both_ends() {
    let strat = 1usize..=3;
    let mut rng = TestRng::for_case("smoke::inclusive", 0);
    let mut lo = false;
    let mut hi = false;
    for _ in 0..256 {
        match strat.sample(&mut rng) {
            1 => lo = true,
            3 => hi = true,
            2 => {}
            other => panic!("{other} outside 1..=3"),
        }
    }
    assert!(lo && hi);
}

#[test]
fn vec_lengths_span_size_range() {
    let strat = prop::collection::vec(any::<u8>(), 0..5);
    let mut rng = TestRng::for_case("smoke::vec", 0);
    let mut lens = [false; 5];
    for _ in 0..256 {
        lens[strat.sample(&mut rng).len()] = true;
    }
    assert!(
        lens.iter().all(|&s| s),
        "lengths 0..5 not all produced: {lens:?}"
    );
}

#[test]
fn oneof_respects_weights_roughly() {
    let strat = prop_oneof![
        9 => Just(true),
        1 => Just(false),
    ];
    let mut rng = TestRng::for_case("smoke::oneof", 0);
    let trues = (0..1000).filter(|_| strat.sample(&mut rng)).count();
    assert!(
        (800..=980).contains(&trues),
        "9:1 weighting produced {trues}/1000 trues"
    );
}

#[test]
fn flat_map_respects_dependent_bounds() {
    // The pagemem suite's core idiom: a draw whose legal range depends on an
    // earlier draw.
    let strat = (0usize..100).prop_flat_map(|off| {
        (
            Just(off),
            prop::collection::vec(any::<u8>(), 1..=(100 - off).clamp(1, 16)),
        )
    });
    let mut rng = TestRng::for_case("smoke::flat_map", 0);
    for _ in 0..256 {
        let (off, data) = strat.sample(&mut rng);
        assert!(!data.is_empty() && off + data.len() <= 100);
    }
}

#[test]
fn failing_property_panics() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            fn must_fail(x in 0u32..100) {
                // False for 99 of 100 values, so any seeding fails fast.
                prop_assert!(x < 1, "x was {}", x);
            }
        }
        must_fail();
    });
    assert!(
        result.is_err(),
        "a property false for 99% of its domain did not fail"
    );
}

thread_local! {
    static CASES_RUN: Cell<u32> = const { Cell::new(0) };
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 17, ..ProptestConfig::default() })]

    fn counted_property(_x in 0u32..10) {
        CASES_RUN.with(|c| c.set(c.get() + 1));
    }
}

#[test]
fn config_case_count_is_honored() {
    CASES_RUN.with(|c| c.set(0));
    counted_property();
    assert_eq!(CASES_RUN.with(|c| c.get()), 17);
}

proptest! {
    #[test]
    fn tuples_and_maps_compose(
        (a, b) in (0u64..50, 0u64..50).prop_map(|(x, y)| (x + 1, y + 1)),
        flag in any::<bool>(),
    ) {
        prop_assert!((1..=50).contains(&a) && (1..=50).contains(&b));
        let _ = flag;
    }
}

#[test]
fn distinct_cases_draw_distinct_values() {
    let strat = prop::collection::vec(any::<u8>(), 16usize);
    let a = strat.sample(&mut TestRng::for_case("smoke::distinct", 0));
    let b = strat.sample(&mut TestRng::for_case("smoke::distinct", 1));
    assert_ne!(a, b, "consecutive cases produced identical 16-byte vectors");
}
