//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights changed mid-sample")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = hi as u128 - lo as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain inclusive range: the span does not fit in
                    // u64 (below(0) would degenerate to a constant).
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
