//! `any::<T>()` for the primitive types the workspace draws whole-range.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The whole-domain strategy for `T`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Whole-domain strategy for a primitive integer (or bool).
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}
