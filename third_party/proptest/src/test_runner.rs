//! Deterministic pseudo-random generation and per-suite configuration.

/// Configuration accepted by `#![proptest_config(..)]`.
///
/// Only the fields this workspace uses are modeled; construct with struct
/// update syntax: `ProptestConfig { cases: 32, ..ProptestConfig::default() }`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A splitmix64 generator, seeded from the test path and case index so every
/// run of the suite explores the same inputs (failures are reproducible
/// without persistence files).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one `(test, case)` pair.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng { state: h };
        // Warm up so nearby seeds decorrelate.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Next raw 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
