//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.max_inclusive - self.min + 1) as u64;
        self.min + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)` — a vector with length drawn from
/// `size` (a `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
