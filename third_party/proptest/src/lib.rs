//! A small, dependency-free, offline re-implementation of the subset of the
//! [`proptest`](https://docs.rs/proptest) API this workspace uses.
//!
//! The container this repository builds in has no crates.io access, so the
//! property-test suites link against this stub instead of the real crate.
//! Semantics kept:
//!
//! * deterministic pseudo-random generation (seeded per test + case index),
//! * `Strategy` with `prop_map` / `prop_flat_map`, integer-range, tuple,
//!   `Just`, `any::<T>()` and `prop::collection::vec` strategies,
//! * weighted unions via `prop_oneof!`,
//! * the `proptest! { ... }` test-function macro with an optional
//!   `#![proptest_config(..)]` attribute,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Intentionally omitted: shrinking, persistence of failing cases, regex
//! strategies. Failures panic with the generating case index, which is
//! enough to reproduce deterministically.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop::` path used by `proptest::prelude::*` consumers
/// (e.g. `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert in a property body. Panics (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion in a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion in a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}
