//! A small, dependency-free, offline re-implementation of the subset of the
//! [`parking_lot`](https://docs.rs/parking_lot) API this workspace uses,
//! backed by `std::sync`.
//!
//! Matches parking_lot's ergonomics where the workspace relies on them:
//! `lock()` returns the guard directly (poisoning is swallowed — a panic
//! while holding the lock does not wedge every other thread with a
//! `PoisonError`), and `Condvar::wait` takes `&mut MutexGuard` instead of
//! consuming the guard.
//!
//! # Lock-order verification
//!
//! Every lock in the workspace routes through this stub, which makes it
//! the natural interposition point for the [`lockdep`] verifier: each
//! `Mutex`/`RwLock` carries a [`lockdep::LockTag`] assigned at
//! construction — an explicit [`lockdep::Class`] via [`Mutex::new_in`] /
//! [`RwLock::new_in`], or a per-callsite auto-class via the plain
//! constructors — and every acquisition, release, and condvar wait is
//! reported to the verifier. The hooks are compiled in behind the
//! default-on `lockdep` cargo feature and stay runtime-inert until
//! `LRC_LOCKDEP=1` (see the `lrc-lockdep` crate docs).

use std::ops::{Deref, DerefMut};

pub use lrc_lockdep as lockdep;

use lockdep::{AcquireOp, Class, LockTag};

// ---- verifier hooks (no-ops when the `lockdep` feature is off) ----

#[cfg(feature = "lockdep")]
#[track_caller]
fn auto_tag() -> LockTag {
    lockdep::auto_tag(std::panic::Location::caller())
}

#[cfg(not(feature = "lockdep"))]
fn auto_tag() -> LockTag {
    LockTag::null()
}

#[cfg(feature = "lockdep")]
fn class_tag(class: Class) -> LockTag {
    lockdep::tag_for(class)
}

#[cfg(not(feature = "lockdep"))]
fn class_tag(_class: Class) -> LockTag {
    LockTag::null()
}

#[cfg(feature = "lockdep")]
#[track_caller]
fn hook_acquire(tag: LockTag, addr: usize, op: AcquireOp) {
    lockdep::on_acquire(tag, addr, std::panic::Location::caller(), op);
}

#[cfg(not(feature = "lockdep"))]
fn hook_acquire(_tag: LockTag, _addr: usize, _op: AcquireOp) {}

#[cfg(feature = "lockdep")]
fn hook_release(addr: usize) {
    lockdep::on_release(addr);
}

#[cfg(not(feature = "lockdep"))]
fn hook_release(_addr: usize) {}

/// The stable identity of a lock instance for the verifier: the address
/// of the underlying std primitive (metadata stripped for `?Sized`).
fn lock_addr<L: ?Sized>(lock: &L) -> usize {
    lock as *const L as *const () as usize
}

/// A mutex that hands back its guard without a poison `Result`.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    tag: LockTag,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex with a per-callsite auto lock class.
    #[track_caller]
    pub fn new(value: T) -> Self {
        Mutex {
            tag: auto_tag(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Wrap `value` in a mutex belonging to the explicit lock `class`
    /// (see `lrc_lockdep::classes` for the workspace hierarchy).
    pub fn new_in(value: T, class: Class) -> Self {
        Mutex {
            tag: class_tag(class),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let addr = lock_addr(&self.inner);
        // Check *before* blocking so a potential deadlock reports instead
        // of hanging.
        hook_acquire(self.tag, addr, AcquireOp::blocking());
        MutexGuard {
            tag: self.tag,
            addr,
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Take the lock only if it is free right now: `Some(guard)` on
    /// success, `None` if another thread holds it (never blocks).
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let addr = lock_addr(&self.inner);
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        // Recorded only on success, and as an observation: a try-lock
        // cannot block, so it never completes a deadlock cycle.
        hook_acquire(self.tag, addr, AcquireOp::try_lock());
        Some(MutexGuard {
            tag: self.tag,
            addr,
            inner: Some(inner),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can temporarily take the std guard while blocked.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    tag: LockTag,
    addr: usize,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        hook_release(self.addr);
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-held when this returns.
    ///
    /// The verifier models the release-and-reacquire: the mutex leaves the
    /// thread's held stack for the duration of the wait and the wake-up is
    /// checked as a fresh blocking acquisition.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        hook_release(guard.addr);
        let inner = guard.inner.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        hook_acquire(guard.tag, guard.addr, AcquireOp::blocking());
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. Mirrors
    /// `parking_lot::Condvar::wait_for`: returns a result whose
    /// [`WaitTimeoutResult::timed_out`] tells whether the deadline passed
    /// (spurious wakeups and notifications both report `false`).
    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        hook_release(guard.addr);
        let inner = guard.inner.take().expect("guard already waiting");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        hook_acquire(guard.tag, guard.addr, AcquireOp::blocking());
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Outcome of a [`Condvar::wait_for`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A readers-writer lock that hands back guards without poison `Result`s.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    tag: LockTag,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a readers-writer lock with a per-callsite auto
    /// lock class.
    #[track_caller]
    pub fn new(value: T) -> Self {
        RwLock {
            tag: auto_tag(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Wrap `value` in a readers-writer lock belonging to the explicit
    /// lock `class` (see `lrc_lockdep::classes`).
    pub fn new_in(value: T, class: Class) -> Self {
        RwLock {
            tag: class_tag(class),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared read access is held.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let addr = lock_addr(&self.inner);
        hook_acquire(self.tag, addr, AcquireOp::shared());
        RwLockReadGuard {
            addr,
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Block until exclusive write access is held.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let addr = lock_addr(&self.inner);
        hook_acquire(self.tag, addr, AcquireOp::blocking());
        RwLockWriteGuard {
            addr,
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Shared RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    addr: usize,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        hook_release(self.addr);
    }
}

/// Exclusive RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    addr: usize,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        hook_release(self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = Arc::new(RwLock::new(0u32));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 0);
        }
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1u32);
        let held = m.lock();
        assert!(m.try_lock().is_none(), "held mutex must not be re-entered");
        drop(held);
        let guard = m.try_lock().expect("free mutex is taken immediately");
        assert_eq!(*guard, 1);
    }

    #[test]
    fn condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }
}
