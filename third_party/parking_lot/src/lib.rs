//! A small, dependency-free, offline re-implementation of the subset of the
//! [`parking_lot`](https://docs.rs/parking_lot) API this workspace uses,
//! backed by `std::sync`.
//!
//! Matches parking_lot's ergonomics where the workspace relies on them:
//! `lock()` returns the guard directly (poisoning is swallowed — a panic
//! while holding the lock does not wedge every other thread with a
//! `PoisonError`), and `Condvar::wait` takes `&mut MutexGuard` instead of
//! consuming the guard.

use std::ops::{Deref, DerefMut};

/// A mutex that hands back its guard without a poison `Result`.
#[derive(Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can temporarily take the std guard while blocked.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during wait")
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-held when this returns.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }
}
