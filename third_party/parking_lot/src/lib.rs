//! A small, dependency-free, offline re-implementation of the subset of the
//! [`parking_lot`](https://docs.rs/parking_lot) API this workspace uses,
//! backed by `std::sync`.
//!
//! Matches parking_lot's ergonomics where the workspace relies on them:
//! `lock()` returns the guard directly (poisoning is swallowed — a panic
//! while holding the lock does not wedge every other thread with a
//! `PoisonError`), and `Condvar::wait` takes `&mut MutexGuard` instead of
//! consuming the guard.

use std::ops::{Deref, DerefMut};

/// A mutex that hands back its guard without a poison `Result`.
#[derive(Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Take the lock only if it is free right now: `Some(guard)` on
    /// success, `None` if another thread holds it (never blocks).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can temporarily take the std guard while blocked.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during wait")
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-held when this returns.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. Mirrors
    /// `parking_lot::Condvar::wait_for`: returns a result whose
    /// [`WaitTimeoutResult::timed_out`] tells whether the deadline passed
    /// (spurious wakeups and notifications both report `false`).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already waiting");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Outcome of a [`Condvar::wait_for`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A readers-writer lock that hands back guards without poison `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a readers-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared read access is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Block until exclusive write access is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Shared RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = Arc::new(RwLock::new(0u32));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 0);
        }
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1u32);
        let held = m.lock();
        assert!(m.try_lock().is_none(), "held mutex must not be re-entered");
        drop(held);
        let guard = m.try_lock().expect("free mutex is taken immediately");
        assert_eq!(*guard, 1);
    }

    #[test]
    fn condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }
}
