//! Crash tolerance under injected faults: peer nodes killed
//! mid-lock-transfer, mid-barrier, and mid-miss-reply over the channel
//! transport, wrapped in the deterministic [`FaultyTransport`] layer.
//!
//! The invariants under test:
//!
//! * survivors detect the dead node (failure detector or explicit
//!   declaration), force-release its locks, complete its barrier
//!   episodes, and observe its *flushed* final interval;
//! * every recorded history — including the crash markers — passes the
//!   `lrc-hist` checker;
//! * a restarted node that presents its last checkpoint converges to
//!   memory byte-identical to a single-threaded engine replay of the
//!   same kill-and-rejoin sequence.

use std::sync::Arc;
use std::time::Duration;

use lrc::core::EngineOp;
use lrc::dsm::{CheckpointPolicy, Dsm, DsmBuilder, NodeClient, NodeError, NodeServer};
use lrc::hist::{CheckBudget, HistoryRecorder};
use lrc::net::{
    Backoff, ChannelNet, Connector, FaultPlan, FaultyTransport, Frame, NetError, NodeId,
    SelfHealing, TcpTransport, Transport, WireCtx, WireKind, WireMsg, WireStats,
};
use lrc::pagemem::{AddrSpace, PageSize};
use lrc::sim::{AnyEngine, EngineParams, ProtocolKind};
use lrc::sync::{BarrierId, LockId};
use lrc::vclock::ProcId;

/// Generous deadline for every blocking wait a test does expect to
/// complete; a lost wake-up fails loudly instead of hanging CI.
const WAIT: Duration = Duration::from_secs(60);

/// How long a survivor waits on a silent lock holder before declaring it
/// dead.
const SUSPECT_AFTER: Duration = Duration::from_millis(150);

/// Drives one remote processor over raw wire frames — no [`NodeClient`],
/// so the test controls exactly which frames the "process" lives to send
/// and receive. A crashed process does not run a tidy reply
/// demultiplexer, and the kill points here are defined in *frames sent*.
struct RawPeer<T: Transport> {
    transport: T,
    proc: ProcId,
    seq: u64,
}

impl<T: Transport> RawPeer<T> {
    /// Announces `proc` to the engine node (node 0) and returns the peer.
    fn hello(transport: T, proc: ProcId) -> RawPeer<T> {
        let node = transport.node();
        transport
            .send(
                &WireMsg::Hello {
                    node,
                    procs: vec![proc],
                },
                0,
                0,
            )
            .expect("hello is the first frame; the fault plan spares it");
        RawPeer {
            transport,
            proc,
            seq: 0,
        }
    }

    /// Sends one operation frame without waiting for its reply.
    fn send_op(&mut self, op: EngineOp) -> Result<u64, NetError> {
        self.seq += 1;
        self.transport.send(
            &WireMsg::OpRequest {
                proc: self.proc,
                op,
            },
            0,
            self.seq,
        )?;
        Ok(self.seq)
    }

    /// Blocks for the next reply frame and returns its payload.
    fn recv_reply(&mut self) -> Result<Vec<u8>, NetError> {
        let frame = self.transport.recv()?;
        assert_eq!(frame.kind, WireKind::OpReply, "op-plane traffic only");
        match WireMsg::decode(frame.kind, &frame.body, &WireCtx { n_procs: 0 })
            .expect("well-formed reply")
        {
            WireMsg::OpReply { result } => Ok(result.expect("legal script")),
            _ => unreachable!("kind was OpReply"),
        }
    }

    /// Sends one operation and blocks for its outcome.
    fn op(&mut self, op: EngineOp) -> Result<Vec<u8>, NetError> {
        self.send_op(op)?;
        self.recv_reply()
    }
}

/// Reads the full shared space through `read` in page-sized chunks.
fn read_all(read: &mut dyn FnMut(u64, &mut [u8]), total: u64, page: usize) -> Vec<u8> {
    let mut mem = vec![0u8; total as usize];
    for (i, chunk) in mem.chunks_mut(page).enumerate() {
        read(i as u64 * page as u64, chunk);
    }
    mem
}

/// A node killed mid-lock-transfer: its acquire and write are delivered,
/// the release dies with the process. The survivor's failure detector
/// times the silent holder out, declares it dead, and wins the
/// force-released lock — observing the dead holder's flushed write.
#[test]
fn killed_lock_holder_is_detected_and_superseded() {
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 2, 1 << 14)
        .page_size(256)
        .wait_timeout(WAIT)
        .holder_timeout(SUSPECT_AFTER)
        .build()
        .unwrap();
    let recorder = HistoryRecorder::new(2);
    dsm.attach_recorder(Arc::clone(&recorder));

    let mut mesh = ChannelNet::mesh(2);
    let victim_end = mesh.pop().unwrap();
    let server_end = mesh.pop().unwrap();
    let server = NodeServer::new(dsm.clone(), server_end);
    let serving = std::thread::spawn(move || server.serve());

    // Frame 4 (the release) is where the process dies.
    let plan = FaultPlan::new().kill_after_sends(4);
    let victim_proc = ProcId::new(1);
    let lock = LockId::new(0);
    let mut victim = RawPeer::hello(FaultyTransport::new(victim_end, plan), victim_proc);
    victim.op(EngineOp::Acquire(lock)).unwrap();
    victim
        .op(EngineOp::Write {
            addr: 64,
            data: 7u64.to_le_bytes().to_vec(),
        })
        .unwrap();
    assert_eq!(
        victim.send_op(EngineOp::Release(lock)).unwrap_err(),
        NetError::Closed,
        "the kill rule fires on the release frame"
    );

    // The survivor contends for the same lock: the holder stays silent
    // past the suspicion deadline, is declared dead (open interval
    // flushed, lock force-released), and the retry wins.
    let mut survivor = dsm.handle(ProcId::new(0));
    survivor.acquire(lock).unwrap();
    assert!(
        dsm.is_dead(victim_proc),
        "the silent holder was declared dead"
    );
    assert_eq!(
        survivor.read_u64(64),
        7,
        "the dead holder's write was flushed before the force-release"
    );
    survivor.write_u64(72, 8);
    survivor.release(lock).unwrap();

    // The recorded histories — crash marker included — check out.
    recorder
        .finish()
        .check(&CheckBudget::default())
        .expect("survivor history passes after a mid-transfer kill");

    // The dead process's endpoint closing is what ends the server.
    drop(victim);
    assert!(
        matches!(
            serving.join().unwrap(),
            Err(NodeError::Net(NetError::Closed))
        ),
        "a crashed peer ends the session with a transport close, not a Shutdown"
    );
}

/// A node killed mid-barrier: its arrival frame dies in flight, leaving
/// the survivor parked in an episode that can never complete — until the
/// death declaration completes the episode on the dead node's behalf.
#[test]
fn killed_node_mid_barrier_releases_the_parked_survivor() {
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 2, 1 << 14)
        .page_size(256)
        .wait_timeout(WAIT)
        .build()
        .unwrap();
    let recorder = HistoryRecorder::new(2);
    dsm.attach_recorder(Arc::clone(&recorder));

    let mut mesh = ChannelNet::mesh(2);
    let victim_end = mesh.pop().unwrap();
    let server_end = mesh.pop().unwrap();
    let server = NodeServer::new(dsm.clone(), server_end);
    let serving = std::thread::spawn(move || server.serve());

    // Frame 3 (the barrier arrival) is where the process dies.
    let plan = FaultPlan::new().kill_after_sends(3);
    let victim_proc = ProcId::new(1);
    let barrier = BarrierId::new(0);
    let mut victim = RawPeer::hello(FaultyTransport::new(victim_end, plan), victim_proc);
    victim
        .op(EngineOp::Write {
            addr: 0,
            data: 3u64.to_le_bytes().to_vec(),
        })
        .unwrap();
    assert_eq!(
        victim.send_op(EngineOp::Barrier(barrier)).unwrap_err(),
        NetError::Closed,
        "the kill rule fires on the barrier arrival"
    );

    // The survivor arrives and parks: with the victim gone, its episode
    // needs the death declaration to complete.
    let survivor_thread = std::thread::spawn({
        let dsm = dsm.clone();
        move || {
            let mut h = dsm.handle(ProcId::new(0));
            h.write_u64(8, 5);
            h.barrier(barrier).unwrap();
            h.read_u64(8)
        }
    });
    std::thread::sleep(Duration::from_millis(100)); // let the survivor park
    dsm.declare_dead(victim_proc);
    assert_eq!(
        survivor_thread.join().unwrap(),
        5,
        "the parked survivor fell through the completed episode"
    );

    recorder
        .finish()
        .check(&CheckBudget::default())
        .expect("survivor history passes after a mid-barrier kill");

    drop(victim);
    assert!(matches!(
        serving.join().unwrap(),
        Err(NodeError::Net(NetError::Closed))
    ));
}

/// The barrier-wait hole in the failure detector, closed: a node dies
/// *before arriving* at a barrier while `holder_timeout` is armed. No one
/// holds a lock, so the lock-path detector never engages — the barrier
/// waiter itself must time out, suspect the absentee, and complete the
/// episode on its behalf. Unlike
/// [`killed_node_mid_barrier_releases_the_parked_survivor`] there is no
/// explicit `declare_dead` here; the detector does it.
#[test]
fn barrier_waiter_suspects_an_absentee_without_explicit_declaration() {
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 2, 1 << 14)
        .page_size(256)
        .wait_timeout(WAIT)
        .holder_timeout(SUSPECT_AFTER)
        .build()
        .unwrap();
    let recorder = HistoryRecorder::new(2);
    dsm.attach_recorder(Arc::clone(&recorder));

    let mut mesh = ChannelNet::mesh(2);
    let victim_end = mesh.pop().unwrap();
    let server_end = mesh.pop().unwrap();
    let server = NodeServer::new(dsm.clone(), server_end);
    let serving = std::thread::spawn(move || server.serve());

    // Frame 3 (the barrier arrival) dies with the process: the victim
    // never arrives, and nobody else will declare it dead.
    let plan = FaultPlan::new().kill_after_sends(3);
    let victim_proc = ProcId::new(1);
    let barrier = BarrierId::new(0);
    let mut victim = RawPeer::hello(FaultyTransport::new(victim_end, plan), victim_proc);
    victim
        .op(EngineOp::Write {
            addr: 0,
            data: 3u64.to_le_bytes().to_vec(),
        })
        .unwrap();
    assert_eq!(
        victim.send_op(EngineOp::Barrier(barrier)).unwrap_err(),
        NetError::Closed,
        "the kill rule fires on the barrier arrival"
    );

    // The survivor arrives and parks. With the victim silent past the
    // suspicion deadline, the barrier waiter's own detector declares it
    // dead and falls through the completed episode.
    let mut survivor = dsm.handle(ProcId::new(0));
    survivor.write_u64(8, 5);
    survivor.barrier(barrier).unwrap();
    assert!(
        dsm.is_dead(victim_proc),
        "the barrier waiter suspected the absentee on its own"
    );
    assert_eq!(survivor.read_u64(8), 5);

    recorder
        .finish()
        .check(&CheckBudget::default())
        .expect("survivor history passes after a suspected barrier absentee");

    drop(victim);
    assert!(matches!(
        serving.join().unwrap(),
        Err(NodeError::Net(NetError::Closed))
    ));
}

/// A node killed with a miss reply in flight: its page miss is serviced
/// and the reply sent, but the process dies before consuming it. The
/// servicing must leave the engine consistent for the survivors, and the
/// dead processor's recorded read must still be justified.
#[test]
fn killed_node_with_a_miss_reply_in_flight_leaves_survivors_consistent() {
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 2, 1 << 14)
        .page_size(256)
        .wait_timeout(WAIT)
        .build()
        .unwrap();
    let recorder = HistoryRecorder::new(2);
    dsm.attach_recorder(Arc::clone(&recorder));

    let mut mesh = ChannelNet::mesh(2);
    let victim_end = mesh.pop().unwrap();
    let server_end = mesh.pop().unwrap();
    let server = NodeServer::new(dsm.clone(), server_end);
    let serving = std::thread::spawn(move || server.serve());

    let victim_proc = ProcId::new(1);
    let lock = LockId::new(0);

    // The survivor publishes under the lock first, so the victim's read
    // is a genuine warm miss with protocol traffic behind it.
    let mut survivor = dsm.handle(ProcId::new(0));
    survivor.acquire(lock).unwrap();
    survivor.write_u64(512, 31);
    survivor.release(lock).unwrap();

    // Frame 4 (the release) is where the process dies — after the miss
    // request went out, while its reply is still unconsumed.
    let plan = FaultPlan::new().kill_after_sends(4);
    let mut victim = RawPeer::hello(FaultyTransport::new(victim_end, plan), victim_proc);
    victim.op(EngineOp::Acquire(lock)).unwrap();
    let miss_seq = victim
        .send_op(EngineOp::Read { addr: 512, len: 8 })
        .unwrap();

    // The miss really was serviced: its reply frame sits in the dead
    // process's queue, never to be consumed. The test reads it through
    // the fault layer's inner transport — the omniscient view of a frame
    // that was in flight when the process died.
    let frame = victim.transport.inner().recv().unwrap();
    assert_eq!(frame.kind, WireKind::OpReply);
    assert_eq!(frame.seq, miss_seq);
    let bytes = match WireMsg::decode(frame.kind, &frame.body, &WireCtx { n_procs: 0 }).unwrap() {
        WireMsg::OpReply { result } => result.expect("the miss was serviced"),
        _ => unreachable!("kind was OpReply"),
    };
    assert_eq!(
        u64::from_le_bytes(bytes.try_into().unwrap()),
        31,
        "the in-flight reply carried current data"
    );
    assert_eq!(
        victim.send_op(EngineOp::Release(lock)).unwrap_err(),
        NetError::Closed,
        "the kill rule fires on the release frame"
    );

    // The survivors declare the victim dead and carry on; the serviced
    // miss left nothing inconsistent behind.
    dsm.declare_dead(victim_proc);
    survivor.acquire(lock).unwrap();
    assert_eq!(survivor.read_u64(512), 31);
    survivor.write_u64(520, 32);
    survivor.release(lock).unwrap();

    recorder
        .finish()
        .check(&CheckBudget::default())
        .expect("histories pass with the victim's serviced-but-unconsumed miss");

    drop(victim);
    assert!(matches!(
        serving.join().unwrap(),
        Err(NodeError::Net(NetError::Closed))
    ));
}

/// A connected loopback (hub, spoke) pair of reactor transports: the hub
/// is node 0 (where the engine lives), the spoke node 1.
#[cfg(feature = "reactor")]
fn reactor_pair() -> (lrc::net::ReactorTransport, lrc::net::ReactorTransport) {
    use lrc::net::ReactorTransport;
    let hub = ReactorTransport::bind("127.0.0.1:0", 0).expect("bind loopback");
    let addr = hub.local_addr();
    let connecting =
        std::thread::spawn(move || ReactorTransport::connect(&addr, 1, 0).expect("connect"));
    let server_end = hub.accept(1).expect("accept");
    (server_end, connecting.join().expect("connect thread"))
}

/// The fault layer composes with the reactor backend unchanged
/// ([`FaultyTransport`] is generic over [`Transport`]): the same scripted
/// kill-after-sends plan that drives the channel-transport crash suite
/// kills a real socket endpoint at the same frame, and the survivor's
/// failure detector resolves it identically.
#[cfg(feature = "reactor")]
#[test]
fn killed_lock_holder_is_detected_over_the_reactor_backend() {
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 2, 1 << 14)
        .page_size(256)
        .wait_timeout(WAIT)
        .holder_timeout(SUSPECT_AFTER)
        .build()
        .unwrap();
    let recorder = HistoryRecorder::new(2);
    dsm.attach_recorder(Arc::clone(&recorder));

    let (server_end, spoke) = reactor_pair();
    let server = NodeServer::new(dsm.clone(), server_end);
    let serving = std::thread::spawn(move || server.serve());

    // Frame 4 (the release) is where the process dies. The connect-time
    // link hello went out before the fault layer wrapped the spoke, so
    // the frame indices match the channel-transport test exactly.
    let plan = FaultPlan::new().kill_after_sends(4);
    let victim_proc = ProcId::new(1);
    let lock = LockId::new(0);
    let mut victim = RawPeer::hello(FaultyTransport::new(spoke, plan), victim_proc);
    victim.op(EngineOp::Acquire(lock)).unwrap();
    victim
        .op(EngineOp::Write {
            addr: 64,
            data: 7u64.to_le_bytes().to_vec(),
        })
        .unwrap();
    assert_eq!(
        victim.send_op(EngineOp::Release(lock)).unwrap_err(),
        NetError::Closed,
        "the kill rule fires on the release frame"
    );

    let mut survivor = dsm.handle(ProcId::new(0));
    survivor.acquire(lock).unwrap();
    assert!(
        dsm.is_dead(victim_proc),
        "the silent holder was declared dead"
    );
    assert_eq!(
        survivor.read_u64(64),
        7,
        "the dead holder's write was flushed before the force-release"
    );
    survivor.release(lock).unwrap();

    recorder
        .finish()
        .check(&CheckBudget::default())
        .expect("survivor history passes after a mid-transfer kill over sockets");

    // Dropping the victim closes its socket; the hub's reactor surfaces
    // the death and the server retires with a transport close.
    drop(victim);
    assert!(matches!(
        serving.join().unwrap(),
        Err(NodeError::Net(NetError::Closed))
    ));
}

/// Scripted frame drops compose with the reactor too: a dropped frame
/// never reaches the staging buffers, every delivered frame arrives
/// intact and in order, and the drop is visible only in the fault layer's
/// own counter — the reactor's accounting covers what actually moved.
#[cfg(feature = "reactor")]
#[test]
fn scripted_drops_compose_with_the_reactor_backend() {
    let (hub, spoke) = reactor_pair();
    let faulty = FaultyTransport::new(spoke, FaultPlan::new().drop_nth(None, 2));
    for seq in 1..=3u64 {
        faulty
            .send(&WireMsg::Shutdown, 0, seq)
            .expect("drops are silent: the caller still sees Ok");
    }
    let seqs: Vec<u64> = (0..2).map(|_| hub.recv().unwrap().seq).collect();
    assert_eq!(seqs, vec![1, 3], "exactly the second frame vanished");
    assert_eq!(faulty.dropped(), 1);
    assert_eq!(
        faulty.stats().msgs_sent,
        3,
        "connect-time link hello + the two delivered frames; the dropped \
         frame never reached the reactor"
    );
}

/// The full crash-tolerance arc, seeded and deterministic: a node
/// checkpoints at a barrier, is killed mid-lock-transfer, survivors
/// detect the death and carry on, and the restarted node rejoins from the
/// checkpoint over the wire — converging to memory byte-identical to a
/// single-threaded engine replay of the same kill-and-rejoin sequence.
#[test]
fn killed_node_rejoins_from_checkpoint_and_converges() {
    const PAGE: usize = 256;
    const MEM: u64 = 1 << 14;
    let kind = ProtocolKind::LazyInvalidate;
    let p0 = ProcId::new(0);
    let p1 = ProcId::new(1);
    let lock = LockId::new(0);
    let barrier = BarrierId::new(0);

    let dsm = DsmBuilder::new(kind, 2, MEM)
        .page_size(PAGE)
        .wait_timeout(WAIT)
        .holder_timeout(SUSPECT_AFTER)
        .build()
        .unwrap();
    let recorder = HistoryRecorder::new(2);
    dsm.attach_recorder(Arc::clone(&recorder));

    let mut mesh = ChannelNet::mesh(3);
    let rejoin_end = mesh.pop().unwrap(); // node 2: the restarted incarnation
    let victim_end = mesh.pop().unwrap(); // node 1: dies mid-run
    let server_end = mesh.pop().unwrap(); // node 0: the engine node
    let server = NodeServer::new(dsm.clone(), server_end);
    let serving = std::thread::spawn(move || server.serve());

    // Frame 6 (the phase-2 release) is where the process dies.
    let plan = FaultPlan::new().kill_after_sends(6);
    let mut victim = RawPeer::hello(FaultyTransport::new(victim_end, plan), p1);

    // The survivor holds at the std barrier until the checkpoint is cut
    // *and* the victim holds the contended lock — making the
    // failure-detector hand-off deterministic.
    let ckpt_taken = Arc::new(std::sync::Barrier::new(2));
    let survivor_thread = std::thread::spawn({
        let dsm = dsm.clone();
        let ckpt_taken = Arc::clone(&ckpt_taken);
        move || {
            let mut h = dsm.handle(p0);
            h.write_u64(8, 0x51);
            h.barrier(barrier).unwrap();
            ckpt_taken.wait();
            // Phase 2: the victim took the lock first and died holding
            // it; the failure detector inside acquire declares it dead.
            h.acquire(lock).unwrap();
            let flushed = h.read_u64(1032);
            h.write_u64(16, 0x52);
            h.release(lock).unwrap();
            flushed
        }
    });

    // Phase 1: the victim publishes its slot and arrives at the barrier.
    victim
        .op(EngineOp::Write {
            addr: 1024,
            data: 0x41u64.to_le_bytes().to_vec(),
        })
        .unwrap();
    victim.op(EngineOp::Barrier(barrier)).unwrap();

    // Post-barrier quiescence: cut the checkpoint the restarted node will
    // present (the engine is idle — the survivor is parked at the std
    // barrier, the victim's worker drained).
    let checkpoint = dsm.checkpoint().encode();

    // Phase 2: the victim takes the lock and writes, then dies on the
    // release frame.
    victim.op(EngineOp::Acquire(lock)).unwrap();
    victim
        .op(EngineOp::Write {
            addr: 1032,
            data: 0x42u64.to_le_bytes().to_vec(),
        })
        .unwrap();
    ckpt_taken.wait(); // unleash the survivor onto the held lock
    assert_eq!(
        victim.send_op(EngineOp::Release(lock)).unwrap_err(),
        NetError::Closed,
        "the kill rule fires on the phase-2 release"
    );

    assert_eq!(
        survivor_thread.join().unwrap(),
        0x42,
        "the dead holder's final write was flushed to the survivor"
    );
    assert!(dsm.is_dead(p1));

    // ---- rejoin: the restarted incarnation presents the checkpoint ----
    let (client, episode) = NodeClient::rejoin(rejoin_end, 0, p1, checkpoint).unwrap();
    assert_eq!(episode, 1, "the checkpoint was cut after barrier episode 1");
    assert!(!dsm.is_dead(p1), "the rejoined processor is live again");

    // Resynchronize (a lock acquire is the happens-before edge from the
    // survivors), then read the whole space back over the wire.
    let total = AddrSpace::with_capacity(PageSize::new(PAGE).unwrap(), MEM).total_bytes();
    let mut revived = client.handle(p1);
    revived.acquire(lock).unwrap();
    let node_mem = read_all(
        &mut |addr, buf| revived.read_bytes(addr, buf).expect("remote read"),
        total,
        PAGE,
    );
    revived.release(lock).unwrap();

    // Every recorded history — two crash-spanning logs included — passes.
    recorder
        .finish()
        .check(&CheckBudget::default())
        .expect("kill-and-rejoin histories pass the checker");

    // The reference: the same sequence replayed single-threaded through
    // the engine, in the serialization order the runtime actually took.
    let params = EngineParams {
        n_procs: 2,
        mem_bytes: MEM,
        page_bytes: PAGE,
        n_locks: 1,
        n_barriers: 1,
        ..EngineParams::default()
    };
    let engine = AnyEngine::build(kind, &params).unwrap();
    engine.write(p0, 8, &0x51u64.to_le_bytes());
    engine.write(p1, 1024, &0x41u64.to_le_bytes());
    engine.barrier(p0, barrier).unwrap();
    engine.barrier(p1, barrier).unwrap();
    let reference_ckpt = engine.checkpoint();
    engine.acquire(p1, lock).unwrap();
    engine.write(p1, 1032, &0x42u64.to_le_bytes());
    engine.declare_dead(p1);
    engine.acquire(p0, lock).unwrap();
    let mut flushed = [0u8; 8];
    engine.read_into(p0, 1032, &mut flushed);
    engine.write(p0, 16, &0x52u64.to_le_bytes());
    engine.release(p0, lock).unwrap();
    engine.rejoin(p1, &reference_ckpt).unwrap();
    engine.acquire(p1, lock).unwrap();
    let sim_mem = read_all(
        &mut |addr, buf| engine.read_into(p1, addr, buf),
        total,
        PAGE,
    );
    engine.release(p1, lock).unwrap();

    assert_eq!(
        sim_mem, node_mem,
        "rejoined node's memory diverges from the single-threaded replay"
    );

    // The rejoin superseded the dead node 1, so node 2's shutdown is the
    // last one the server waits for: a clean exit.
    client.shutdown().unwrap();
    serving
        .join()
        .unwrap()
        .expect("rejoin supersedes the crashed peer; the server retires cleanly");
    drop(victim);
}

/// Deterministic xorshift64: the soak's kill/sever schedule is seeded,
/// not wall-clock or thread-schedule dependent.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Keeps a handle on the healing wrapper while a [`NodeClient`] owns the
/// transport seat, so the soak can assert the sever really forced a
/// reconnect (generation bump).
struct SharedHealing(Arc<SelfHealing>);

impl Transport for SharedHealing {
    fn node(&self) -> NodeId {
        self.0.node()
    }
    fn send(&self, msg: &WireMsg, dst: NodeId, seq: u64) -> Result<(), NetError> {
        self.0.send(msg, dst, seq)
    }
    fn recv(&self) -> Result<Frame, NetError> {
        self.0.recv()
    }
    fn stats(&self) -> WireStats {
        self.0.stats()
    }
    fn generation(&self) -> u64 {
        self.0.generation()
    }
}

/// Where processor `p` writes on iteration `iter`: one 8-byte cell per
/// iteration inside its own page, so the final memory image encodes
/// exactly which iterations each processor lived through.
fn soak_slot(p: usize, iter: u64) -> u64 {
    (p * 256) as u64 + iter * 8
}

/// What it writes there — unique per (processor, iteration).
fn soak_value(p: usize, iter: u64) -> u64 {
    p as u64 * 1000 + iter + 1
}

/// The self-healing runtime end to end: four processors over the TCP
/// healing hub, a seeded schedule of two process kills and one link
/// sever, and **zero manual recovery calls** — the survivors' barrier
/// waits suspect the silent processors, death ships an automatic
/// checkpoint cut, garbage collection defers while the rejoin lease is
/// live, and each restarted incarnation revives its processor simply by
/// reconnecting under a fresh node id. The run must converge to memory
/// byte-identical to a crash-free single-threaded replay of the writes
/// that survived.
#[test]
fn seeded_kill_and_heal_soak_converges_without_manual_recovery() {
    const PAGE: usize = 256;
    const MEM: u64 = 1 << 13;
    const ITERS: u64 = 8;
    // Generous suspicion deadline: remote spokes recover from a false
    // positive (the server revives a dead processor when its host's next
    // operation arrives), but the locally-driven p0 would panic, so the
    // soak trades crash-window latency for a wide margin on loaded CI.
    const SOAK_SUSPECT: Duration = Duration::from_millis(1000);
    let kind = ProtocolKind::LazyInvalidate;
    let barrier = BarrierId::new(0);
    let backoff = || Backoff::new(Duration::from_millis(5), Duration::from_millis(50), 10);

    // The seeded schedule: p1 dies early, p2 dies late (one death at a
    // time), p3's link is severed but the process lives throughout.
    let mut seed = 0x1992_0551_u64;
    let crashes = [
        (1usize, 1 + xorshift(&mut seed) % 3), // iteration in 1..=3
        (2usize, 4 + xorshift(&mut seed) % 3), // iteration in 4..=6
    ];
    let sever_iter = 1 + xorshift(&mut seed) % 5;

    let dsm = DsmBuilder::new(kind, 4, MEM)
        .page_size(PAGE)
        .gc_at_barriers()
        .death_lease(2)
        .wait_timeout(WAIT)
        .holder_timeout(SOAK_SUSPECT)
        .checkpoint_policy(CheckpointPolicy::every_episodes(1))
        .auto_recover(Duration::from_millis(50))
        .build()
        .unwrap();
    let recorder = HistoryRecorder::new(4);
    dsm.attach_recorder(Arc::clone(&recorder));

    let hub = TcpTransport::bind("127.0.0.1:0", 0).expect("bind loopback");
    let addr = hub.local_addr();
    let serving = std::thread::spawn({
        let dsm = dsm.clone();
        move || {
            let transport = hub
                .accept_healing(3, Duration::from_secs(10))
                .expect("accept the three spokes");
            NodeServer::new(dsm, transport).serve()
        }
    });

    // Lockstep across the driver threads: the *processes* under test
    // crash and heal freely, but the test's iteration fronts stay
    // aligned so a revived processor rejoins the episode the survivors
    // are parked in, not one they raced past.
    let sync = Arc::new(std::sync::Barrier::new(4));

    let mut killed = Vec::new();
    for (idx, crash_at) in crashes {
        let addr = addr.clone();
        let dsm: Dsm = dsm.clone();
        let sync = Arc::clone(&sync);
        let backoff = backoff();
        killed.push(std::thread::spawn(move || {
            let proc = ProcId::new(idx as u16);
            let transport = TcpTransport::connect_retry(&addr, idx as NodeId, 0, &backoff).unwrap();
            let mut client = Some(NodeClient::connect(transport, 0, vec![proc]).unwrap());
            for iter in 0..ITERS {
                sync.wait();
                if iter == crash_at {
                    // The process dies: no shutdown, no goodbye — the
                    // link just closes. A survivor's barrier wait will
                    // suspect and declare it; this thread only waits for
                    // the verdict (observation, not declaration).
                    drop(client.take());
                    while !dsm.is_dead(proc) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    // The restarted incarnation: a fresh node id (the
                    // old one's sequence space died with it) and a plain
                    // hello, which supersedes the crashed peer and
                    // revives the processor from the automatic death
                    // cut. The probe read of an untouched page confirms
                    // the revival completed before rejoining the
                    // lockstep — everything after it is ordinary.
                    let transport =
                        TcpTransport::connect_retry(&addr, 10 + idx as NodeId, 0, &backoff)
                            .unwrap();
                    let fresh = NodeClient::connect(transport, 0, vec![proc]).unwrap();
                    fresh.handle(proc).read_u64(MEM - PAGE as u64).unwrap();
                    client = Some(fresh);
                    continue; // this iteration's write died with the process
                }
                let mut h = client.as_ref().unwrap().handle(proc);
                h.write_u64(soak_slot(idx, iter), soak_value(idx, iter))
                    .unwrap();
                h.barrier(barrier).unwrap();
            }
            client.take().unwrap().shutdown().unwrap();
        }));
    }

    let severed = std::thread::spawn({
        let addr = addr.clone();
        let sync = Arc::clone(&sync);
        let backoff = backoff();
        move || {
            let proc = ProcId::new(3);
            let dial = addr.clone();
            let connector: Connector = Box::new(move || {
                TcpTransport::connect(&dial, 3, 0).map(|t| Arc::new(t) as Arc<dyn Transport>)
            });
            let healing = Arc::new(SelfHealing::connect(connector, backoff).expect("initial dial"));
            let client =
                NodeClient::connect(SharedHealing(Arc::clone(&healing)), 0, vec![proc]).unwrap();
            let mut h = client.handle(proc);
            for iter in 0..ITERS {
                sync.wait();
                if iter == sever_iter {
                    // The partition: a throwaway dial under this spoke's
                    // node id supersedes its link at the healing hub,
                    // killing the socket mid-run. The next operation
                    // heals the link and replays behind a resumable
                    // hello.
                    let throwaway = TcpTransport::connect(&addr, 3, 0).expect("severing dial");
                    std::thread::sleep(Duration::from_millis(50));
                    drop(throwaway);
                }
                h.write_u64(soak_slot(3, iter), soak_value(3, iter))
                    .unwrap();
                h.barrier(barrier).unwrap();
            }
            client.shutdown().unwrap();
            healing.generation()
        }
    });

    // p0 drives locally on this thread.
    let mut local = dsm.handle(ProcId::new(0));
    for iter in 0..ITERS {
        sync.wait();
        local.write_u64(soak_slot(0, iter), soak_value(0, iter));
        local.barrier(barrier).unwrap();
    }

    for spoke in killed {
        spoke.join().expect("killed-and-restarted spoke completes");
    }
    let generation = severed.join().expect("severed spoke completes");
    assert!(
        generation >= 1,
        "the scripted sever must have forced at least one reconnect"
    );
    serving
        .join()
        .unwrap()
        .expect("restarts superseded the crashed peers; the server retires cleanly");

    // The automation left its fingerprints: cuts shipped at episode
    // boundaries and at each death, and GC deferred (bounded by the
    // lease) instead of collecting under a dead processor.
    let counters = dsm.engine().as_lazy().unwrap().counters();
    assert!(
        counters.checkpoints_cut >= ITERS,
        "expected a cut per episode, got {}",
        counters.checkpoints_cut
    );
    assert!(
        counters.gc_deferrals >= 1,
        "GC must defer at least the death episodes, got {}",
        counters.gc_deferrals
    );

    // Every recorded history — two crash/revive arcs included — passes.
    recorder
        .finish()
        .check(&CheckBudget::default())
        .expect("soak histories pass the checker");

    // The reference: a crash-free single-threaded replay writing exactly
    // the cells that survived (a killed iteration's write died with the
    // process and was never retried).
    let total = AddrSpace::with_capacity(PageSize::new(PAGE).unwrap(), MEM).total_bytes();
    let node_mem = read_all(&mut |addr, buf| local.read_bytes(addr, buf), total, PAGE);
    let params = EngineParams {
        n_procs: 4,
        mem_bytes: MEM,
        page_bytes: PAGE,
        n_barriers: 1,
        gc_at_barriers: true,
        ..EngineParams::default()
    };
    let engine = AnyEngine::build(kind, &params).unwrap();
    for iter in 0..ITERS {
        for p in 0..4usize {
            if crashes.iter().any(|&(cp, ci)| cp == p && ci == iter) {
                continue;
            }
            engine.write(
                ProcId::new(p as u16),
                soak_slot(p, iter),
                &soak_value(p, iter).to_le_bytes(),
            );
        }
        for p in 0..4u16 {
            engine.barrier(ProcId::new(p), barrier).unwrap();
        }
    }
    let sim_mem = read_all(
        &mut |addr, buf| engine.read_into(ProcId::new(0), addr, buf),
        total,
        PAGE,
    );
    assert_eq!(
        sim_mem, node_mem,
        "the healed cluster's memory diverges from the crash-free replay"
    );
}
