//! Table 1 of the paper ("Shared Memory Operation Message Costs"),
//! verified empirically: for each operation and protocol, crafted
//! scenarios with known `m`, `h`, `c`, `n`, `u`, `v` produce exactly the
//! message counts the table specifies.

use lrc::core::{LrcConfig, LrcEngine, Policy};
use lrc::eager::{EagerConfig, EagerEngine};
use lrc::simnet::OpClass;
use lrc::sync::{BarrierId, LockId};
use lrc::vclock::ProcId;

fn p(i: u16) -> ProcId {
    ProcId::new(i)
}

const N: usize = 6;
const PAGE: usize = 512;
const MEM: u64 = 32 * 512;

fn lazy(policy: Policy) -> LrcEngine {
    LrcEngine::new(LrcConfig::new(N, MEM).page_size(PAGE).policy(policy)).unwrap()
}

fn eager(policy: Policy) -> EagerEngine {
    EagerEngine::new(EagerConfig::new(N, MEM).page_size(PAGE).policy(policy)).unwrap()
}

/// Lock row, lazy protocols: 3 messages to find and transfer the lock
/// when requester, home, and grantor are distinct; LI adds nothing.
#[test]
fn lock_cost_li_is_3() {
    let dsm = lazy(Policy::Invalidate);
    let l = LockId::new(0); // home p0
    dsm.acquire(p(1), l).unwrap();
    dsm.write_u64(p(1), 0, 1);
    dsm.release(p(1), l).unwrap();
    let before = dsm.net().snapshot();
    dsm.acquire(p(2), l).unwrap(); // requester p2, home p0, grantor p1
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.class(OpClass::Lock).msgs, 3);
    assert_eq!(
        delta.total().msgs,
        3,
        "invalidations piggyback on the grant"
    );
}

/// Lock row, LU: 3 + 2h with h = other concurrent last modifiers of the
/// acquirer's cached pages (diffs from the grantor ride the grant free).
#[test]
fn lock_cost_lu_is_3_plus_2h() {
    let dsm = lazy(Policy::Update);
    let l = LockId::new(0);
    // p2 caches pages 0 and 1.
    dsm.read_u64(p(2), 0);
    dsm.read_u64(p(2), 512);
    // Two other processors modify those pages under other locks — they are
    // concurrent last modifiers from p2's point of view.
    let l1 = LockId::new(1);
    let l2 = LockId::new(2);
    dsm.acquire(p(3), l1).unwrap();
    dsm.write_u64(p(3), 0, 5);
    dsm.release(p(3), l1).unwrap();
    dsm.acquire(p(4), l2).unwrap();
    dsm.write_u64(p(4), 512, 6);
    dsm.release(p(4), l2).unwrap();
    // p1 serializes behind both (learns their intervals), then releases l.
    dsm.acquire(p(1), l1).unwrap();
    dsm.release(p(1), l1).unwrap();
    dsm.acquire(p(1), l2).unwrap();
    dsm.release(p(1), l2).unwrap();
    dsm.acquire(p(1), l).unwrap();
    dsm.write_u64(p(1), 1024, 7);
    dsm.release(p(1), l).unwrap();
    // p2 acquires l from grantor p1. Notices cover p3's and p4's intervals;
    // the diffs come from h = 2 other concurrent last modifiers.
    let before = dsm.net().snapshot();
    dsm.acquire(p(2), l).unwrap();
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.class(OpClass::Lock).msgs, 3 + 2 * 2, "3 + 2h, h = 2");
}

/// Lock row, eager protocols: 3 messages, nothing else (no consistency
/// actions at acquires).
#[test]
fn lock_cost_eager_is_3() {
    for policy in [Policy::Invalidate, Policy::Update] {
        let dsm = eager(policy);
        let l = LockId::new(0);
        dsm.acquire(p(1), l).unwrap();
        dsm.release(p(1), l).unwrap();
        let before = dsm.net().snapshot();
        dsm.acquire(p(2), l).unwrap();
        let delta = dsm.net().stats().since(&before);
        assert_eq!(delta.total().msgs, 3);
        assert_eq!(delta.class(OpClass::Lock).msgs, 3);
    }
}

/// Unlock row: lazy protocols send nothing; eager protocols send 2c
/// messages (notice/update + ack per other cacher).
#[test]
fn unlock_cost_lazy_0_eager_2c() {
    for policy in [Policy::Invalidate, Policy::Update] {
        let dsm = lazy(policy);
        let l = LockId::new(0);
        dsm.acquire(p(1), l).unwrap();
        dsm.write_u64(p(1), 0, 9);
        let before = dsm.net().snapshot();
        dsm.release(p(1), l).unwrap();
        assert_eq!(dsm.net().stats().since(&before).total().msgs, 0, "{policy}");
    }
    for policy in [Policy::Invalidate, Policy::Update] {
        let dsm = eager(policy);
        // c = 3 other cachers of page 0 (home p0 plus readers p2, p3).
        dsm.read_u64(p(2), 0);
        dsm.read_u64(p(3), 0);
        let l = LockId::new(0);
        dsm.acquire(p(1), l).unwrap();
        dsm.write_u64(p(1), 0, 9);
        let before = dsm.net().snapshot();
        dsm.release(p(1), l).unwrap();
        let delta = dsm.net().stats().since(&before);
        assert_eq!(
            delta.class(OpClass::Unlock).msgs,
            2 * 3,
            "2c with c = 3 ({policy})"
        );
    }
}

/// Miss row, lazy: 2m messages, m = concurrent last modifiers.
#[test]
fn miss_cost_lazy_is_2m() {
    // m = 1: a migratory chain is served by its last modifier alone.
    let dsm = lazy(Policy::Invalidate);
    let l = LockId::new(0);
    for i in 1..=2u16 {
        dsm.acquire(p(i), l).unwrap();
        dsm.write_u64(p(i), 8 * i as u64, i as u64);
        dsm.release(p(i), l).unwrap();
    }
    dsm.acquire(p(3), l).unwrap();
    let before = dsm.net().snapshot();
    dsm.read_u64(p(3), 8);
    assert_eq!(
        dsm.net().stats().since(&before).class(OpClass::Miss).msgs,
        2,
        "m = 1"
    );
    dsm.release(p(3), l).unwrap();

    // m = 2: two concurrent writers of disjoint words (false sharing).
    let dsm = lazy(Policy::Invalidate);
    dsm.read_u64(p(3), 0); // p3 caches the page first
    dsm.write_u64(p(1), 0, 1);
    dsm.write_u64(p(2), 8, 2);
    for i in 0..N as u16 {
        dsm.barrier(p(i), BarrierId::new(0)).unwrap();
    }
    let before = dsm.net().snapshot();
    dsm.read_u64(p(3), 0);
    assert_eq!(
        dsm.net().stats().since(&before).class(OpClass::Miss).msgs,
        4,
        "m = 2"
    );
}

/// Miss row, eager: 2 messages when the directory manager has a valid
/// copy, 3 when it forwards to the owner.
#[test]
fn miss_cost_eager_is_2_or_3() {
    let dsm = eager(Policy::Invalidate);
    // 2 hops: page 0's home (p0) holds the initial copy.
    let before = dsm.net().snapshot();
    dsm.read_u64(p(2), 0);
    assert_eq!(
        dsm.net().stats().since(&before).class(OpClass::Miss).msgs,
        2
    );
    // 3 hops: p1 modifies page 0 under a lock and invalidates everyone;
    // the home no longer has a valid copy, so the request is forwarded.
    let l = LockId::new(0);
    dsm.acquire(p(1), l).unwrap();
    dsm.write_u64(p(1), 0, 5);
    dsm.release(p(1), l).unwrap();
    let before = dsm.net().snapshot();
    dsm.read_u64(p(3), 0);
    assert_eq!(
        dsm.net().stats().since(&before).class(OpClass::Miss).msgs,
        3
    );
}

/// Barrier row: 2(n-1) for LI (everything piggybacks) and EI with a single
/// writer per page (v = 0); 2(n-1) + 2u for the update protocols.
#[test]
fn barrier_cost_all_protocols() {
    let b = BarrierId::new(0);
    // LI: exactly 2(n-1).
    let dsm = lazy(Policy::Invalidate);
    dsm.write_u64(p(1), 0, 1);
    let before = dsm.net().snapshot();
    for i in 0..N as u16 {
        dsm.barrier(p(i), b).unwrap();
    }
    assert_eq!(
        dsm.net()
            .stats()
            .since(&before)
            .class(OpClass::Barrier)
            .msgs,
        2 * (N as u64 - 1),
        "LI: all consistency information piggybacks"
    );

    // LU: 2(n-1) + 2u with u = 2 (two other processors cache the page).
    let dsm = lazy(Policy::Update);
    dsm.read_u64(p(2), 0);
    dsm.read_u64(p(3), 0);
    dsm.read_u64(p(1), 0);
    dsm.write_u64(p(1), 0, 1);
    let before = dsm.net().snapshot();
    for i in 0..N as u16 {
        dsm.barrier(p(i), b).unwrap();
    }
    assert_eq!(
        dsm.net()
            .stats()
            .since(&before)
            .class(OpClass::Barrier)
            .msgs,
        2 * (N as u64 - 1) + 2 * 2,
        "LU: 2(n-1) + 2u"
    );

    // EU: same 2u shape, pushed instead of pulled.
    let dsm = eager(Policy::Update);
    dsm.read_u64(p(2), 0);
    dsm.read_u64(p(3), 0);
    dsm.read_u64(p(1), 0);
    dsm.write_u64(p(1), 0, 1);
    let before = dsm.net().snapshot();
    for i in 0..N as u16 {
        dsm.barrier(p(i), b).unwrap();
    }
    // u = 3: home p0 also caches page 0.
    assert_eq!(
        dsm.net()
            .stats()
            .since(&before)
            .class(OpClass::Barrier)
            .msgs,
        2 * (N as u64 - 1) + 2 * 3,
        "EU: 2(n-1) + 2u"
    );

    // EI: 2(n-1) + 2v, with v = excess invalidators of each page.
    let dsm = eager(Policy::Invalidate);
    dsm.read_u64(p(1), 0);
    dsm.read_u64(p(2), 0);
    dsm.read_u64(p(3), 0);
    dsm.write_u64(p(1), 0, 1);
    dsm.write_u64(p(2), 8, 2);
    dsm.write_u64(p(3), 16, 3);
    let before = dsm.net().snapshot();
    for i in 0..N as u16 {
        dsm.barrier(p(i), b).unwrap();
    }
    assert_eq!(
        dsm.net()
            .stats()
            .since(&before)
            .class(OpClass::Barrier)
            .msgs,
        2 * (N as u64 - 1) + 2 * 2,
        "EI: 2(n-1) + 2v with v = k - 1 = 2 excess invalidators"
    );
}
