//! Smoke test for `examples/quickstart.rs`: the example must run to
//! completion for every protocol label it documents. This guards the
//! facade's public API — the example exercises `DsmBuilder`, handles,
//! locks, barriers, `parallel`, and `net_stats` exactly as the README
//! tells users to.

use std::process::Command;

fn run_quickstart(args: &[&str]) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", "quickstart", "--"])
        .args(args)
        .output()
        .expect("spawn cargo run --example quickstart");
    assert!(
        output.status.success(),
        "quickstart {:?} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        args,
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    // The example prints "counter = N (expected M)"; require the line to
    // exist and be self-consistent without hardcoding the example's
    // PROCS * ROUNDS product here.
    let counter_line = stdout
        .lines()
        .find(|l| l.contains("counter = "))
        .unwrap_or_else(|| panic!("quickstart {args:?} did not reach the counter line:\n{stdout}"));
    let mut nums = counter_line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<u64>().expect("counter line numbers parse"));
    let (got, expected) = (nums.next(), nums.next());
    assert!(
        got.is_some() && got == expected,
        "quickstart {args:?} counter mismatch in {counter_line:?}"
    );
    assert!(
        stdout.contains("network traffic:"),
        "quickstart {args:?} did not print its traffic table:\n{stdout}"
    );
}

#[test]
fn quickstart_example_runs_to_completion() {
    run_quickstart(&[]);
}

#[test]
fn quickstart_example_accepts_every_protocol_label() {
    for label in ["LI", "LU", "EI", "EU"] {
        run_quickstart(&[label]);
    }
}
