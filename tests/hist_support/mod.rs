//! Shared driver for the history-checking conformance suites
//! (`hist_threaded`, `hist_net`, `hist_mutations`): build a runtime DSM,
//! attach a history recorder, run a [`ThreadProgram`] on real threads
//! (locally or through the node runtime), and feed the recorded history
//! to the `lrc-hist` checker. On failure, shrink the program and render a
//! seed-plus-minimized-program report.
#![allow(dead_code)] // each suite uses a subset of the helpers

use std::sync::Arc;
use std::time::Duration;

use lrc::core::ProtocolMutation;
use lrc::dsm::{Dsm, DsmBuilder, ProcHandle, RemoteHandle};
use lrc::hist::{CheckBudget, CheckReport, HistError, History, HistoryRecorder};
use lrc::net::ChannelNet;
use lrc::sim::ProtocolKind;
use lrc::vclock::ProcId;
use lrc::workloads::{HistCmd, ProgramShape, ThreadOp, ThreadProgram};

/// Deadline for every blocking wait: generous for CI, but a lost wake-up
/// fails with a stuck-waiter report instead of hanging the job.
pub const WAIT_TIMEOUT: Duration = Duration::from_secs(120);

/// One protocol × ablation × page-size cell to run a program under.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Protocol.
    pub kind: ProtocolKind,
    /// Page size in bytes (small pages split regions, large pages force
    /// false sharing).
    pub page: usize,
    /// Barrier-time garbage collection (lazy only).
    pub gc: bool,
    /// Disable write-notice piggybacking (lazy only).
    pub no_piggyback: bool,
    /// Ship whole pages on warm misses (lazy only).
    pub full_pages: bool,
    /// Deliberately-broken protocol variant (lazy only).
    pub mutation: ProtocolMutation,
}

impl RunConfig {
    pub fn stock(kind: ProtocolKind, page: usize) -> RunConfig {
        RunConfig {
            kind,
            page,
            gc: false,
            no_piggyback: false,
            full_pages: false,
            mutation: ProtocolMutation::Stock,
        }
    }

    pub fn label(&self) -> String {
        format!(
            "{}@{}{}{}{}{}",
            self.kind,
            self.page,
            if self.gc { " +gc" } else { "" },
            if self.no_piggyback { " -piggyback" } else { "" },
            if self.full_pages { " +full-pages" } else { "" },
            if self.mutation == ProtocolMutation::Stock {
                String::new()
            } else {
                format!(" MUTATION={}", self.mutation)
            },
        )
    }
}

/// A program whose cross-processor data flow is *forced by barriers*:
/// every phase, every processor publishes a slot and reads what everyone
/// published a phase earlier (plus a shared critical section). Thread
/// timing cannot hide a protocol that fails to propagate writes — the
/// happens-before edges demand the data on every run — which is what
/// makes mutation testing deterministic.
pub fn forced_flow_program(n_procs: usize, phases: usize) -> ThreadProgram {
    ThreadProgram {
        n_procs,
        n_locks: 1,
        phases: (0..phases)
            .map(|_| {
                (0..n_procs)
                    .map(|_| {
                        vec![
                            HistCmd::Exchange,
                            HistCmd::Critical {
                                lock: 0,
                                word: 0,
                                span: 2,
                            },
                        ]
                    })
                    .collect()
            })
            .collect(),
    }
}

/// Builds the runtime for a program under a config (recorder not yet
/// attached).
pub fn build_dsm(prog: &ThreadProgram, cfg: &RunConfig) -> Dsm {
    let mut builder = DsmBuilder::new(cfg.kind, prog.n_procs, prog.mem_bytes())
        .page_size(cfg.page)
        .locks(prog.n_locks.max(1))
        .barriers(1)
        .wait_timeout(WAIT_TIMEOUT)
        .mutation(cfg.mutation);
    if cfg.gc {
        builder = builder.gc_at_barriers();
    }
    if cfg.no_piggyback {
        builder = builder.no_piggyback();
    }
    if cfg.full_pages {
        builder = builder.full_page_misses();
    }
    builder.build().expect("program-derived config is valid")
}

/// Runs one processor's script through a local handle.
pub fn run_ops_local(handle: &mut ProcHandle, ops: &[ThreadOp]) {
    for op in ops {
        match op {
            ThreadOp::Acquire(l) => handle.acquire(*l).expect("legal script"),
            ThreadOp::Release(l) => handle.release(*l).expect("legal script"),
            ThreadOp::Read { addr } => {
                let _ = handle.read_u64(*addr);
            }
            ThreadOp::Write { addr, value } => handle.write_u64(*addr, *value),
            ThreadOp::Barrier(b) => handle.barrier(*b).expect("legal script"),
        }
    }
}

/// Runs one processor's script through the node runtime's wire-backed
/// handle.
pub fn run_ops_remote(handle: &mut RemoteHandle, ops: &[ThreadOp]) {
    for op in ops {
        match op {
            ThreadOp::Acquire(l) => handle.acquire(*l).expect("legal script"),
            ThreadOp::Release(l) => handle.release(*l).expect("legal script"),
            ThreadOp::Read { addr } => {
                let _ = handle.read_u64(*addr).expect("legal script");
            }
            ThreadOp::Write { addr, value } => {
                handle.write_u64(*addr, *value).expect("legal script")
            }
            ThreadOp::Barrier(b) => handle.barrier(*b).expect("legal script"),
        }
    }
}

/// Runs the program on real threads (one per processor) through a shared
/// engine and returns the recorded history.
pub fn run_threaded(prog: &ThreadProgram, cfg: &RunConfig) -> History {
    let dsm = build_dsm(prog, cfg);
    let recorder = HistoryRecorder::new(prog.n_procs);
    dsm.attach_recorder(Arc::clone(&recorder));
    dsm.parallel(|proc| {
        run_ops_local(proc, &prog.ops_for(proc.proc()));
        Ok(())
    })
    .expect("threaded run completes");
    recorder.finish()
}

/// Like [`run_threaded`], but records through a 1-in-`sample` read-sampled
/// recorder ([`HistoryRecorder::sampled`]): writes and synchronization are
/// logged in full, reads are thinned. The checker still sees every
/// happens-before edge and every write, so protocol violations that any
/// kept read observes are still rejected.
pub fn run_threaded_sampled(prog: &ThreadProgram, cfg: &RunConfig, sample: u32) -> History {
    let dsm = build_dsm(prog, cfg);
    let recorder = HistoryRecorder::sampled(prog.n_procs, sample);
    dsm.attach_recorder(Arc::clone(&recorder));
    dsm.parallel(|proc| {
        run_ops_local(proc, &prog.ops_for(proc.proc()));
        Ok(())
    })
    .expect("threaded run completes");
    recorder.finish()
}

/// Runs the program through the channel-transport node runtime:
/// processor 0 stays on the engine node, every other processor is hosted
/// by a peer node and drives its operations over the wire. Returns the
/// recorded history (the recorder sits on the engine, so remote
/// operations are logged where they execute).
pub fn run_over_channel_nodes(prog: &ThreadProgram, cfg: &RunConfig) -> History {
    let dsm = build_dsm(prog, cfg);
    let recorder = HistoryRecorder::new(prog.n_procs);
    dsm.attach_recorder(Arc::clone(&recorder));

    let mut mesh = ChannelNet::mesh(2);
    let client_end = mesh.pop().expect("two endpoints");
    let server_end = mesh.pop().expect("two endpoints");
    let server = lrc::dsm::NodeServer::new(dsm.clone(), server_end);
    let serving = std::thread::spawn(move || server.serve());

    let remote_procs: Vec<ProcId> = (1..prog.n_procs).map(|i| ProcId::new(i as u16)).collect();
    let client =
        lrc::dsm::NodeClient::connect(client_end, 0, remote_procs.clone()).expect("connect");

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut local = dsm.handle(ProcId::new(0));
            run_ops_local(&mut local, &prog.ops_for(ProcId::new(0)));
        });
        for &p in &remote_procs {
            let mut remote = client.handle(p);
            let ops = prog.ops_for(p);
            scope.spawn(move || run_ops_remote(&mut remote, &ops));
        }
    });

    client.shutdown().expect("clean shutdown");
    serving
        .join()
        .expect("server thread")
        .expect("server exits cleanly");
    recorder.finish()
}

/// Like [`run_over_channel_nodes`], but the two nodes talk over the
/// readiness-based reactor backend on real loopback sockets: one reactor
/// thread per endpoint owns the connection, frames are staged and flushed
/// in batches, and the recorded history must be exactly as conformant as
/// over any other transport.
#[cfg(feature = "reactor")]
pub fn run_over_reactor_nodes(prog: &ThreadProgram, cfg: &RunConfig) -> History {
    use lrc::net::ReactorTransport;

    let dsm = build_dsm(prog, cfg);
    let recorder = HistoryRecorder::new(prog.n_procs);
    dsm.attach_recorder(Arc::clone(&recorder));

    let hub = ReactorTransport::bind("127.0.0.1:0", 0).expect("bind loopback");
    let addr = hub.local_addr();
    let connecting =
        std::thread::spawn(move || ReactorTransport::connect(&addr, 1, 0).expect("connect"));
    let server_end = hub.accept(1).expect("accept");
    let client_end = connecting.join().expect("connect thread");

    let server = lrc::dsm::NodeServer::new(dsm.clone(), server_end);
    let serving = std::thread::spawn(move || server.serve());

    let remote_procs: Vec<ProcId> = (1..prog.n_procs).map(|i| ProcId::new(i as u16)).collect();
    let client =
        lrc::dsm::NodeClient::connect(client_end, 0, remote_procs.clone()).expect("connect");

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut local = dsm.handle(ProcId::new(0));
            run_ops_local(&mut local, &prog.ops_for(ProcId::new(0)));
        });
        for &p in &remote_procs {
            let mut remote = client.handle(p);
            let ops = prog.ops_for(p);
            scope.spawn(move || run_ops_remote(&mut remote, &ops));
        }
    });

    client.shutdown().expect("clean shutdown");
    serving
        .join()
        .expect("server thread")
        .expect("server exits cleanly");
    recorder.finish()
}

/// Runs and checks in one step.
pub fn run_and_check(
    prog: &ThreadProgram,
    cfg: &RunConfig,
) -> (History, Result<CheckReport, HistError>) {
    let hist = run_threaded(prog, cfg);
    let verdict = hist.check(&CheckBudget::default());
    (hist, verdict)
}

/// The failure report the suites print: reproducing seed, config, checker
/// error, the (minimized) program, and the recorded history.
pub fn failure_report(
    seed: u64,
    cfg: &RunConfig,
    prog: &ThreadProgram,
    err: &HistError,
    hist: &History,
) -> String {
    format!(
        "history conformance failure\n\
         reproducing seed: {seed}\n\
         config: {}\n\
         error: {err}\n\
         minimized program:\n{}\
         recorded history:\n{}",
        cfg.label(),
        prog.render(),
        hist.render(24),
    )
}

/// Checks one seeded program under one config; on failure, shrinks the
/// program (against a fails-twice-in-a-row oracle, so timing-dependent
/// candidates don't survive) and panics with the seed + minimized trace.
pub fn check_seed_threaded(seed: u64, shape: &ProgramShape, cfg: &RunConfig) {
    let prog = ThreadProgram::generate(seed, shape);
    let (hist, verdict) = run_and_check(&prog, cfg);
    let Err(err) = verdict else { return };
    let fails_twice = |p: &ThreadProgram| {
        (0..2).all(|_| run_threaded(p, cfg).check(&CheckBudget::default()).is_err())
    };
    if !fails_twice(&prog) {
        // Not deterministic enough to shrink: report the original run.
        panic!("{}", failure_report(seed, cfg, &prog, &err, &hist));
    }
    let min = prog.shrink(fails_twice);
    match run_and_check(&min, cfg) {
        (min_hist, Err(min_err)) => {
            panic!("{}", failure_report(seed, cfg, &min, &min_err, &min_hist))
        }
        // The confirming re-run of the minimized program happened to
        // pass (timing): report the original failing run instead of
        // pairing its error with a passing history.
        _ => panic!("{}", failure_report(seed, cfg, &prog, &err, &hist)),
    }
}
