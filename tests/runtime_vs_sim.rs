//! The runtime DSM and the trace-driven simulator run the *same protocol
//! engines*; driving the runtime through a trace's event sequence must
//! therefore produce byte-identical network statistics to the simulator's
//! replay. This pins the two halves of the system together: a protocol
//! change that affects one but not the other is a bug.

use lrc::dsm::DsmBuilder;
use lrc::sim::{run_trace, synth_write_bytes, ProtocolKind, SimOptions};
use lrc::trace::{Op, Trace};
use lrc::workloads::micro::{migratory, producer_consumer};
use lrc::workloads::{AppKind, Scale};

/// Replays a trace through runtime handles, sequentially on one thread
/// (the same global order the simulator uses), writing identical bytes.
fn replay_through_runtime(
    trace: &Trace,
    kind: ProtocolKind,
    page: usize,
    options: &SimOptions,
) -> lrc::simnet::NetStats {
    let meta = trace.meta();
    let mut builder = DsmBuilder::new(kind, meta.n_procs(), meta.mem_bytes())
        .page_size(page)
        .locks(meta.n_locks().max(1))
        .barriers(meta.n_barriers().max(1));
    if !options.piggyback_notices {
        builder = builder.no_piggyback();
    }
    if options.full_page_misses {
        builder = builder.full_page_misses();
    }
    if options.gc_at_barriers {
        builder = builder.gc_at_barriers();
    }
    let dsm = builder.build().expect("valid config");
    let mut handles: Vec<_> = (0..meta.n_procs())
        .map(|i| dsm.handle(lrc::vclock::ProcId::new(i as u16)))
        .collect();
    for (i, event) in trace.events().iter().enumerate() {
        let h = &mut handles[event.proc.index()];
        match event.op {
            Op::Read { addr, len } => {
                let mut buf = vec![0u8; len as usize];
                h.read_bytes(addr, &mut buf);
            }
            Op::Write { addr, len } => {
                h.write_bytes(addr, &synth_write_bytes(i, len as usize));
            }
            Op::Acquire(l) => h.acquire(l).expect("legal trace"),
            Op::Release(l) => h.release(l).expect("legal trace"),
            // Sequential replay: a barrier would block until all arrive,
            // but arrivals are consecutive in a legal trace, and the last
            // arrival completes the episode before any waiting would
            // happen... except the earlier arrivals *would* block. So
            // barriers go through the engine directly in trace order —
            // the runtime wraps the same call.
            Op::Barrier(_) => unreachable!("barrier-free traces only in this test"),
        }
    }
    dsm.net_stats()
}

#[test]
fn runtime_equals_simulator_on_lock_workloads() {
    for (name, trace) in [
        ("migratory", migratory(4, 30, 16)),
        ("producer_consumer", producer_consumer(4, 20, 8)),
    ] {
        for kind in ProtocolKind::ALL {
            for page in [512usize, 4096] {
                let sim = run_trace(&trace, kind, page, &SimOptions::fast()).unwrap();
                let runtime = replay_through_runtime(&trace, kind, page, &SimOptions::fast());
                assert_eq!(
                    sim.net, runtime,
                    "{name}/{kind}@{page}: runtime and simulator disagree"
                );
            }
        }
    }
}

/// The runtime and simulator must also agree under every lazy-protocol
/// ablation: piggybacking off, full-page misses, and their combination —
/// for both data-movement policies. (Garbage collection is crossed in by
/// the threaded barrier test below and the random-program sweeps; these
/// lock workloads are barrier-free, so `gc_at_barriers` never fires here.)
#[test]
fn runtime_equals_simulator_under_ablations() {
    let trace = migratory(4, 24, 16);
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        for piggyback in [true, false] {
            for full_pages in [true, false] {
                let options = SimOptions {
                    piggyback_notices: piggyback,
                    full_page_misses: full_pages,
                    ..SimOptions::fast()
                };
                let sim = run_trace(&trace, kind, 512, &options).unwrap();
                let runtime = replay_through_runtime(&trace, kind, 512, &options);
                assert_eq!(
                    sim.net, runtime,
                    "{kind} piggyback={piggyback} full_pages={full_pages}: \
                     runtime and simulator disagree"
                );
            }
        }
    }
}

/// Threaded (non-sequential) executions still produce *some* legal
/// interleaving: totals differ run to run, but the protocol invariants
/// hold and traffic is nonzero for contended workloads.
#[test]
fn threaded_runs_remain_consistent() {
    let trace = AppKind::Cholesky.generate(&Scale::small(4));
    // The trace itself isn't replayed here; it just sizes the comparison:
    // a threaded run of similar work produces traffic of the same order.
    let sim = run_trace(
        &trace,
        ProtocolKind::LazyInvalidate,
        1024,
        &SimOptions::fast(),
    )
    .unwrap();
    assert!(sim.messages() > 0);

    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 4, 1 << 16)
        .page_size(1024)
        .locks(4)
        .build()
        .unwrap();
    let lock = lrc::sync::LockId::new(0);
    dsm.parallel(|proc| {
        for i in 0..50u64 {
            proc.acquire(lock)?;
            let v = proc.read_u64(8 * (i % 16));
            proc.write_u64(8 * (i % 16), v + 1);
            proc.release(lock)?;
            std::thread::yield_now();
        }
        Ok(())
    })
    .unwrap();
    let stats = dsm.net_stats();
    let lock_msgs = stats.class(lrc::simnet::OpClass::Lock).msgs;
    assert!(lock_msgs > 0, "contended locks must migrate");
    assert_eq!(
        stats.class(lrc::simnet::OpClass::Unlock).msgs,
        0,
        "lazy releases stay local even under threads"
    );
}

/// Threaded barrier phases under gc_at_barriers × both lazy policies: the
/// runtime must complete every episode (no lost wakeups), data written
/// before each barrier must be visible after it, and barrier traffic stays
/// at the paper's 2(n-1) messages per episode plus the policy's diff
/// round trips.
#[test]
fn threaded_barrier_phases_conform_under_gc_and_policies() {
    const PROCS: usize = 4;
    const EPISODES: u64 = 12;
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        for gc in [false, true] {
            let mut builder = DsmBuilder::new(kind, PROCS, 1 << 16)
                .page_size(512)
                .barriers(1);
            if gc {
                builder = builder.gc_at_barriers();
            }
            let dsm = builder.build().unwrap();
            let barrier = lrc::sync::BarrierId::new(0);
            dsm.parallel(|proc| {
                let me = proc.proc().index() as u64;
                for round in 0..EPISODES {
                    // Phase write: each processor owns one word per round.
                    proc.write_u64(8 * me, round * 100 + me);
                    proc.barrier(barrier)?;
                    // Phase read: everyone sees everyone's phase write.
                    for other in 0..PROCS as u64 {
                        assert_eq!(
                            proc.read_u64(8 * other),
                            round * 100 + other,
                            "{kind} gc={gc}: stale read after barrier"
                        );
                    }
                    proc.barrier(barrier)?;
                }
                Ok(())
            })
            .unwrap();
            let stats = dsm.net_stats();
            let barrier_msgs = stats.class(lrc::simnet::OpClass::Barrier).msgs;
            let floor = 2 * EPISODES * 2 * (PROCS as u64 - 1);
            assert!(
                barrier_msgs >= floor,
                "{kind} gc={gc}: {barrier_msgs} barrier msgs < 2(n-1) per episode"
            );
        }
    }
}
