//! Mutation testing of the verification stack: deliberately-broken
//! protocol variants (`lrc_core::ProtocolMutation`) must be *rejected* by
//! the history checker, on every run, while the stock protocol passes the
//! same programs. A checker that cannot tell a broken protocol from a
//! working one proves nothing — this suite is the checker's own test.
//!
//! The programs force cross-processor data flow through barriers (the
//! exchange pattern), so rejection does not depend on thread timing.

mod hist_support;

use hist_support::{
    failure_report, forced_flow_program, run_and_check, run_threaded, run_threaded_sampled,
    RunConfig,
};
use lrc::core::ProtocolMutation;
use lrc::hist::{CheckBudget, HistError};
use lrc::sim::ProtocolKind;
use lrc::workloads::{HistCmd, ProgramShape, ThreadProgram};

fn broken(kind: ProtocolKind, page: usize, mutation: ProtocolMutation) -> RunConfig {
    RunConfig {
        mutation,
        ..RunConfig::stock(kind, page)
    }
}

/// Skipping twin-diffing at interval close (writes silently never
/// propagate) is rejected under both lazy policies and both page-size
/// regimes, every time.
#[test]
fn skip_twin_diff_is_rejected() {
    let prog = forced_flow_program(3, 3);
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        for page in [256usize, 1024] {
            let cfg = broken(kind, page, ProtocolMutation::SkipTwinDiff);
            let (_, verdict) = run_and_check(&prog, &cfg);
            let err = verdict.expect_err("skip-twin-diff must be rejected");
            assert!(
                matches!(
                    err,
                    HistError::Unjustified { .. } | HistError::NoWitness { .. }
                ),
                "{}: unexpected rejection {err}",
                cfg.label()
            );
        }
    }
}

/// Dropping write notices (stale copies stay valid) is rejected under
/// both lazy policies, every time.
#[test]
fn drop_notices_is_rejected() {
    let prog = forced_flow_program(3, 3);
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        for page in [256usize, 1024] {
            let cfg = broken(kind, page, ProtocolMutation::DropNotices);
            let (_, verdict) = run_and_check(&prog, &cfg);
            let err = verdict.expect_err("drop-notices must be rejected");
            assert!(
                matches!(
                    err,
                    HistError::Unjustified { .. } | HistError::NoWitness { .. }
                ),
                "{}: unexpected rejection {err}",
                cfg.label()
            );
        }
    }
}

/// Applying fetch plans built against an outdated store snapshot without
/// revalidating (the failure mode the versioned-snapshot slow paths
/// guard against: pages finalized as current while missing their newest
/// diff) is rejected under both lazy policies and both page-size regimes,
/// every time — checker-guided stress for exactly the hazard the
/// protocol-mutex split introduced.
#[test]
fn stale_snapshot_apply_is_rejected() {
    let prog = forced_flow_program(3, 3);
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        for page in [256usize, 1024] {
            let cfg = broken(kind, page, ProtocolMutation::StaleSnapshotApply);
            let (_, verdict) = run_and_check(&prog, &cfg);
            let err = verdict.expect_err("stale-snapshot-apply must be rejected");
            assert!(
                matches!(
                    err,
                    HistError::Unjustified { .. } | HistError::NoWitness { .. }
                ),
                "{}: unexpected rejection {err}",
                cfg.label()
            );
        }
    }
}

/// Applying a fetched interval's diffs in reverse happens-before order
/// (older diffs clobber newer ones wherever writes overlap) is rejected
/// under both lazy policies and both page-size regimes, every time. The
/// forced-flow program's shared critical section makes every processor
/// rewrite the same words each phase, so ordering matters on every run.
#[test]
fn wrong_diff_order_is_rejected() {
    let prog = forced_flow_program(3, 3);
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        for page in [256usize, 1024] {
            let cfg = broken(kind, page, ProtocolMutation::WrongDiffOrder);
            let (_, verdict) = run_and_check(&prog, &cfg);
            let err = verdict.expect_err("wrong-diff-order must be rejected");
            assert!(
                matches!(
                    err,
                    HistError::Unjustified { .. } | HistError::NoWitness { .. }
                ),
                "{}: unexpected rejection {err}",
                cfg.label()
            );
        }
    }
}

/// A barrier master that computes each processor's exit notices against
/// that processor's *own* knowledge instead of the merged episode clock
/// (so notices covered by other processors' contributions are silently
/// dropped) is rejected under both lazy policies and both page-size
/// regimes, every time.
#[test]
fn dropped_clock_merge_is_rejected() {
    let prog = forced_flow_program(3, 3);
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        for page in [256usize, 1024] {
            let cfg = broken(kind, page, ProtocolMutation::DroppedClockMerge);
            let (_, verdict) = run_and_check(&prog, &cfg);
            let err = verdict.expect_err("dropped-clock-merge must be rejected");
            assert!(
                matches!(
                    err,
                    HistError::Unjustified { .. } | HistError::NoWitness { .. }
                ),
                "{}: unexpected rejection {err}",
                cfg.label()
            );
        }
    }
}

/// A lock grant that understates the acquirer's prior knowledge by one
/// interval (so the releaser ships one notice batch too few) is rejected
/// under both lazy policies and both page-size regimes, every time — the
/// forced-flow program's critical section moves data on every hand-off.
#[test]
fn stale_grant_knowledge_is_rejected() {
    let prog = forced_flow_program(3, 3);
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        for page in [256usize, 1024] {
            let cfg = broken(kind, page, ProtocolMutation::StaleGrantKnowledge);
            let (_, verdict) = run_and_check(&prog, &cfg);
            let err = verdict.expect_err("stale-grant-knowledge must be rejected");
            assert!(
                matches!(
                    err,
                    HistError::Unjustified { .. } | HistError::NoWitness { .. }
                ),
                "{}: unexpected rejection {err}",
                cfg.label()
            );
        }
    }
}

/// Read-sampled recording (1-in-N) still rejects a broken protocol: the
/// forced-flow program reads the flowed data often enough that even a
/// thinned observation set contains an unjustifiable read, while the
/// stock protocol passes the same sampled recording.
#[test]
fn sampled_recording_still_rejects_skip_twin_diff() {
    let prog = forced_flow_program(3, 3);
    let cfg = broken(
        ProtocolKind::LazyInvalidate,
        256,
        ProtocolMutation::SkipTwinDiff,
    );
    for sample in [2u32, 3] {
        let hist = run_threaded_sampled(&prog, &cfg, sample);
        let err = hist
            .check(&CheckBudget::default())
            .expect_err("sampled skip-twin-diff must be rejected");
        assert!(
            matches!(
                err,
                HistError::Unjustified { .. } | HistError::NoWitness { .. }
            ),
            "{} sample=1/{sample}: unexpected rejection {err}",
            cfg.label()
        );
        // The same sampled recording of the *stock* protocol passes: the
        // rejection above is the mutation's fault, not the sampling's.
        let stock = RunConfig::stock(ProtocolKind::LazyInvalidate, 256);
        let verdict = run_threaded_sampled(&prog, &stock, sample).check(&CheckBudget::default());
        if let Err(err) = verdict {
            panic!("stock run under 1/{sample} sampling rejected: {err}");
        }
    }
}

/// The same forced-flow program passes under every *stock* protocol —
/// the rejections above are the mutations' fault, not the program's.
#[test]
fn stock_protocols_pass_the_forced_flow_program() {
    let prog = forced_flow_program(3, 3);
    for kind in ProtocolKind::ALL {
        for page in [256usize, 1024] {
            let cfg = RunConfig::stock(kind, page);
            let (hist, verdict) = run_and_check(&prog, &cfg);
            if let Err(err) = verdict {
                panic!("{}", failure_report(0, &cfg, &prog, &err, &hist));
            }
        }
    }
}

/// Random seeded programs also catch the mutations (the exchange pattern
/// appears with weight 1/9, and lock-handoff data flow catches the rest):
/// a broken protocol must not survive a seed sweep.
#[test]
fn seeded_programs_catch_each_mutation() {
    let shape = ProgramShape {
        phases: 3,
        max_cmds: 5,
        ..ProgramShape::default()
    };
    for mutation in [
        ProtocolMutation::SkipTwinDiff,
        ProtocolMutation::DropNotices,
        ProtocolMutation::StaleSnapshotApply,
    ] {
        let cfg = broken(ProtocolKind::LazyInvalidate, 256, mutation);
        let rejected = (0..6u64)
            .filter(|&seed| {
                let prog = ThreadProgram::generate(seed, &shape);
                run_and_check(&prog, &cfg).1.is_err()
            })
            .count();
        assert!(
            rejected >= 4,
            "{mutation}: only {rejected}/6 seeds rejected — the checker is \
             too weak to catch this mutation reliably"
        );
    }
}

/// A mutation failure shrinks to a minimal reproducer and renders the
/// seed-plus-minimized-trace report the suites print on failure.
#[test]
fn mutation_failures_shrink_to_a_seed_report() {
    const SEED: u64 = 4242;
    let shape = ProgramShape {
        phases: 2,
        max_cmds: 4,
        ..ProgramShape::default()
    };
    let cfg = broken(
        ProtocolKind::LazyInvalidate,
        256,
        ProtocolMutation::SkipTwinDiff,
    );
    // Seeded program with a guaranteed deterministic core: one exchange
    // per processor per phase rides along with whatever the seed drew.
    let mut prog = ThreadProgram::generate(SEED, &shape);
    for phase in &mut prog.phases {
        for cmds in phase.iter_mut() {
            cmds.push(HistCmd::Exchange);
        }
    }
    let fails_twice = |p: &ThreadProgram| {
        (0..2).all(|_| {
            run_threaded(p, &cfg)
                .check(&CheckBudget::default())
                .is_err()
        })
    };
    assert!(fails_twice(&prog), "mutation must fail deterministically");

    let min = prog.shrink(fails_twice);
    assert!(
        min.cmd_count() < prog.cmd_count(),
        "shrinking removed nothing ({} commands)",
        min.cmd_count()
    );

    // The minimized program still fails, and the report names everything
    // a reader needs to reproduce: seed, config (with the mutation), the
    // program listing, and the checker's diagnosis.
    let (hist, err) = (0..3)
        .find_map(|_| {
            let (hist, verdict) = run_and_check(&min, &cfg);
            verdict.err().map(|e| (hist, e))
        })
        .expect("minimized program keeps failing");
    let report = failure_report(SEED, &cfg, &min, &err, &hist);
    assert!(report.contains("reproducing seed: 4242"), "{report}");
    assert!(report.contains("MUTATION=skip-twin-diff"), "{report}");
    assert!(report.contains("minimized program"), "{report}");
    assert!(report.contains("recorded history"), "{report}");
}
