//! Conformance: the message-passing node runtime must be *indistinguishable*
//! from the single-threaded simulator.
//!
//! A replayed program whose processors are split across nodes — every
//! remote operation serialized into a wire frame, moved by the channel
//! transport, decoded, and dispatched into the engine — must produce
//! **byte-identical protocol counters and final memory** versus the same
//! trace replayed directly through the engine. This pins the whole new
//! layer (codec + transport + node dispatch) to the protocol semantics: a
//! message that is lost, reordered, misdecoded, or dispatched against the
//! wrong processor shows up as a diverging counter or byte.

use lrc::dsm::{DsmBuilder, NodeClient, NodeServer, ProcHandle, RemoteHandle};
use lrc::net::ChannelNet;
use lrc::sim::{synth_write_bytes, AnyEngine, EngineParams, ProtocolKind, SimOptions};
use lrc::simnet::NetStats;
use lrc::trace::{Op, Trace};
use lrc::vclock::ProcId;
use lrc::workloads::micro::{migratory, producer_consumer};

fn params_for(trace: &Trace, page: usize, options: &SimOptions) -> EngineParams {
    let meta = trace.meta();
    EngineParams {
        n_procs: meta.n_procs(),
        mem_bytes: meta.mem_bytes(),
        page_bytes: page,
        n_locks: meta.n_locks().max(1),
        n_barriers: meta.n_barriers().max(1),
        piggyback_notices: options.piggyback_notices,
        full_page_misses: options.full_page_misses,
        gc_at_barriers: options.gc_at_barriers,
        ..EngineParams::default()
    }
}

/// Reads the full shared space as processor 0 in page-sized chunks.
fn read_all(read: &mut dyn FnMut(u64, &mut [u8]), total: u64, page: usize) -> Vec<u8> {
    let mut mem = vec![0u8; total as usize];
    for (i, chunk) in mem.chunks_mut(page).enumerate() {
        read(i as u64 * page as u64, chunk);
    }
    mem
}

/// The reference: a direct single-threaded engine replay (what
/// `lrc::sim::run_trace` does), returning final stats and memory.
fn sim_replay(
    trace: &Trace,
    kind: ProtocolKind,
    page: usize,
    options: &SimOptions,
) -> (NetStats, Vec<u8>) {
    let engine = AnyEngine::build(kind, &params_for(trace, page, options)).expect("valid config");
    let p0 = ProcId::new(0);
    for (i, event) in trace.events().iter().enumerate() {
        let p = event.proc;
        match event.op {
            Op::Read { addr, len } => {
                let mut buf = vec![0u8; len as usize];
                engine.read_into(p, addr, &mut buf);
            }
            Op::Write { addr, len } => engine.write(p, addr, &synth_write_bytes(i, len as usize)),
            Op::Acquire(l) => engine.acquire(p, l).expect("legal trace"),
            Op::Release(l) => engine.release(p, l).expect("legal trace"),
            Op::Barrier(b) => {
                engine.barrier(p, b).expect("legal trace");
            }
        }
    }
    let stats = engine.net_stats();
    let total = engine.space().total_bytes();
    let mem = read_all(
        &mut |addr, buf| engine.read_into(p0, addr, buf),
        total,
        page,
    );
    (stats, mem)
}

/// The system under test over the channel transport (the default mesh).
fn node_replay(
    trace: &Trace,
    kind: ProtocolKind,
    page: usize,
    options: &SimOptions,
    n_remote: usize,
) -> (NetStats, Vec<u8>, lrc::net::WireStats) {
    let mut mesh = ChannelNet::mesh(2);
    let client_end = mesh.pop().unwrap();
    let server_end = mesh.pop().unwrap();
    node_replay_over(trace, kind, page, options, n_remote, server_end, client_end)
}

/// The system under test: the same trace, but the last `n_remote`
/// processors live on a second node and act through the wire — over
/// whichever [`lrc::net::Transport`] pair the caller built, so the same
/// conformance sweep pins every backend (channel, thread-per-peer TCP,
/// reactor) to the simulator.
fn node_replay_over(
    trace: &Trace,
    kind: ProtocolKind,
    page: usize,
    options: &SimOptions,
    n_remote: usize,
    server_end: impl lrc::net::Transport + 'static,
    client_end: impl lrc::net::Transport + 'static,
) -> (NetStats, Vec<u8>, lrc::net::WireStats) {
    let meta = trace.meta();
    let n = meta.n_procs();
    assert!(n_remote < n, "processor 0 stays on the engine node");
    let local_count = n - n_remote;

    let mut builder = DsmBuilder::new(kind, n, meta.mem_bytes())
        .page_size(page)
        .locks(meta.n_locks().max(1))
        .barriers(meta.n_barriers().max(1));
    if !options.piggyback_notices {
        builder = builder.no_piggyback();
    }
    if options.full_page_misses {
        builder = builder.full_page_misses();
    }
    if options.gc_at_barriers {
        builder = builder.gc_at_barriers();
    }
    let dsm = builder.build().expect("valid config");

    let server = NodeServer::new(dsm.clone(), server_end);
    let serving = std::thread::spawn(move || server.serve());

    let remote_procs: Vec<ProcId> = (local_count..n).map(|i| ProcId::new(i as u16)).collect();
    let client = NodeClient::connect(client_end, 0, remote_procs.clone()).expect("connect");
    let mut locals: Vec<ProcHandle> = (0..local_count)
        .map(|i| dsm.handle(ProcId::new(i as u16)))
        .collect();
    let mut remotes: Vec<RemoteHandle> = remote_procs.iter().map(|&p| client.handle(p)).collect();

    for (i, event) in trace.events().iter().enumerate() {
        let pi = event.proc.index();
        if pi < local_count {
            let h = &mut locals[pi];
            match event.op {
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; len as usize];
                    h.read_bytes(addr, &mut buf);
                }
                Op::Write { addr, len } => h.write_bytes(addr, &synth_write_bytes(i, len as usize)),
                Op::Acquire(l) => h.acquire(l).expect("legal trace"),
                Op::Release(l) => h.release(l).expect("legal trace"),
                Op::Barrier(_) => unreachable!("barrier-free traces in sequential replays"),
            }
        } else {
            let h = &mut remotes[pi - local_count];
            match event.op {
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; len as usize];
                    h.read_bytes(addr, &mut buf).expect("remote read");
                }
                Op::Write { addr, len } => h
                    .write_bytes(addr, &synth_write_bytes(i, len as usize))
                    .expect("remote write"),
                Op::Acquire(l) => h.acquire(l).expect("remote acquire"),
                Op::Release(l) => h.release(l).expect("remote release"),
                Op::Barrier(_) => unreachable!("barrier-free traces in sequential replays"),
            }
        }
    }
    let stats = dsm.net_stats();
    // Same readback as the reference (page-rounded space), through the
    // local p0 handle.
    let total = lrc::pagemem::AddrSpace::with_capacity(
        lrc::pagemem::PageSize::new(page).expect("valid page size"),
        meta.mem_bytes(),
    )
    .total_bytes();
    let p0 = &mut locals[0];
    let mem = read_all(&mut |addr, buf| p0.read_bytes(addr, buf), total, page);
    let wire = client.wire_stats();
    client.shutdown().expect("clean shutdown");
    serving.join().unwrap().expect("server exits cleanly");
    (stats, mem, wire)
}

#[test]
fn node_runtime_equals_simulator_on_lock_workloads() {
    for (name, trace) in [
        ("migratory", migratory(4, 30, 16)),
        ("producer_consumer", producer_consumer(4, 20, 8)),
    ] {
        for kind in ProtocolKind::ALL {
            for page in [512usize, 4096] {
                for n_remote in [1usize, 3] {
                    let (sim_stats, sim_mem) = sim_replay(&trace, kind, page, &SimOptions::fast());
                    let (node_stats, node_mem, wire) =
                        node_replay(&trace, kind, page, &SimOptions::fast(), n_remote);
                    assert_eq!(
                        sim_stats, node_stats,
                        "{name}/{kind}@{page} remote={n_remote}: protocol counters diverge"
                    );
                    assert_eq!(
                        sim_mem, node_mem,
                        "{name}/{kind}@{page} remote={n_remote}: final memory diverges"
                    );
                    assert!(
                        wire.bytes_sent > 0,
                        "{name}/{kind}@{page}: remote operations really used the wire"
                    );
                }
            }
        }
    }
}

/// The lazy ablations must conform too: the wire layer is protocol
/// agnostic, so flipping engine knobs must never desynchronize it.
#[test]
fn node_runtime_conforms_under_ablations() {
    let trace = migratory(4, 24, 16);
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        for piggyback in [true, false] {
            for full_pages in [true, false] {
                let options = SimOptions {
                    piggyback_notices: piggyback,
                    full_page_misses: full_pages,
                    ..SimOptions::fast()
                };
                let (sim_stats, sim_mem) = sim_replay(&trace, kind, 512, &options);
                let (node_stats, node_mem, _) = node_replay(&trace, kind, 512, &options, 2);
                assert_eq!(
                    sim_stats, node_stats,
                    "{kind} piggyback={piggyback} full_pages={full_pages}: counters diverge"
                );
                assert_eq!(sim_mem, node_mem, "{kind}: memory diverges");
            }
        }
    }
}

/// Request/reply accounting of the op plane: every remote operation costs
/// exactly one request and one reply frame, plus the hello and shutdown.
#[test]
fn op_plane_message_accounting_is_exact() {
    let trace = migratory(4, 10, 8);
    let remote_ops = trace
        .events()
        .iter()
        .filter(|e| e.proc.index() >= 2)
        .count() as u64;
    let (_, _, wire) = node_replay(
        &trace,
        ProtocolKind::LazyInvalidate,
        512,
        &SimOptions::fast(),
        2,
    );
    // The snapshot is taken before the shutdown frame goes out.
    assert_eq!(
        wire.msgs_sent,
        remote_ops + 1,
        "hello + one request per remote op"
    );
    assert_eq!(wire.msgs_received, remote_ops, "one reply per remote op");
}

/// Threaded execution across nodes: local threads and remote handles run
/// concurrently against one engine, with contended locks and barriers.
/// Totals vary run to run, but the protocol invariants hold: no lost
/// increments, barrier phases see each other's writes, and the lazy
/// release stays local.
#[test]
fn threaded_nodes_with_locks_and_barriers_stay_consistent() {
    const PROCS: usize = 4;
    const REMOTE: usize = 2;
    const ROUNDS: u64 = 15;
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, PROCS, 1 << 16)
        .page_size(512)
        .locks(2)
        .barriers(1)
        .build()
        .unwrap();
    let mut mesh = ChannelNet::mesh(2);
    let client_end = mesh.pop().unwrap();
    let server_end = mesh.pop().unwrap();
    let server = NodeServer::new(dsm.clone(), server_end);
    let serving = std::thread::spawn(move || server.serve());
    let remote_procs: Vec<ProcId> = (PROCS - REMOTE..PROCS)
        .map(|i| ProcId::new(i as u16))
        .collect();
    let client = NodeClient::connect(client_end, 0, remote_procs.clone()).unwrap();

    std::thread::scope(|scope| {
        let lock = lrc::sync::LockId::new(0);
        let barrier = lrc::sync::BarrierId::new(0);
        for i in 0..PROCS - REMOTE {
            let mut h = dsm.handle(ProcId::new(i as u16));
            scope.spawn(move || {
                let me = h.proc().index() as u64;
                for round in 0..ROUNDS {
                    h.write_u64(1024 + 8 * me, round);
                    h.barrier(barrier).unwrap();
                    for other in 0..PROCS as u64 {
                        assert_eq!(h.read_u64(1024 + 8 * other), round, "stale phase data");
                    }
                    h.acquire(lock).unwrap();
                    let v = h.read_u64(0);
                    h.write_u64(0, v + 1);
                    h.release(lock).unwrap();
                    h.barrier(barrier).unwrap();
                }
            });
        }
        for &p in &remote_procs {
            let mut h = client.handle(p);
            scope.spawn(move || {
                let me = h.proc().index() as u64;
                for round in 0..ROUNDS {
                    h.write_u64(1024 + 8 * me, round).unwrap();
                    h.barrier(barrier).unwrap();
                    for other in 0..PROCS as u64 {
                        assert_eq!(
                            h.read_u64(1024 + 8 * other).unwrap(),
                            round,
                            "stale phase data over the wire"
                        );
                    }
                    h.acquire(lock).unwrap();
                    let v = h.read_u64(0).unwrap();
                    h.write_u64(0, v + 1).unwrap();
                    h.release(lock).unwrap();
                    h.barrier(barrier).unwrap();
                }
            });
        }
    });

    let mut reader = dsm.handle(ProcId::new(0));
    reader.acquire(lrc::sync::LockId::new(0)).unwrap();
    assert_eq!(
        reader.read_u64(0),
        PROCS as u64 * ROUNDS,
        "lock-guarded counter lost increments across nodes"
    );
    reader.release(lrc::sync::LockId::new(0)).unwrap();
    let stats = dsm.net_stats();
    assert_eq!(
        stats.class(lrc::simnet::OpClass::Unlock).msgs,
        0,
        "lazy releases stay local even across nodes"
    );
    client.shutdown().unwrap();
    serving.join().unwrap().unwrap();
}

/// A connected loopback (hub, spoke) pair of reactor transports: the hub
/// is node 0 (where the engine lives), the spoke node 1.
#[cfg(feature = "reactor")]
fn reactor_pair() -> (lrc::net::ReactorTransport, lrc::net::ReactorTransport) {
    use lrc::net::ReactorTransport;
    let hub = ReactorTransport::bind("127.0.0.1:0", 0).expect("bind loopback");
    let addr = hub.local_addr();
    let connecting =
        std::thread::spawn(move || ReactorTransport::connect(&addr, 1, 0).expect("connect"));
    let server_end = hub.accept(1).expect("accept");
    (server_end, connecting.join().expect("connect thread"))
}

/// The reactor backend is *indistinguishable* too: the same traces over
/// real loopback sockets owned by one reactor thread per endpoint produce
/// byte-identical protocol counters and final memory versus the
/// single-threaded simulator — and hence versus the channel and
/// thread-per-peer TCP backends pinned by the sweep above.
#[cfg(feature = "reactor")]
#[test]
fn reactor_backend_equals_simulator_on_lock_workloads() {
    for (name, trace) in [
        ("migratory", migratory(4, 30, 16)),
        ("producer_consumer", producer_consumer(4, 20, 8)),
    ] {
        for kind in ProtocolKind::ALL {
            for n_remote in [1usize, 3] {
                let (sim_stats, sim_mem) = sim_replay(&trace, kind, 512, &SimOptions::fast());
                let (server_end, client_end) = reactor_pair();
                let (node_stats, node_mem, wire) = node_replay_over(
                    &trace,
                    kind,
                    512,
                    &SimOptions::fast(),
                    n_remote,
                    server_end,
                    client_end,
                );
                assert_eq!(
                    sim_stats, node_stats,
                    "{name}/{kind} remote={n_remote}: protocol counters diverge over the reactor"
                );
                assert_eq!(
                    sim_mem, node_mem,
                    "{name}/{kind} remote={n_remote}: final memory diverges over the reactor"
                );
                assert!(
                    wire.bytes_sent > 0,
                    "{name}/{kind}: remote operations really used the socket"
                );
            }
        }
    }
}

/// Byte accounting stays exact over the reactor: the spoke sends its
/// link-level hello at connect, the node-runtime hello, and one request
/// per remote operation — batching changes how frames share syscalls,
/// never how many frames (or bytes) exist.
#[cfg(feature = "reactor")]
#[test]
fn op_plane_accounting_is_exact_over_the_reactor() {
    let trace = migratory(4, 10, 8);
    let remote_ops = trace
        .events()
        .iter()
        .filter(|e| e.proc.index() >= 2)
        .count() as u64;
    let (server_end, client_end) = reactor_pair();
    let (_, _, wire) = node_replay_over(
        &trace,
        ProtocolKind::LazyInvalidate,
        512,
        &SimOptions::fast(),
        2,
        server_end,
        client_end,
    );
    assert_eq!(
        wire.msgs_sent,
        remote_ops + 2,
        "link hello + node hello + one request per remote op"
    );
    assert_eq!(wire.msgs_received, remote_ops, "one reply per remote op");
}
