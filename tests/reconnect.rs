//! Transport self-healing, end to end: a severed spoke dials back in
//! under jittered exponential backoff and the node runtime carries on —
//! in-flight operations replay (at most once) behind a resumable hello,
//! and a processor declared dead while its link was down is revived from
//! the automatic death checkpoint by that same hello.
//!
//! The sever primitive for the socket-backed tests is a *throwaway dial*:
//! a second connection under the spoke's node id supersedes its link at
//! the healing hub ([`lrc::net::TcpHub::accept_healing`] re-attaches
//! peers), which kills the original socket exactly the way a mid-run
//! network partition would. The channel-backed test scripts the sever
//! deterministically with [`lrc::net::FaultPlan`] instead.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use lrc::dsm::{CheckpointPolicy, Dsm, DsmBuilder, NodeClient, NodeServer};
use lrc::net::{
    Backoff, ChannelNet, Connector, FaultPlan, FaultyTransport, Frame, NetError, NodeId,
    SelfHealing, TcpTransport, Transport, WireMsg, WireStats,
};
use lrc::sim::ProtocolKind;
use lrc::sync::LockId;
use lrc::vclock::ProcId;

/// A tight reconnect budget: plenty of attempts for a loopback hub that
/// is always up, without slowing the suite when it is not.
fn backoff() -> Backoff {
    Backoff::new(Duration::from_millis(5), Duration::from_millis(40), 8)
}

/// Keeps a handle on the healing wrapper while the [`NodeClient`] owns
/// the transport seat, so the test can observe generation bumps.
struct Shared(Arc<SelfHealing>);

impl Transport for Shared {
    fn node(&self) -> NodeId {
        self.0.node()
    }
    fn send(&self, msg: &WireMsg, dst: NodeId, seq: u64) -> Result<(), NetError> {
        self.0.send(msg, dst, seq)
    }
    fn recv(&self) -> Result<Frame, NetError> {
        self.0.recv()
    }
    fn stats(&self) -> WireStats {
        self.0.stats()
    }
    fn generation(&self) -> u64 {
        self.0.generation()
    }
}

/// A two-processor runtime: p0 local to the engine node, p1 driven over
/// the wire. `build` customizes the builder (checkpoint policy etc.).
fn two_proc_dsm(build: impl FnOnce(DsmBuilder) -> DsmBuilder) -> Dsm {
    build(
        DsmBuilder::new(ProtocolKind::LazyInvalidate, 2, 1 << 14)
            .page_size(256)
            .locks(1)
            .wait_timeout(Duration::from_secs(60)),
    )
    .build()
    .expect("valid config")
}

/// Spawns the engine node: a healing hub that keeps accepting
/// reconnecting spokes for as long as the server lives.
fn healing_server(dsm: Dsm) -> (String, thread::JoinHandle<Result<(), lrc::dsm::NodeError>>) {
    let hub = TcpTransport::bind("127.0.0.1:0", 0).expect("bind loopback");
    let addr = hub.local_addr();
    let serving = thread::spawn(move || {
        let transport = hub
            .accept_healing(1, Duration::from_secs(10))
            .expect("accept spoke");
        NodeServer::new(dsm, transport).serve()
    });
    (addr, serving)
}

/// A self-healing spoke whose connector really dials the hub again.
fn healing_spoke(addr: &str) -> Arc<SelfHealing> {
    let dial = addr.to_string();
    let connector: Connector = Box::new(move || {
        TcpTransport::connect(&dial, 1, 0).map(|t| Arc::new(t) as Arc<dyn Transport>)
    });
    Arc::new(SelfHealing::connect(connector, backoff()).expect("initial dial"))
}

/// An in-flight operation survives the link dying under it: the spoke's
/// acquire is parked server-side when the sever hits; the heal bumps the
/// generation, the blocked caller replays the same sequence number behind
/// a resumable hello, and the at-most-once cache guarantees the lock is
/// granted exactly once no matter which copy wins.
#[test]
fn in_flight_op_replays_through_a_link_heal_over_tcp() {
    let dsm = two_proc_dsm(|b| b);
    let (addr, serving) = healing_server(dsm.clone());
    let healing = healing_spoke(&addr);
    let client =
        NodeClient::connect(Shared(Arc::clone(&healing)), 0, vec![ProcId::new(1)]).unwrap();
    let mut remote = client.handle(ProcId::new(1));
    let lock = LockId::new(0);

    remote.acquire(lock).unwrap();
    remote.write_u64(8, 1).unwrap();
    remote.release(lock).unwrap();

    // p0 takes the lock so the spoke's next acquire parks server-side.
    let mut local = dsm.handle(ProcId::new(0));
    local.acquire(lock).unwrap();
    let blocked = thread::spawn(move || {
        remote.acquire(lock).unwrap();
        remote.write_u64(8, 2).unwrap();
        remote.release(lock).unwrap();
        remote
    });
    thread::sleep(Duration::from_millis(200));

    // Sever mid-wait, then hand the lock over. Whether the grant's reply
    // races the heal (lost with the old link, answered from cache on
    // replay) or lands on the healed link directly, the waiter must
    // resolve exactly once.
    let throwaway = TcpTransport::connect(&addr, 1, 0).expect("severing dial");
    thread::sleep(Duration::from_millis(200));
    drop(throwaway);
    local.release(lock).unwrap();

    let mut remote = blocked.join().expect("blocked caller resolved");
    assert!(
        healing.generation() >= 1,
        "the sever must have forced at least one reconnect"
    );
    // The lock-guarded write committed exactly once and is visible.
    local.acquire(lock).unwrap();
    assert_eq!(local.read_u64(8), 2);
    local.release(lock).unwrap();
    // The healed session keeps working.
    remote.acquire(lock).unwrap();
    assert_eq!(remote.read_u64(8).unwrap(), 2);
    remote.release(lock).unwrap();

    client.shutdown().unwrap();
    serving.join().unwrap().unwrap();
}

/// A processor declared dead while its link was severed is revived by the
/// reconnecting spoke's resumable hello — the server rejoins it from the
/// automatic death checkpoint before dispatching the replayed operation,
/// with no manual rejoin anywhere.
#[test]
fn resumable_hello_revives_a_processor_declared_dead_while_severed() {
    let dsm = two_proc_dsm(|b| b.checkpoint_policy(CheckpointPolicy::every_episodes(1)));
    let (addr, serving) = healing_server(dsm.clone());
    let healing = healing_spoke(&addr);
    let client =
        NodeClient::connect(Shared(Arc::clone(&healing)), 0, vec![ProcId::new(1)]).unwrap();
    let mut remote = client.handle(ProcId::new(1));
    let lock = LockId::new(0);
    let dead = ProcId::new(1);

    remote.acquire(lock).unwrap();
    remote.write_u64(8, 7).unwrap();
    remote.release(lock).unwrap();

    // The partition: the spoke's link dies, and while it is down the
    // failure detector (stood in for by an explicit call — the spoke has
    // no say in it) declares p1 dead. Death ships a checkpoint cut.
    let throwaway = TcpTransport::connect(&addr, 1, 0).expect("severing dial");
    thread::sleep(Duration::from_millis(100));
    dsm.declare_dead(dead);
    assert!(dsm.is_dead(dead));
    drop(throwaway);

    // The spoke knows nothing of its own death: its next operation heals
    // the link, re-hellos, and the hello revives p1 from the death cut.
    // The revived processor sees committed pre-death state the LRC way —
    // through an acquire, which pulls the catch-up write notices.
    remote.acquire(lock).unwrap();
    assert!(!dsm.is_dead(dead), "the hello must have revived p1");
    assert_eq!(
        remote.read_u64(8).unwrap(),
        7,
        "the revived processor resumes from its committed pre-death state"
    );
    remote.write_u64(8, 8).unwrap();
    remote.release(lock).unwrap();

    let mut local = dsm.handle(ProcId::new(0));
    local.acquire(lock).unwrap();
    assert_eq!(local.read_u64(8), 8);
    local.release(lock).unwrap();

    let counters = dsm.engine().as_lazy().unwrap().counters();
    assert!(
        counters.checkpoints_cut >= 1,
        "the death cut must have shipped, got {}",
        counters.checkpoints_cut
    );
    client.shutdown().unwrap();
    serving.join().unwrap().unwrap();
}

/// The deterministic variant: a scripted sever window
/// ([`lrc::net::FaultRule::SeverThenHeal`]) on the spoke's send side, no
/// sockets. Every lock-guarded increment lands exactly once even though
/// some requests burned failed attempts inside the window.
#[test]
fn scripted_sever_window_loses_no_increments() {
    let dsm = two_proc_dsm(|b| b);
    let mut mesh = ChannelNet::mesh(2);
    let client_end = mesh.pop().unwrap();
    let server_end = mesh.pop().unwrap();
    let server = NodeServer::new(dsm.clone(), server_end);
    let serving = thread::spawn(move || server.serve());

    // Sends 4 and 5 toward the engine node fail, then the link heals —
    // well inside the 8-attempt backoff budget.
    let flaky = FaultyTransport::new(client_end, FaultPlan::new().sever_then_heal(0, 3, 2));
    let healing = Arc::new(SelfHealing::retry_same(Arc::new(flaky), backoff()));
    let client =
        NodeClient::connect(Shared(Arc::clone(&healing)), 0, vec![ProcId::new(1)]).unwrap();
    let mut remote = client.handle(ProcId::new(1));
    let lock = LockId::new(0);

    const ROUNDS: u64 = 5;
    for _ in 0..ROUNDS {
        remote.acquire(lock).unwrap();
        let v = remote.read_u64(8).unwrap();
        remote.write_u64(8, v + 1).unwrap();
        remote.release(lock).unwrap();
    }
    assert!(
        healing.generation() >= 1,
        "the scripted sever must have triggered a heal"
    );

    let mut local = dsm.handle(ProcId::new(0));
    local.acquire(lock).unwrap();
    assert_eq!(
        local.read_u64(8),
        ROUNDS,
        "an increment was lost or doubled across the sever window"
    );
    local.release(lock).unwrap();
    client.shutdown().unwrap();
    serving.join().unwrap().unwrap();
}

/// The reactor backend heals the same way: its spokes speak the same
/// wire protocol as the thread-per-peer hub, so a severed reactor spoke
/// reconnects through the healing hub's acceptor and the session carries
/// on.
#[cfg(feature = "reactor")]
#[test]
fn severed_reactor_spoke_heals_through_backoff() {
    use lrc::net::ReactorTransport;

    let dsm = two_proc_dsm(|b| b);
    let (addr, serving) = healing_server(dsm.clone());
    let dial = addr.clone();
    let connector: Connector = Box::new(move || {
        ReactorTransport::connect(&dial, 1, 0).map(|t| Arc::new(t) as Arc<dyn Transport>)
    });
    let healing = Arc::new(SelfHealing::connect(connector, backoff()).expect("initial dial"));
    let client =
        NodeClient::connect(Shared(Arc::clone(&healing)), 0, vec![ProcId::new(1)]).unwrap();
    let mut remote = client.handle(ProcId::new(1));
    let lock = LockId::new(0);

    remote.acquire(lock).unwrap();
    remote.write_u64(8, 11).unwrap();
    remote.release(lock).unwrap();

    // Supersede the reactor spoke's link at the hub, killing its socket.
    let throwaway = TcpTransport::connect(&addr, 1, 0).expect("severing dial");
    thread::sleep(Duration::from_millis(200));
    drop(throwaway);

    // The next operations ride the healed link (replaying through the
    // resumable hello if the sever ate a request or reply).
    remote.acquire(lock).unwrap();
    let v = remote.read_u64(8).unwrap();
    remote.write_u64(8, v + 1).unwrap();
    remote.release(lock).unwrap();
    assert!(
        healing.generation() >= 1,
        "the sever must have forced a reconnect"
    );

    let mut local = dsm.handle(ProcId::new(0));
    local.acquire(lock).unwrap();
    assert_eq!(local.read_u64(8), 12);
    local.release(lock).unwrap();
    client.shutdown().unwrap();
    serving.join().unwrap().unwrap();
}
