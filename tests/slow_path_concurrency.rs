//! Would-fail-under-the-old-design regressions for the retired engine-wide
//! `protocol` mutex: a miss stalled inside its fetch phase must not block
//! an acquire of an unrelated lock or a miss on a different page.
//!
//! The proof is structural, not timing-based: a *blocking* fetch hook
//! parks processor 1's miss on page A mid-resolution, and only after the
//! independent slow paths (unrelated lock, page-B miss) have **completed
//! and joined** is the stalled miss released. Under the pre-split design —
//! every slow path serialized on one engine mutex — the independent
//! worker would park behind the stalled miss and the join below would
//! deadline instead of completing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use lrc::dsm::DsmBuilder;
use lrc::pagemem::PageId;
use lrc::sim::ProtocolKind;
use lrc::sync::LockId;
use lrc::vclock::ProcId;

/// Generous deadline: reached only on a real regression (a slow path
/// blocked behind the stalled miss), failing the test instead of hanging.
const DEADLINE: Duration = Duration::from_secs(60);

const PAGE_BYTES: usize = 256;

fn addr_of_page(page: u32) -> u64 {
    page as u64 * PAGE_BYTES as u64
}

/// A fetch hook that parks exactly one (proc, page) miss until released,
/// and reports when the victim has entered its fetch phase.
struct StallHook {
    entered_rx: mpsc::Receiver<()>,
    release_tx: mpsc::Sender<()>,
}

fn stall_hook(victim_proc: ProcId, victim_page: PageId) -> (lrc::core::FetchHook, StallHook) {
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = std::sync::Mutex::new(release_rx);
    let hook: lrc::core::FetchHook = Box::new(move |p, page| {
        if p == victim_proc && page == victim_page {
            entered_tx.send(()).expect("test alive");
            release_rx
                .lock()
                .expect("hook mutex")
                .recv_timeout(DEADLINE)
                .expect("stalled miss must be released by the test");
        }
    });
    (
        hook,
        StallHook {
            entered_rx,
            release_tx,
        },
    )
}

/// Lazy engine: while p1's miss on page A is stalled inside its fetch
/// phase, p2 acquires an unrelated lock, resolves a miss on page B, and
/// releases — to completion. Verified by joining p2 *before* releasing
/// the stalled miss, and by the engine's contention counters.
#[test]
fn lazy_stalled_miss_blocks_neither_unrelated_lock_nor_other_page() {
    let page_a = PageId::new(2); // page B is page 5, read via addr_of_page
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 3, 1 << 14)
        .page_size(PAGE_BYTES)
        .wait_timeout(DEADLINE)
        .build()
        .expect("valid config");
    let (hook, stall) = stall_hook(ProcId::new(1), page_a);
    dsm.engine().set_fetch_hook(hook);

    let victim_done = Arc::new(AtomicBool::new(false));
    let (p2_done_tx, p2_done_rx) = mpsc::channel();
    std::thread::scope(|scope| {
        let dsm_victim = dsm.clone();
        let victim_done_flag = Arc::clone(&victim_done);
        scope.spawn(move || {
            let mut p1 = dsm_victim.handle(ProcId::new(1));
            // Cold miss on page A: parks in the fetch hook.
            let _ = p1.read_u64(addr_of_page(2));
            victim_done_flag.store(true, Ordering::SeqCst);
        });
        stall
            .entered_rx
            .recv_timeout(DEADLINE)
            .expect("p1 reaches its fetch phase");

        // p1 is now mid-miss. An unrelated lock and a different page must
        // flow through the engine regardless.
        let dsm_indep = dsm.clone();
        scope.spawn(move || {
            let mut p2 = dsm_indep.handle(ProcId::new(2));
            p2.acquire(LockId::new(3)).expect("unrelated lock is free");
            let _ = p2.read_u64(addr_of_page(5)); // miss on page B
            p2.write_u64(addr_of_page(5), 7);
            p2.release(LockId::new(3)).expect("held");
            p2_done_tx.send(()).expect("test alive");
        });
        p2_done_rx.recv_timeout(DEADLINE).expect(
            "independent slow paths must complete while the page-A miss \
             is stalled — under the old global protocol mutex this join \
             deadlines",
        );
        assert!(
            !victim_done.load(Ordering::SeqCst),
            "the page-A miss must still be stalled when the independent \
             worker finishes"
        );
        stall.release_tx.send(()).expect("victim waiting");
    });

    let counters = dsm.engine().as_lazy().expect("lazy engine").counters();
    assert!(
        counters.miss_inflight_peak >= 2,
        "page-B miss must have been in flight concurrently with the \
         stalled page-A miss (peak = {})",
        counters.miss_inflight_peak
    );
    assert_eq!(
        counters.slow_waits, 0,
        "disjoint locks and pages must not serialize against each other"
    );
    assert!(
        counters.slow_waits_avoided >= 1,
        "overlapping independent slow paths are exactly the waits the old \
         protocol mutex imposed (avoided = {})",
        counters.slow_waits_avoided
    );
    assert_eq!(
        counters.snapshot_retries, 0,
        "no GC ran: no stale snapshots"
    );
}

/// Eager engine parity: a stalled directory miss on page A blocks neither
/// an unrelated acquire nor a page-B miss.
#[test]
fn eager_stalled_miss_blocks_neither_unrelated_lock_nor_other_page() {
    let page_a = PageId::new(2);
    let dsm = DsmBuilder::new(ProtocolKind::EagerInvalidate, 3, 1 << 14)
        .page_size(PAGE_BYTES)
        .wait_timeout(DEADLINE)
        .build()
        .expect("valid config");
    let (hook, stall) = stall_hook(ProcId::new(1), page_a);
    dsm.engine().set_fetch_hook(hook);

    let (p2_done_tx, p2_done_rx) = mpsc::channel();
    std::thread::scope(|scope| {
        let dsm_victim = dsm.clone();
        scope.spawn(move || {
            let mut p1 = dsm_victim.handle(ProcId::new(1));
            let _ = p1.read_u64(addr_of_page(2));
        });
        stall
            .entered_rx
            .recv_timeout(DEADLINE)
            .expect("p1 reaches its fetch phase");

        let dsm_indep = dsm.clone();
        scope.spawn(move || {
            let mut p2 = dsm_indep.handle(ProcId::new(2));
            p2.acquire(LockId::new(3)).expect("unrelated lock is free");
            let _ = p2.read_u64(addr_of_page(5));
            p2.release(LockId::new(3)).expect("held");
            p2_done_tx.send(()).expect("test alive");
        });
        p2_done_rx.recv_timeout(DEADLINE).expect(
            "independent slow paths must complete while the page-A miss \
             is stalled",
        );
        stall.release_tx.send(()).expect("victim waiting");
    });

    let counters = dsm.engine().as_eager().expect("eager engine").counters();
    assert!(
        counters.miss_inflight_peak >= 2,
        "concurrent misses in flight (peak = {})",
        counters.miss_inflight_peak
    );
    assert_eq!(
        counters.slow_waits, 0,
        "disjoint locks and pages must not serialize against each other"
    );
    assert!(counters.slow_waits_avoided >= 1);
}

/// Same-page followers serialize on the resolver (the in-flight-miss
/// table), not on the engine: two processors missing the *same* page both
/// resolve — the counters see the wait — while the data stays correct.
#[test]
fn same_page_followers_wait_on_the_resolver_and_still_resolve() {
    let page_a = PageId::new(3);
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 3, 1 << 14)
        .page_size(PAGE_BYTES)
        .wait_timeout(DEADLINE)
        .build()
        .expect("valid config");
    let (hook, stall) = stall_hook(ProcId::new(1), page_a);
    dsm.engine().set_fetch_hook(hook);

    // Publish a value on page A so both misses must really fetch.
    {
        let mut p0 = dsm.handle(ProcId::new(0));
        p0.acquire(LockId::new(0)).expect("free");
        p0.write_u64(addr_of_page(3), 42);
        p0.release(LockId::new(0)).expect("held");
    }
    std::thread::scope(|scope| {
        let dsm_victim = dsm.clone();
        scope.spawn(move || {
            let mut p1 = dsm_victim.handle(ProcId::new(1));
            p1.acquire(LockId::new(0)).expect("free");
            assert_eq!(p1.read_u64(addr_of_page(3)), 42, "p1 reads the publish");
            p1.release(LockId::new(0)).expect("held");
        });
        stall
            .entered_rx
            .recv_timeout(DEADLINE)
            .expect("p1 reaches its fetch phase");
        // p2 misses the same page: it must wait for p1's resolution (the
        // gate), then resolve on its own — never skip.
        let dsm_follower = dsm.clone();
        let follower = scope.spawn(move || {
            let mut p2 = dsm_follower.handle(ProcId::new(2));
            p2.acquire(LockId::new(1)).expect("free");
            let _ = p2.read_u64(addr_of_page(3));
            p2.release(LockId::new(1)).expect("held");
        });
        // Release the resolver; the follower can only finish afterwards.
        stall.release_tx.send(()).expect("victim waiting");
        follower.join().expect("follower completes");
    });

    let counters = dsm.engine().as_lazy().expect("lazy engine").counters();
    assert!(
        counters.misses() >= 2,
        "both processors resolved their own miss (misses = {})",
        counters.misses()
    );
}
