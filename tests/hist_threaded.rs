//! Threaded-runtime history conformance: seeded random data-race-free
//! programs run on real threads through every protocol and ablation, and
//! the recorded history must pass the full `lrc-hist` check — data-race
//! freedom under the recorded happens-before edges, LRC read
//! justification, and a sequentially consistent witness order.
//!
//! This is the threaded counterpart of `tests/random_programs.rs`: the
//! simulator replays one global order and checks reads against it; here
//! the interleaving is whatever the scheduler produced, and the witness
//! search proves *some* legal order explains it. On failure the suite
//! shrinks the program and prints the reproducing seed plus the minimized
//! trace (see `hist_support::check_seed_threaded`).

mod hist_support;

use hist_support::{
    check_seed_threaded, forced_flow_program, run_and_check, run_threaded, RunConfig,
};
use lrc::hist::CheckBudget;
use lrc::sim::ProtocolKind;
use lrc::workloads::{ProgramShape, ThreadProgram};

/// The protocol × ablation rotation the 100-seed sweep cycles through:
/// all four protocols, both page-size regimes, and every lazy ablation
/// knob (gc, no-piggyback, full-page misses) alone and combined.
fn config_rotation() -> Vec<RunConfig> {
    let li = ProtocolKind::LazyInvalidate;
    let lu = ProtocolKind::LazyUpdate;
    vec![
        RunConfig::stock(li, 256),
        RunConfig::stock(lu, 256),
        RunConfig::stock(ProtocolKind::EagerInvalidate, 256),
        RunConfig::stock(ProtocolKind::EagerUpdate, 1024),
        RunConfig {
            gc: true,
            ..RunConfig::stock(li, 1024)
        },
        RunConfig {
            gc: true,
            ..RunConfig::stock(lu, 512)
        },
        RunConfig {
            no_piggyback: true,
            ..RunConfig::stock(li, 512)
        },
        RunConfig {
            full_pages: true,
            ..RunConfig::stock(li, 256)
        },
        RunConfig {
            full_pages: true,
            ..RunConfig::stock(lu, 1024)
        },
        RunConfig {
            gc: true,
            no_piggyback: true,
            full_pages: true,
            ..RunConfig::stock(li, 1024)
        },
    ]
}

/// The acceptance sweep: 100 seeded random threaded programs, each run
/// under the next cell of the protocol × ablation rotation (10 programs
/// per cell). Every history must pass the full conformance check.
#[test]
fn hundred_random_programs_pass_across_the_config_rotation() {
    let shape = ProgramShape::default();
    let rotation = config_rotation();
    for seed in 0..100u64 {
        let cfg = &rotation[seed as usize % rotation.len()];
        check_seed_threaded(seed, &shape, cfg);
    }
}

/// Every protocol × both page-size regimes on shared seeds — the compact
/// full cross (the rotation above spreads seeds; this nails every cell).
#[test]
fn every_protocol_and_page_size_passes_on_shared_seeds() {
    let shape = ProgramShape::default();
    for kind in ProtocolKind::ALL {
        for page in [256usize, 1024] {
            for seed in 200..205u64 {
                check_seed_threaded(seed, &shape, &RunConfig::stock(kind, page));
            }
        }
    }
}

/// Wider programs: more processors, more locks, more phases — deeper
/// barrier nesting and more concurrent critical sections.
#[test]
fn wider_programs_with_more_processors_pass() {
    let shape = ProgramShape {
        n_procs: 4,
        n_locks: 3,
        phases: 3,
        max_cmds: 6,
    };
    for (i, seed) in (300..308u64).enumerate() {
        let kind = if i % 2 == 0 {
            ProtocolKind::LazyInvalidate
        } else {
            ProtocolKind::LazyUpdate
        };
        check_seed_threaded(seed, &shape, &RunConfig::stock(kind, 512));
    }
}

/// The recorder captures the complete run: every lowered operation of
/// every processor appears in the history, and the checker's report
/// reflects the event count.
#[test]
fn recorded_histories_are_complete() {
    let prog = forced_flow_program(3, 2);
    let cfg = RunConfig::stock(ProtocolKind::LazyInvalidate, 256);
    let (hist, verdict) = run_and_check(&prog, &cfg);
    let report = verdict.unwrap();
    assert_eq!(hist.len(), prog.op_count(), "every operation recorded");
    assert_eq!(report.events, prog.op_count());
    for p in 0..prog.n_procs {
        assert!(
            !hist.log(lrc::vclock::ProcId::new(p as u16)).is_empty(),
            "processor {p} recorded nothing"
        );
    }
}

/// Witness search on a real threaded run is near-linear for conforming
/// histories: the recorded happens-before edges prune the search to
/// (essentially) one schedule.
#[test]
fn witness_search_stays_near_linear_on_conforming_runs() {
    let prog = ThreadProgram::generate(999, &ProgramShape::default());
    let hist = run_threaded(&prog, &RunConfig::stock(ProtocolKind::LazyUpdate, 256));
    let report = hist.check(&CheckBudget::default()).unwrap();
    assert!(
        report.states_explored <= 4 * report.events.max(1),
        "{} states for {} events — the HB pruning regressed",
        report.states_explored,
        report.events
    );
}
