//! Node-runtime history conformance: the same seeded programs, but with
//! every processor except p0 hosted on a peer node — operations cross the
//! `lrc-net` wire protocol (channel transport), get dispatched through
//! the node server's per-processor workers, and the recorded history must
//! still pass the full conformance check. A frame mis-dispatch, a
//! reordered worker queue, or a protocol bug surfaced only by the remote
//! path shows up as an unjustifiable read.

mod hist_support;

use hist_support::{failure_report, forced_flow_program, run_over_channel_nodes, RunConfig};
use lrc::core::ProtocolMutation;
use lrc::hist::CheckBudget;
use lrc::sim::ProtocolKind;
use lrc::workloads::{ProgramShape, ThreadProgram};

/// Seeded programs through the channel-transport node runtime, rotating
/// across all four protocols and both page-size regimes.
#[test]
fn node_runtime_histories_pass_conformance() {
    let shape = ProgramShape::default();
    let kinds = ProtocolKind::ALL;
    for seed in 0..8u64 {
        let cfg = RunConfig::stock(
            kinds[seed as usize % kinds.len()],
            if seed % 2 == 0 { 256 } else { 1024 },
        );
        let prog = ThreadProgram::generate(seed, &shape);
        let hist = run_over_channel_nodes(&prog, &cfg);
        assert_eq!(hist.len(), prog.op_count(), "remote operations recorded");
        if let Err(err) = hist.check(&CheckBudget::default()) {
            panic!("{}", failure_report(seed, &cfg, &prog, &err, &hist));
        }
    }
}

/// The forced-flow program (barrier-published slots) over the node
/// runtime, with lazy ablations crossed in.
#[test]
fn node_runtime_forced_flow_passes_under_ablations() {
    let prog = forced_flow_program(3, 3);
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        for gc in [false, true] {
            let cfg = RunConfig {
                gc,
                ..RunConfig::stock(kind, 256)
            };
            let hist = run_over_channel_nodes(&prog, &cfg);
            if let Err(err) = hist.check(&CheckBudget::default()) {
                panic!("{}", failure_report(0, &cfg, &prog, &err, &hist));
            }
        }
    }
}

/// The same seeded sweep over the reactor backend: real loopback sockets,
/// one reactor thread per endpoint, batched flushes — and histories that
/// must pass the identical conformance check. A frame corrupted by the
/// staging buffers, coalesced wrongly, or delivered out of order shows up
/// as an unjustifiable read here.
#[cfg(feature = "reactor")]
#[test]
fn reactor_backend_histories_pass_conformance() {
    use hist_support::run_over_reactor_nodes;
    let shape = ProgramShape::default();
    let kinds = ProtocolKind::ALL;
    for seed in 0..8u64 {
        let cfg = RunConfig::stock(
            kinds[seed as usize % kinds.len()],
            if seed % 2 == 0 { 256 } else { 1024 },
        );
        let prog = ThreadProgram::generate(seed, &shape);
        let hist = run_over_reactor_nodes(&prog, &cfg);
        assert_eq!(hist.len(), prog.op_count(), "remote operations recorded");
        if let Err(err) = hist.check(&CheckBudget::default()) {
            panic!("{}", failure_report(seed, &cfg, &prog, &err, &hist));
        }
    }
}

/// The checker guards the remote path too: a broken protocol behind the
/// node runtime is rejected from the history alone.
#[test]
fn node_runtime_catches_a_broken_protocol() {
    let prog = forced_flow_program(3, 3);
    let cfg = RunConfig {
        mutation: ProtocolMutation::SkipTwinDiff,
        ..RunConfig::stock(ProtocolKind::LazyInvalidate, 256)
    };
    let hist = run_over_channel_nodes(&prog, &cfg);
    let err = hist
        .check(&CheckBudget::default())
        .expect_err("skip-twin-diff must not conform over the node runtime");
    let msg = err.to_string();
    assert!(
        msg.contains("unjustified read") || msg.contains("no sequentially consistent witness"),
        "unexpected rejection: {msg}"
    );
}
