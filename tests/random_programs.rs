//! Property-based end-to-end check: for *any* properly-labeled program,
//! every protocol's replay is indistinguishable from sequential
//! consistency — the theorem (Gharachorloo et al.) the paper builds on,
//! exercised across the whole stack (generator → trace → engines → oracle).
//!
//! Programs are generated as sequences of structured commands that are
//! race-free by construction (each lock guards its own address region,
//! private regions are per-processor, barrier phases rotate ownership),
//! then serialized through both codecs and replayed under all four
//! protocols with the sequential-consistency oracle enabled.

use lrc::sim::{run_trace, ProtocolKind, SimOptions};
use lrc::sync::{BarrierId, LockId};
use lrc::trace::{check_labeling, codec, Trace, TraceBuilder, TraceMeta};
use lrc::vclock::ProcId;
use proptest::prelude::*;

const PROCS: usize = 3;
const LOCKS: usize = 2;
/// Words per lock region / private region.
const REGION_WORDS: u64 = 24;

/// One structured, always-legal program step.
#[derive(Clone, Debug)]
enum Cmd {
    /// A critical section: acquire lock, read then write some of its
    /// region's words, release.
    CriticalSection {
        proc: u16,
        lock: u32,
        word: u64,
        span: u64,
    },
    /// A write to the processor's private region.
    PrivateWrite { proc: u16, word: u64 },
    /// A read of another lock region *under its lock* (reader CS).
    ReaderSection { proc: u16, lock: u32, word: u64 },
    /// Everybody synchronizes.
    Barrier,
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        4 => (0..PROCS as u16, 0..LOCKS as u32, 0..REGION_WORDS - 4, 1..4u64)
            .prop_map(|(proc, lock, word, span)| Cmd::CriticalSection { proc, lock, word, span }),
        2 => (0..PROCS as u16, 0..REGION_WORDS).prop_map(|(proc, word)| Cmd::PrivateWrite { proc, word }),
        2 => (0..PROCS as u16, 0..LOCKS as u32, 0..REGION_WORDS)
            .prop_map(|(proc, lock, word)| Cmd::ReaderSection { proc, lock, word }),
        1 => Just(Cmd::Barrier),
    ]
}

/// Lock region `l` starts after the private regions.
fn lock_region(lock: u32) -> u64 {
    (PROCS as u64 + lock as u64) * REGION_WORDS * 8
}

fn private_region(proc: u16) -> u64 {
    proc as u64 * REGION_WORDS * 8
}

fn build(cmds: &[Cmd]) -> Trace {
    let mem = (PROCS as u64 + LOCKS as u64) * REGION_WORDS * 8;
    let meta = TraceMeta::new("random", PROCS, LOCKS, 1, mem);
    let mut b = TraceBuilder::new(meta);
    for cmd in cmds {
        match *cmd {
            Cmd::CriticalSection {
                proc,
                lock,
                word,
                span,
            } => {
                let p = ProcId::new(proc);
                let l = LockId::new(lock);
                b.acquire(p, l).expect("legal");
                for k in 0..span {
                    b.read(p, lock_region(lock) + (word + k) * 8, 8)
                        .expect("legal");
                    b.write(p, lock_region(lock) + (word + k) * 8, 8)
                        .expect("legal");
                }
                b.release(p, l).expect("legal");
            }
            Cmd::PrivateWrite { proc, word } => {
                let p = ProcId::new(proc);
                b.write(p, private_region(proc) + word * 8, 8)
                    .expect("legal");
            }
            Cmd::ReaderSection { proc, lock, word } => {
                let p = ProcId::new(proc);
                let l = LockId::new(lock);
                b.acquire(p, l).expect("legal");
                b.read(p, lock_region(lock) + word * 8, 8).expect("legal");
                b.release(p, l).expect("legal");
            }
            Cmd::Barrier => {
                b.barrier_all(BarrierId::new(0)).expect("legal");
            }
        }
    }
    b.finish().expect("no dangling synchronization")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The headline property: all four protocols match sequential
    /// consistency on every properly-labeled program, at two page sizes
    /// (fine pages split regions; coarse pages force false sharing).
    /// Failures print the complete reproducing trace (replay it with
    /// `lrc::trace::codec::from_text`).
    #[test]
    fn every_protocol_matches_sequential_consistency(cmds in prop::collection::vec(cmd(), 1..60)) {
        let trace = build(&cmds);
        prop_assert!(check_labeling(&trace).is_ok(), "generator must be race-free");
        for kind in ProtocolKind::ALL {
            for page in [256usize, 2048] {
                let result = run_trace(&trace, kind, page, &SimOptions::checked());
                prop_assert!(
                    result.is_ok(),
                    "{kind}@{page}: {}\nreproducing trace (feed to codec::from_text):\n{}",
                    result.err().map(|e| e.to_string()).unwrap_or_default(),
                    codec::to_text(&trace),
                );
            }
        }
    }

    /// Lazy never sends more messages than eager update on these
    /// lock-structured programs.
    #[test]
    fn lazy_messages_never_exceed_eager_update(cmds in prop::collection::vec(cmd(), 1..60)) {
        let trace = build(&cmds);
        let li = run_trace(&trace, ProtocolKind::LazyInvalidate, 512, &SimOptions::fast()).unwrap();
        let eu = run_trace(&trace, ProtocolKind::EagerUpdate, 512, &SimOptions::fast()).unwrap();
        prop_assert!(li.messages() <= eu.messages(), "LI {} > EU {}", li.messages(), eu.messages());
    }

    /// Both codecs round-trip every generated trace exactly.
    #[test]
    fn codecs_round_trip(cmds in prop::collection::vec(cmd(), 1..40)) {
        let trace = build(&cmds);
        let text = codec::to_text(&trace);
        prop_assert_eq!(&codec::from_text(&text).unwrap(), &trace);
        let mut buf = Vec::new();
        codec::write_binary(&trace, &mut buf).unwrap();
        prop_assert_eq!(&codec::read_binary(&buf[..]).unwrap(), &trace);
    }

    /// Replays are deterministic: two runs of the same cell are identical.
    #[test]
    fn replays_are_deterministic(cmds in prop::collection::vec(cmd(), 1..40)) {
        let trace = build(&cmds);
        for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::EagerInvalidate] {
            let a = run_trace(&trace, kind, 512, &SimOptions::fast()).unwrap();
            let b = run_trace(&trace, kind, 512, &SimOptions::fast()).unwrap();
            prop_assert_eq!(a.net, b.net);
        }
    }
}

proptest! {
    // The 16-way flag cross multiplies replays, so fewer cases keep the
    // sweep inside a sensible test budget.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The ablation/extension cross: gc_at_barriers × piggyback_notices ×
    /// full_page_misses, for both lazy policies, must each still be
    /// indistinguishable from sequential consistency. The flags change
    /// *accounting and history retention*, never visible memory — a
    /// divergence here means an ablation knob corrupted the protocol.
    #[test]
    fn ablation_cross_matches_sequential_consistency(cmds in prop::collection::vec(cmd(), 1..40)) {
        let trace = build(&cmds);
        prop_assert!(check_labeling(&trace).is_ok(), "generator must be race-free");
        for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
            for gc in [false, true] {
                for piggyback in [true, false] {
                    for full_pages in [false, true] {
                        let options = SimOptions {
                            check_sc: true,
                            gc_at_barriers: gc,
                            piggyback_notices: piggyback,
                            full_page_misses: full_pages,
                        };
                        let result = run_trace(&trace, kind, 512, &options);
                        prop_assert!(
                            result.is_ok(),
                            "{kind} gc={gc} piggyback={piggyback} full_pages={full_pages}: {}\n\
                             reproducing trace (feed to codec::from_text):\n{}",
                            result.err().map(|e| e.to_string()).unwrap_or_default(),
                            codec::to_text(&trace),
                        );
                    }
                }
            }
        }
    }
}
