//! Multi-threaded stress tests of the sharded runtime: repeated
//! `Dsm::parallel` runs hammering contended locks, reused barriers, and
//! mixed fast-path traffic, to shake out lost wake-ups and ordering bugs
//! in the per-shard locking. Each run also checks an end-to-end
//! correctness invariant (lock-protected counters must not lose
//! increments), so a protocol-level race shows up as a wrong value, not
//! just a hang.
//!
//! Every blocking wait is bounded by [`DEADLINE`]: a lost wake-up fails
//! the test with a stuck-waiter report (processor, lock/barrier, current
//! holder or episode) instead of hanging CI until the harness timeout.

use std::time::Duration;

use lrc::dsm::DsmBuilder;
use lrc::sim::ProtocolKind;
use lrc::sync::{BarrierId, LockId};
use lrc::vclock::ProcId;

/// Generous for the slowest CI runner, but finite: a wait this long means
/// a wake-up was lost, and the runtime panics with a diagnostic naming
/// the stuck waiter.
const DEADLINE: Duration = Duration::from_secs(60);

/// Contended-lock stress: every processor increments every lock-guarded
/// counter; no increment may be lost and no waiter may sleep through a
/// release. Repeated runs vary thread interleavings.
#[test]
fn contended_lock_counters_lose_no_increments() {
    const PROCS: usize = 4;
    const LOCKS: u32 = 3;
    const ROUNDS: u64 = 40;
    const REPEATS: usize = 5;
    for kind in ProtocolKind::ALL {
        for repeat in 0..REPEATS {
            let dsm = DsmBuilder::new(kind, PROCS, 1 << 16)
                .page_size(512)
                .wait_timeout(DEADLINE)
                .locks(LOCKS as usize)
                .build()
                .unwrap();
            dsm.parallel(|proc| {
                for round in 0..ROUNDS {
                    let lock = LockId::new((round % LOCKS as u64) as u32);
                    // Each lock guards its own page: no false sharing
                    // between critical sections, plenty within one.
                    let addr = 512 * (lock.raw() as u64 + 1);
                    proc.acquire(lock)?;
                    let v = proc.read_u64(addr);
                    proc.write_u64(addr, v + 1);
                    proc.release(lock)?;
                }
                Ok(())
            })
            .unwrap();
            // Read the final counters under their locks (so the reader is
            // properly synchronized with the last writer).
            let mut reader = dsm.handle(ProcId::new(0));
            for lock in 0..LOCKS {
                reader.acquire(LockId::new(lock)).unwrap();
                let got = reader.read_u64(512 * (lock as u64 + 1));
                let rounds_on_lock = (0..ROUNDS)
                    .filter(|r| r % LOCKS as u64 == lock as u64)
                    .count();
                let expected = PROCS as u64 * rounds_on_lock as u64;
                assert_eq!(
                    got, expected,
                    "{kind} repeat {repeat} lock {lock}: lost increments"
                );
                reader.release(LockId::new(lock)).unwrap();
            }
        }
    }
}

/// Multi-lock contention: disjoint pairs of processors contend on
/// *different* locks simultaneously, then every processor sweeps every
/// lock in a proc-dependent rotation. With per-lock wait queues a release
/// wakes only its own lock's waiters; this test fails (lost increments or
/// a hang) if a wake-up is misrouted or lost, and under the old global
/// condvar it measured the spurious-wakeup storm it replaces.
#[test]
fn disjoint_and_rotating_multi_lock_contention() {
    const PROCS: usize = 4;
    const LOCKS: u32 = 4;
    const ROUNDS: u64 = 60;
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
        let dsm = DsmBuilder::new(kind, PROCS, 1 << 16)
            .page_size(512)
            .wait_timeout(DEADLINE)
            .locks(LOCKS as usize)
            .build()
            .unwrap();
        dsm.parallel(|proc| {
            let me = proc.proc().index() as u64;
            // Phase 1: procs {0,1} hammer lock 0 while {2,3} hammer lock 1
            // — two independent wait queues active at once.
            let pair_lock = LockId::new((me / 2) as u32);
            let pair_addr = 512 * (pair_lock.raw() as u64 + 1);
            for _ in 0..ROUNDS {
                proc.acquire(pair_lock)?;
                let v = proc.read_u64(pair_addr);
                proc.write_u64(pair_addr, v + 1);
                proc.release(pair_lock)?;
            }
            // Phase 2: every processor sweeps every lock, each starting at
            // a different offset so all queues stay contended.
            for round in 0..ROUNDS {
                let lock = LockId::new(((me + round) % LOCKS as u64) as u32);
                let addr = 512 * (lock.raw() as u64 + 1) + 8;
                proc.acquire(lock)?;
                let v = proc.read_u64(addr);
                proc.write_u64(addr, v + 1);
                proc.release(lock)?;
            }
            Ok(())
        })
        .unwrap();
        let mut reader = dsm.handle(ProcId::new(0));
        for lock in 0..LOCKS {
            reader.acquire(LockId::new(lock)).unwrap();
            let pair = reader.read_u64(512 * (lock as u64 + 1));
            let sweep = reader.read_u64(512 * (lock as u64 + 1) + 8);
            reader.release(LockId::new(lock)).unwrap();
            if lock < 2 {
                assert_eq!(
                    pair,
                    2 * ROUNDS,
                    "{kind} lock {lock}: pair-phase lost increments"
                );
            } else {
                assert_eq!(
                    pair, 0,
                    "{kind} lock {lock}: pair phase never used this lock"
                );
            }
            assert_eq!(
                sweep,
                PROCS as u64 * ROUNDS / LOCKS as u64,
                "{kind} lock {lock}: sweep-phase lost increments"
            );
        }
    }
}

/// Barrier stress: many episodes of the same two barriers back to back.
/// A lost episode wake-up deadlocks the test (caught by the harness
/// timeout); an ordering bug trips the read assertions.
#[test]
fn repeated_barrier_episodes_complete() {
    const PROCS: usize = 4;
    const ROUNDS: u64 = 50;
    for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::EagerInvalidate] {
        let dsm = DsmBuilder::new(kind, PROCS, 1 << 16)
            .page_size(512)
            .wait_timeout(DEADLINE)
            .barriers(2)
            .build()
            .unwrap();
        dsm.parallel(|proc| {
            let me = proc.proc().index() as u64;
            for round in 0..ROUNDS {
                proc.write_u64(8 * me, round);
                proc.barrier(BarrierId::new((round % 2) as u32))?;
                for other in 0..PROCS as u64 {
                    assert_eq!(proc.read_u64(8 * other), round, "{kind}: stale phase data");
                }
                proc.barrier(BarrierId::new(((round + 1) % 2) as u32))?;
            }
            Ok(())
        })
        .unwrap();
    }
}

/// Mixed stress: private fast-path traffic interleaved with contended
/// locks and barriers, repeatedly, on one shared `Dsm`. This is the
/// closest to a real workload: most operations never leave the shard,
/// while the slow paths constantly rearrange shared state underneath.
#[test]
fn mixed_fast_and_slow_paths_stay_consistent() {
    const PROCS: usize = 4;
    const ROUNDS: u64 = 30;
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, PROCS, 1 << 18)
        .page_size(1024)
        .wait_timeout(DEADLINE)
        .locks(2)
        .barriers(1)
        .build()
        .unwrap();
    let shared = 0u64; // page 0: lock-guarded
    let lock = LockId::new(0);
    for _run in 0..3 {
        dsm.parallel(|proc| {
            let me = proc.proc().index() as u64;
            let private = (16 + me) * 1024; // one private page each
            for round in 0..ROUNDS {
                // Fast path: hammer the private page.
                for i in 0..32 {
                    proc.write_u64(private + 8 * (i % 16), round * 1000 + i);
                    let v = proc.read_u64(private + 8 * (i % 16));
                    assert_eq!(v, round * 1000 + i, "private data corrupted");
                }
                // Slow path: bump the shared counter.
                proc.acquire(lock)?;
                let v = proc.read_u64(shared);
                proc.write_u64(shared, v + 1);
                proc.release(lock)?;
                if round % 10 == 9 {
                    proc.barrier(BarrierId::new(0))?;
                }
            }
            Ok(())
        })
        .unwrap();
    }
    let mut reader = dsm.handle(ProcId::new(0));
    reader.acquire(lock).unwrap();
    assert_eq!(
        reader.read_u64(shared),
        3 * PROCS as u64 * ROUNDS,
        "shared counter lost increments across runs"
    );
    reader.release(lock).unwrap();
}

/// The deadline machinery itself: a genuinely stuck waiter (the holder
/// never releases) must fail within the bound, and the panic message must
/// name the waiter, the lock, and the current holder — the stuck-waiter
/// report this suite relies on instead of hanging.
#[test]
fn exceeded_deadline_reports_the_stuck_waiter() {
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 2, 1 << 14)
        .page_size(512)
        .wait_timeout(Duration::from_millis(100))
        .build()
        .unwrap();
    let lock = LockId::new(1);
    let mut holder = dsm.handle(ProcId::new(0));
    holder.acquire(lock).unwrap(); // never released
    let waiter_dsm = dsm.clone();
    let waiter = std::thread::spawn(move || {
        let mut waiter = waiter_dsm.handle(ProcId::new(1));
        waiter.acquire(lock)
    });
    let panic = waiter
        .join()
        .expect_err("the waiter must panic, not acquire or hang");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".to_string());
    assert!(message.contains("deadline exceeded"), "{message}");
    assert!(message.contains("p1"), "names the waiter: {message}");
    assert!(message.contains("lk1"), "names the lock: {message}");
    assert!(
        message.contains("held by p0"),
        "names the holder: {message}"
    );
    holder.release(lock).unwrap();
}
