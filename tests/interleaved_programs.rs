//! Property tests over *scheduled* programs: per-processor programs are
//! interleaved by the seeded scheduler into different legal executions,
//! and every protocol must match sequential consistency on each of them.
//! This exercises genuinely concurrent critical sections and overlapping
//! intervals that the sequential command generator cannot produce.

use lrc::sim::{run_trace, ProtocolKind, SimOptions};
use lrc::sync::{BarrierId, LockId};
use lrc::trace::{check_labeling, interleave, Program, TraceMeta};
use lrc::vclock::ProcId;
use proptest::prelude::*;

const PROCS: usize = 4;
const LOCKS: usize = 3;
const REGION_WORDS: u64 = 16;

/// One per-processor step, mapped into race-free operations.
#[derive(Clone, Debug)]
enum Step {
    /// Acquire a lock region, read-modify-write some of it, release.
    Cs { lock: u32, word: u64, span: u64 },
    /// Touch the processor's private region.
    Private { word: u64 },
    /// Arrive at the barrier.
    Barrier,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => (0..LOCKS as u32, 0..REGION_WORDS - 3, 1..3u64)
            .prop_map(|(lock, word, span)| Step::Cs { lock, word, span }),
        3 => (0..REGION_WORDS).prop_map(|word| Step::Private { word }),
        1 => Just(Step::Barrier),
    ]
}

fn lock_region(lock: u32) -> u64 {
    (PROCS as u64 + lock as u64) * REGION_WORDS * 8
}

fn private_region(proc: u16) -> u64 {
    proc as u64 * REGION_WORDS * 8
}

fn build_programs(steps: &[Vec<Step>]) -> (TraceMeta, Vec<Program>) {
    let mem = (PROCS as u64 + LOCKS as u64) * REGION_WORDS * 8;
    let meta = TraceMeta::new("interleaved", PROCS, LOCKS, 1, mem);
    // Everyone must reach the barrier the same number of times: emit the
    // minimum count across processors, then one final aligning barrier.
    let barrier_quota = steps
        .iter()
        .map(|s| s.iter().filter(|x| matches!(x, Step::Barrier)).count())
        .min()
        .unwrap_or(0);
    let programs = steps
        .iter()
        .enumerate()
        .map(|(pi, proc_steps)| {
            let proc = ProcId::new(pi as u16);
            let mut prog = Program::new(proc);
            let mut barriers_done = 0usize;
            for s in proc_steps {
                match *s {
                    Step::Cs { lock, word, span } => {
                        prog.acquire(LockId::new(lock));
                        for k in 0..span {
                            prog.read(lock_region(lock) + (word + k) * 8, 8);
                            prog.write(lock_region(lock) + (word + k) * 8, 8);
                        }
                        prog.release(LockId::new(lock));
                    }
                    Step::Private { word } => {
                        prog.write(private_region(pi as u16) + word * 8, 8);
                    }
                    Step::Barrier => {
                        if barriers_done < barrier_quota {
                            prog.barrier(BarrierId::new(0));
                            barriers_done += 1;
                        }
                    }
                }
            }
            for _ in barriers_done..barrier_quota {
                prog.barrier(BarrierId::new(0));
            }
            prog
        })
        .collect();
    (meta, programs)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// All four protocols match sequential consistency on every schedule
    /// of every race-free program set.
    #[test]
    fn protocols_match_sc_on_scheduled_programs(
        steps in prop::collection::vec(prop::collection::vec(step(), 0..16), PROCS..=PROCS),
        seed in 0u64..1000,
    ) {
        let (meta, programs) = build_programs(&steps);
        let trace = interleave(meta, programs, seed).expect("programs schedule");
        prop_assert!(check_labeling(&trace).is_ok(), "region discipline is race-free");
        for kind in ProtocolKind::ALL {
            let run = run_trace(&trace, kind, 512, &SimOptions::checked());
            prop_assert!(run.is_ok(), "{kind}: {}", run.err().map(|e| e.to_string()).unwrap_or_default());
        }
    }

    /// Message totals depend on the schedule, but protocol correctness and
    /// the lazy-beats-eager-update ordering hold across schedules.
    #[test]
    fn lazy_beats_eu_across_schedules(
        steps in prop::collection::vec(prop::collection::vec(step(), 4..16), PROCS..=PROCS),
        seed in 0u64..1000,
    ) {
        let (meta, programs) = build_programs(&steps);
        let trace = interleave(meta, programs, seed).expect("programs schedule");
        let li = run_trace(&trace, ProtocolKind::LazyInvalidate, 512, &SimOptions::fast()).unwrap();
        let eu = run_trace(&trace, ProtocolKind::EagerUpdate, 512, &SimOptions::fast()).unwrap();
        prop_assert!(li.messages() <= eu.messages());
    }
}
