//! Checkpoint/restore round trips at the runtime level: a checkpoint cut
//! from a live [`Dsm`], serialized, decoded, and restored into a fresh
//! runtime must resume *identically* — under every protocol family — and
//! incremental deltas between barrier-episode checkpoints must
//! reconstruct the full snapshot exactly.

use std::time::Duration;

use lrc::core::CheckpointError;
use lrc::dsm::{CheckpointPolicy, Dsm, DsmBuilder};
use lrc::sim::{AnyCheckpoint, ProtocolKind};
use lrc::sync::{BarrierId, LockId};
use lrc::vclock::ProcId;
use proptest::prelude::*;

const PAGE: usize = 256;
const MEM: u64 = 1 << 13;

fn build(kind: ProtocolKind) -> Dsm {
    DsmBuilder::new(kind, 2, MEM)
        .page_size(PAGE)
        .locks(1)
        .build()
        .unwrap()
}

/// A committed phase of work: every write is published by a release
/// before the phase ends, so a checkpoint cut afterwards captures it.
fn committed_phase(dsm: &Dsm, salt: u64) {
    let lock = LockId::new(0);
    let mut a = dsm.handle(ProcId::new(0));
    let mut b = dsm.handle(ProcId::new(1));
    a.acquire(lock).unwrap();
    a.write_u64(8, 100 + salt);
    a.write_u64(520, 200 + salt);
    a.release(lock).unwrap();
    b.acquire(lock).unwrap();
    let seen = b.read_u64(8);
    b.write_u64(1032, seen + salt);
    b.release(lock).unwrap();
}

/// Full-space read-back as `p`, inside the lock (the happens-before edge
/// that makes the read protocol-legal on every engine).
fn read_all(dsm: &Dsm, p: ProcId) -> Vec<u8> {
    let lock = LockId::new(0);
    let mut h = dsm.handle(p);
    h.acquire(lock).unwrap();
    let mut mem = vec![0u8; MEM as usize];
    for (i, chunk) in mem.chunks_mut(PAGE).enumerate() {
        h.read_bytes(i as u64 * PAGE as u64, chunk);
    }
    h.release(lock).unwrap();
    mem
}

/// Checkpoint → encode → decode → restore into a fresh runtime, then run
/// the same continuation on both: final memory must be byte-identical,
/// for every protocol family.
#[test]
fn restored_runtime_resumes_identically_across_all_kinds() {
    for kind in ProtocolKind::ALL {
        let original = build(kind);
        committed_phase(&original, 1);

        let ckpt = original.checkpoint();
        let bytes = ckpt.encode();
        let decoded = AnyCheckpoint::decode(&bytes).expect("round trip");
        assert_eq!(decoded, ckpt, "{kind}: codec round trip");

        let restored = build(kind);
        restored.restore(&decoded).expect("same-shape restore");

        // The same continuation on both runtimes...
        committed_phase(&original, 2);
        committed_phase(&restored, 2);

        // ...ends in the same bytes, from either processor's view.
        for p in [ProcId::new(0), ProcId::new(1)] {
            assert_eq!(
                read_all(&original, p),
                read_all(&restored, p),
                "{kind}: memory diverges after restore (as {p})"
            );
        }
    }
}

/// Deltas between successive checkpoints reconstruct the full snapshot
/// exactly, round-trip through their codec, and stay smaller than the
/// full checkpoint — the incremental-between-barriers claim.
#[test]
fn incremental_deltas_reconstruct_the_full_checkpoint() {
    let dsm = build(ProtocolKind::LazyInvalidate);
    committed_phase(&dsm, 1);
    let AnyCheckpoint::Lazy(base) = dsm.checkpoint() else {
        panic!("lazy runtime cuts lazy checkpoints");
    };
    committed_phase(&dsm, 2);
    let AnyCheckpoint::Lazy(full) = dsm.checkpoint() else {
        panic!("lazy runtime cuts lazy checkpoints");
    };

    let delta = full.delta_since(&base).expect("same run, same era");
    assert_eq!(
        delta.apply_to(&base).expect("delta applies to its base"),
        full,
        "base + delta must equal the full checkpoint"
    );

    let delta_bytes = delta.encode(full.page_bytes, full.n_pages);
    let decoded = lrc::core::CheckpointDelta::decode(&delta_bytes).expect("delta round trip");
    assert_eq!(decoded, delta);
    assert!(
        delta_bytes.len() < full.encode().len(),
        "a one-phase delta ({}B) should undercut the full checkpoint ({}B)",
        delta_bytes.len(),
        full.encode().len()
    );
}

/// A checkpoint cut mid-interval captures only *committed* state: a write
/// still sitting in an open interval (no release yet) contributes the
/// page's twin, not the dirty bytes.
#[test]
fn mid_interval_checkpoint_captures_committed_state_only() {
    let lock = LockId::new(0);
    let dsm = build(ProtocolKind::LazyInvalidate);
    committed_phase(&dsm, 1); // addr 8 now holds 101, committed

    let mut a = dsm.handle(ProcId::new(0));
    a.acquire(lock).unwrap();
    a.write_u64(8, 0xDEAD); // dirty, interval still open
    let ckpt = dsm.checkpoint();
    a.release(lock).unwrap();

    let restored = build(ProtocolKind::LazyInvalidate);
    restored.restore(&ckpt).expect("same-shape restore");
    let mut r = restored.handle(ProcId::new(0));
    assert_eq!(
        r.read_u64(8),
        101,
        "the uncommitted write must not appear in the checkpoint"
    );

    // After the release commits it, a fresh checkpoint carries it.
    let after = dsm.checkpoint();
    let restored2 = build(ProtocolKind::LazyInvalidate);
    restored2.restore(&after).expect("same-shape restore");
    let mut r2 = restored2.handle(ProcId::new(0));
    assert_eq!(r2.read_u64(8), 0xDEAD, "the committed write is captured");
}

/// Rejoin is a lazy-engine feature: asking an eager runtime to rejoin a
/// processor is refused with the *typed* [`CheckpointError::Unsupported`]
/// — a property of the engine, distinct from [`CheckpointError::Incompatible`]
/// (a property of the checkpoint), so callers can tell "retry with a
/// better checkpoint" apart from "this engine has no crash story".
#[test]
fn rejoin_on_an_eager_engine_is_a_typed_unsupported_error() {
    for kind in [ProtocolKind::EagerInvalidate, ProtocolKind::EagerUpdate] {
        let dsm = build(kind);
        committed_phase(&dsm, 1);
        let ckpt = dsm.checkpoint();
        match dsm.rejoin(ProcId::new(1), &ckpt) {
            Err(CheckpointError::Unsupported(why)) => assert!(
                why.contains("lazy"),
                "{kind}: the refusal should name the supported family, got: {why}"
            ),
            other => panic!("{kind}: expected Unsupported, got {other:?}"),
        }
        // The refusal is a clean no-op: the runtime stays fully usable.
        committed_phase(&dsm, 2);
    }

    // The complementary confusion — a lazy engine offered an eager-family
    // checkpoint — is the checkpoint's fault, not the engine's.
    let lazy = build(ProtocolKind::LazyInvalidate);
    let eager = build(ProtocolKind::EagerInvalidate);
    committed_phase(&eager, 1);
    assert!(matches!(
        lazy.rejoin(ProcId::new(1), &eager.checkpoint()),
        Err(CheckpointError::Incompatible(_))
    ));
}

/// Family and shape mismatches are rejected, and corrupt bytes are
/// reported as corrupt — never misdecoded.
#[test]
fn incompatible_and_corrupt_checkpoints_are_rejected() {
    let lazy = build(ProtocolKind::LazyInvalidate);
    let eager = build(ProtocolKind::EagerInvalidate);
    committed_phase(&lazy, 1);
    committed_phase(&eager, 1);

    // Cross-family restores are refused.
    let from_lazy = lazy.checkpoint();
    let from_eager = eager.checkpoint();
    assert!(matches!(
        eager.restore(&from_lazy),
        Err(CheckpointError::Incompatible(_))
    ));
    assert!(matches!(
        lazy.restore(&from_eager),
        Err(CheckpointError::Incompatible(_))
    ));

    // Shape mismatches are refused: a 4-processor runtime cannot swallow
    // a 2-processor checkpoint.
    let wider = DsmBuilder::new(ProtocolKind::LazyInvalidate, 4, MEM)
        .page_size(PAGE)
        .build()
        .unwrap();
    assert!(matches!(
        wider.restore(&from_lazy),
        Err(CheckpointError::Incompatible(_))
    ));

    // Truncated and tag-mangled bytes are corrupt, loudly.
    let mut bytes = from_lazy.encode();
    assert!(matches!(
        AnyCheckpoint::decode(&bytes[..bytes.len() - 3]),
        Err(CheckpointError::Corrupt(_))
    ));
    bytes[0] = 9; // unknown family tag
    assert!(matches!(
        AnyCheckpoint::decode(&bytes),
        Err(CheckpointError::Corrupt(_))
    ));
    assert!(matches!(
        AnyCheckpoint::decode(&[]),
        Err(CheckpointError::Corrupt(_))
    ));
}

/// Both processors arrive at barrier 0 (the second from its own thread),
/// completing one episode.
fn barrier_both(dsm: &Dsm) {
    let other = dsm.clone();
    let arriving = std::thread::spawn(move || {
        other
            .handle(ProcId::new(1))
            .barrier(BarrierId::new(0))
            .unwrap();
    });
    dsm.handle(ProcId::new(0))
        .barrier(BarrierId::new(0))
        .unwrap();
    arriving.join().unwrap();
}

/// The death-lease arc, end to end: a dead processor's lease defers GC
/// (bounded, counted), its expiry lets GC advance the store era, a stale
/// pre-death checkpoint is then refused with the *typed*
/// [`CheckpointError::LeaseExpired`], and automatic revival falls back to
/// a cold join from a fresh post-GC cut.
#[test]
fn expired_lease_forces_a_cold_join_from_a_post_gc_cut() {
    let dead = ProcId::new(1);
    // Episode cuts are effectively off (period 100): the shipped chain is
    // the baseline + death cut, both from the pre-GC era — exactly the
    // staleness the cold-join fallback exists for.
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 2, MEM)
        .page_size(PAGE)
        .locks(1)
        .barriers(1)
        .gc_at_barriers()
        .death_lease(2)
        .checkpoint_policy(CheckpointPolicy::every_episodes(100))
        .wait_timeout(Duration::from_secs(30))
        .build()
        .unwrap();

    committed_phase(&dsm, 1);
    barrier_both(&dsm);
    let stale = dsm.checkpoint(); // pre-death, pre-GC era
    dsm.declare_dead(dead); // ships the automatic death cut

    // The survivor drives episodes alone. The first completions defer GC
    // (the lease is live); once two episodes pass, the lease expires, GC
    // runs, and the store era advances.
    let mut survivor = dsm.handle(ProcId::new(0));
    for salt in 0..6 {
        survivor.acquire(LockId::new(0)).unwrap();
        survivor.write_u64(8, 1000 + salt);
        survivor.release(LockId::new(0)).unwrap();
        survivor.barrier(BarrierId::new(0)).unwrap();
    }
    let counters = dsm.engine().as_lazy().unwrap().counters();
    assert!(
        counters.gc_deferrals >= 1,
        "the live lease must defer at least one GC round, got {}",
        counters.gc_deferrals
    );
    assert!(
        counters.checkpoints_cut >= 2,
        "baseline and death cuts must have shipped, got {}",
        counters.checkpoints_cut
    );

    // The pre-death cut now belongs to a collected era.
    match dsm.rejoin(dead, &stale) {
        Err(CheckpointError::LeaseExpired(why)) => {
            assert!(
                why.contains("garbage-collected"),
                "the refusal should say why: {why}"
            );
        }
        other => panic!("expected LeaseExpired for the stale cut, got {other:?}"),
    }

    // Automatic revival notices the shipped chain is just as stale, cuts
    // fresh post-GC state, and cold-joins from that.
    assert!(dsm.try_revive(dead), "cold join must revive the processor");
    assert!(!dsm.is_dead(dead));

    // The revived processor is fully usable.
    committed_phase(&dsm, 2);
    let mut back = dsm.handle(dead);
    back.acquire(LockId::new(0)).unwrap();
    assert_eq!(
        back.read_u64(8),
        102,
        "revived processor sees committed state"
    );
    back.release(LockId::new(0)).unwrap();
}

/// The automatic checkpointer's shipped chain (full cut + deltas, cut by
/// each episode's closing arrival) reconstructs exactly the state a
/// direct cut sees — through the public API only.
#[test]
fn auto_checkpoint_chain_reconstructs_the_live_state() {
    let dsm = DsmBuilder::new(ProtocolKind::LazyInvalidate, 2, MEM)
        .page_size(PAGE)
        .locks(1)
        .barriers(1)
        .checkpoint_policy(CheckpointPolicy::every_episodes(1).rebase_after(3))
        .wait_timeout(Duration::from_secs(30))
        .build()
        .unwrap();

    // Several committed phases, each sealed by a barrier episode: the
    // closing arrivals cut a baseline full plus deltas (rebasing after 3).
    for salt in 1..=5 {
        committed_phase(&dsm, salt);
        barrier_both(&dsm);
    }

    let (latest, _) = dsm.latest_checkpoint().expect("cuts have shipped");
    assert_eq!(
        latest,
        dsm.checkpoint(),
        "the folded sink chain must equal a direct cut of the live engine"
    );
    let counters = dsm.engine().as_lazy().unwrap().counters();
    assert!(
        counters.checkpoints_cut >= 5,
        "one cut per episode, got {}",
        counters.checkpoints_cut
    );
    assert!(counters.delta_bytes > 0, "cut traffic must be metered");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// For any sequence of committed phases, the chain of per-phase deltas
    /// folded onto the original base reconstructs the final full cut
    /// exactly — and every link survives its codec round trip.
    #[test]
    fn delta_chains_fold_back_to_the_full_cut(salts in prop::collection::vec(0u64..50, 1..6)) {
        let dsm = build(ProtocolKind::LazyInvalidate);
        committed_phase(&dsm, 99);
        let AnyCheckpoint::Lazy(origin) = dsm.checkpoint() else {
            panic!("lazy runtime cuts lazy checkpoints");
        };
        let mut base = origin.clone();
        let mut chain = Vec::new();
        for &salt in &salts {
            committed_phase(&dsm, salt);
            let AnyCheckpoint::Lazy(full) = dsm.checkpoint() else {
                panic!("lazy runtime cuts lazy checkpoints");
            };
            let delta = full.delta_since(&base).expect("same run, same era");
            let bytes = delta.encode(full.page_bytes, full.n_pages);
            let decoded = lrc::core::CheckpointDelta::decode(&bytes).expect("delta round trip");
            prop_assert_eq!(&decoded, &delta);
            chain.push(delta);
            base = full;
        }
        let mut folded = origin;
        for delta in &chain {
            folded = delta.apply_to(&folded).expect("chain link applies");
        }
        prop_assert_eq!(folded, base, "folded chain must equal the final cut");
    }
}
