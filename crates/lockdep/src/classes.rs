//! The workspace lock hierarchy, one [`Class`] per lock family.
//!
//! This table is the machine-checked form of the README's "Lock order"
//! paragraph: levels ascend in acquisition order (a thread may acquire a
//! class only while every explicitly-leveled lock it holds has a strictly
//! lower level), and classes whose instances may nest (lock gates, page
//! gates) carry per-instance order keys at construction. Untagged locks
//! get per-callsite auto-classes and are covered by cycle detection only.
//!
//! Gaps between levels are deliberate: future tiers slot in without
//! renumbering the tree.

use crate::Class;

// ---- runtime blocking layer (`lrc-dsm`), outermost ----

/// Serializes concurrent failure-detector suspicions; held across
/// `declare_dead`, which takes the whole engine hierarchy below it.
pub const DSM_SUSPICION: Class = Class::new("dsm.suspicion", 10);
/// The recovery supervisor's death-observation bookkeeping (when a dead
/// processor was first seen). Never held across engine calls.
pub const DSM_SUPERVISOR: Class = Class::new("dsm.supervisor", 12);
/// A lock's wait-queue generation counter. Held across the condvar wait
/// for a hand-off and, on the stuck-waiter diagnostic path, while reading
/// the lock table — so it sits below every engine class.
pub const DSM_LOCK_SLOT: Class = Class::new("dsm.lock_slot", 15);
/// The barrier episode counters (runtime parking).
pub const DSM_EPISODES: Class = Class::new("dsm.episodes", 16);
/// The automatic checkpointer's cut state (last episode/era/base cut).
/// Held across `checkpoint()` (the engine hierarchy below) and the sink
/// write, so it sits above the engine classes and the sink.
pub const DSM_CKPT_STATE: Class = Class::new("dsm.ckpt_state", 20);
/// A checkpoint sink's internal store (memory replica or file index);
/// taken while the checkpointer's cut state is held, below the engine.
pub const DSM_CKPT_SINK: Class = Class::new("dsm.ckpt_sink", 21);
/// The node server's at-most-once reply cache (executed results plus
/// in-flight marks, keyed by client node and sequence number). Taken by
/// the dispatch loop before enqueueing and by workers after the engine
/// call returns — never held across engine locks.
pub const DSM_REPLY_CACHE: Class = Class::new("dsm.reply_cache", 22);

// ---- engine slow-path gates ----

/// The `serialize_slow_paths` measurement baseline: when configured,
/// every slow path locks it first — the retired global protocol mutex.
pub const ENGINE_SERIAL_GATE: Class = Class::new("engine.serial_gate", 30);
/// Per-lock gates (acquire/release of one DSM lock serialize here).
/// Instances carry the lock id as order key.
pub const ENGINE_LOCK_GATE: Class = Class::new("engine.lock_gate", 40);
/// Per-page gates (the in-flight-miss table). Instances carry the page
/// id as order key; the eager flush takes several in ascending order.
pub const ENGINE_PAGE_GATE: Class = Class::new("engine.page_gate", 45);

// ---- shared protocol structures ----

/// The lock table (`lrc_sync::LockTable` behind its engine mutex).
pub const SYNC_LOCK_TABLE: Class = Class::new("sync.lock_table", 50);
/// The barrier set (`lrc_sync::BarrierSet` behind its engine mutex).
pub const SYNC_BARRIER_SET: Class = Class::new("sync.barrier_set", 52);
/// The eager engines' page directory (copyset + owner per page).
pub const EAGER_DIRECTORY: Class = Class::new("eager.directory", 54);
/// EI's per-episode buffered modifications.
pub const EAGER_EPOCH_MODS: Class = Class::new("eager.epoch_mods", 56);
/// The lazy engine's interval/diff store (a `RwLock`).
pub const CORE_STORE: Class = Class::new("core.store", 60);
/// The post-GC authoritative-owner map; taken only under the store lock,
/// never held across acquiring anything else.
pub const CORE_GC_OWNER: Class = Class::new("core.gc_owner", 65);

// ---- per-processor shards (innermost protocol state) ----

/// A processor's private shard (page table, clock, dirty list). No path
/// holds two shards at once — cross-processor copies stage through
/// locals — so the class has no order key: nesting two is a violation.
pub const ENGINE_SHARD: Class = Class::new("engine.shard", 70);
/// The death-escrow page buffers (authoritative contents of pages whose
/// post-GC owner died, parked until garbage collection re-homes them).
/// Taken after a shard lock on the death and GC paths.
pub const CORE_ESCROW: Class = Class::new("core.escrow", 75);

// ---- leaf instrumentation (held-nothing-else-after tiers) ----

/// The history recorder's per-processor read-sampling counters.
pub const HIST_READS_SEEN: Class = Class::new("hist.reads_seen", 89);
/// The history recorder's per-processor event logs; the engines log
/// while holding shards, gates, or the store, so logs sit below only the
/// fabric trace.
pub const HIST_LOG: Class = Class::new("hist.log", 90);
/// The simulated fabric's optional per-message trace, charged from deep
/// inside both engines: the innermost class of the protocol plane.
pub const SIMNET_TRACE: Class = Class::new("simnet.trace", 95);

// ---- wire transports (disjoint from the protocol plane) ----

/// A self-healing transport's current-connection slot (a `RwLock`
/// around the live inner transport); the inner transport's own locks
/// (pending table, peer maps, queues) are taken while a snapshot of this
/// slot is held, so it sits just below them.
pub const NET_HEAL: Class = Class::new("net.heal", 79);
/// A node client's pending-reply table.
pub const NET_PENDING: Class = Class::new("net.pending", 80);
/// The reactor transport's per-peer liveness map (dead flags only; the
/// sockets themselves are private to the reactor thread). A sender drops
/// it before touching the submission queue, so the two never nest.
pub const NET_REACTOR_PEERS: Class = Class::new("net.reactor_peers", 81);
/// The reactor transport's wakeable submission queue; drained whole by
/// the reactor thread, pushed by senders holding nothing else.
pub const NET_REACTOR_SUBMIT: Class = Class::new("net.reactor_submit", 84);
/// Fault-injection decision state (advanced per attempted send).
pub const NET_FAULT_STATE: Class = Class::new("net.fault_state", 82);
/// Fault-injection dropped-frame counter.
pub const NET_FAULT_DROPPED: Class = Class::new("net.fault_dropped", 83);
/// A TCP endpoint's per-peer send-queue map.
pub const NET_PEERS: Class = Class::new("net.peers", 85);
/// A transport endpoint's incoming-frame queue (channel and TCP); held
/// across the blocking queue read, innermost of the transport classes.
pub const NET_INCOMING: Class = Class::new("net.incoming", 86);
