//! Lockdep-style lock-order verification for the workspace.
//!
//! Every `Mutex`/`RwLock`/`Condvar` in the tree routes through the offline
//! `third_party/parking_lot` stub, and the stub routes every acquisition
//! through this crate. Each lock belongs to a **class** — either an
//! explicit one from [`classes`] (name + numeric hierarchy **level**,
//! optionally a per-instance **order key**) assigned at construction with
//! `Mutex::new_in`, or an auto-class derived from the construction
//! callsite for untagged locks. At runtime each thread maintains a
//! held-lock stack, and every blocking acquisition is checked three ways:
//!
//! 1. **Level monotonicity** — an explicitly-leveled lock may only be
//!    acquired while every explicitly-leveled lock already held has a
//!    *strictly lower* level (the README's "Lock order" list, outermost
//!    first, machine-checked).
//! 2. **Same-class order** — two instances of one class may nest only if
//!    both carry order keys and they are taken in ascending key order
//!    (the rule the eager flush relies on for its page gates).
//! 3. **Cycle freedom** — each acquisition records `held-class →
//!    new-class` edges in a global graph; a blocking acquisition that
//!    closes a directed cycle of blocking edges is a potential ABBA
//!    deadlock, reported with *both* acquisition chains (the current
//!    thread's, and the recorded witness of the conflicting edge).
//!    `try_lock` records **observation** edges that never complete a
//!    cycle (a try-lock cannot block, so it cannot deadlock).
//!
//! `Condvar::wait`/`wait_for` model the release-and-reacquire: the mutex
//! leaves the held stack for the duration of the wait and is re-checked as
//! a fresh blocking acquisition on wake-up.
//!
//! # Activation
//!
//! The verifier is compiled in behind the stub's `lockdep` feature
//! (default-on) and costs one relaxed atomic load per lock operation until
//! activated. Set `LRC_LOCKDEP=1` (or `panic`) to check and panic on the
//! first violation, or `LRC_LOCKDEP=collect` to collect reports for
//! [`take_violations`]. Tests can call [`set_mode`] instead; locks
//! constructed while the verifier is disabled carry a null tag and stay
//! invisible, so enable it before building the structures under test.

use std::collections::{HashMap, HashSet};
use std::panic::Location;
use std::sync::atomic::{AtomicU8, Ordering};
// The verifier guards its own registry with raw `std::sync` primitives:
// it cannot route through the `parking_lot` stub it instruments without
// recursing into itself (see the source-conformance allowlist).
use std::sync::Mutex;

pub mod classes;

/// A lock class: the unit of lock-order verification. Locks of one class
/// are interchangeable for ordering purposes; the hierarchy orders
/// classes by `level` (acquire ascending), and instances within a class
/// by their optional `order` key (acquire ascending too).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Class {
    name: &'static str,
    level: u32,
    order: Option<u64>,
}

impl Class {
    /// Defines a class at hierarchy `level` (lower = acquired earlier).
    pub const fn new(name: &'static str, level: u32) -> Class {
        Class {
            name,
            level,
            order: None,
        }
    }

    /// Attaches a per-instance order key: instances of this class may
    /// nest, but only in ascending key order.
    #[must_use]
    pub const fn with_order(mut self, order: u64) -> Class {
        self.order = Some(order);
        self
    }

    /// The class name.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// The hierarchy level.
    pub const fn level(&self) -> u32 {
        self.level
    }
}

/// What the verifier does when a violation is found.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Off: lock operations cost one atomic load, nothing is recorded.
    Disabled,
    /// Panic with the full report on the first violation (CI mode).
    Panic,
    /// Collect reports for [`take_violations`] (self-test mode).
    Collect,
}

/// The kind of a detected violation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// Same lock acquired again by the thread already holding it.
    Reentrant,
    /// An explicitly-leveled lock acquired above an equal-or-higher level.
    Hierarchy,
    /// Two instances of one class nested without ascending order keys.
    SameClassOrder,
    /// A blocking acquisition closed a class-order cycle (potential ABBA).
    Cycle,
}

/// One detected lock-order violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What rule was broken.
    pub kind: ViolationKind,
    /// Human-readable report naming the acquisition chains involved.
    pub report: String,
}

/// The per-instance tag the `parking_lot` stub stores in each lock:
/// interned class id plus level and order copied out of the [`Class`] so
/// the hot path never consults the registry. A null tag (constructed
/// while the verifier was disabled) makes every hook a no-op.
#[derive(Clone, Copy, Debug)]
pub struct LockTag {
    class: u32,
    level: Option<u32>,
    order: Option<u64>,
}

const UNTAGGED: u32 = u32::MAX;

impl LockTag {
    /// The tag of a lock constructed while the verifier was disabled.
    pub const fn null() -> LockTag {
        LockTag {
            class: UNTAGGED,
            level: None,
            order: None,
        }
    }
}

/// The shape of one acquisition, as reported by the stub.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AcquireOp {
    /// Whether the acquisition can block (false for `try_lock`).
    pub blocking: bool,
    /// Whether the acquisition is shared (an `RwLock` read).
    pub shared: bool,
}

impl AcquireOp {
    /// A blocking exclusive acquisition (`Mutex::lock`, `RwLock::write`).
    pub const fn blocking() -> AcquireOp {
        AcquireOp {
            blocking: true,
            shared: false,
        }
    }

    /// A non-blocking probe (`Mutex::try_lock`).
    pub const fn try_lock() -> AcquireOp {
        AcquireOp {
            blocking: false,
            shared: false,
        }
    }

    /// A blocking shared acquisition (`RwLock::read`).
    pub const fn shared() -> AcquireOp {
        AcquireOp {
            blocking: true,
            shared: true,
        }
    }
}

// ---- global state ----

const MODE_UNINIT: u8 = 0;
const MODE_DISABLED: u8 = 1;
const MODE_PANIC: u8 = 2;
const MODE_COLLECT: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

/// Interned class metadata.
struct ClassInfo {
    name: String,
    level: Option<u32>,
}

/// One recorded class-order edge `src → dst`.
struct EdgeInfo {
    /// Whether any *blocking* acquisition recorded this edge; only
    /// blocking edges participate in cycle detection.
    blocking: bool,
    /// First acquisition chain that recorded the edge, for reports.
    witness: String,
}

#[derive(Default)]
struct Registry {
    classes: Vec<ClassInfo>,
    by_name: HashMap<&'static str, u32>,
    auto_by_site: HashMap<String, u32>,
    /// Adjacency: class → (successor class → edge).
    edges: HashMap<u32, HashMap<u32, EdgeInfo>>,
    violations: Vec<Violation>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: std::sync::OnceLock<Mutex<Registry>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// One entry of a thread's held-lock stack.
#[derive(Clone)]
struct Held {
    class: u32,
    level: Option<u32>,
    order: Option<u64>,
    addr: usize,
    shared: bool,
    site: &'static Location<'static>,
}

#[derive(Default)]
struct ThreadState {
    held: Vec<Held>,
    /// Edges this thread already pushed to the registry, keyed by
    /// `(src, dst, blocking)` — skips the global lock on the hot path.
    seen_edges: HashSet<(u32, u32, bool)>,
}

thread_local! {
    static THREAD: std::cell::RefCell<ThreadState> =
        std::cell::RefCell::new(ThreadState::default());
}

/// The active mode, reading `LRC_LOCKDEP` on first use: unset/`0`/`off` —
/// disabled; `collect` — collect; anything else (`1`, `panic`) — panic.
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        MODE_DISABLED => Mode::Disabled,
        MODE_PANIC => Mode::Panic,
        MODE_COLLECT => Mode::Collect,
        _ => {
            let parsed = match std::env::var("LRC_LOCKDEP").ok().as_deref() {
                None | Some("") | Some("0") | Some("off") => MODE_DISABLED,
                Some("collect") => MODE_COLLECT,
                Some(_) => MODE_PANIC,
            };
            // First caller wins; a concurrent set_mode() beats the env.
            let raced =
                MODE.compare_exchange(MODE_UNINIT, parsed, Ordering::Relaxed, Ordering::Relaxed);
            match raced {
                Ok(_) => decode(parsed),
                Err(current) => decode(current),
            }
        }
    }
}

fn decode(raw: u8) -> Mode {
    match raw {
        MODE_PANIC => Mode::Panic,
        MODE_COLLECT => Mode::Collect,
        _ => Mode::Disabled,
    }
}

/// Overrides the mode (tests). Locks constructed before enabling carry a
/// null tag and stay invisible to the verifier.
pub fn set_mode(mode: Mode) {
    let raw = match mode {
        Mode::Disabled => MODE_DISABLED,
        Mode::Panic => MODE_PANIC,
        Mode::Collect => MODE_COLLECT,
    };
    MODE.store(raw, Ordering::Relaxed);
}

/// Drains the violations collected in [`Mode::Collect`].
pub fn take_violations() -> Vec<Violation> {
    std::mem::take(&mut lock_registry().violations)
}

/// Interns `class` and returns the tag lock constructors store. Two
/// classes with one name must agree on the level (the name *is* the
/// class; the level is its position in the one shared hierarchy).
///
/// # Panics
///
/// Panics on a level conflict for an existing name — that is a
/// misconfigured hierarchy, not a runtime race.
pub fn tag_for(class: Class) -> LockTag {
    if mode() == Mode::Disabled {
        return LockTag::null();
    }
    let mut reg = lock_registry();
    let id = match reg.by_name.get(class.name) {
        Some(&id) => {
            let known = reg.classes[id as usize].level;
            assert_eq!(
                known,
                Some(class.level),
                "lockdep class `{}` redefined at a different level",
                class.name
            );
            id
        }
        None => {
            let id = reg.classes.len() as u32;
            reg.classes.push(ClassInfo {
                name: class.name.to_string(),
                level: Some(class.level),
            });
            reg.by_name.insert(class.name, id);
            id
        }
    };
    LockTag {
        class: id,
        level: Some(class.level),
        order: class.order,
    }
}

/// Interns the auto-class for an untagged lock constructed at `site`.
/// One callsite = one class (a loop building a vector of locks gets a
/// single class), with no level: auto-classes skip the hierarchy checks
/// and are covered by cycle detection alone.
pub fn auto_tag(site: &'static Location<'static>) -> LockTag {
    if mode() == Mode::Disabled {
        return LockTag::null();
    }
    let key = format!("{}:{}:{}", site.file(), site.line(), site.column());
    let mut reg = lock_registry();
    let id = match reg.auto_by_site.get(&key) {
        Some(&id) => id,
        None => {
            let id = reg.classes.len() as u32;
            reg.classes.push(ClassInfo {
                name: format!("auto[{key}]"),
                level: None,
            });
            reg.auto_by_site.insert(key, id);
            id
        }
    };
    LockTag {
        class: id,
        level: None,
        order: None,
    }
}

fn emit(kind: ViolationKind, report: String) {
    match mode() {
        Mode::Disabled => {}
        Mode::Panic => panic!("{report}"),
        Mode::Collect => {
            let mut reg = lock_registry();
            // Bounded: a hot loop re-triggering one violation must not
            // grow without limit while a test is deciding to drain.
            if reg.violations.len() < 1024 {
                reg.violations.push(Violation { kind, report });
            }
        }
    }
}

fn class_name(id: u32) -> String {
    lock_registry()
        .classes
        .get(id as usize)
        .map(|c| c.name.clone())
        .unwrap_or_else(|| format!("class#{id}"))
}

fn describe_held(held: &[Held]) -> String {
    if held.is_empty() {
        return "    (nothing held)\n".to_string();
    }
    let reg = lock_registry();
    held.iter()
        .map(|h| {
            let name = reg
                .classes
                .get(h.class as usize)
                .map(|c| c.name.as_str())
                .unwrap_or("?");
            let level = match h.level {
                Some(level) => format!(" level {level}"),
                None => String::new(),
            };
            let order = match h.order {
                Some(order) => format!(" order {order}"),
                None => String::new(),
            };
            let shared = if h.shared { ", shared" } else { "" };
            format!(
                "    - `{name}`{level}{order} (acquired at {}{shared})\n",
                h.site
            )
        })
        .collect()
}

/// Records one acquisition: level/order checks against the held stack,
/// class-order edges into the global graph, cycle detection for blocking
/// edges, then pushes the lock onto the held stack. The stub calls this
/// *before* blocking on the real lock, so a potential deadlock reports
/// instead of hanging.
pub fn on_acquire(tag: LockTag, addr: usize, site: &'static Location<'static>, op: AcquireOp) {
    if mode() == Mode::Disabled || tag.class == UNTAGGED {
        return;
    }
    // Copy the stack out so no RefCell borrow is live while we take the
    // registry lock or panic (a panicking emit must not poison the TLS).
    let held: Vec<Held> = THREAD.with(|t| t.borrow().held.clone());

    if let Some(prior) = held.iter().find(|h| h.addr == addr) {
        if op.shared && prior.shared {
            // A re-entrant shared read: tolerated (std semantics), and it
            // adds no ordering information.
            return;
        }
        emit(
            ViolationKind::Reentrant,
            format!(
                "lockdep: re-entrant acquisition (self-deadlock)\n  \
                 thread '{thread}' acquiring `{name}` at {site}\n  \
                 already holds the same lock (acquired at {prior_site})\n  \
                 held locks:\n{chain}",
                thread = thread_name(),
                name = class_name(tag.class),
                prior_site = prior.site,
                chain = describe_held(&held),
            ),
        );
        return;
    }

    // A try-lock cannot block, so an out-of-order probe cannot deadlock:
    // the ordering rules apply to blocking acquisitions only. The probe
    // still records observation edges and joins the held stack below.
    if op.blocking {
        for h in &held {
            if h.class == tag.class {
                let ascending = matches!(
                    (h.order, tag.order),
                    (Some(held_key), Some(new_key)) if new_key > held_key
                );
                if !ascending {
                    emit(
                        ViolationKind::SameClassOrder,
                        format!(
                            "lockdep: same-level order violation in class `{name}`\n  \
                             thread '{thread}' acquiring instance{new_key} at {site}\n  \
                             while holding instance{held_key} (acquired at {held_site})\n  \
                             instances of one class must be acquired in ascending \
                             order-key order\n  held locks:\n{chain}",
                            name = class_name(tag.class),
                            thread = thread_name(),
                            new_key = key_text(tag.order),
                            held_key = key_text(h.order),
                            held_site = h.site,
                            chain = describe_held(&held),
                        ),
                    );
                    break;
                }
            } else if let (Some(held_level), Some(new_level)) = (h.level, tag.level) {
                if new_level <= held_level {
                    emit(
                        ViolationKind::Hierarchy,
                        format!(
                            "lockdep: hierarchy-level violation\n  \
                             thread '{thread}' acquiring `{name}` (level {new_level}) at {site}\n  \
                             while holding `{held_name}` (level {held_level}, acquired at \
                             {held_site})\n  levels must be acquired in strictly ascending \
                             order — see README \"Lock-order verification\"\n  \
                             held locks:\n{chain}",
                            thread = thread_name(),
                            name = class_name(tag.class),
                            held_name = class_name(h.class),
                            held_site = h.site,
                            chain = describe_held(&held),
                        ),
                    );
                    break;
                }
            }
        }
    }

    record_edges(&held, tag, site, op);

    THREAD.with(|t| {
        t.borrow_mut().held.push(Held {
            class: tag.class,
            level: tag.level,
            order: tag.order,
            addr,
            shared: op.shared,
            site,
        })
    });
}

fn key_text(order: Option<u64>) -> String {
    match order {
        Some(key) => format!(" with order key {key}"),
        None => " without an order key".to_string(),
    }
}

fn thread_name() -> String {
    std::thread::current()
        .name()
        .unwrap_or("<unnamed>")
        .to_string()
}

/// Records `held → new` edges and, for blocking acquisitions, runs
/// incremental cycle detection over the blocking subgraph.
fn record_edges(held: &[Held], tag: LockTag, site: &'static Location<'static>, op: AcquireOp) {
    let mut fresh: Vec<u32> = Vec::new();
    THREAD.with(|t| {
        let mut state = t.borrow_mut();
        for h in held {
            if h.class == tag.class {
                continue;
            }
            if state.seen_edges.insert((h.class, tag.class, op.blocking)) {
                fresh.push(h.class);
            }
        }
    });
    if fresh.is_empty() {
        return;
    }
    fresh.sort_unstable();
    fresh.dedup();

    let mut cycle_report: Option<String> = None;
    {
        let mut reg = lock_registry();
        let mut check: Vec<u32> = Vec::new();
        for &src in &fresh {
            let witness_site = held
                .iter()
                .find(|h| h.class == src)
                .map(|h| h.site)
                .expect("edge source is held");
            let witness = format!(
                "thread '{thread}' held `{src_name}` (acquired at {witness_site}) \
                 while acquiring `{dst_name}` at {site}",
                thread = thread_name(),
                src_name = reg
                    .classes
                    .get(src as usize)
                    .map(|c| c.name.as_str())
                    .unwrap_or("?"),
                dst_name = reg
                    .classes
                    .get(tag.class as usize)
                    .map(|c| c.name.as_str())
                    .unwrap_or("?"),
            );
            let edge = reg
                .edges
                .entry(src)
                .or_default()
                .entry(tag.class)
                .or_insert(EdgeInfo {
                    blocking: false,
                    witness,
                });
            if op.blocking && !edge.blocking {
                edge.blocking = true;
                check.push(src);
            }
        }
        // A new blocking edge src → new closes a cycle iff `new` already
        // reaches src through blocking edges.
        for &src in &check {
            if let Some(path) = blocking_path(&reg, tag.class, src) {
                cycle_report = Some(render_cycle(&reg, held, tag, site, src, &path));
                break;
            }
        }
    }
    if let Some(report) = cycle_report {
        emit(ViolationKind::Cycle, report);
    }
}

/// DFS over blocking edges from `from` to `to`; returns the class path
/// `[from, ..., to]` if reachable.
fn blocking_path(reg: &Registry, from: u32, to: u32) -> Option<Vec<u32>> {
    let mut stack = vec![vec![from]];
    let mut visited = HashSet::new();
    visited.insert(from);
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("paths are non-empty");
        if last == to {
            return Some(path);
        }
        if let Some(next) = reg.edges.get(&last) {
            for (&dst, edge) in next {
                if edge.blocking && visited.insert(dst) {
                    let mut longer = path.clone();
                    longer.push(dst);
                    stack.push(longer);
                }
            }
        }
    }
    None
}

fn render_cycle(
    reg: &Registry,
    held: &[Held],
    tag: LockTag,
    site: &'static Location<'static>,
    src: u32,
    path: &[u32],
) -> String {
    let name = |id: u32| {
        reg.classes
            .get(id as usize)
            .map(|c| c.name.clone())
            .unwrap_or_else(|| format!("class#{id}"))
    };
    let mut report = format!(
        "lockdep: lock-order cycle (potential deadlock)\n  \
         thread '{thread}' acquiring `{new}` at {site}\n  \
         while holding `{held_name}`, which closes the cycle:\n",
        thread = thread_name(),
        new = name(tag.class),
        held_name = name(src),
    );
    // This thread's chain.
    let held_chain: String = held
        .iter()
        .map(|h| format!("    - `{}` (acquired at {})\n", name(h.class), h.site))
        .collect();
    report.push_str("  this acquisition chain:\n");
    report.push_str(&held_chain);
    report.push_str(&format!(
        "    - `{}` (acquiring at {site})\n",
        name(tag.class)
    ));
    // The recorded conflicting chain(s): each edge along new ⇝ src.
    report.push_str("  conflicting recorded chain:\n");
    for pair in path.windows(2) {
        if let Some(edge) = reg.edges.get(&pair[0]).and_then(|m| m.get(&pair[1])) {
            report.push_str(&format!(
                "    - `{}` -> `{}`: {}\n",
                name(pair[0]),
                name(pair[1]),
                edge.witness
            ));
        }
    }
    report
}

/// Removes the lock at `addr` from the thread's held stack (guard drop,
/// or the release half of a condvar wait). Tolerates an absent entry —
/// a guard dropped while its condvar wait already popped the lock.
pub fn on_release(addr: usize) {
    if mode() == Mode::Disabled {
        return;
    }
    // TLS may already be torn down when guards drop during thread exit.
    let _ = THREAD.try_with(|t| {
        let mut state = t.borrow_mut();
        if let Some(i) = state.held.iter().rposition(|h| h.addr == addr) {
            state.held.remove(i);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global mode/registry.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[track_caller]
    fn here() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn null_tags_are_invisible() {
        let _serial = serial();
        set_mode(Mode::Collect);
        take_violations();
        let tag = LockTag::null();
        on_acquire(tag, 1, here(), AcquireOp::blocking());
        on_acquire(tag, 1, here(), AcquireOp::blocking());
        assert!(take_violations().is_empty());
    }

    #[test]
    fn interning_is_stable_and_level_conflicts_are_refused() {
        let _serial = serial();
        set_mode(Mode::Collect);
        let a = tag_for(Class::new("unit.intern", 7));
        let b = tag_for(Class::new("unit.intern", 7).with_order(3));
        assert_eq!(a.class, b.class);
        assert_eq!(b.order, Some(3));
        let conflict = std::panic::catch_unwind(|| tag_for(Class::new("unit.intern", 8)));
        assert!(conflict.is_err(), "level conflict must panic");
    }

    #[test]
    fn auto_classes_are_per_callsite() {
        let _serial = serial();
        set_mode(Mode::Collect);
        let site_a = here();
        let site_b = here();
        let a1 = auto_tag(site_a);
        let a2 = auto_tag(site_a);
        let b = auto_tag(site_b);
        assert_eq!(a1.class, a2.class);
        assert_ne!(a1.class, b.class);
        assert_eq!(a1.level, None);
    }

    #[test]
    fn reentrant_acquisition_reports() {
        let _serial = serial();
        set_mode(Mode::Collect);
        take_violations();
        let tag = tag_for(Class::new("unit.reentrant", 11));
        on_acquire(tag, 0x10, here(), AcquireOp::blocking());
        on_acquire(tag, 0x10, here(), AcquireOp::blocking());
        let violations = take_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::Reentrant);
        assert!(violations[0].report.contains("unit.reentrant"));
        on_release(0x10);
    }

    #[test]
    fn release_tolerates_unknown_addresses() {
        let _serial = serial();
        set_mode(Mode::Collect);
        on_release(0xdead_beef);
        assert!(take_violations().is_empty());
    }
}
