//! Static source conformance: every lock in `crates/` and `src/` must
//! route through the instrumented `third_party/parking_lot` stub, or the
//! dynamic verifier has a blind spot. This test walks the tree and fails
//! on any raw standard-library `Mutex`/`RwLock`/`Condvar` use outside the
//! explicit allowlist below (each entry carries its justification).
//!
//! Comments in this file spell the forbidden module path with a space
//! (`std:: sync`) so the scanner does not flag its own source.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Files allowed to keep raw `std::sync` locks, and why. Paths are
/// relative to the repo root with `/` separators.
const ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/lockdep/src/lib.rs",
        "the verifier's own registry cannot route through the stub it \
         instruments without recursing into itself",
    ),
    (
        "crates/lockdep/tests/violations.rs",
        "the test-serialization gate must stay invisible to the verifier \
         under test, or it would appear in every report's held chain",
    ),
];

/// The forbidden idents, assembled at runtime so this file's own source
/// does not trip the scanner.
fn forbidden_names() -> Vec<String> {
    ["Mutex", "RwLock", "Condvar"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn repo_root() -> PathBuf {
    // crates/lockdep -> crates -> root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels below the repo root")
        .to_path_buf()
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target/` never appears under crates/ or src/, but be safe.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True if `name` occurs in `list` (the inside of a `use std::sync::{...}`
/// brace list) as a whole path segment, including one level of nesting
/// (`atomic::{AtomicBool, Ordering}` does not hide `Mutex`).
fn brace_list_contains(list: &str, name: &str) -> bool {
    let mut rest = list;
    while let Some(pos) = rest.find(name) {
        let before_ok = pos == 0
            || !is_ident_char(rest[..pos].chars().next_back().unwrap_or(' '))
            || rest[..pos].ends_with("::");
        let after = &rest[pos + name.len()..];
        let after_ok = after.chars().next().is_none_or(|c| !is_ident_char(c));
        // `MutexGuard` must not match `Mutex`; `sync::Mutex as M` must.
        if before_ok && after_ok && !rest[..pos].ends_with("::") {
            return true;
        }
        rest = &rest[pos + name.len()..];
    }
    false
}

/// Scans one file's source for forbidden lock tokens; returns the
/// 1-based line numbers of hits.
fn scan(source: &str, names: &[String]) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    // The prefix is assembled at runtime so it cannot match this file.
    let prefix = format!("std::sync{}", "::");
    // Direct qualified uses: std:: sync::Mutex / RwLock / Condvar.
    for (i, line) in source.lines().enumerate() {
        if let Some(pos) = line.find(&prefix) {
            let tail = &line[pos + prefix.len()..];
            for name in names {
                if tail.starts_with(name.as_str())
                    && tail[name.len()..]
                        .chars()
                        .next()
                        .is_none_or(|c| !is_ident_char(c))
                {
                    hits.push((i + 1, format!("{prefix}{name}")));
                }
            }
        }
    }
    // Brace-list imports: `use std:: sync::{Arc, Mutex}` (possibly
    // spanning lines). Walk each occurrence and match the braces.
    let use_prefix = format!("{prefix}{{");
    let mut search = source;
    let mut offset = 0usize;
    while let Some(pos) = search.find(&use_prefix) {
        let body_start = pos + use_prefix.len();
        let mut depth = 1usize;
        let mut end = body_start;
        for (j, c) in search[body_start..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = body_start + j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let list = &search[body_start..end];
        let line = source[..offset + pos].matches('\n').count() + 1;
        for name in names {
            if brace_list_contains(list, name) {
                hits.push((line, format!("use {prefix}{{.. {name} ..}}")));
            }
        }
        offset += end;
        search = &search[end..];
    }
    hits.sort();
    hits.dedup();
    hits
}

#[test]
fn no_raw_std_sync_locks_outside_the_stub() {
    let root = repo_root();
    let names = forbidden_names();
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    rust_files(&root.join("src"), &mut files);
    assert!(
        files.len() > 20,
        "scanner found only {} files — wrong root?",
        files.len()
    );

    let allow: BTreeSet<&str> = ALLOWLIST.iter().map(|(p, _)| *p).collect();
    let mut offenders = Vec::new();
    let mut used_allowlist: BTreeSet<&str> = BTreeSet::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .expect("scanned files live under the root")
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path).expect("readable source");
        let hits = scan(&source, &names);
        if hits.is_empty() {
            continue;
        }
        if let Some(entry) = allow.get(rel.as_str()) {
            used_allowlist.insert(*entry);
            continue;
        }
        for (line, what) in hits {
            offenders.push(format!("  {rel}:{line}: {what}"));
        }
    }
    assert!(
        offenders.is_empty(),
        "raw std::sync locks bypass the lockdep-instrumented parking_lot \
         stub — migrate them (Mutex::new / new_in) or add a justified \
         allowlist entry:\n{}",
        offenders.join("\n")
    );
    // Stale allowlist entries hide future regressions: prune them.
    for (path, _) in ALLOWLIST {
        assert!(
            used_allowlist.contains(path),
            "allowlist entry `{path}` no longer matches any hit — remove it"
        );
    }
}

#[test]
fn scanner_catches_the_patterns_it_claims_to() {
    let names = forbidden_names();
    let qualified = format!("let m = std::sync{}Mutex::new(0);", "::");
    assert_eq!(scan(&qualified, &names).len(), 1);

    let braced = format!("use std::sync{}{{Arc, Mutex}};", "::");
    assert_eq!(scan(&braced, &names).len(), 1);

    let multiline = format!("use std::sync{}{{\n    Arc,\n    RwLock,\n}};", "::");
    assert_eq!(scan(&multiline, &names).len(), 1);

    let nested = format!(
        "use std::sync{}{{atomic::{{AtomicBool, Ordering}}, Condvar}};",
        "::"
    );
    assert_eq!(scan(&nested, &names).len(), 1);

    let clean = format!(
        "use std::sync{}{{mpsc, Arc}};\nlet g: std::sync{}MutexGuard<u32>;",
        "::", "::"
    );
    assert!(scan(&clean, &names).is_empty(), "no false positives");
}
