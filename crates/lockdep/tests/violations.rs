//! Would-fail coverage for the verifier: each test builds a deliberate
//! lock-order bug out of real `parking_lot` stub locks and asserts the
//! collected report names both acquisition chains. A final test drives a
//! condvar round trip to prove the release-and-reacquire is modeled (no
//! false positive).
//!
//! The verifier's mode and class graph are process-global, so every test
//! (a) serializes on one gate, (b) uses class names unique to itself —
//! the subgraphs stay disjoint and one test's edges cannot close another
//! test's cycles.

use std::sync::Arc;

use parking_lot::lockdep::{self, Class, Mode, Violation, ViolationKind};
use parking_lot::{Condvar, Mutex};

/// Serializes tests and puts the verifier in collect mode for the scope
/// of one test.
fn collect() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    lockdep::set_mode(Mode::Collect);
    lockdep::take_violations();
    guard
}

fn reports_of(kind: ViolationKind) -> Vec<Violation> {
    lockdep::take_violations()
        .into_iter()
        .filter(|v| v.kind == kind)
        .collect()
}

#[test]
fn abba_inversion_reports_both_chains() {
    let _serial = collect();
    let a = Arc::new(Mutex::new_in(0u32, Class::new("viol.abba_a2", 301)));
    let b = Arc::new(Mutex::new_in(0u32, Class::new("viol.abba_b2", 302)));

    // Legal direction: A (301) then B (302).
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // Inverted direction on another thread: B then A. The hierarchy
    // check fires (301 <= 302) and the edge B -> A closes the A -> B
    // cycle; both reports must name both chains.
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    std::thread::spawn(move || {
        let _gb = b2.lock();
        let _ga = a2.lock();
    })
    .join()
    .expect("collect mode never panics");

    let cycles = reports_of(ViolationKind::Cycle);
    assert_eq!(cycles.len(), 1, "one ABBA cycle expected");
    let report = &cycles[0].report;
    assert!(report.contains("viol.abba_a2"), "names class A: {report}");
    assert!(report.contains("viol.abba_b2"), "names class B: {report}");
    assert!(
        report.contains("this acquisition chain"),
        "names the acquiring thread's chain: {report}"
    );
    assert!(
        report.contains("conflicting recorded chain"),
        "names the recorded witness chain: {report}"
    );
    assert!(
        report.contains("violations.rs"),
        "callsites point into this test: {report}"
    );
}

#[test]
fn hierarchy_level_violation_names_both_locks() {
    let _serial = collect();
    let outer = Mutex::new_in((), Class::new("viol.hier_outer", 310));
    let inner = Mutex::new_in((), Class::new("viol.hier_inner", 320));

    // Descending acquisition: inner (320) then outer (310).
    let _gi = inner.lock();
    let _go = outer.lock();
    drop((_go, _gi));

    let violations = reports_of(ViolationKind::Hierarchy);
    assert_eq!(violations.len(), 1, "one hierarchy violation expected");
    let report = &violations[0].report;
    assert!(report.contains("viol.hier_outer"), "{report}");
    assert!(report.contains("viol.hier_inner"), "{report}");
    assert!(report.contains("level 310"), "{report}");
    assert!(report.contains("level 320"), "{report}");
    assert!(report.contains("held locks"), "{report}");
    assert!(report.contains("violations.rs"), "{report}");
}

#[test]
fn same_level_gate_order_violation_is_detected() {
    let _serial = collect();
    let gate = |key: u64| Mutex::new_in((), Class::new("viol.gate", 330).with_order(key));
    let g3 = gate(3);
    let g7 = gate(7);

    // Ascending is the contract: 3 then 7 is clean.
    {
        let _a = g3.lock();
        let _b = g7.lock();
    }
    assert!(
        reports_of(ViolationKind::SameClassOrder).is_empty(),
        "ascending same-class nesting is legal"
    );

    // Descending: 7 then 3 must report, naming both instances.
    let _b = g7.lock();
    let _a = g3.lock();
    let violations = reports_of(ViolationKind::SameClassOrder);
    assert_eq!(violations.len(), 1, "one gate-order violation expected");
    let report = &violations[0].report;
    assert!(report.contains("viol.gate"), "{report}");
    assert!(report.contains("order key 3"), "{report}");
    assert!(report.contains("order key 7"), "{report}");
    assert!(report.contains("violations.rs"), "{report}");
}

#[test]
fn try_lock_records_observation_edges_without_cycles() {
    let _serial = collect();
    let a = Arc::new(Mutex::new_in(0u32, Class::new("viol.try_a", 340)));
    let b = Arc::new(Mutex::new_in(0u32, Class::new("viol.try_b", 341)));

    // A -> B via blocking locks.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // B -> A via try_lock only: records an observation edge, which must
    // NOT close the cycle (a try-lock cannot block, so it cannot
    // deadlock), and must not trip the hierarchy check either.
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    std::thread::spawn(move || {
        let _gb = b2.lock();
        let _ga = a2.try_lock().expect("uncontended");
    })
    .join()
    .expect("no panic in collect mode");

    assert!(
        lockdep::take_violations().is_empty(),
        "observation edges never complete blocking cycles"
    );
}

#[test]
fn condvar_wait_models_release_and_reacquire() {
    let _serial = collect();
    // The waiter sits on `signal` (level 350) while the notifier takes
    // `signal` and THEN `downstream` (level 351). If the wait failed to
    // release `signal` from the held stack, the waiter's wake-up path
    // below — acquiring `downstream` while "holding" `signal` — would be
    // fine, but the notifier's plain lock would record edges against a
    // phantom holder; worse, a waiter that re-acquired without checking
    // would miss real inversions. Drive the full round trip and assert
    // zero violations *and* that the reacquire is visible as a fresh
    // acquisition (nesting `downstream` under the re-held `signal` is
    // clean, 350 < 351).
    let pair = Arc::new((
        Mutex::new_in(false, Class::new("viol.cv_signal", 350)),
        Condvar::new(),
    ));
    let downstream = Arc::new(Mutex::new_in(0u32, Class::new("viol.cv_down", 351)));

    let (pair2, down2) = (Arc::clone(&pair), Arc::clone(&downstream));
    let waiter = std::thread::spawn(move || {
        let (m, cv) = &*pair2;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        // The re-held mutex is on the stack again: nest below it.
        *down2.lock() += 1;
    });

    {
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        *ready = true;
        cv.notify_all();
        drop(ready);
    }
    waiter.join().expect("waiter must not report");

    assert!(
        lockdep::take_violations().is_empty(),
        "a condvar round trip is violation-free"
    );
}

#[test]
fn condvar_wait_releases_the_mutex_for_ordering_purposes() {
    let _serial = collect();
    // While parked in `wait`, the mutex must NOT count as held: acquiring
    // a *lower*-level lock after the wait returns on a fresh statement
    // sequence — mutex dropped first — is legal. Model the interesting
    // half directly: waiter holds cv mutex (level 360), waits; on wake it
    // drops the guard, then takes a level-355 lock. Without the release
    // modeling, the held stack would still contain level 360 at that
    // point and report a phantom hierarchy violation.
    let pair = Arc::new((
        Mutex::new_in(false, Class::new("viol.cv2_signal", 360)),
        Condvar::new(),
    ));
    let lower = Arc::new(Mutex::new_in(0u32, Class::new("viol.cv2_lower", 355)));

    let (pair2, lower2) = (Arc::clone(&pair), Arc::clone(&lower));
    let waiter = std::thread::spawn(move || {
        let (m, cv) = &*pair2;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        *lower2.lock() += 1;
    });

    {
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
    }
    waiter.join().expect("waiter must not report");

    assert!(
        lockdep::take_violations().is_empty(),
        "wait releases the mutex; post-wait descending acquisition on a \
         clean stack is legal"
    );
}
