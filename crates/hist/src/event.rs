use std::fmt;

use lrc_sync::{BarrierId, LockId};
use lrc_vclock::ProcId;

/// One recorded operation of one processor.
///
/// Ordinary accesses carry their bytes: a read records the value it
/// *observed*, which is what the checker must explain. Synchronization
/// events carry the order the engine assigned them — the `grant` sequence
/// of a lock (numbered by the lock table) and the `episode` of a barrier
/// (numbered by the barrier set) are the recorded happens-before edges.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HistEvent {
    /// A read of `value.len()` bytes at `addr` that observed `value`.
    Read {
        /// Byte address of the access.
        addr: u64,
        /// The bytes the processor observed.
        value: Vec<u8>,
    },
    /// A write of `value` at `addr`.
    Write {
        /// Byte address of the access.
        addr: u64,
        /// The bytes written.
        value: Vec<u8>,
    },
    /// A successful lock acquire; `grant` is the engine-assigned per-lock
    /// grant order (1 for the first acquire of the lock).
    Acquire {
        /// The lock.
        lock: LockId,
        /// Position of this grant in the lock's total grant order.
        grant: u64,
    },
    /// A lock release; `grant` matches the acquire that opened this
    /// critical section.
    Release {
        /// The lock.
        lock: LockId,
        /// The grant this release closes.
        grant: u64,
    },
    /// A barrier crossing; `episode` counts completed uses of this
    /// barrier (0 for the first).
    Barrier {
        /// The barrier.
        barrier: BarrierId,
        /// Which episode of the barrier this arrival belongs to.
        episode: u64,
    },
    /// The processor was declared dead (crash recovery). Everything before
    /// this marker really happened and stays subject to checking; the
    /// checker excuses the processor from barrier episodes it missed while
    /// dead. Events after the marker belong to the processor's rejoined
    /// incarnation.
    Crash,
}

impl HistEvent {
    /// The access range `(addr, len)` if this is a read or write.
    pub fn access(&self) -> Option<(u64, usize, bool)> {
        match self {
            HistEvent::Read { addr, value } => Some((*addr, value.len(), false)),
            HistEvent::Write { addr, value } => Some((*addr, value.len(), true)),
            _ => None,
        }
    }
}

impl fmt::Display for HistEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn hex(bytes: &[u8]) -> String {
            bytes.iter().map(|b| format!("{b:02x}")).collect()
        }
        match self {
            HistEvent::Read { addr, value } => {
                write!(f, "R @{addr:#x}/{} = {}", value.len(), hex(value))
            }
            HistEvent::Write { addr, value } => {
                write!(f, "W @{addr:#x}/{} := {}", value.len(), hex(value))
            }
            HistEvent::Acquire { lock, grant } => write!(f, "acq {lock} (grant {grant})"),
            HistEvent::Release { lock, grant } => write!(f, "rel {lock} (grant {grant})"),
            HistEvent::Barrier { barrier, episode } => {
                write!(f, "bar {barrier} (episode {episode})")
            }
            HistEvent::Crash => write!(f, "CRASH (declared dead)"),
        }
    }
}

/// A complete recorded run: one program-ordered event log per processor.
///
/// Obtained from [`HistoryRecorder::finish`](crate::HistoryRecorder) or
/// built directly with [`History::from_logs`] (for tests and tools).
/// Check it with [`History::check`](crate::History::check).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct History {
    pub(crate) logs: Vec<Vec<HistEvent>>,
}

impl History {
    /// Builds a history from per-processor logs (index = processor id).
    pub fn from_logs(logs: Vec<Vec<HistEvent>>) -> Self {
        History { logs }
    }

    /// Number of processors.
    pub fn n_procs(&self) -> usize {
        self.logs.len()
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.logs.iter().map(Vec::len).sum()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.logs.iter().all(Vec::is_empty)
    }

    /// Processor `p`'s log, in program order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn log(&self, p: ProcId) -> &[HistEvent] {
        &self.logs[p.index()]
    }

    /// Renders the history as a per-processor listing, at most
    /// `per_proc` events each (0 = unlimited) — the thread-dump attached
    /// to failure reports.
    pub fn render(&self, per_proc: usize) -> String {
        use fmt::Write;
        let mut out = String::new();
        for (p, log) in self.logs.iter().enumerate() {
            let _ = writeln!(out, "p{p} ({} events):", log.len());
            let shown = if per_proc == 0 { log.len() } else { per_proc };
            for (i, ev) in log.iter().take(shown).enumerate() {
                let _ = writeln!(out, "  [{i}] {ev}");
            }
            if log.len() > shown {
                let _ = writeln!(out, "  ... {} more", log.len() - shown);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_all_variants() {
        let events = [
            HistEvent::Read {
                addr: 0x40,
                value: vec![7, 0],
            },
            HistEvent::Write {
                addr: 0x40,
                value: vec![0xff],
            },
            HistEvent::Acquire {
                lock: LockId::new(1),
                grant: 3,
            },
            HistEvent::Release {
                lock: LockId::new(1),
                grant: 3,
            },
            HistEvent::Barrier {
                barrier: BarrierId::new(0),
                episode: 2,
            },
        ];
        let rendered: Vec<String> = events.iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].contains("R @0x40/2 = 0700"));
        assert!(rendered[1].contains("W @0x40/1 := ff"));
        assert!(rendered[2].contains("grant 3"));
        assert!(rendered[3].contains("rel"));
        assert!(rendered[4].contains("episode 2"));
        assert!(HistEvent::Crash.to_string().contains("CRASH"));
        assert_eq!(HistEvent::Crash.access(), None);
    }

    #[test]
    fn history_accessors_and_render() {
        let h = History::from_logs(vec![
            vec![HistEvent::Write {
                addr: 0,
                value: vec![1],
            }],
            vec![],
        ]);
        assert_eq!(h.n_procs(), 2);
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
        assert_eq!(h.log(ProcId::new(1)), &[]);
        let dump = h.render(0);
        assert!(dump.contains("p0 (1 events)"));
        assert!(dump.contains("W @0x0"));
        let clipped = History::from_logs(vec![vec![
            HistEvent::Write {
                addr: 0,
                value: vec![1],
            };
            5
        ]])
        .render(2);
        assert!(clipped.contains("... 3 more"));
    }
}
