//! Recorded-history conformance checking for threaded DSM runs.
//!
//! The paper's central claim is that lazy release consistency is
//! indistinguishable from sequential consistency for properly-labeled
//! (data-race-free) programs. The single-threaded simulator checks that
//! claim against a global replay order; threaded runs have no such order,
//! so this crate turns the claim into an executable oracle over **recorded
//! histories**, in the spirit of history-based linearizability proofs and
//! lazy-coherence model checking:
//!
//! 1. A low-overhead [`HistoryRecorder`] collects one append-only log per
//!    processor: every read (with the bytes it observed), every write,
//!    and every synchronization operation. The *engine* assigns the
//!    synchronization edges — the lock table numbers every grant in its
//!    lock's total grant order, the barrier set numbers every episode —
//!    under each object's own serialization (there is no global protocol
//!    lock), so the recorded happens-before relation is exactly the one
//!    the protocol acted on.
//! 2. [`History::check`] verifies the run:
//!    * the history is **data-race-free** (conflicting accesses are
//!      ordered by the recorded happens-before relation, compared with
//!      event-level [`lrc_vclock::VectorClock`]s);
//!    * every read is **justified** — it returned the value of the
//!      happens-before-latest write visible at the reader (the LRC
//!      notion: the intervals visible at the reader's last acquire);
//!    * a **sequentially consistent witness** exists: a single total
//!      order of all events, consistent with program order and the
//!      synchronization edges, in which every read returns the most
//!      recent write. The search is a backtracking scheduler pruned by
//!      the recorded happens-before edges (DPOR-style: only genuinely
//!      concurrent events ever need reordering).
//!
//! A correct protocol passes all three on every data-race-free program; a
//! broken protocol (see `ProtocolMutation` in `lrc-core`) leaves a read
//! that no legal order can explain, and the checker rejects the history
//! with a diagnostic naming the event.
//!
//! # Example
//!
//! ```
//! use lrc_hist::{HistoryRecorder, CheckBudget};
//! use lrc_sync::LockId;
//! use lrc_vclock::ProcId;
//!
//! let rec = HistoryRecorder::new(2);
//! let (p0, p1, l) = (ProcId::new(0), ProcId::new(1), LockId::new(0));
//! // p0 publishes 7 under a lock; p1 acquires later (grant 2) and reads
//! // it. The grant numbers come from the engine's lock table.
//! rec.acquire(p0, l, 1);
//! rec.write(p0, 64, &7u64.to_le_bytes());
//! rec.release(p0, l, 1);
//! rec.acquire(p1, l, 2);
//! rec.read(p1, 64, &7u64.to_le_bytes());
//! rec.release(p1, l, 2);
//! let report = rec.finish().check(&CheckBudget::default()).unwrap();
//! assert_eq!(report.events, 6);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod event;
mod record;

pub use check::{CheckBudget, CheckReport, EventSite, HistError, Witness};
pub use event::{HistEvent, History};
pub use record::HistoryRecorder;
