use std::fmt;
use std::sync::Arc;

use lrc_sync::{BarrierId, LockId};
use lrc_vclock::ProcId;
use parking_lot::lockdep::classes;
use parking_lot::Mutex;

use crate::{HistEvent, History};

/// Collects per-processor event logs from a running engine.
///
/// The engines call the hooks below from their public entry points: reads
/// and writes from the fast path (each processor appends only to its own
/// log, so the per-log mutex is uncontended), synchronization operations
/// from the slow path. The recorder assigns no ordering of its own: the
/// *engine* supplies each acquire's position in its lock's total grant
/// order (assigned by the lock table under that lock's serialization) and
/// each barrier crossing's episode (assigned by the barrier set). That is
/// the sync-order contract that lets engines run slow paths for different
/// locks and pages concurrently — there is no global protocol lock for the
/// recorder to shelter under, and none is needed: per-lock grant numbers
/// and per-barrier episodes are exactly the happens-before edges the
/// checker consumes. Attach one recorder to one engine via
/// `attach_recorder` (`lrc-core`, `lrc-eager`, or `Dsm::attach_recorder`
/// in `lrc-dsm`), run the program, then take the [`History`] with
/// [`HistoryRecorder::finish`].
pub struct HistoryRecorder {
    n_procs: usize,
    logs: Vec<Mutex<Vec<HistEvent>>>,
    /// Read-sampling period: record every `sample`-th read per processor
    /// (1 = record everything, the default). Writes and synchronization
    /// events are always recorded — a dropped write would leave later
    /// sampled reads of its bytes unjustifiable, so only the *observation*
    /// side can be thinned.
    sample: u32,
    /// Per-processor read counters driving the deterministic 1-in-N
    /// sampling decision.
    reads_seen: Vec<Mutex<u64>>,
}

impl HistoryRecorder {
    /// A recorder for an `n_procs`-processor engine.
    pub fn new(n_procs: usize) -> Arc<Self> {
        Self::sampled(n_procs, 1)
    }

    /// A recorder that keeps only every `sample`-th read per processor
    /// (deterministic position-based sampling; the first read is always
    /// kept). Writes, lock operations, barriers, and crash markers are
    /// recorded in full, so the checker's happens-before graph and write
    /// set stay exact — only read *coverage* is thinned, bounding recording
    /// overhead on long runs at a known miss rate.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is zero.
    pub fn sampled(n_procs: usize, sample: u32) -> Arc<Self> {
        assert!(sample > 0, "sampling period must be at least 1");
        Arc::new(HistoryRecorder {
            n_procs,
            logs: (0..n_procs)
                .map(|_| Mutex::new_in(Vec::new(), classes::HIST_LOG))
                .collect(),
            sample,
            reads_seen: (0..n_procs)
                .map(|_| Mutex::new_in(0, classes::HIST_READS_SEEN))
                .collect(),
        })
    }

    /// Number of processors this recorder covers.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// The read-sampling period (1 = every read recorded).
    pub fn sample_period(&self) -> u32 {
        self.sample
    }

    fn push(&self, p: ProcId, event: HistEvent) {
        self.logs[p.index()].lock().push(event);
    }

    /// Records a read that observed `value` (every `sample`-th read per
    /// processor when sampling).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn read(&self, p: ProcId, addr: u64, value: &[u8]) {
        if self.sample > 1 {
            let mut seen = self.reads_seen[p.index()].lock();
            let keep = (*seen).is_multiple_of(self.sample as u64);
            *seen += 1;
            if !keep {
                return;
            }
        }
        self.push(
            p,
            HistEvent::Read {
                addr,
                value: value.to_vec(),
            },
        );
    }

    /// Records a write of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn write(&self, p: ProcId, addr: u64, value: &[u8]) {
        self.push(
            p,
            HistEvent::Write {
                addr,
                value: value.to_vec(),
            },
        );
    }

    /// Records a *successful* lock acquire. `grant` is the engine-assigned
    /// position of this acquire in `lock`'s total grant order (1 for the
    /// lock's first grant) — take it from the lock table's acquire result,
    /// which assigns it under the same serialization that hands the lock
    /// over, so no additional locking is required of the caller.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn acquire(&self, p: ProcId, lock: LockId, grant: u64) {
        self.push(p, HistEvent::Acquire { lock, grant });
    }

    /// Records a lock release closing the engine-assigned `grant` — the
    /// number the matching acquire was given (the holder is exclusive, so
    /// no grant can intervene between a processor's acquire and its
    /// release; the lock table's release reports it).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn release(&self, p: ProcId, lock: LockId, grant: u64) {
        self.push(p, HistEvent::Release { lock, grant });
    }

    /// Records a barrier arrival in the engine-assigned `episode` (0 for
    /// the barrier's first episode) — take it from the barrier set's
    /// arrival outcome, which assigns it under the set's own
    /// serialization.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn barrier(&self, p: ProcId, barrier: BarrierId, episode: u64) {
        self.push(p, HistEvent::Barrier { barrier, episode });
    }

    /// Records that `p` was declared dead (crash recovery). The engine
    /// calls this after force-releasing the dead holder's locks, so the
    /// marker sits exactly where `p`'s execution stopped; events recorded
    /// after it belong to the rejoined incarnation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn crash(&self, p: ProcId) {
        self.push(p, HistEvent::Crash);
    }

    /// Snapshots the recorded history (the recorder keeps collecting; for
    /// a finished run this is simply the complete history).
    pub fn finish(&self) -> History {
        History {
            logs: self.logs.iter().map(|log| log.lock().clone()).collect(),
        }
    }
}

impl fmt::Debug for HistoryRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let events: usize = self.logs.iter().map(|log| log.lock().len()).sum();
        write!(
            f,
            "HistoryRecorder({} procs, {events} events)",
            self.n_procs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    #[test]
    fn engine_assigned_grants_and_releases_round_trip() {
        let rec = HistoryRecorder::new(2);
        rec.acquire(p(0), LockId::new(0), 1);
        rec.release(p(0), LockId::new(0), 1);
        rec.acquire(p(1), LockId::new(0), 2);
        rec.acquire(p(0), LockId::new(3), 1); // independent order per lock
        let h = rec.finish();
        assert_eq!(
            h.log(p(0))[0],
            HistEvent::Acquire {
                lock: LockId::new(0),
                grant: 1
            }
        );
        assert_eq!(
            h.log(p(0))[1],
            HistEvent::Release {
                lock: LockId::new(0),
                grant: 1
            }
        );
        assert_eq!(
            h.log(p(1))[0],
            HistEvent::Acquire {
                lock: LockId::new(0),
                grant: 2
            }
        );
        assert_eq!(
            h.log(p(0))[2],
            HistEvent::Acquire {
                lock: LockId::new(3),
                grant: 1
            }
        );
    }

    #[test]
    fn engine_assigned_episodes_are_recorded_verbatim() {
        let rec = HistoryRecorder::new(2);
        let b = BarrierId::new(0);
        rec.barrier(p(0), b, 0);
        rec.barrier(p(1), b, 0);
        rec.barrier(p(1), b, 1);
        rec.barrier(p(0), b, 1);
        let h = rec.finish();
        let episodes: Vec<u64> = h
            .log(p(0))
            .iter()
            .chain(h.log(p(1)))
            .filter_map(|e| match e {
                HistEvent::Barrier { episode, .. } => Some(*episode),
                _ => None,
            })
            .collect();
        assert_eq!(episodes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn sampling_keeps_every_nth_read_and_all_writes() {
        let rec = HistoryRecorder::sampled(2, 3);
        assert_eq!(rec.sample_period(), 3);
        for i in 0..7u8 {
            rec.read(p(0), i as u64, &[i]);
            rec.write(p(0), i as u64, &[i]);
        }
        rec.read(p(1), 0, &[9]); // independent per-proc counter
        rec.crash(p(1));
        let h = rec.finish();
        let reads: Vec<u64> = h
            .log(p(0))
            .iter()
            .filter_map(|e| match e {
                HistEvent::Read { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(reads, vec![0, 3, 6], "reads 0, 3, 6 of 7 are kept");
        let writes = h
            .log(p(0))
            .iter()
            .filter(|e| matches!(e, HistEvent::Write { .. }))
            .count();
        assert_eq!(writes, 7, "writes are never sampled away");
        assert_eq!(h.log(p(1))[0].access(), Some((0, 1, false)));
        assert_eq!(h.log(p(1))[1], HistEvent::Crash);
    }

    #[test]
    fn accesses_carry_bytes_and_debug_counts() {
        let rec = HistoryRecorder::new(1);
        rec.write(p(0), 8, &[1, 2]);
        rec.read(p(0), 8, &[1, 2]);
        assert!(format!("{rec:?}").contains("2 events"));
        let h = rec.finish();
        assert_eq!(h.log(p(0))[1].access(), Some((8, 2, false)));
        assert_eq!(h.log(p(0))[0].access(), Some((8, 2, true)));
    }
}
