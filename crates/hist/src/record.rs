use std::fmt;
use std::sync::Arc;

use lrc_sync::{BarrierId, LockId};
use lrc_vclock::ProcId;
use parking_lot::Mutex;

use crate::{HistEvent, History};

/// Collects per-processor event logs from a running engine.
///
/// The engines call the hooks below from their public entry points: reads
/// and writes from the fast path (each processor appends only to its own
/// log, so the per-log mutex is uncontended), synchronization operations
/// from the slow path *while the engine holds its protocol lock* — which
/// is what makes the assigned grant and episode orders agree with the
/// order the protocol actually processed them in. Attach one recorder to
/// one engine via `attach_recorder` (`lrc-core`, `lrc-eager`, or
/// `Dsm::attach_recorder` in `lrc-dsm`), run the program, then take the
/// [`History`] with [`HistoryRecorder::finish`].
pub struct HistoryRecorder {
    n_procs: usize,
    logs: Vec<Mutex<Vec<HistEvent>>>,
    /// Grants handed out so far, per lock (grown on demand).
    grants: Mutex<Vec<u64>>,
    /// Arrivals seen so far, per barrier (grown on demand).
    arrivals: Mutex<Vec<u64>>,
}

impl HistoryRecorder {
    /// A recorder for an `n_procs`-processor engine.
    pub fn new(n_procs: usize) -> Arc<Self> {
        Arc::new(HistoryRecorder {
            n_procs,
            logs: (0..n_procs).map(|_| Mutex::new(Vec::new())).collect(),
            grants: Mutex::new(Vec::new()),
            arrivals: Mutex::new(Vec::new()),
        })
    }

    /// Number of processors this recorder covers.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    fn push(&self, p: ProcId, event: HistEvent) {
        self.logs[p.index()].lock().push(event);
    }

    /// Records a read that observed `value`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn read(&self, p: ProcId, addr: u64, value: &[u8]) {
        self.push(
            p,
            HistEvent::Read {
                addr,
                value: value.to_vec(),
            },
        );
    }

    /// Records a write of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn write(&self, p: ProcId, addr: u64, value: &[u8]) {
        self.push(
            p,
            HistEvent::Write {
                addr,
                value: value.to_vec(),
            },
        );
    }

    /// Records a *successful* lock acquire and assigns it the next grant
    /// in `lock`'s total grant order. Call while the engine's protocol
    /// lock serializes synchronization operations.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn acquire(&self, p: ProcId, lock: LockId) {
        let grant = {
            let mut grants = self.grants.lock();
            if grants.len() <= lock.index() {
                grants.resize(lock.index() + 1, 0);
            }
            grants[lock.index()] += 1;
            grants[lock.index()]
        };
        self.push(p, HistEvent::Acquire { lock, grant });
    }

    /// Records a lock release. The release closes the lock's most recent
    /// grant — the holder is exclusive, so no grant can intervene between
    /// a processor's acquire and its release.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn release(&self, p: ProcId, lock: LockId) {
        let grant = {
            let grants = self.grants.lock();
            grants.get(lock.index()).copied().unwrap_or(0)
        };
        self.push(p, HistEvent::Release { lock, grant });
    }

    /// Records a barrier arrival and assigns its episode (arrival count
    /// divided by the processor count — every episode needs all
    /// processors). Call under the engine's protocol lock.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn barrier(&self, p: ProcId, barrier: BarrierId) {
        let episode = {
            let mut arrivals = self.arrivals.lock();
            if arrivals.len() <= barrier.index() {
                arrivals.resize(barrier.index() + 1, 0);
            }
            let episode = arrivals[barrier.index()] / self.n_procs as u64;
            arrivals[barrier.index()] += 1;
            episode
        };
        self.push(p, HistEvent::Barrier { barrier, episode });
    }

    /// Snapshots the recorded history (the recorder keeps collecting; for
    /// a finished run this is simply the complete history).
    pub fn finish(&self) -> History {
        History {
            logs: self.logs.iter().map(|log| log.lock().clone()).collect(),
        }
    }
}

impl fmt::Debug for HistoryRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let events: usize = self.logs.iter().map(|log| log.lock().len()).sum();
        write!(
            f,
            "HistoryRecorder({} procs, {events} events)",
            self.n_procs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    #[test]
    fn grants_count_per_lock_and_releases_match() {
        let rec = HistoryRecorder::new(2);
        rec.acquire(p(0), LockId::new(0));
        rec.release(p(0), LockId::new(0));
        rec.acquire(p(1), LockId::new(0));
        rec.acquire(p(0), LockId::new(3)); // independent order per lock
        let h = rec.finish();
        assert_eq!(
            h.log(p(0))[0],
            HistEvent::Acquire {
                lock: LockId::new(0),
                grant: 1
            }
        );
        assert_eq!(
            h.log(p(0))[1],
            HistEvent::Release {
                lock: LockId::new(0),
                grant: 1
            }
        );
        assert_eq!(
            h.log(p(1))[0],
            HistEvent::Acquire {
                lock: LockId::new(0),
                grant: 2
            }
        );
        assert_eq!(
            h.log(p(0))[2],
            HistEvent::Acquire {
                lock: LockId::new(3),
                grant: 1
            }
        );
    }

    #[test]
    fn episodes_advance_every_n_arrivals() {
        let rec = HistoryRecorder::new(2);
        let b = BarrierId::new(0);
        rec.barrier(p(0), b);
        rec.barrier(p(1), b);
        rec.barrier(p(1), b);
        rec.barrier(p(0), b);
        let h = rec.finish();
        let episodes: Vec<u64> = h
            .log(p(0))
            .iter()
            .chain(h.log(p(1)))
            .filter_map(|e| match e {
                HistEvent::Barrier { episode, .. } => Some(*episode),
                _ => None,
            })
            .collect();
        assert_eq!(episodes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn accesses_carry_bytes_and_debug_counts() {
        let rec = HistoryRecorder::new(1);
        rec.write(p(0), 8, &[1, 2]);
        rec.read(p(0), 8, &[1, 2]);
        assert!(format!("{rec:?}").contains("2 events"));
        let h = rec.finish();
        assert_eq!(h.log(p(0))[1].access(), Some((8, 2, false)));
        assert_eq!(h.log(p(0))[0].access(), Some((8, 2, true)));
    }
}
