// The error type is deliberately rich (rendered events, expected bytes,
// blocked-frontier listings): it IS the failure report the conformance
// suites print. The Err path is cold, so the large-variant lint trades
// the wrong way here.
#![allow(clippy::result_large_err)]

use std::collections::{HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;

use lrc_vclock::{ProcId, VectorClock};

use crate::{HistEvent, History};

/// Where an event sits in a history, with its rendering — the unit of
/// every diagnostic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventSite {
    /// The processor whose log holds the event.
    pub proc: ProcId,
    /// Index in that processor's log.
    pub index: usize,
    /// The rendered event.
    pub event: String,
}

impl fmt::Display for EventSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.proc, self.index, self.event)
    }
}

/// Why a history failed conformance checking.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HistError {
    /// The history is not a possible recording (incomplete barrier
    /// episode, inconsistent grant order, ...). Points at a recorder or
    /// driver bug, not a protocol bug.
    Malformed(String),
    /// Two conflicting accesses are unordered by the recorded
    /// happens-before relation: the program is not properly labeled, and
    /// no consistency guarantee applies.
    Race {
        /// One access.
        first: EventSite,
        /// The other, concurrent access.
        second: EventSite,
    },
    /// A read returned bytes that differ from the happens-before-latest
    /// write visible at the reader — the LRC justification fails (§4.2:
    /// the intervals visible at the reader's last acquire do not explain
    /// the value).
    Unjustified {
        /// The offending read.
        site: EventSite,
        /// What the happens-before-latest writes say it should have seen.
        expected: Vec<u8>,
        /// What it recorded.
        got: Vec<u8>,
        /// The write that should have supplied the first differing byte,
        /// if any (`None` when the expected byte is the initial zero).
        writer: Option<EventSite>,
    },
    /// No sequentially consistent total order explains the history: the
    /// witness search exhausted every schedule compatible with program
    /// order and the synchronization edges.
    NoWitness {
        /// States the search explored before exhausting.
        explored: usize,
        /// Events scheduled in the deepest frontier reached.
        consumed: usize,
        /// Total events in the history.
        total: usize,
        /// The reads that blocked the deepest frontier (rendered).
        blocked: Vec<String>,
    },
    /// The witness search hit its state budget before finding a witness
    /// or proving none exists.
    Budget {
        /// States explored when the budget ran out.
        explored: usize,
    },
}

impl fmt::Display for HistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn hex(bytes: &[u8]) -> String {
            bytes.iter().map(|b| format!("{b:02x}")).collect()
        }
        match self {
            HistError::Malformed(detail) => write!(f, "malformed history: {detail}"),
            HistError::Race { first, second } => write!(
                f,
                "data race: {first} and {second} conflict but are unordered \
                 by the recorded happens-before relation"
            ),
            HistError::Unjustified {
                site,
                expected,
                got,
                writer,
            } => {
                write!(
                    f,
                    "unjustified read: {site} observed {} but the \
                     happens-before-latest writes visible at the reader say {}",
                    hex(got),
                    hex(expected),
                )?;
                match writer {
                    Some(w) => write!(f, " (expected supplier: {w})"),
                    None => write!(f, " (initial memory)"),
                }
            }
            HistError::NoWitness {
                explored,
                consumed,
                total,
                blocked,
            } => {
                write!(
                    f,
                    "no sequentially consistent witness: search exhausted after \
                     {explored} states; deepest schedule placed {consumed}/{total} \
                     events, then every runnable processor was blocked on a read:"
                )?;
                for b in blocked {
                    write!(f, "\n  {b}")?;
                }
                Ok(())
            }
            HistError::Budget { explored } => write!(
                f,
                "witness search exceeded its budget after {explored} states \
                 (raise CheckBudget::max_states)"
            ),
        }
    }
}

impl Error for HistError {}

/// Resource limits for [`History::check`].
#[derive(Clone, Copy, Debug)]
pub struct CheckBudget {
    /// Maximum states the sequential-consistency witness search may
    /// explore before giving up with [`HistError::Budget`]. Data-race-free
    /// histories need roughly one state per event; the budget only guards
    /// the backtracking that a *broken* protocol provokes.
    pub max_states: usize,
}

impl Default for CheckBudget {
    fn default() -> Self {
        CheckBudget {
            max_states: 1 << 20,
        }
    }
}

/// A sequentially consistent witness: one legal total order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Witness {
    /// The schedule, as `(processor, index-in-its-log)` in execution
    /// order.
    pub schedule: Vec<(ProcId, usize)>,
}

/// What a successful [`History::check`] establishes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CheckReport {
    /// Events checked.
    pub events: usize,
    /// States the witness search explored.
    pub states_explored: usize,
}

/// `(processor index, event index)` — an event's coordinates.
type Ev = (usize, usize);

/// The recorded happens-before relation, materialized: cross-processor
/// predecessor edges per event (program order stays implicit) and an
/// event-granularity vector clock per event.
struct Hb {
    preds: Vec<Vec<Vec<Ev>>>,
    clocks: Vec<Vec<VectorClock>>,
}

impl History {
    /// Full conformance check: the history must be data-race-free, every
    /// read must be justified by the happens-before-latest visible write,
    /// and a sequentially consistent witness order must exist.
    ///
    /// # Errors
    ///
    /// The first [`HistError`] found, in that order (a racy history fails
    /// with [`HistError::Race`] before any read is blamed).
    pub fn check(&self, budget: &CheckBudget) -> Result<CheckReport, HistError> {
        let hb = self.build_hb()?;
        self.find_race(&hb)?;
        self.justify_reads(&hb)?;
        let (_, states_explored) = self.search_witness(&hb, budget)?;
        Ok(CheckReport {
            events: self.len(),
            states_explored,
        })
    }

    /// Checks that the history is data-race-free under the recorded
    /// happens-before relation.
    ///
    /// # Errors
    ///
    /// [`HistError::Race`] naming the first unordered conflicting pair, or
    /// [`HistError::Malformed`].
    pub fn check_drf(&self) -> Result<(), HistError> {
        let hb = self.build_hb()?;
        self.find_race(&hb)
    }

    /// Checks every read against the happens-before-latest write covering
    /// it — the LRC-specific mode: a read is justified exactly when the
    /// intervals visible at the reader's last synchronization explain its
    /// bytes. Assumes the history is data-race-free (check
    /// [`History::check_drf`] first; on a racy history the "latest" write
    /// is ambiguous and the blame may fall on the wrong event).
    ///
    /// # Errors
    ///
    /// [`HistError::Unjustified`] for the first bad read, or
    /// [`HistError::Malformed`].
    pub fn check_justified(&self) -> Result<(), HistError> {
        let hb = self.build_hb()?;
        self.justify_reads(&hb)
    }

    /// Searches for a sequentially consistent witness: a total order of
    /// all events respecting program order and the recorded
    /// synchronization edges in which every read returns the most recent
    /// write (or the initial zero). Backtracking explores only genuinely
    /// concurrent reorderings — everything ordered by the recorded
    /// happens-before edges is never permuted. Assumes data-race-freedom
    /// (the memoization that makes the search tractable keys states by
    /// schedule positions, which determines memory only for DRF
    /// histories).
    ///
    /// # Errors
    ///
    /// [`HistError::NoWitness`], [`HistError::Budget`], or
    /// [`HistError::Malformed`].
    pub fn sc_witness(&self, budget: &CheckBudget) -> Result<Witness, HistError> {
        let hb = self.build_hb()?;
        let (witness, _) = self.search_witness(&hb, budget)?;
        Ok(witness)
    }

    /// Materializes the recorded happens-before relation: per-lock grant
    /// chains (release of grant `k` precedes the acquire of grant `k+1`),
    /// barrier episodes (everything before any arrival of an episode
    /// precedes everything after any crossing of it), and program order.
    fn build_hb(&self) -> Result<Hb, HistError> {
        let n = self.logs.len();
        let mut preds: Vec<Vec<Vec<Ev>>> = self
            .logs
            .iter()
            .map(|log| vec![Vec::new(); log.len()])
            .collect();

        // Per-lock grant chains: (grant, is_release) sorts acquires ahead
        // of the release that closes them.
        let mut locks: HashMap<u32, Vec<(u64, bool, Ev)>> = HashMap::new();
        // Barrier episodes: one arrival per processor each.
        let mut barriers: HashMap<(u32, u64), Vec<Ev>> = HashMap::new();
        for (p, log) in self.logs.iter().enumerate() {
            for (i, ev) in log.iter().enumerate() {
                match ev {
                    HistEvent::Acquire { lock, grant } => {
                        locks
                            .entry(lock.raw())
                            .or_default()
                            .push((*grant, false, (p, i)));
                    }
                    HistEvent::Release { lock, grant } => {
                        locks
                            .entry(lock.raw())
                            .or_default()
                            .push((*grant, true, (p, i)));
                    }
                    HistEvent::Barrier { barrier, episode } => {
                        barriers
                            .entry((barrier.raw(), *episode))
                            .or_default()
                            .push((p, i));
                    }
                    _ => {}
                }
            }
        }

        for (lock, mut chain) in locks {
            chain.sort_by_key(|&(grant, is_release, _)| (grant, is_release));
            for pair in chain.windows(2) {
                let (ga, rel_a, ea) = pair[0];
                let (gb, rel_b, eb) = pair[1];
                match (rel_a, rel_b) {
                    // acquire(k) then release(k): must be one critical
                    // section of one processor (program order covers it).
                    (false, true) if ga == gb => {
                        if ea.0 != eb.0 {
                            return Err(HistError::Malformed(format!(
                                "lock {lock} grant {ga}: acquired by p{} but \
                                 released by p{}",
                                ea.0, eb.0
                            )));
                        }
                    }
                    // release(k) then acquire(k+1): the synchronization
                    // edge the grantor's piggybacked knowledge rides on.
                    (true, false) if gb == ga + 1 => preds[eb.0][eb.1].push(ea),
                    _ => {
                        return Err(HistError::Malformed(format!(
                            "lock {lock}: inconsistent grant order around \
                             grants {ga} and {gb}"
                        )));
                    }
                }
            }
        }

        // A processor may legitimately miss barrier episodes only if it
        // was declared dead at some point: its log then carries a Crash
        // marker (the engine completes episodes on the survivors' behalf).
        let crashed: Vec<bool> = self
            .logs
            .iter()
            .map(|log| log.iter().any(|e| matches!(e, HistEvent::Crash)))
            .collect();
        for ((barrier, episode), group) in barriers {
            let mut seen = vec![false; n];
            for &(p, _) in &group {
                if std::mem::replace(&mut seen[p], true) {
                    return Err(HistError::Malformed(format!(
                        "barrier {barrier} episode {episode}: p{p} arrived twice"
                    )));
                }
            }
            if let Some(missing) = (0..n).find(|&p| !seen[p] && !crashed[p]) {
                return Err(HistError::Malformed(format!(
                    "barrier {barrier} episode {episode}: {} arrivals for \
                     {n} processors (p{missing} missing and never crashed)",
                    group.len()
                )));
            }
            // Crossing the barrier requires every processor's pre-arrival
            // prefix; the arrivals themselves stay mutually concurrent.
            for &(p, i) in &group {
                for &(q, j) in &group {
                    if q != p && j > 0 {
                        preds[p][i].push((q, j - 1));
                    }
                }
            }
        }

        // Event-granularity clocks by forward topological propagation
        // (Kahn): clock(e) = join of all predecessors, own entry = index+1.
        let mut clocks: Vec<Vec<VectorClock>> = self
            .logs
            .iter()
            .map(|log| vec![VectorClock::new(n); log.len()])
            .collect();
        let mut succs: HashMap<Ev, Vec<Ev>> = HashMap::new();
        let mut indegree: Vec<Vec<usize>> = self
            .logs
            .iter()
            .map(|log| vec![0usize; log.len()])
            .collect();
        for (p, log) in self.logs.iter().enumerate() {
            for i in 0..log.len() {
                let mut d = preds[p][i].len();
                if i > 0 {
                    d += 1;
                    succs.entry((p, i - 1)).or_default().push((p, i));
                }
                for &pred in &preds[p][i] {
                    succs.entry(pred).or_default().push((p, i));
                }
                indegree[p][i] = d;
            }
        }
        let mut ready: VecDeque<Ev> = VecDeque::new();
        for (p, log) in self.logs.iter().enumerate() {
            if !log.is_empty() && indegree[p][0] == 0 {
                ready.push_back((p, 0));
            }
        }
        let mut done = 0usize;
        while let Some((p, i)) = ready.pop_front() {
            let mut clock = if i > 0 {
                clocks[p][i - 1].clone()
            } else {
                VectorClock::new(n)
            };
            for &(q, j) in &preds[p][i] {
                let other = clocks[q][j].clone();
                clock.merge(&other);
            }
            clock.set(ProcId::new(p as u16), (i + 1) as u32);
            clocks[p][i] = clock;
            done += 1;
            for &(q, j) in succs.get(&(p, i)).map(Vec::as_slice).unwrap_or(&[]) {
                indegree[q][j] -= 1;
                if indegree[q][j] == 0 {
                    ready.push_back((q, j));
                }
            }
        }
        if done != self.len() {
            // Real recordings cannot produce a cycle (every edge follows
            // wall-clock order); a hand-built history can.
            return Err(HistError::Malformed(
                "happens-before graph has a cycle".to_string(),
            ));
        }
        Ok(Hb { preds, clocks })
    }

    fn site(&self, (p, i): Ev) -> EventSite {
        EventSite {
            proc: ProcId::new(p as u16),
            index: i,
            event: self.logs[p][i].to_string(),
        }
    }

    /// First conflicting, happens-before-unordered access pair, if any.
    fn find_race(&self, hb: &Hb) -> Result<(), HistError> {
        struct Access {
            start: u64,
            end: u64,
            write: bool,
            at: Ev,
        }
        let mut accesses: Vec<Access> = Vec::new();
        for (p, log) in self.logs.iter().enumerate() {
            for (i, ev) in log.iter().enumerate() {
                if let Some((addr, len, write)) = ev.access() {
                    if len > 0 {
                        accesses.push(Access {
                            start: addr,
                            end: addr + len as u64,
                            write,
                            at: (p, i),
                        });
                    }
                }
            }
        }
        accesses.sort_by_key(|a| a.start);
        for (i, a) in accesses.iter().enumerate() {
            for b in &accesses[i + 1..] {
                if b.start >= a.end {
                    break; // sorted by start: nothing later overlaps `a`
                }
                if a.at.0 == b.at.0 || (!a.write && !b.write) {
                    continue;
                }
                let ca = &hb.clocks[a.at.0][a.at.1];
                let cb = &hb.clocks[b.at.0][b.at.1];
                if ca.concurrent_with(cb) {
                    return Err(HistError::Race {
                        first: self.site(a.at),
                        second: self.site(b.at),
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks each read's bytes against the happens-before-latest write
    /// covering each byte (initial memory is zero).
    fn justify_reads(&self, hb: &Hb) -> Result<(), HistError> {
        // All writes, once.
        struct W {
            start: u64,
            end: u64,
            at: Ev,
        }
        let mut writes: Vec<W> = Vec::new();
        for (p, log) in self.logs.iter().enumerate() {
            for (i, ev) in log.iter().enumerate() {
                if let Some((addr, len, true)) = ev.access() {
                    writes.push(W {
                        start: addr,
                        end: addr + len as u64,
                        at: (p, i),
                    });
                }
            }
        }
        for (p, log) in self.logs.iter().enumerate() {
            for (i, ev) in log.iter().enumerate() {
                let HistEvent::Read { addr, value } = ev else {
                    continue;
                };
                let rc = &hb.clocks[p][i];
                // Writes that happened before this read and overlap it.
                let visible: Vec<&W> = writes
                    .iter()
                    .filter(|w| {
                        w.start < addr + value.len() as u64
                            && w.end > *addr
                            && hb.clocks[w.at.0][w.at.1].happened_before(rc)
                    })
                    .collect();
                let mut expected = vec![0u8; value.len()];
                let mut suppliers: Vec<Option<Ev>> = vec![None; value.len()];
                for (k, byte) in expected.iter_mut().enumerate() {
                    let a = addr + k as u64;
                    let mut best: Option<&W> = None;
                    for w in &visible {
                        if !(w.start <= a && a < w.end) {
                            continue;
                        }
                        best = match best {
                            None => Some(w),
                            Some(cur) => {
                                let cw = &hb.clocks[w.at.0][w.at.1];
                                let cc = &hb.clocks[cur.at.0][cur.at.1];
                                // DRF makes same-byte writes totally
                                // ordered, so one always dominates.
                                if cc.happened_before(cw) {
                                    Some(w)
                                } else {
                                    Some(cur)
                                }
                            }
                        };
                    }
                    if let Some(w) = best {
                        let HistEvent::Write {
                            value: wv,
                            addr: wa,
                        } = &self.logs[w.at.0][w.at.1]
                        else {
                            unreachable!("collected from writes")
                        };
                        *byte = wv[(a - wa) as usize];
                        suppliers[k] = Some(w.at);
                    }
                }
                if &expected != value {
                    let first_bad = expected
                        .iter()
                        .zip(value)
                        .position(|(e, g)| e != g)
                        .expect("differs");
                    return Err(HistError::Unjustified {
                        site: self.site((p, i)),
                        expected,
                        got: value.clone(),
                        writer: suppliers[first_bad].map(|at| self.site(at)),
                    });
                }
            }
        }
        Ok(())
    }

    /// Backtracking witness search (see [`History::sc_witness`]).
    fn search_witness(&self, hb: &Hb, budget: &CheckBudget) -> Result<(Witness, usize), HistError> {
        let mut search = Search {
            logs: &self.logs,
            preds: &hb.preds,
            pos: vec![0; self.logs.len()],
            consumed: 0,
            total: self.len(),
            mem: HashMap::new(),
            visited: HashSet::new(),
            explored: 0,
            max_states: budget.max_states,
            schedule: Vec::new(),
            best_consumed: 0,
            best_blocked: Vec::new(),
        };
        match search.run() {
            Found::Yes => Ok((
                Witness {
                    schedule: search
                        .schedule
                        .iter()
                        .map(|&(p, i)| (ProcId::new(p as u16), i))
                        .collect(),
                },
                search.explored,
            )),
            Found::Budget => Err(HistError::Budget {
                explored: search.explored,
            }),
            Found::No => Err(HistError::NoWitness {
                explored: search.explored,
                consumed: search.best_consumed,
                total: search.total,
                blocked: search.best_blocked,
            }),
        }
    }
}

enum Found {
    Yes,
    No,
    Budget,
}

struct Search<'a> {
    logs: &'a [Vec<HistEvent>],
    preds: &'a [Vec<Vec<Ev>>],
    pos: Vec<usize>,
    consumed: usize,
    total: usize,
    /// Byte-granular memory under the schedule built so far.
    mem: HashMap<u64, u8>,
    /// Position vectors already proven witness-free. Sound for DRF
    /// histories, where the consumed set determines memory.
    visited: HashSet<Vec<u32>>,
    explored: usize,
    max_states: usize,
    schedule: Vec<(usize, usize)>,
    best_consumed: usize,
    best_blocked: Vec<String>,
}

/// What it takes to revert one applied event: the processor whose event
/// was applied and, per clobbered byte, its previous value (`None` =
/// previously untouched).
type Undo = (usize, Vec<(u64, Option<u8>)>);

/// One level of the search: which processor to try next, the undo data
/// of the event applied to *enter* this level, and the reads found
/// blocked while iterating it.
struct SearchFrame {
    next_proc: usize,
    applied: Option<Undo>,
    blocked: Vec<String>,
}

impl Search<'_> {
    fn ready(&self, p: usize, i: usize) -> bool {
        self.preds[p][i].iter().all(|&(q, j)| self.pos[q] > j)
    }

    fn mem_byte(&self, addr: u64) -> u8 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    /// Entry bookkeeping for the state the schedule currently denotes:
    /// complete → witness; revisited → prune; over budget → stop.
    /// `None` means the state is fresh and must be expanded.
    fn enter_state(&mut self) -> Option<Found> {
        if self.consumed == self.total {
            return Some(Found::Yes);
        }
        let key: Vec<u32> = self.pos.iter().map(|&i| i as u32).collect();
        if !self.visited.insert(key) {
            return Some(Found::No);
        }
        self.explored += 1;
        if self.explored > self.max_states {
            return Some(Found::Budget);
        }
        None
    }

    /// Reverts the event that entered a frame.
    fn revert(&mut self, p: usize, undo: Vec<(u64, Option<u8>)>) {
        self.schedule.pop();
        self.consumed -= 1;
        self.pos[p] -= 1;
        for (a, old) in undo.into_iter().rev() {
            match old {
                Some(b) => self.mem.insert(a, b),
                None => self.mem.remove(&a),
            };
        }
    }

    /// Depth-first search over schedules, with an explicit frame stack:
    /// the depth equals the event count, so recursion would overflow the
    /// thread stack on long recorded runs (tens of thousands of events).
    fn run(&mut self) -> Found {
        if let Some(found) = self.enter_state() {
            return found;
        }
        let mut stack: Vec<SearchFrame> = vec![SearchFrame {
            next_proc: 0,
            applied: None,
            blocked: Vec::new(),
        }];
        let logs = self.logs;
        while let Some(frame) = stack.last_mut() {
            // Find the next schedulable processor at this level.
            let mut scheduled: Option<Undo> = None;
            while frame.next_proc < logs.len() {
                let p = frame.next_proc;
                frame.next_proc += 1;
                let i = self.pos[p];
                if i >= logs[p].len() || !self.ready(p, i) {
                    continue;
                }
                let ev = &logs[p][i];
                if let HistEvent::Read { addr, value } = ev {
                    let current: Vec<u8> = (0..value.len() as u64)
                        .map(|k| self.mem_byte(addr + k))
                        .collect();
                    if &current != value {
                        frame.blocked.push(format!(
                            "p{p}[{i}] {ev} — memory here holds {}",
                            current
                                .iter()
                                .map(|b| format!("{b:02x}"))
                                .collect::<String>()
                        ));
                        continue;
                    }
                }
                // Apply: only writes change state; remember the clobber.
                let undo: Vec<(u64, Option<u8>)> = match ev {
                    HistEvent::Write { addr, value } => value
                        .iter()
                        .enumerate()
                        .map(|(k, &b)| {
                            let a = addr + k as u64;
                            (a, self.mem.insert(a, b))
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                self.pos[p] += 1;
                self.consumed += 1;
                self.schedule.push((p, i));
                scheduled = Some((p, undo));
                break;
            }
            match scheduled {
                Some((p, undo)) => match self.enter_state() {
                    Some(Found::Yes) => return Found::Yes,
                    Some(Found::Budget) => return Found::Budget,
                    Some(Found::No) => self.revert(p, undo), // revisited state
                    None => stack.push(SearchFrame {
                        next_proc: 0,
                        applied: Some((p, undo)),
                        blocked: Vec::new(),
                    }),
                },
                None => {
                    // Level exhausted: keep the deepest blocked frontier
                    // for diagnostics, then backtrack.
                    if self.consumed >= self.best_consumed && !frame.blocked.is_empty() {
                        self.best_consumed = self.consumed;
                        self.best_blocked = std::mem::take(&mut frame.blocked);
                    }
                    let done = stack.pop().expect("frame present");
                    if let Some((p, undo)) = done.applied {
                        self.revert(p, undo);
                    }
                }
            }
        }
        Found::No
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_sync::{BarrierId, LockId};

    fn read(addr: u64, v: u64) -> HistEvent {
        HistEvent::Read {
            addr,
            value: v.to_le_bytes().to_vec(),
        }
    }

    fn write(addr: u64, v: u64) -> HistEvent {
        HistEvent::Write {
            addr,
            value: v.to_le_bytes().to_vec(),
        }
    }

    fn acq(l: u32, g: u64) -> HistEvent {
        HistEvent::Acquire {
            lock: LockId::new(l),
            grant: g,
        }
    }

    fn rel(l: u32, g: u64) -> HistEvent {
        HistEvent::Release {
            lock: LockId::new(l),
            grant: g,
        }
    }

    fn bar(b: u32, e: u64) -> HistEvent {
        HistEvent::Barrier {
            barrier: BarrierId::new(b),
            episode: e,
        }
    }

    fn budget() -> CheckBudget {
        CheckBudget::default()
    }

    #[test]
    fn empty_and_single_proc_histories_pass() {
        assert!(History::from_logs(vec![]).check(&budget()).is_ok());
        let h = History::from_logs(vec![vec![write(0, 7), read(0, 7)]]);
        let report = h.check(&budget()).unwrap();
        assert_eq!(report.events, 2);
    }

    #[test]
    fn lock_protected_flow_passes_and_stale_read_fails() {
        let good = History::from_logs(vec![
            vec![acq(0, 1), write(64, 7), rel(0, 1)],
            vec![acq(0, 2), read(64, 7), rel(0, 2)],
        ]);
        good.check(&budget()).unwrap();

        let stale = History::from_logs(vec![
            vec![acq(0, 1), write(64, 7), rel(0, 1)],
            vec![acq(0, 2), read(64, 0), rel(0, 2)],
        ]);
        // The stale read is both unjustified and witness-free.
        assert!(matches!(
            stale.check(&budget()),
            Err(HistError::Unjustified { .. })
        ));
        assert!(matches!(
            stale.sc_witness(&budget()),
            Err(HistError::NoWitness { .. })
        ));
        let msg = stale.check(&budget()).unwrap_err().to_string();
        assert!(msg.contains("unjustified read"), "{msg}");
        assert!(msg.contains("p1[1]"), "{msg}");
    }

    #[test]
    fn reversed_grant_order_allows_the_old_value() {
        // p1's critical section got the FIRST grant: its read of 0 is the
        // legal, justified outcome even though p0 wrote 7 "later".
        let h = History::from_logs(vec![
            vec![acq(0, 2), write(64, 7), rel(0, 2)],
            vec![acq(0, 1), read(64, 0), rel(0, 1)],
        ]);
        h.check(&budget()).unwrap();
    }

    #[test]
    fn unsynchronized_conflicting_writes_are_a_race() {
        let h = History::from_logs(vec![vec![write(0, 1)], vec![write(0, 2)]]);
        let err = h.check(&budget()).unwrap_err();
        assert!(matches!(err, HistError::Race { .. }));
        assert!(err.to_string().contains("data race"));
        // Read/read sharing is not a race.
        let rr = History::from_logs(vec![vec![read(0, 0)], vec![read(0, 0)]]);
        rr.check(&budget()).unwrap();
        // Disjoint writes are not a race.
        let disjoint = History::from_logs(vec![vec![write(0, 1)], vec![write(8, 2)]]);
        disjoint.check(&budget()).unwrap();
    }

    #[test]
    fn barrier_orders_phases() {
        let good = History::from_logs(vec![
            vec![write(0, 5), bar(0, 0), read(8, 6)],
            vec![write(8, 6), bar(0, 0), read(0, 5)],
        ]);
        good.check(&budget()).unwrap();

        // A stale post-barrier read must be rejected regardless of how the
        // arrivals interleaved.
        let stale = History::from_logs(vec![
            vec![write(0, 5), bar(0, 0)],
            vec![bar(0, 0), read(0, 0)],
        ]);
        assert!(matches!(
            stale.check(&budget()),
            Err(HistError::Unjustified { .. })
        ));

        // Without the barrier the same logs race.
        let racy = History::from_logs(vec![vec![write(0, 5)], vec![read(0, 0)]]);
        assert!(matches!(racy.check(&budget()), Err(HistError::Race { .. })));
    }

    #[test]
    fn overlapping_partial_write_justifies_bytewise() {
        // p0 writes 8 bytes under the lock; p1 overwrites one byte in a
        // later section; p2 reads the merge.
        let h = History::from_logs(vec![
            vec![acq(0, 1), write(0, 0x0807_0605_0403_0201), rel(0, 1)],
            vec![
                acq(0, 2),
                HistEvent::Write {
                    addr: 2,
                    value: vec![0xff],
                },
                rel(0, 2),
            ],
            vec![acq(0, 3), read(0, 0x0807_0605_04ff_0201), rel(0, 3)],
        ]);
        h.check(&budget()).unwrap();
    }

    #[test]
    fn malformed_histories_are_reported() {
        // Incomplete barrier episode (2 procs, 1 arrival).
        let h = History::from_logs(vec![vec![bar(0, 0)], vec![]]);
        assert!(matches!(h.check(&budget()), Err(HistError::Malformed(_))));
        // Release by a processor that never acquired the grant.
        let h = History::from_logs(vec![vec![acq(0, 1)], vec![rel(0, 1)]]);
        let err = h.check(&budget()).unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
        // Gap in the grant order.
        let h = History::from_logs(vec![vec![acq(0, 1), rel(0, 1)], vec![acq(0, 3), rel(0, 3)]]);
        assert!(matches!(h.check(&budget()), Err(HistError::Malformed(_))));
    }

    #[test]
    fn crashed_proc_is_excused_from_missed_barrier_episodes() {
        // p1 dies after episode 0; p0 completes episode 1 alone. The
        // Crash marker in p1's log excuses its missing arrivals.
        let h = History::from_logs(vec![
            vec![bar(0, 0), write(0, 1), bar(0, 1), read(0, 1)],
            vec![bar(0, 0), HistEvent::Crash],
        ]);
        h.check(&budget()).unwrap();
        // Without the marker the same shape is a recorder bug.
        let bad = History::from_logs(vec![vec![bar(0, 0), bar(0, 1)], vec![bar(0, 0)]]);
        let err = bad.check(&budget()).unwrap_err();
        assert!(matches!(err, HistError::Malformed(_)));
        assert!(err.to_string().contains("never crashed"), "{err}");
    }

    #[test]
    fn witness_respects_intra_proc_order_of_concurrent_sections() {
        // Two processors increment disjoint counters under different
        // locks; any interleaving is fine, and the search must find one
        // without exploring much.
        let h = History::from_logs(vec![
            vec![acq(0, 1), read(0, 0), write(0, 1), rel(0, 1)],
            vec![acq(1, 1), read(8, 0), write(8, 1), rel(1, 1)],
        ]);
        let report = h.check(&budget()).unwrap();
        assert!(report.states_explored <= 16, "{}", report.states_explored);
        let w = h.sc_witness(&budget()).unwrap();
        assert_eq!(w.schedule.len(), 8);
        // Program order per processor is preserved in the schedule.
        let p0_positions: Vec<usize> = w
            .schedule
            .iter()
            .filter(|(p, _)| p.index() == 0)
            .map(|&(_, i)| i)
            .collect();
        assert_eq!(p0_positions, vec![0, 1, 2, 3]);
    }

    #[test]
    fn long_histories_do_not_overflow_the_stack() {
        // The search depth equals the event count; an explicit frame
        // stack (not recursion) keeps a 60k-event history checkable.
        let mut log = Vec::new();
        for i in 0..30_000u64 {
            log.push(write(0, i));
            log.push(read(0, i));
        }
        let h = History::from_logs(vec![log]);
        let report = h.check(&budget()).unwrap();
        assert_eq!(report.events, 60_000);
    }

    #[test]
    fn budget_zero_reports_exhaustion() {
        let h = History::from_logs(vec![vec![write(0, 1)]]);
        let tiny = CheckBudget { max_states: 0 };
        assert!(matches!(h.check(&tiny), Err(HistError::Budget { .. })));
    }

    #[test]
    fn search_backtracks_to_find_the_legal_order() {
        // p1's read of 0 must be scheduled BEFORE p0's unsynchronized-
        // looking (but race-free: read vs nothing) write... use private
        // locations plus one lock-ordered flow that forces backtracking:
        // scheduling p0 first would poison p1's read of the old value.
        let h = History::from_logs(vec![
            vec![acq(0, 2), write(0, 9), rel(0, 2)],
            vec![acq(0, 1), read(0, 0), write(0, 1), rel(0, 1), read(8, 0)],
        ]);
        // Grant order forces p1's section first; p1's trailing private
        // read is concurrent with p0's section. A witness exists.
        h.check(&budget()).unwrap();
    }
}
