//! Lock directory and barrier master state machines.
//!
//! Every protocol in the ISCA '92 study synchronizes the same way (§5.2):
//!
//! * **Locks** are found and transferred with up to three messages —
//!   requester to the lock's static *home*, home forwards to the current
//!   *grantor* (the last releaser), grantor grants back to the requester.
//!   The grant message is where lazy protocols piggyback consistency
//!   information.
//! * **Barriers** are centralized: each non-master processor sends an
//!   arrival message to the barrier *master* and waits for an exit message,
//!   costing `2(n-1)` messages per episode.
//!
//! This crate implements the bookkeeping and message-path computation for
//! both, protocol-agnostically: the protocol engines decide payloads and
//! charge the messages to a fabric; the trace-driven simulator and the
//! threaded runtime share these state machines.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barrier;
mod lock;

pub use barrier::{BarrierArrival, BarrierError, BarrierId, BarrierSet};
pub use lock::{AcquirePath, LockError, LockId, LockTable};
