use std::error::Error;
use std::fmt;

use lrc_vclock::ProcId;

/// Identifier of an exclusive lock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LockId(u32);

impl LockId {
    /// Creates a lock id from its dense index.
    pub fn new(index: u32) -> Self {
        LockId(index)
    }

    /// Returns the id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for LockId {
    fn from(index: u32) -> Self {
        LockId(index)
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lk{}", self.0)
    }
}

/// Errors from lock operations. In a legal trace these indicate a malformed
/// workload; in the runtime they indicate misuse of the API.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockError {
    /// The lock id is outside the table.
    UnknownLock(LockId),
    /// The processor id is outside the system.
    UnknownProc(ProcId),
    /// Acquire of a lock the processor already holds.
    AlreadyHeld {
        /// The lock.
        lock: LockId,
        /// Its current holder (the requester itself).
        holder: ProcId,
    },
    /// Acquire of a lock held by another processor (the caller must wait).
    HeldByOther {
        /// The lock.
        lock: LockId,
        /// Its current holder.
        holder: ProcId,
    },
    /// Release of a lock the processor does not hold.
    NotHolder {
        /// The lock.
        lock: LockId,
        /// Its current holder, if any.
        holder: Option<ProcId>,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::UnknownLock(l) => write!(f, "unknown lock {l}"),
            LockError::UnknownProc(p) => write!(f, "unknown processor {p}"),
            LockError::AlreadyHeld { lock, holder } => {
                write!(f, "{holder} acquired {lock} twice without releasing")
            }
            LockError::HeldByOther { lock, holder } => {
                write!(f, "{lock} is held by {holder}")
            }
            LockError::NotHolder {
                lock,
                holder: Some(h),
            } => {
                write!(f, "release of {lock} held by {h}")
            }
            LockError::NotHolder { lock, holder: None } => {
                write!(f, "release of free lock {lock}")
            }
        }
    }
}

impl Error for LockError {}

/// The message path of a successful lock acquire.
///
/// Each hop is `Some((src, dst))` when a real message crosses the wire and
/// `None` when that hop is local (e.g. the requester is the lock's home, or
/// it re-acquires a lock it released last). The protocol engine charges the
/// hops with its own payloads — in particular the grant carries the lazy
/// protocols' piggybacked consistency data.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AcquirePath {
    /// The processor that grants the lock: the last releaser, or the home
    /// if the lock has never been released. Consistency information flows
    /// from this processor.
    pub grantor: ProcId,
    /// Position of this acquire in the lock's total grant order (1 for the
    /// lock's first-ever grant). Assigned by the table under its own
    /// serialization, so observers of the grant sequence — notably the
    /// history recorder — need no engine-wide lock to agree with the order
    /// the lock actually changed hands in.
    pub grant_seq: u64,
    /// Requester → home.
    pub request: Option<(ProcId, ProcId)>,
    /// Home → grantor.
    pub forward: Option<(ProcId, ProcId)>,
    /// Grantor → requester.
    pub grant: Option<(ProcId, ProcId)>,
}

impl AcquirePath {
    /// Number of messages on the path (0 to 3).
    pub fn message_count(&self) -> u64 {
        self.request.is_some() as u64 + self.forward.is_some() as u64 + self.grant.is_some() as u64
    }
}

/// The distributed lock directory.
///
/// Each lock has a static *home* processor (`lock mod n_procs`) that always
/// knows the lock's current grantor, mirroring Munin/TreadMarks lock
/// management. The table tracks holders and last releasers and computes the
/// [`AcquirePath`] for every acquire.
///
/// # Example
///
/// ```
/// use lrc_sync::{LockId, LockTable};
/// use lrc_vclock::ProcId;
///
/// let mut locks = LockTable::new(1, 4);
/// let l = LockId::new(0);
/// let p1 = ProcId::new(1);
///
/// let path = locks.acquire(p1, l)?;
/// assert_eq!(path.grantor, ProcId::new(0)); // home grants a fresh lock
/// locks.release(p1, l)?;
///
/// // Re-acquiring a lock this processor released last is free.
/// let path = locks.acquire(p1, l)?;
/// assert_eq!(path.message_count(), 0);
/// # Ok::<(), lrc_sync::LockError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LockTable {
    n_procs: usize,
    holder: Vec<Option<ProcId>>,
    grantor: Vec<ProcId>,
    /// Grants handed out so far, per lock. The current holder's grant is
    /// `grant_seq[lock]`; a release closes exactly that grant.
    grant_seq: Vec<u64>,
}

impl LockTable {
    /// Creates a table of `n_locks` free locks for an `n_procs` system.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is zero.
    pub fn new(n_locks: usize, n_procs: usize) -> Self {
        assert!(n_procs > 0, "lock table needs at least one processor");
        let grantor = (0..n_locks)
            .map(|l| ProcId::new((l % n_procs) as u16))
            .collect();
        LockTable {
            n_procs,
            holder: vec![None; n_locks],
            grantor,
            grant_seq: vec![0; n_locks],
        }
    }

    /// Number of locks in the table.
    pub fn n_locks(&self) -> usize {
        self.holder.len()
    }

    /// The static home of `lock` — the processor that tracks its grantor.
    ///
    /// # Panics
    ///
    /// Panics if `lock` is out of range.
    pub fn home(&self, lock: LockId) -> ProcId {
        assert!(lock.index() < self.holder.len(), "unknown lock {lock}");
        ProcId::new((lock.index() % self.n_procs) as u16)
    }

    /// Current holder of `lock`, if any.
    pub fn holder(&self, lock: LockId) -> Option<ProcId> {
        self.holder.get(lock.index()).copied().flatten()
    }

    /// The processor that would grant `lock` right now.
    pub fn grantor(&self, lock: LockId) -> Option<ProcId> {
        self.grantor.get(lock.index()).copied()
    }

    /// Every lock currently held by `p` (crash recovery: the locks a dead
    /// holder must be forced to release).
    pub fn held_by(&self, p: ProcId) -> Vec<LockId> {
        self.holder
            .iter()
            .enumerate()
            .filter(|(_, h)| **h == Some(p))
            .map(|(l, _)| LockId::new(l as u32))
            .collect()
    }

    fn check(&self, p: ProcId, lock: LockId) -> Result<(), LockError> {
        if lock.index() >= self.holder.len() {
            return Err(LockError::UnknownLock(lock));
        }
        if p.index() >= self.n_procs {
            return Err(LockError::UnknownProc(p));
        }
        Ok(())
    }

    /// Acquires `lock` for processor `p` and returns the message path.
    ///
    /// # Errors
    ///
    /// * [`LockError::AlreadyHeld`] if `p` holds the lock already;
    /// * [`LockError::HeldByOther`] if another processor holds it (the
    ///   caller must retry after the holder releases);
    /// * [`LockError::UnknownLock`] / [`LockError::UnknownProc`] on range
    ///   errors.
    pub fn acquire(&mut self, p: ProcId, lock: LockId) -> Result<AcquirePath, LockError> {
        self.check(p, lock)?;
        match self.holder[lock.index()] {
            Some(h) if h == p => return Err(LockError::AlreadyHeld { lock, holder: h }),
            Some(h) => return Err(LockError::HeldByOther { lock, holder: h }),
            None => {}
        }
        let home = self.home(lock);
        let grantor = self.grantor[lock.index()];
        self.holder[lock.index()] = Some(p);
        self.grant_seq[lock.index()] += 1;
        let grant_no = self.grant_seq[lock.index()];

        // Hops are messages only between distinct processors. Four shapes:
        //   p == grantor            -> free local re-acquire
        //   p == home != grantor    -> forward + grant
        //   grantor == home != p    -> request + grant
        //   all distinct            -> request + forward + grant
        let path = if p == grantor {
            AcquirePath {
                grantor,
                grant_seq: grant_no,
                request: None,
                forward: None,
                grant: None,
            }
        } else if p == home {
            AcquirePath {
                grantor,
                grant_seq: grant_no,
                request: None,
                forward: Some((home, grantor)),
                grant: Some((grantor, p)),
            }
        } else if grantor == home {
            AcquirePath {
                grantor,
                grant_seq: grant_no,
                request: Some((p, home)),
                forward: None,
                grant: Some((grantor, p)),
            }
        } else {
            AcquirePath {
                grantor,
                grant_seq: grant_no,
                request: Some((p, home)),
                forward: Some((home, grantor)),
                grant: Some((grantor, p)),
            }
        };
        Ok(path)
    }

    /// Releases `lock`; `p` becomes its grantor (last releaser). Returns
    /// the grant number this release closes — the one assigned to `p`'s
    /// matching acquire (holders are exclusive, so no grant can intervene).
    ///
    /// The release itself sends no messages in any of the four protocols —
    /// eager protocols send *consistency* traffic at release, which the
    /// protocol engines charge separately. The home learns the new grantor
    /// lazily, when it next forwards a request (standard distributed lock
    /// management; charging an extra update message here would change no
    /// comparison since every protocol would pay it equally).
    ///
    /// # Errors
    ///
    /// [`LockError::NotHolder`] if `p` does not hold the lock, plus the
    /// range errors of [`LockTable::acquire`].
    pub fn release(&mut self, p: ProcId, lock: LockId) -> Result<u64, LockError> {
        self.check(p, lock)?;
        match self.holder[lock.index()] {
            Some(h) if h == p => {
                self.holder[lock.index()] = None;
                self.grantor[lock.index()] = p;
                Ok(self.grant_seq[lock.index()])
            }
            other => Err(LockError::NotHolder {
                lock,
                holder: other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    #[test]
    fn homes_are_distributed_round_robin() {
        let t = LockTable::new(5, 3);
        assert_eq!(t.home(LockId::new(0)), p(0));
        assert_eq!(t.home(LockId::new(1)), p(1));
        assert_eq!(t.home(LockId::new(2)), p(2));
        assert_eq!(t.home(LockId::new(3)), p(0));
        assert_eq!(t.n_locks(), 5);
    }

    #[test]
    fn fresh_lock_granted_by_home() {
        let mut t = LockTable::new(1, 4);
        let path = t.acquire(p(2), LockId::new(0)).unwrap();
        assert_eq!(path.grantor, p(0));
        // requester != home == grantor: request + grant.
        assert_eq!(path.request, Some((p(2), p(0))));
        assert_eq!(path.forward, None);
        assert_eq!(path.grant, Some((p(0), p(2))));
        assert_eq!(path.message_count(), 2);
        assert_eq!(t.holder(LockId::new(0)), Some(p(2)));
    }

    #[test]
    fn three_hop_path_when_all_distinct() {
        let mut t = LockTable::new(1, 4);
        let l = LockId::new(0);
        t.acquire(p(1), l).unwrap();
        t.release(p(1), l).unwrap();
        // home = p0, grantor = p1, requester = p2: full three messages.
        let path = t.acquire(p(2), l).unwrap();
        assert_eq!(path.grantor, p(1));
        assert_eq!(path.request, Some((p(2), p(0))));
        assert_eq!(path.forward, Some((p(0), p(1))));
        assert_eq!(path.grant, Some((p(1), p(2))));
        assert_eq!(path.message_count(), 3);
    }

    #[test]
    fn home_requester_skips_request_message() {
        let mut t = LockTable::new(1, 4);
        let l = LockId::new(0);
        t.acquire(p(1), l).unwrap();
        t.release(p(1), l).unwrap();
        // requester == home = p0, grantor = p1: forward + grant.
        let path = t.acquire(p(0), l).unwrap();
        assert_eq!(path.message_count(), 2);
        assert_eq!(path.request, None);
        assert_eq!(path.forward, Some((p(0), p(1))));
        assert_eq!(path.grant, Some((p(1), p(0))));
    }

    #[test]
    fn local_reacquire_is_free() {
        let mut t = LockTable::new(1, 4);
        let l = LockId::new(0);
        t.acquire(p(3), l).unwrap();
        t.release(p(3), l).unwrap();
        let path = t.acquire(p(3), l).unwrap();
        assert_eq!(path.message_count(), 0);
        assert_eq!(path.grantor, p(3));
    }

    #[test]
    fn double_acquire_rejected() {
        let mut t = LockTable::new(1, 2);
        let l = LockId::new(0);
        t.acquire(p(0), l).unwrap();
        assert_eq!(
            t.acquire(p(0), l),
            Err(LockError::AlreadyHeld {
                lock: l,
                holder: p(0)
            })
        );
        assert_eq!(
            t.acquire(p(1), l),
            Err(LockError::HeldByOther {
                lock: l,
                holder: p(0)
            })
        );
    }

    #[test]
    fn release_validates_holder() {
        let mut t = LockTable::new(1, 2);
        let l = LockId::new(0);
        assert_eq!(
            t.release(p(0), l),
            Err(LockError::NotHolder {
                lock: l,
                holder: None
            })
        );
        t.acquire(p(1), l).unwrap();
        assert_eq!(
            t.release(p(0), l),
            Err(LockError::NotHolder {
                lock: l,
                holder: Some(p(1))
            })
        );
        assert!(t.release(p(1), l).is_ok());
        assert_eq!(t.holder(l), None);
        assert_eq!(t.grantor(l), Some(p(1)));
    }

    #[test]
    fn range_errors() {
        let mut t = LockTable::new(1, 2);
        assert_eq!(
            t.acquire(p(0), LockId::new(9)),
            Err(LockError::UnknownLock(LockId::new(9)))
        );
        assert_eq!(
            t.acquire(p(7), LockId::new(0)),
            Err(LockError::UnknownProc(p(7)))
        );
    }

    #[test]
    fn error_messages_are_meaningful() {
        let e = LockError::HeldByOther {
            lock: LockId::new(2),
            holder: p(1),
        };
        assert_eq!(e.to_string(), "lk2 is held by p1");
    }

    #[test]
    fn grant_numbers_sequence_per_lock_and_close_on_release() {
        let mut t = LockTable::new(2, 4);
        let (a, b) = (LockId::new(0), LockId::new(1));
        assert_eq!(t.acquire(p(1), a).unwrap().grant_seq, 1);
        assert_eq!(t.release(p(1), a).unwrap(), 1);
        assert_eq!(t.acquire(p(2), a).unwrap().grant_seq, 2);
        // Independent sequence per lock; a failed acquire burns no grant.
        assert_eq!(t.acquire(p(3), b).unwrap().grant_seq, 1);
        assert!(t.acquire(p(0), a).is_err());
        assert_eq!(t.release(p(2), a).unwrap(), 2);
        assert_eq!(t.acquire(p(0), a).unwrap().grant_seq, 3);
    }

    #[test]
    fn held_by_lists_exactly_the_holders_locks() {
        let mut t = LockTable::new(3, 2);
        assert!(t.held_by(p(0)).is_empty());
        t.acquire(p(0), LockId::new(0)).unwrap();
        t.acquire(p(0), LockId::new(2)).unwrap();
        t.acquire(p(1), LockId::new(1)).unwrap();
        assert_eq!(t.held_by(p(0)), vec![LockId::new(0), LockId::new(2)]);
        assert_eq!(t.held_by(p(1)), vec![LockId::new(1)]);
        t.release(p(0), LockId::new(0)).unwrap();
        assert_eq!(t.held_by(p(0)), vec![LockId::new(2)]);
    }

    #[test]
    fn migratory_rotation_uses_three_messages_steady_state() {
        // p1..p3 rotate through the lock (home p0): after the first two
        // acquires, every transfer is requester -> home -> last releaser ->
        // requester = 3 messages, matching Table 1's lock row.
        let mut t = LockTable::new(1, 4);
        let l = LockId::new(0);
        t.acquire(p(1), l).unwrap();
        t.release(p(1), l).unwrap();
        for round in 0..6 {
            let requester = p(2 + (round % 2) as u16); // p2, p3 alternating
            let path = t.acquire(requester, l).unwrap();
            assert_eq!(path.message_count(), 3, "round {round}");
            t.release(requester, l).unwrap();
        }
    }
}
