use std::error::Error;
use std::fmt;

use lrc_vclock::ProcId;

/// Identifier of a barrier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BarrierId(u32);

impl BarrierId {
    /// Creates a barrier id from its dense index.
    pub fn new(index: u32) -> Self {
        BarrierId(index)
    }

    /// Returns the id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for BarrierId {
    fn from(index: u32) -> Self {
        BarrierId(index)
    }
}

impl fmt::Display for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "br{}", self.0)
    }
}

/// Errors from barrier operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BarrierError {
    /// The barrier id is outside the set.
    UnknownBarrier(BarrierId),
    /// The processor id is outside the system.
    UnknownProc(ProcId),
    /// A processor arrived twice in one episode — the trace is illegal,
    /// since it should have blocked until everyone arrived.
    DoubleArrival {
        /// The barrier.
        barrier: BarrierId,
        /// The processor that arrived twice.
        proc: ProcId,
    },
}

impl fmt::Display for BarrierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrierError::UnknownBarrier(b) => write!(f, "unknown barrier {b}"),
            BarrierError::UnknownProc(p) => write!(f, "unknown processor {p}"),
            BarrierError::DoubleArrival { barrier, proc } => {
                write!(f, "{proc} arrived at {barrier} twice in one episode")
            }
        }
    }
}

impl Error for BarrierError {}

/// Outcome of one arrival at a barrier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BarrierArrival {
    /// The processor must wait; `arrived` processors (including it) are in.
    Waiting {
        /// Number of processors that have arrived so far this episode.
        arrived: usize,
        /// The (not yet complete) episode this arrival belongs to — the
        /// same index the closing arrival will report in
        /// [`BarrierArrival::Complete`]. Set-assigned, so observers of the
        /// episode order (the history recorder) need no engine-wide lock.
        episode: u64,
    },
    /// This arrival completed the episode: every processor is present and
    /// the master releases them all. The episode counter has advanced.
    Complete {
        /// The completed episode's index (0 for the first episode).
        episode: u64,
    },
}

impl BarrierArrival {
    /// The episode this arrival belongs to, whichever variant it is.
    pub fn episode(&self) -> u64 {
        match self {
            BarrierArrival::Waiting { episode, .. } => *episode,
            BarrierArrival::Complete { episode } => *episode,
        }
    }
}

/// A set of centralized barriers.
///
/// Each barrier has a static *master* (`barrier mod n_procs`). An episode
/// completes when all `n_procs` processors have arrived; the master then
/// sends exit messages. The paper charges `2(n-1)` messages per episode:
/// one arrival and one exit per non-master processor (§5.2). The protocol
/// engines charge those messages with their own piggybacked payloads.
///
/// # Example
///
/// ```
/// use lrc_sync::{BarrierArrival, BarrierId, BarrierSet};
/// use lrc_vclock::ProcId;
///
/// let mut barriers = BarrierSet::new(1, 2);
/// let b = BarrierId::new(0);
/// assert_eq!(
///     barriers.arrive(ProcId::new(0), b)?,
///     BarrierArrival::Waiting { arrived: 1, episode: 0 }
/// );
/// assert_eq!(
///     barriers.arrive(ProcId::new(1), b)?,
///     BarrierArrival::Complete { episode: 0 }
/// );
/// # Ok::<(), lrc_sync::BarrierError>(())
/// ```
#[derive(Clone, Debug)]
pub struct BarrierSet {
    n_procs: usize,
    arrived: Vec<Vec<bool>>,
    count: Vec<usize>,
    episode: Vec<u64>,
    /// Processors declared dead: they are not required for episode
    /// completion until [`BarrierSet::revive`] re-includes them.
    dead: Vec<bool>,
}

impl BarrierSet {
    /// Creates `n_barriers` barriers for an `n_procs` system.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is zero.
    pub fn new(n_barriers: usize, n_procs: usize) -> Self {
        assert!(n_procs > 0, "barrier set needs at least one processor");
        BarrierSet {
            n_procs,
            arrived: vec![vec![false; n_procs]; n_barriers],
            count: vec![0; n_barriers],
            episode: vec![0; n_barriers],
            dead: vec![false; n_procs],
        }
    }

    /// Number of barriers in the set.
    pub fn n_barriers(&self) -> usize {
        self.arrived.len()
    }

    /// The static master of `barrier`.
    ///
    /// # Panics
    ///
    /// Panics if `barrier` is out of range.
    pub fn master(&self, barrier: BarrierId) -> ProcId {
        assert!(
            barrier.index() < self.arrived.len(),
            "unknown barrier {barrier}"
        );
        ProcId::new((barrier.index() % self.n_procs) as u16)
    }

    /// Episodes completed so far at `barrier`.
    pub fn episodes_completed(&self, barrier: BarrierId) -> Option<u64> {
        self.episode.get(barrier.index()).copied()
    }

    /// Validates that `p` may arrive at `barrier`, without mutating state.
    /// Protocol engines call this before performing arrival side effects
    /// (flushes, interval closes) so a rejected arrival leaves no trace.
    ///
    /// # Errors
    ///
    /// The same errors [`BarrierSet::arrive`] would return.
    pub fn check_arrival(&self, p: ProcId, barrier: BarrierId) -> Result<(), BarrierError> {
        if barrier.index() >= self.arrived.len() {
            return Err(BarrierError::UnknownBarrier(barrier));
        }
        if p.index() >= self.n_procs {
            return Err(BarrierError::UnknownProc(p));
        }
        if self.arrived[barrier.index()][p.index()] {
            return Err(BarrierError::DoubleArrival { barrier, proc: p });
        }
        Ok(())
    }

    /// True once every *live* processor has arrived at `barrier`.
    fn episode_complete(&self, b: usize) -> bool {
        self.arrived[b]
            .iter()
            .zip(&self.dead)
            .all(|(&arrived, &dead)| arrived || dead)
    }

    /// Closes the current episode of barrier `b` and returns its index.
    fn close_episode(&mut self, b: usize) -> u64 {
        self.arrived[b].iter_mut().for_each(|f| *f = false);
        self.count[b] = 0;
        let episode = self.episode[b];
        self.episode[b] += 1;
        episode
    }

    /// Excludes `p` from episode completion (crash recovery): episodes no
    /// longer wait for it. An arrival `p` already made this episode keeps
    /// counting — its side effects (interval close, notices) happened.
    /// Returns the episodes that complete *because* `p` stopped being
    /// required: `(barrier, episode)` pairs the caller must treat exactly
    /// like a closing arrival. Marking an already-dead processor is a
    /// no-op returning no completions.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn mark_dead(&mut self, p: ProcId) -> Vec<(BarrierId, u64)> {
        assert!(p.index() < self.n_procs, "unknown processor {p}");
        if self.dead[p.index()] {
            return Vec::new();
        }
        self.dead[p.index()] = true;
        let mut completed = Vec::new();
        for b in 0..self.arrived.len() {
            // An episode nobody entered yet is not "complete" — it has not
            // started. Only close episodes with at least one live arrival.
            let live_arrivals = self.arrived[b]
                .iter()
                .zip(&self.dead)
                .filter(|&(&arrived, &dead)| arrived && !dead)
                .count();
            if live_arrivals > 0 && self.episode_complete(b) {
                let episode = self.close_episode(b);
                completed.push((BarrierId::new(b as u32), episode));
            }
        }
        completed
    }

    /// Re-includes a previously [`mark_dead`](BarrierSet::mark_dead)ed
    /// processor: future episodes wait for it again (including any episode
    /// currently in progress).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or not dead.
    pub fn revive(&mut self, p: ProcId) {
        assert!(p.index() < self.n_procs, "unknown processor {p}");
        assert!(self.dead[p.index()], "{p} is not dead");
        self.dead[p.index()] = false;
    }

    /// True if `p` is currently excluded from episode completion.
    pub fn is_dead(&self, p: ProcId) -> bool {
        self.dead.get(p.index()).copied().unwrap_or(false)
    }

    /// The *live* processors the current episode of `barrier` is still
    /// waiting for — the failure detector's suspect list when a barrier
    /// wait times out. Empty for an out-of-range barrier (the waiter's
    /// arrival already validated the id; the detector need not re-panic).
    pub fn absent(&self, barrier: BarrierId) -> Vec<ProcId> {
        let Some(arrived) = self.arrived.get(barrier.index()) else {
            return Vec::new();
        };
        arrived
            .iter()
            .zip(&self.dead)
            .enumerate()
            .filter(|&(_, (&arrived, &dead))| !arrived && !dead)
            .map(|(i, _)| ProcId::new(i as u16))
            .collect()
    }

    /// Records the arrival of `p` at `barrier`.
    ///
    /// # Errors
    ///
    /// [`BarrierError::DoubleArrival`] if `p` already arrived this episode,
    /// plus range errors.
    pub fn arrive(
        &mut self,
        p: ProcId,
        barrier: BarrierId,
    ) -> Result<BarrierArrival, BarrierError> {
        if barrier.index() >= self.arrived.len() {
            return Err(BarrierError::UnknownBarrier(barrier));
        }
        if p.index() >= self.n_procs {
            return Err(BarrierError::UnknownProc(p));
        }
        let b = barrier.index();
        if self.arrived[b][p.index()] {
            return Err(BarrierError::DoubleArrival { barrier, proc: p });
        }
        self.arrived[b][p.index()] = true;
        self.count[b] += 1;
        if self.episode_complete(b) {
            let episode = self.close_episode(b);
            Ok(BarrierArrival::Complete { episode })
        } else {
            Ok(BarrierArrival::Waiting {
                arrived: self.count[b],
                episode: self.episode[b],
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    #[test]
    fn episode_completes_when_all_arrive() {
        let mut b = BarrierSet::new(1, 3);
        let id = BarrierId::new(0);
        assert_eq!(
            b.arrive(p(1), id).unwrap(),
            BarrierArrival::Waiting {
                arrived: 1,
                episode: 0
            }
        );
        assert_eq!(
            b.arrive(p(0), id).unwrap(),
            BarrierArrival::Waiting {
                arrived: 2,
                episode: 0
            }
        );
        assert_eq!(
            b.arrive(p(2), id).unwrap(),
            BarrierArrival::Complete { episode: 0 }
        );
        assert_eq!(b.episodes_completed(id), Some(1));
    }

    #[test]
    fn episodes_chain() {
        let mut b = BarrierSet::new(1, 2);
        let id = BarrierId::new(0);
        for episode in 0..5 {
            b.arrive(p(0), id).unwrap();
            assert_eq!(
                b.arrive(p(1), id).unwrap(),
                BarrierArrival::Complete { episode }
            );
        }
    }

    #[test]
    fn double_arrival_rejected() {
        let mut b = BarrierSet::new(1, 2);
        let id = BarrierId::new(0);
        b.arrive(p(0), id).unwrap();
        assert_eq!(
            b.arrive(p(0), id),
            Err(BarrierError::DoubleArrival {
                barrier: id,
                proc: p(0)
            })
        );
    }

    #[test]
    fn masters_distributed_round_robin() {
        let b = BarrierSet::new(3, 2);
        assert_eq!(b.master(BarrierId::new(0)), p(0));
        assert_eq!(b.master(BarrierId::new(1)), p(1));
        assert_eq!(b.master(BarrierId::new(2)), p(0));
        assert_eq!(b.n_barriers(), 3);
    }

    #[test]
    fn range_errors() {
        let mut b = BarrierSet::new(1, 2);
        assert_eq!(
            b.arrive(p(0), BarrierId::new(4)),
            Err(BarrierError::UnknownBarrier(BarrierId::new(4)))
        );
        assert_eq!(
            b.arrive(p(9), BarrierId::new(0)),
            Err(BarrierError::UnknownProc(p(9)))
        );
    }

    #[test]
    fn marking_the_last_straggler_dead_completes_the_episode() {
        let mut b = BarrierSet::new(2, 3);
        let id = BarrierId::new(0);
        b.arrive(p(0), id).unwrap();
        b.arrive(p(2), id).unwrap();
        // p1 dies without arriving: the episode completes on its behalf.
        let completed = b.mark_dead(p(1));
        assert_eq!(completed, vec![(id, 0)]);
        assert_eq!(b.episodes_completed(id), Some(1));
        assert!(b.is_dead(p(1)));
        // Untouched barriers complete nothing.
        assert_eq!(b.episodes_completed(BarrierId::new(1)), Some(0));
        // The next episode needs only the two live processors.
        b.arrive(p(0), id).unwrap();
        assert_eq!(
            b.arrive(p(2), id).unwrap(),
            BarrierArrival::Complete { episode: 1 }
        );
    }

    #[test]
    fn dead_arrival_still_counts_toward_its_episode() {
        let mut b = BarrierSet::new(1, 3);
        let id = BarrierId::new(0);
        // p1 arrives, then dies mid-episode: its arrival (and the interval
        // it closed) stands, and the survivors complete the episode.
        b.arrive(p(1), id).unwrap();
        assert_eq!(b.mark_dead(p(1)), vec![]);
        b.arrive(p(0), id).unwrap();
        assert_eq!(
            b.arrive(p(2), id).unwrap(),
            BarrierArrival::Complete { episode: 0 }
        );
    }

    #[test]
    fn marking_dead_with_no_live_arrivals_completes_nothing() {
        let mut b = BarrierSet::new(1, 2);
        assert_eq!(b.mark_dead(p(1)), vec![]);
        assert_eq!(b.episodes_completed(BarrierId::new(0)), Some(0));
        // A second mark is a no-op.
        assert_eq!(b.mark_dead(p(1)), vec![]);
    }

    #[test]
    fn revived_processor_is_required_again() {
        let mut b = BarrierSet::new(1, 2);
        let id = BarrierId::new(0);
        b.mark_dead(p(1));
        assert_eq!(
            b.arrive(p(0), id).unwrap(),
            BarrierArrival::Complete { episode: 0 }
        );
        b.revive(p(1));
        assert!(!b.is_dead(p(1)));
        assert_eq!(
            b.arrive(p(0), id).unwrap(),
            BarrierArrival::Waiting {
                arrived: 1,
                episode: 1
            }
        );
        assert_eq!(
            b.arrive(p(1), id).unwrap(),
            BarrierArrival::Complete { episode: 1 }
        );
    }

    #[test]
    fn single_proc_barrier_completes_immediately() {
        let mut b = BarrierSet::new(1, 1);
        assert_eq!(
            b.arrive(p(0), BarrierId::new(0)).unwrap(),
            BarrierArrival::Complete { episode: 0 }
        );
    }
}
