//! Vector timestamps and interval causality for lazy release consistency.
//!
//! Lazy release consistency (Keleher, Cox, Zwaenepoel; ISCA '92) divides the
//! execution of each processor into *intervals*, a new interval beginning at
//! each special (synchronization) access. Causality between intervals is the
//! *happened-before-1* partial order of Adve and Hill, represented with
//! per-processor [`VectorClock`]s: entry `p` of processor `p`'s clock is its
//! current interval index, and entry `q != p` is the most recent interval of
//! `q` that has *performed* at `p`.
//!
//! This crate is the causality substrate shared by the protocol engines: it
//! knows nothing about pages, diffs, or messages.
//!
//! # Example
//!
//! ```
//! use lrc_vclock::{ProcId, VectorClock, IntervalId, CausalOrd};
//!
//! let p0 = ProcId::new(0);
//! let p1 = ProcId::new(1);
//!
//! let mut a = VectorClock::new(2);
//! a.bump(p0); // p0 enters interval 1
//!
//! let mut b = VectorClock::new(2);
//! b.bump(p1); // p1 enters interval 1, knows nothing of p0
//!
//! assert_eq!(a.causal_cmp(&b), CausalOrd::Concurrent);
//!
//! // p1 acquires a lock last released by p0: it learns p0's time.
//! b.merge(&a);
//! assert!(b.covers(IntervalId::new(p0, 1)));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod interval;
mod proc_id;

pub use clock::{CausalOrd, VectorClock};
pub use interval::{linearize, IntervalId, StampedInterval};
pub use proc_id::ProcId;
