use std::fmt;

use crate::{IntervalId, ProcId};

/// Relationship between two vector timestamps under *happened-before-1*.
///
/// Returned by [`VectorClock::causal_cmp`]. Unlike [`std::cmp::Ordering`],
/// causality is a partial order, so two distinct clocks may be
/// [`Concurrent`](CausalOrd::Concurrent).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CausalOrd {
    /// The clocks are identical.
    Equal,
    /// `self` happened strictly before `other`.
    Before,
    /// `self` happened strictly after `other`.
    After,
    /// Neither clock dominates the other.
    Concurrent,
}

/// A vector timestamp: one interval index per processor.
///
/// Entry `p` of processor `p`'s own clock is the index of `p`'s current
/// interval; entry `q != p` is the most recent interval of `q` whose
/// modifications have performed at `p` (paper, §4.2). Interval indices start
/// at zero (the initial interval, before any synchronization).
///
/// # Example
///
/// ```
/// use lrc_vclock::{ProcId, VectorClock};
///
/// let mut vc = VectorClock::new(3);
/// vc.bump(ProcId::new(0));
/// vc.bump(ProcId::new(0));
/// assert_eq!(vc.get(ProcId::new(0)), 2);
/// assert_eq!(vc.get(ProcId::new(1)), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    entries: Vec<u32>,
}

impl VectorClock {
    /// Creates the zero clock of an `n_procs`-processor system.
    pub fn new(n_procs: usize) -> Self {
        VectorClock {
            entries: vec![0; n_procs],
        }
    }

    /// Number of processors this clock covers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the clock covers no processors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the interval index recorded for processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside this clock's processor range.
    pub fn get(&self, p: ProcId) -> u32 {
        self.entries[p.index()]
    }

    /// Sets the interval index recorded for processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside this clock's processor range.
    pub fn set(&mut self, p: ProcId, seq: u32) {
        self.entries[p.index()] = seq;
    }

    /// Advances processor `p`'s own entry by one (a new interval begins) and
    /// returns the new interval index.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside this clock's processor range.
    pub fn bump(&mut self, p: ProcId) -> u32 {
        let e = &mut self.entries[p.index()];
        *e += 1;
        *e
    }

    /// Wire size of this clock: one little-endian `u32` per processor —
    /// exactly the 4 bytes per entry `lrc-simnet`'s model charges.
    pub fn wire_len(&self) -> usize {
        4 * self.entries.len()
    }

    /// Appends the clock's wire encoding to `out` (entries in processor
    /// order, each a little-endian `u32`).
    pub fn write_wire(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_len());
        for &e in &self.entries {
            out.extend_from_slice(&e.to_le_bytes());
        }
    }

    /// Decodes a clock for `n_procs` processors from the front of `bytes`.
    /// Returns `None` if fewer than `4 * n_procs` bytes are available.
    pub fn read_wire(bytes: &[u8], n_procs: usize) -> Option<VectorClock> {
        let need = 4 * n_procs;
        if bytes.len() < need {
            return None;
        }
        let entries = bytes[..need]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Some(VectorClock { entries })
    }

    /// Pointwise maximum with `other`, in place. This is how a processor
    /// learns remote time on an acquire or barrier exit.
    ///
    /// # Panics
    ///
    /// Panics if the clocks cover different numbers of processors.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(
            self.len(),
            other.len(),
            "merging clocks of different widths"
        );
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a = (*a).max(*b);
        }
    }

    /// Returns the pointwise maximum of `self` and `other` as a new clock.
    ///
    /// # Panics
    ///
    /// Panics if the clocks cover different numbers of processors.
    pub fn merged(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// True if the interval `i` has performed at a processor holding this
    /// clock; that is, the clock's entry for `i`'s processor has reached
    /// `i`'s sequence number.
    pub fn covers(&self, i: IntervalId) -> bool {
        self.get(i.proc()) >= i.seq()
    }

    /// True if every entry of `self` is at least the matching entry of
    /// `other` (`self` knows everything `other` knows).
    ///
    /// # Panics
    ///
    /// Panics if the clocks cover different numbers of processors.
    pub fn dominates(&self, other: &VectorClock) -> bool {
        assert_eq!(
            self.len(),
            other.len(),
            "comparing clocks of different widths"
        );
        self.entries.iter().zip(&other.entries).all(|(a, b)| a >= b)
    }

    /// Compares two clocks under happened-before-1.
    ///
    /// # Panics
    ///
    /// Panics if the clocks cover different numbers of processors.
    pub fn causal_cmp(&self, other: &VectorClock) -> CausalOrd {
        let le = other.dominates(self);
        let ge = self.dominates(other);
        match (le, ge) {
            (true, true) => CausalOrd::Equal,
            (true, false) => CausalOrd::Before,
            (false, true) => CausalOrd::After,
            (false, false) => CausalOrd::Concurrent,
        }
    }

    /// True if `self` happened strictly before `other` — the
    /// happens-before test spelled out (used pervasively by the history
    /// checker in `lrc-hist`).
    ///
    /// # Panics
    ///
    /// Panics if the clocks cover different numbers of processors.
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        self.causal_cmp(other) == CausalOrd::Before
    }

    /// True if neither clock dominates the other: the events they stamp
    /// are concurrent under happened-before-1.
    ///
    /// # Panics
    ///
    /// Panics if the clocks cover different numbers of processors.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.causal_cmp(other) == CausalOrd::Concurrent
    }

    /// Iterates over `(processor, interval index)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, u32)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, &s)| (ProcId::new(i as u16), s))
    }

    /// Sum of all entries. Strictly increases along every happened-before
    /// chain, so sorting by `(weight, proc, seq)` is a valid linear extension
    /// of causality — the order in which diffs are applied.
    pub fn weight(&self) -> u64 {
        self.entries.iter().map(|&e| e as u64).sum()
    }

    /// Bytes this clock occupies on the wire (4 bytes per entry).
    pub fn encoded_size(&self) -> usize {
        4 * self.entries.len()
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VectorClock{:?}", self.entries)
    }
}

impl fmt::Display for VectorClock {
    /// Formats the clock as `<e0,e1,...>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    #[test]
    fn new_clock_is_zero() {
        let vc = VectorClock::new(4);
        assert_eq!(vc.len(), 4);
        assert!(ProcId::all(4).all(|q| vc.get(q) == 0));
        assert_eq!(vc.weight(), 0);
    }

    #[test]
    fn bump_advances_only_own_entry() {
        let mut vc = VectorClock::new(3);
        assert_eq!(vc.bump(p(1)), 1);
        assert_eq!(vc.bump(p(1)), 2);
        assert_eq!(vc.get(p(0)), 0);
        assert_eq!(vc.get(p(1)), 2);
        assert_eq!(vc.get(p(2)), 0);
    }

    #[test]
    fn merge_takes_pointwise_max() {
        let mut a = VectorClock::new(3);
        a.set(p(0), 5);
        a.set(p(2), 1);
        let mut b = VectorClock::new(3);
        b.set(p(0), 2);
        b.set(p(1), 9);
        a.merge(&b);
        assert_eq!(a.get(p(0)), 5);
        assert_eq!(a.get(p(1)), 9);
        assert_eq!(a.get(p(2)), 1);
    }

    #[test]
    fn covers_tracks_entry() {
        let mut vc = VectorClock::new(2);
        vc.set(p(1), 3);
        assert!(vc.covers(IntervalId::new(p(1), 3)));
        assert!(vc.covers(IntervalId::new(p(1), 1)));
        assert!(!vc.covers(IntervalId::new(p(1), 4)));
        assert!(vc.covers(IntervalId::new(p(0), 0)));
    }

    #[test]
    fn causal_cmp_distinguishes_all_cases() {
        let zero = VectorClock::new(2);
        let mut a = zero.clone();
        a.bump(p(0));
        let mut b = zero.clone();
        b.bump(p(1));
        assert_eq!(zero.causal_cmp(&zero), CausalOrd::Equal);
        assert_eq!(zero.causal_cmp(&a), CausalOrd::Before);
        assert_eq!(a.causal_cmp(&zero), CausalOrd::After);
        assert_eq!(a.causal_cmp(&b), CausalOrd::Concurrent);
    }

    #[test]
    fn hb_helpers_match_causal_cmp() {
        let zero = VectorClock::new(2);
        let mut a = zero.clone();
        a.bump(p(0));
        let mut b = zero.clone();
        b.bump(p(1));
        assert!(zero.happened_before(&a));
        assert!(!a.happened_before(&zero));
        assert!(!a.happened_before(&a), "strict: equal is not before");
        assert!(a.concurrent_with(&b));
        assert!(!zero.concurrent_with(&a));
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_width_mismatch() {
        let mut a = VectorClock::new(2);
        a.merge(&VectorClock::new(3));
    }

    #[test]
    fn display_formats_entries() {
        let mut vc = VectorClock::new(3);
        vc.set(p(1), 2);
        assert_eq!(vc.to_string(), "<0,2,0>");
        assert_eq!(format!("{vc:?}"), "VectorClock[0, 2, 0]");
    }

    #[test]
    fn encoded_size_is_four_bytes_per_proc() {
        assert_eq!(VectorClock::new(16).encoded_size(), 64);
    }
}
