use std::fmt;

use crate::{ProcId, VectorClock};

/// Identifier of one interval of one processor's execution.
///
/// A new interval begins at each special (synchronization) access, so the
/// pair `(processor, sequence number)` names an interval uniquely across the
/// system. Interval 0 is the initial interval, before any synchronization.
///
/// # Example
///
/// ```
/// use lrc_vclock::{IntervalId, ProcId};
///
/// let i = IntervalId::new(ProcId::new(2), 7);
/// assert_eq!(i.proc(), ProcId::new(2));
/// assert_eq!(i.seq(), 7);
/// assert_eq!(i.to_string(), "p2@7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IntervalId {
    proc: ProcId,
    seq: u32,
}

impl IntervalId {
    /// Creates the id of interval `seq` of processor `proc`.
    pub fn new(proc: ProcId, seq: u32) -> Self {
        IntervalId { proc, seq }
    }

    /// The processor whose execution this interval belongs to.
    pub fn proc(self) -> ProcId {
        self.proc
    }

    /// The interval's sequence number within its processor's execution.
    pub fn seq(self) -> u32 {
        self.seq
    }

    /// Wire size of an interval id: processor (`u16`) + sequence (`u32`).
    ///
    /// Two bytes more than `lrc-simnet`'s modeled 4-byte interval field —
    /// the model packs the sequence into 16 bits, which a real execution
    /// can overflow; the measured encoding keeps full fidelity and the
    /// deviation shows up in the modeled-vs-measured cross-check.
    pub const WIRE_BYTES: usize = 6;

    /// Appends the id's wire encoding to `out`.
    pub fn write_wire(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.proc.raw().to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
    }

    /// Decodes an interval id from the front of `bytes`. Returns `None` if
    /// fewer than [`IntervalId::WIRE_BYTES`] bytes are available.
    pub fn read_wire(bytes: &[u8]) -> Option<IntervalId> {
        if bytes.len() < Self::WIRE_BYTES {
            return None;
        }
        let proc = ProcId::new(u16::from_le_bytes([bytes[0], bytes[1]]));
        let seq = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
        Some(IntervalId::new(proc, seq))
    }
}

impl fmt::Display for IntervalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.proc, self.seq)
    }
}

/// An interval together with the vector timestamp it closed with.
///
/// The timestamp of interval `i` of processor `p` has `p`'s entry equal to
/// `i` and records, for every other processor, the latest interval that had
/// performed at `p` while `i` was current. Two stamped intervals are related
/// by happened-before-1 exactly when one's clock covers the other's id.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StampedInterval {
    id: IntervalId,
    clock: VectorClock,
}

impl StampedInterval {
    /// Pairs an interval id with the vector time it carried.
    ///
    /// # Panics
    ///
    /// Panics if the clock's own entry for `id.proc()` disagrees with
    /// `id.seq()`; the stamp would then misrepresent causality.
    pub fn new(id: IntervalId, clock: VectorClock) -> Self {
        assert_eq!(
            clock.get(id.proc()),
            id.seq(),
            "stamp for {id} must carry its own sequence number"
        );
        StampedInterval { id, clock }
    }

    /// The interval's identifier.
    pub fn id(&self) -> IntervalId {
        self.id
    }

    /// The vector timestamp the interval carried.
    pub fn clock(&self) -> &VectorClock {
        &self.clock
    }

    /// True if `self` happened strictly before `other`.
    ///
    /// For intervals of the same processor this is sequence order; across
    /// processors it holds when `other`'s clock covers `self`.
    pub fn happened_before(&self, other: &StampedInterval) -> bool {
        if self.id == other.id {
            return false;
        }
        if self.id.proc() == other.id.proc() {
            return self.id.seq() < other.id.seq();
        }
        other.clock.covers(self.id)
    }

    /// True if neither interval happened before the other.
    pub fn concurrent_with(&self, other: &StampedInterval) -> bool {
        self.id != other.id && !self.happened_before(other) && !other.happened_before(self)
    }
}

/// Sorts stamped intervals into a linear extension of happened-before-1:
/// if `a` happened before `b`, `a` is placed earlier. Concurrent intervals
/// are ordered deterministically by `(clock weight, proc, seq)`.
///
/// This is the order in which diffs must be applied to a page (paper,
/// §4.3.3: "the happened-before-1 partial order specifies the order in which
/// the diffs need to be applied").
pub fn linearize(intervals: &mut [StampedInterval]) {
    intervals.sort_by_key(|iv| (iv.clock().weight(), iv.id().proc(), iv.id().seq()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn stamp(proc: u16, seq: u32, others: &[(u16, u32)]) -> StampedInterval {
        let n = 4;
        let mut vc = VectorClock::new(n);
        vc.set(p(proc), seq);
        for &(q, s) in others {
            vc.set(p(q), s);
        }
        StampedInterval::new(IntervalId::new(p(proc), seq), vc)
    }

    #[test]
    fn same_processor_orders_by_seq() {
        let a = stamp(0, 1, &[]);
        let b = stamp(0, 2, &[]);
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
        assert!(!a.concurrent_with(&b));
    }

    #[test]
    fn cross_processor_orders_by_coverage() {
        // p1's interval 1 saw p0's interval 2.
        let a = stamp(0, 2, &[]);
        let b = stamp(1, 1, &[(0, 2)]);
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
    }

    #[test]
    fn unrelated_intervals_are_concurrent() {
        let a = stamp(0, 1, &[]);
        let b = stamp(1, 1, &[]);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
    }

    #[test]
    fn interval_never_precedes_itself() {
        let a = stamp(0, 1, &[]);
        assert!(!a.happened_before(&a.clone()));
        assert!(!a.concurrent_with(&a.clone()));
    }

    #[test]
    #[should_panic(expected = "own sequence number")]
    fn stamp_must_carry_own_seq() {
        let vc = VectorClock::new(2);
        StampedInterval::new(IntervalId::new(p(0), 3), vc);
    }

    #[test]
    fn linearize_respects_happened_before() {
        let a = stamp(0, 1, &[]); // earliest
        let b = stamp(1, 1, &[(0, 1)]); // after a
        let c = stamp(2, 1, &[]); // concurrent with both
        let mut v = vec![b.clone(), c.clone(), a.clone()];
        linearize(&mut v);
        let pos = |x: &StampedInterval| v.iter().position(|y| y.id() == x.id()).unwrap();
        assert!(pos(&a) < pos(&b), "a must precede b");
        // Deterministic output regardless of input order.
        let mut v2 = vec![c, a, b];
        linearize(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn display_formats_interval() {
        assert_eq!(IntervalId::new(p(1), 9).to_string(), "p1@9");
    }
}
