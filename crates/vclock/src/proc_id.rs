use std::fmt;

/// Identifier of a processor (node) in the DSM system.
///
/// Processors are numbered densely from zero; a system of `n` processors uses
/// ids `0..n`. The id doubles as an index into per-processor tables such as
/// [`VectorClock`](crate::VectorClock) entries.
///
/// # Example
///
/// ```
/// use lrc_vclock::ProcId;
///
/// let p = ProcId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcId(u16);

impl ProcId {
    /// Creates a processor id from its dense index.
    pub fn new(index: u16) -> Self {
        ProcId(index)
    }

    /// Returns the id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric id.
    pub fn raw(self) -> u16 {
        self.0
    }

    /// Iterates over all processor ids of an `n`-processor system.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u16::MAX`.
    pub fn all(n: usize) -> impl Iterator<Item = ProcId> {
        assert!(n <= u16::MAX as usize, "processor count {n} out of range");
        (0..n as u16).map(ProcId)
    }
}

impl From<u16> for ProcId {
    fn from(index: u16) -> Self {
        ProcId(index)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        let p = ProcId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.raw(), 7);
        assert_eq!(ProcId::from(7u16), p);
    }

    #[test]
    fn all_enumerates_densely() {
        let ids: Vec<_> = ProcId::all(4).collect();
        assert_eq!(
            ids,
            vec![
                ProcId::new(0),
                ProcId::new(1),
                ProcId::new(2),
                ProcId::new(3)
            ]
        );
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcId::new(1) < ProcId::new(2));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ProcId::new(12).to_string(), "p12");
    }
}
