//! Property-based tests for the vector-clock laws the protocol engines rely
//! on: merge is a join (commutative, associative, idempotent, monotone) and
//! `causal_cmp` is a partial order consistent with `dominates`.

use lrc_vclock::{CausalOrd, IntervalId, ProcId, StampedInterval, VectorClock};
use proptest::prelude::*;

const N: usize = 5;

/// `a` happened before or equals `b` under `causal_cmp`.
fn le(a: &VectorClock, b: &VectorClock) -> bool {
    matches!(a.causal_cmp(b), CausalOrd::Before | CausalOrd::Equal)
}

fn clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u32..40, N).prop_map(|v| {
        let mut vc = VectorClock::new(N);
        for (i, s) in v.into_iter().enumerate() {
            vc.set(ProcId::new(i as u16), s);
        }
        vc
    })
}

proptest! {
    #[test]
    fn merge_is_commutative(a in clock(), b in clock()) {
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    #[test]
    fn merge_is_associative(a in clock(), b in clock(), c in clock()) {
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    #[test]
    fn merge_is_idempotent(a in clock()) {
        prop_assert_eq!(a.merged(&a), a);
    }

    #[test]
    fn merge_is_upper_bound(a in clock(), b in clock()) {
        let m = a.merged(&b);
        prop_assert!(m.dominates(&a));
        prop_assert!(m.dominates(&b));
    }

    #[test]
    fn merge_is_least_upper_bound(a in clock(), b in clock(), c in clock()) {
        // Any clock dominating both a and b dominates their merge.
        let m = a.merged(&b);
        let c = c.merged(&m); // force c to dominate both
        prop_assert!(c.dominates(&m));
    }

    #[test]
    fn causal_cmp_matches_dominates(a in clock(), b in clock()) {
        let expected = match (b.dominates(&a), a.dominates(&b)) {
            (true, true) => CausalOrd::Equal,
            (true, false) => CausalOrd::Before,
            (false, true) => CausalOrd::After,
            (false, false) => CausalOrd::Concurrent,
        };
        prop_assert_eq!(a.causal_cmp(&b), expected);
    }

    #[test]
    fn causal_cmp_is_antisymmetric(a in clock(), b in clock()) {
        let ab = a.causal_cmp(&b);
        let ba = b.causal_cmp(&a);
        let flipped = match ab {
            CausalOrd::Equal => CausalOrd::Equal,
            CausalOrd::Before => CausalOrd::After,
            CausalOrd::After => CausalOrd::Before,
            CausalOrd::Concurrent => CausalOrd::Concurrent,
        };
        prop_assert_eq!(ba, flipped);
    }

    #[test]
    fn weight_strictly_increases_on_bump(a in clock(), p in 0u16..N as u16) {
        let mut b = a.clone();
        b.bump(ProcId::new(p));
        prop_assert!(b.weight() == a.weight() + 1);
        prop_assert!(b.dominates(&a) && !a.dominates(&b));
    }

    #[test]
    fn covers_agrees_with_get(a in clock(), p in 0u16..N as u16, s in 0u32..50) {
        let id = IntervalId::new(ProcId::new(p), s);
        prop_assert_eq!(a.covers(id), a.get(ProcId::new(p)) >= s);
    }

    #[test]
    fn merge_preserves_coverage(a in clock(), b in clock(), p in 0u16..N as u16, s in 0u32..50) {
        let id = IntervalId::new(ProcId::new(p), s);
        if a.covers(id) || b.covers(id) {
            prop_assert!(a.merged(&b).covers(id));
        }
    }

    // ---- causal_cmp partial-order laws ----

    #[test]
    fn causal_cmp_is_reflexive(a in clock()) {
        prop_assert_eq!(a.causal_cmp(&a), CausalOrd::Equal);
        prop_assert_eq!(a.causal_cmp(&a.clone()), CausalOrd::Equal);
    }

    #[test]
    fn causal_cmp_antisymmetry_forces_equality(a in clock(), b in clock()) {
        // Antisymmetry proper: a <= b and b <= a only when a == b.
        if le(&a, &b) && le(&b, &a) {
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.causal_cmp(&b), CausalOrd::Equal);
        }
    }

    #[test]
    fn causal_cmp_is_transitive(a in clock(), b in clock(), c in clock()) {
        // Build a <= m <= u by construction, then check transitivity both on
        // the constructed chain and on any ordered pairs the raw draws form.
        let m = a.merged(&b);
        let u = m.merged(&c);
        prop_assert!(le(&a, &m) && le(&m, &u));
        prop_assert!(le(&a, &u));
        if le(&a, &b) && le(&b, &c) {
            prop_assert!(le(&a, &c));
        }
        // Strictness propagates: a < b <= c (or a <= b < c) gives a < c.
        if le(&a, &b) && le(&b, &c) && (a.causal_cmp(&b) == CausalOrd::Before || b.causal_cmp(&c) == CausalOrd::Before) {
            prop_assert_eq!(a.causal_cmp(&c), CausalOrd::Before);
        }
    }

    #[test]
    fn concurrency_is_symmetric_and_irreflexive(a in clock(), b in clock()) {
        prop_assert_eq!(
            a.causal_cmp(&b) == CausalOrd::Concurrent,
            b.causal_cmp(&a) == CausalOrd::Concurrent
        );
        prop_assert_ne!(a.causal_cmp(&a), CausalOrd::Concurrent);
        // Concurrency never relates a clock to its own join.
        prop_assert_ne!(a.causal_cmp(&a.merged(&b)), CausalOrd::Concurrent);
    }

    // ---- interval-coverage round-trips ----

    #[test]
    fn clock_round_trips_through_coverage(a in clock()) {
        // A clock is exactly the set of interval ids it covers: rebuilding
        // from the maximal covered sequence per processor is the identity.
        let mut rebuilt = VectorClock::new(N);
        for p in ProcId::all(N) {
            let max_covered = (0..=40u32)
                .filter(|&s| a.covers(IntervalId::new(p, s)))
                .max()
                .expect("interval 0 is always covered");
            rebuilt.set(p, max_covered);
        }
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn coverage_boundary_is_exact(a in clock(), p in 0u16..N as u16) {
        let p = ProcId::new(p);
        let s = a.get(p);
        prop_assert!(a.covers(IntervalId::new(p, s)));
        prop_assert!(!a.covers(IntervalId::new(p, s + 1)));
    }

    #[test]
    fn bump_covers_exactly_one_new_interval(a in clock(), p in 0u16..N as u16, q in 0u16..N as u16, s in 0u32..50) {
        let p = ProcId::new(p);
        let mut bumped = a.clone();
        let new_seq = bumped.bump(p);
        prop_assert!(!a.covers(IntervalId::new(p, new_seq)));
        prop_assert!(bumped.covers(IntervalId::new(p, new_seq)));
        // Coverage of every other interval id is unchanged.
        let id = IntervalId::new(ProcId::new(q), s);
        if id != IntervalId::new(p, new_seq) {
            prop_assert_eq!(bumped.covers(id), a.covers(id));
        }
    }

    #[test]
    fn stamped_intervals_agree_with_coverage(a in clock(), b in clock(), p in 0u16..N as u16, q in 0u16..N as u16) {
        // happened-before-1 on stamped intervals is exactly id-coverage (or
        // program order on the same processor), and concurrency is symmetric.
        // Note: arbitrary independent clocks can form stamp pairs no real
        // execution produces (mutual coverage — a causality cycle), so the
        // asymmetry check lives in `merged_bump_stamps_are_ordered` below,
        // which builds its successor stamp the way an execution would.
        let (p, q) = (ProcId::new(p), ProcId::new(q));
        let ia = StampedInterval::new(IntervalId::new(p, a.get(p)), a.clone());
        let ib = StampedInterval::new(IntervalId::new(q, b.get(q)), b.clone());
        if ia.id() != ib.id() {
            let expect = if p == q {
                ia.id().seq() < ib.id().seq()
            } else {
                ib.clock().covers(ia.id())
            };
            prop_assert_eq!(ia.happened_before(&ib), expect);
            prop_assert_eq!(ia.concurrent_with(&ib), ib.concurrent_with(&ia));
        } else {
            prop_assert!(!ia.happened_before(&ib) && !ia.concurrent_with(&ib));
        }
    }

    #[test]
    fn merged_bump_stamps_are_ordered(a in clock(), b in clock(), p in 0u16..N as u16, q in 0u16..N as u16) {
        // A successor interval built the way an execution builds one — merge
        // the predecessor's clock (lock grant) and bump your own entry — is
        // strictly after the predecessor, never before, never concurrent.
        let (p, q) = (ProcId::new(p), ProcId::new(q));
        let ia = StampedInterval::new(IntervalId::new(p, a.get(p)), a.clone());
        let mut succ = a.merged(&b);
        let seq = succ.bump(q);
        let ib = StampedInterval::new(IntervalId::new(q, seq), succ);
        prop_assert!(ia.happened_before(&ib));
        prop_assert!(!ib.happened_before(&ia));
        prop_assert!(!ia.concurrent_with(&ib) && !ib.concurrent_with(&ia));
    }
}
