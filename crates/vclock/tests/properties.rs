//! Property-based tests for the vector-clock laws the protocol engines rely
//! on: merge is a join (commutative, associative, idempotent, monotone) and
//! `causal_cmp` is a partial order consistent with `dominates`.

use lrc_vclock::{CausalOrd, IntervalId, ProcId, VectorClock};
use proptest::prelude::*;

const N: usize = 5;

fn clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u32..40, N).prop_map(|v| {
        let mut vc = VectorClock::new(N);
        for (i, s) in v.into_iter().enumerate() {
            vc.set(ProcId::new(i as u16), s);
        }
        vc
    })
}

proptest! {
    #[test]
    fn merge_is_commutative(a in clock(), b in clock()) {
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    #[test]
    fn merge_is_associative(a in clock(), b in clock(), c in clock()) {
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    #[test]
    fn merge_is_idempotent(a in clock()) {
        prop_assert_eq!(a.merged(&a), a);
    }

    #[test]
    fn merge_is_upper_bound(a in clock(), b in clock()) {
        let m = a.merged(&b);
        prop_assert!(m.dominates(&a));
        prop_assert!(m.dominates(&b));
    }

    #[test]
    fn merge_is_least_upper_bound(a in clock(), b in clock(), c in clock()) {
        // Any clock dominating both a and b dominates their merge.
        let m = a.merged(&b);
        let c = c.merged(&m); // force c to dominate both
        prop_assert!(c.dominates(&m));
    }

    #[test]
    fn causal_cmp_matches_dominates(a in clock(), b in clock()) {
        let expected = match (b.dominates(&a), a.dominates(&b)) {
            (true, true) => CausalOrd::Equal,
            (true, false) => CausalOrd::Before,
            (false, true) => CausalOrd::After,
            (false, false) => CausalOrd::Concurrent,
        };
        prop_assert_eq!(a.causal_cmp(&b), expected);
    }

    #[test]
    fn causal_cmp_is_antisymmetric(a in clock(), b in clock()) {
        let ab = a.causal_cmp(&b);
        let ba = b.causal_cmp(&a);
        let flipped = match ab {
            CausalOrd::Equal => CausalOrd::Equal,
            CausalOrd::Before => CausalOrd::After,
            CausalOrd::After => CausalOrd::Before,
            CausalOrd::Concurrent => CausalOrd::Concurrent,
        };
        prop_assert_eq!(ba, flipped);
    }

    #[test]
    fn weight_strictly_increases_on_bump(a in clock(), p in 0u16..N as u16) {
        let mut b = a.clone();
        b.bump(ProcId::new(p));
        prop_assert!(b.weight() == a.weight() + 1);
        prop_assert!(b.dominates(&a) && !a.dominates(&b));
    }

    #[test]
    fn covers_agrees_with_get(a in clock(), p in 0u16..N as u16, s in 0u32..50) {
        let id = IntervalId::new(ProcId::new(p), s);
        prop_assert_eq!(a.covers(id), a.get(ProcId::new(p)) >= s);
    }

    #[test]
    fn merge_preserves_coverage(a in clock(), b in clock(), p in 0u16..N as u16, s in 0u32..50) {
        let id = IntervalId::new(ProcId::new(p), s);
        if a.covers(id) || b.covers(id) {
            prop_assert!(a.merged(&b).covers(id));
        }
    }
}
