//! Property-based tests for the diff machinery: diffs must exactly
//! reconstruct pages, commute when disjoint, and respect the size model.

use lrc_pagemem::{Diff, PageBuf, PageSize};
use proptest::prelude::*;

const PAGE: usize = 256;

fn size() -> PageSize {
    PageSize::new(PAGE).unwrap()
}

/// A set of writes: (offset, bytes) pairs kept inside the page.
fn writes() -> impl Strategy<Value = Vec<(usize, Vec<u8>)>> {
    prop::collection::vec(
        (0..PAGE).prop_flat_map(|off| {
            let max_len = (PAGE - off).clamp(1, 16);
            (Just(off), prop::collection::vec(any::<u8>(), 1..=max_len))
        }),
        0..12,
    )
}

fn apply_writes(page: &mut PageBuf, ws: &[(usize, Vec<u8>)]) {
    for (off, data) in ws {
        page.write(*off, data);
    }
}

proptest! {
    #[test]
    fn diff_reconstructs_exactly(ws in writes()) {
        let twin = PageBuf::zeroed(size());
        let mut cur = twin.clone();
        apply_writes(&mut cur, &ws);
        let diff = Diff::between(&twin, &cur);
        let mut rebuilt = twin.clone();
        diff.apply_to(&mut rebuilt);
        prop_assert_eq!(rebuilt.as_bytes(), cur.as_bytes());
    }

    #[test]
    fn diff_from_nonzero_base_reconstructs(base in prop::collection::vec(any::<u8>(), PAGE), ws in writes()) {
        let twin = PageBuf::from_bytes(base);
        let mut cur = twin.clone();
        apply_writes(&mut cur, &ws);
        let diff = Diff::between(&twin, &cur);
        let mut rebuilt = twin.clone();
        diff.apply_to(&mut rebuilt);
        prop_assert_eq!(rebuilt.as_bytes(), cur.as_bytes());
    }

    #[test]
    fn diff_is_minimal(ws in writes()) {
        // Every byte the diff carries really differs between twin and page.
        let twin = PageBuf::zeroed(size());
        let mut cur = twin.clone();
        apply_writes(&mut cur, &ws);
        let diff = Diff::between(&twin, &cur);
        for run in diff.runs() {
            for (i, &b) in run.data().iter().enumerate() {
                let off = run.offset() as usize + i;
                prop_assert_ne!(twin.as_bytes()[off], b, "byte {} did not change", off);
                prop_assert_eq!(cur.as_bytes()[off], b);
            }
        }
        // And it carries exactly the changed byte count.
        let changed = twin
            .as_bytes()
            .iter()
            .zip(cur.as_bytes())
            .filter(|(a, b)| a != b)
            .count();
        prop_assert_eq!(diff.modified_bytes(), changed);
    }

    #[test]
    fn runs_are_sorted_disjoint_and_maximal(ws in writes()) {
        let twin = PageBuf::zeroed(size());
        let mut cur = twin.clone();
        apply_writes(&mut cur, &ws);
        let diff = Diff::between(&twin, &cur);
        let runs: Vec<_> = diff.runs().collect();
        for pair in runs.windows(2) {
            let gap_start = pair[0].offset() as usize + pair[0].len();
            let gap_end = pair[1].offset() as usize;
            // Sorted and disjoint with at least one unmodified byte between
            // runs (otherwise they would have coalesced).
            prop_assert!(gap_start < gap_end);
            prop_assert!((gap_start..gap_end).any(|i| twin.as_bytes()[i] == cur.as_bytes()[i]));
        }
    }

    #[test]
    fn disjoint_halves_commute(left in prop::collection::vec(any::<u8>(), 1..64),
                               right in prop::collection::vec(any::<u8>(), 1..64)) {
        // Two "processors" write disjoint halves of the same page (false
        // sharing). Their diffs must merge to the same result in either
        // order — the multiple-writer guarantee.
        let twin = PageBuf::zeroed(size());
        let mut a = twin.clone();
        a.write(0, &left);
        let mut b = twin.clone();
        b.write(PAGE / 2, &right);
        let da = Diff::between(&twin, &a);
        let db = Diff::between(&twin, &b);
        prop_assert!(!da.overlaps(&db));

        let mut ab = twin.clone();
        da.apply_to(&mut ab);
        db.apply_to(&mut ab);
        let mut ba = twin.clone();
        db.apply_to(&mut ba);
        da.apply_to(&mut ba);
        prop_assert_eq!(ab.as_bytes(), ba.as_bytes());
    }

    #[test]
    fn encoded_size_matches_model(ws in writes()) {
        let twin = PageBuf::zeroed(size());
        let mut cur = twin.clone();
        apply_writes(&mut cur, &ws);
        let diff = Diff::between(&twin, &cur);
        let expected = lrc_pagemem::DIFF_HEADER_BYTES
            + diff
                .runs()
                .map(|r| lrc_pagemem::RUN_HEADER_BYTES + r.len())
                .sum::<usize>();
        prop_assert_eq!(diff.encoded_size(), expected);
        // A diff never costs more than header + one run covering the page.
        prop_assert!(diff.modified_bytes() <= PAGE);
    }

    #[test]
    fn diff_of_unmodified_page_is_empty(base in prop::collection::vec(any::<u8>(), PAGE)) {
        // An interval that never wrote must cost nothing on the wire: the
        // twin comparison yields no runs, no payload, and applying the empty
        // diff is the identity.
        let twin = PageBuf::from_bytes(base);
        let diff = Diff::between(&twin, &twin.clone());
        prop_assert!(diff.is_empty());
        prop_assert_eq!(diff.run_count(), 0);
        prop_assert_eq!(diff.modified_bytes(), 0);
        prop_assert_eq!(diff.encoded_size(), lrc_pagemem::DIFF_HEADER_BYTES);
        let mut target = twin.clone();
        diff.apply_to(&mut target);
        prop_assert_eq!(target.as_bytes(), twin.as_bytes());
    }

    #[test]
    fn restoring_original_bytes_leaves_no_trace(base in prop::collection::vec(any::<u8>(), PAGE), ws in writes()) {
        // Twin→diff→apply on a page whose writes were later undone: byte-wise
        // comparison (not write interception) defines the diff, so writing
        // the original values back produces the empty diff.
        let twin = PageBuf::from_bytes(base);
        let mut cur = twin.clone();
        apply_writes(&mut cur, &ws);
        for (off, data) in &ws {
            let original = twin.slice(*off, data.len()).to_vec();
            cur.write(*off, &original);
        }
        let diff = Diff::between(&twin, &cur);
        prop_assert!(diff.is_empty(), "undone writes still produced {} runs", diff.run_count());
    }

    #[test]
    fn twin_diff_apply_is_identity_on_fresh_copy(base in prop::collection::vec(any::<u8>(), PAGE), ws in writes()) {
        // The full protocol round: keep a twin, write the working copy,
        // diff, then bring an independently-held copy of the twin (another
        // processor's cached page) up to date.
        let twin = PageBuf::from_bytes(base.clone());
        let mut cur = twin.clone();
        apply_writes(&mut cur, &ws);
        let diff = Diff::between(&twin, &cur);
        let mut other_proc_copy = PageBuf::from_bytes(base);
        diff.apply_to(&mut other_proc_copy);
        prop_assert_eq!(other_proc_copy.as_bytes(), cur.as_bytes());
        // Applying the same diff twice is idempotent.
        diff.apply_to(&mut other_proc_copy);
        prop_assert_eq!(other_proc_copy.as_bytes(), cur.as_bytes());
    }

    #[test]
    fn sequential_diffs_compose(ws1 in writes(), ws2 in writes()) {
        // Interval 1 then interval 2 on the same page: applying both diffs
        // in happened-before order reproduces the final page.
        let base = PageBuf::zeroed(size());
        let mut after1 = base.clone();
        apply_writes(&mut after1, &ws1);
        let d1 = Diff::between(&base, &after1);
        let mut after2 = after1.clone();
        apply_writes(&mut after2, &ws2);
        let d2 = Diff::between(&after1, &after2);

        let mut rebuilt = base.clone();
        d1.apply_to(&mut rebuilt);
        d2.apply_to(&mut rebuilt);
        prop_assert_eq!(rebuilt.as_bytes(), after2.as_bytes());
    }
}
