//! Page-based shared address space, twins and diffs.
//!
//! Software DSMs manage consistency at the granularity of virtual-memory
//! pages. Multiple-writer protocols (Munin's write-shared protocol, lazy
//! release consistency) let several processors write *different parts of the
//! same page* concurrently and reconcile the copies afterwards with *diffs*:
//! before the first write of an interval a processor copies the page (the
//! *twin*), and at reconciliation time it compares the working page against
//! the twin to produce a run-length encoding of the modified bytes.
//!
//! This crate provides that machinery, free of any protocol logic:
//!
//! * [`AddrSpace`] — maps flat addresses to `(page, offset)` under a
//!   configurable power-of-two [`PageSize`];
//! * [`PageBuf`] — one page's bytes, with typed accessors;
//! * [`Diff`] — run-length-encoded page deltas ([`Diff::between`],
//!   [`Diff::apply_to`]) with an on-the-wire size model;
//! * [`Memory`] — a flat, sequentially-consistent memory used for page homes
//!   and as the correctness oracle in the simulator.
//!
//! # Example
//!
//! ```
//! use lrc_pagemem::{Diff, PageBuf, PageSize};
//!
//! let size = PageSize::new(1024)?;
//! let twin = PageBuf::zeroed(size);
//! let mut page = twin.clone();
//! page.write(100, &[1, 2, 3]);
//! page.write(512, &[9]);
//!
//! let diff = Diff::between(&twin, &page);
//! assert_eq!(diff.run_count(), 2);
//! assert_eq!(diff.modified_bytes(), 4);
//!
//! let mut other = PageBuf::zeroed(size);
//! diff.apply_to(&mut other);
//! assert_eq!(other.as_bytes(), page.as_bytes());
//! # Ok::<(), lrc_pagemem::PageSizeError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod diff;
mod memory;
mod page;

pub use addr::{AddrSpace, PageId, PageSize, PageSizeError, Segment};
pub use diff::{Diff, DiffRun, DIFF_HEADER_BYTES, RUN_HEADER_BYTES};
pub use memory::Memory;
pub use page::PageBuf;
