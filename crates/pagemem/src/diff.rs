use std::fmt;

use crate::PageBuf;

/// Wire overhead of a diff: page id (4), run count (4), interval stamp (4).
pub const DIFF_HEADER_BYTES: usize = 12;

/// Wire overhead of one run: offset (4) and length (4).
pub const RUN_HEADER_BYTES: usize = 8;

/// One maximal run of modified bytes within a page.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiffRun {
    offset: u32,
    data: Vec<u8>,
}

impl DiffRun {
    /// Creates a run of modified bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty; empty runs are never encoded.
    pub fn new(offset: u32, data: Vec<u8>) -> Self {
        assert!(!data.is_empty(), "diff runs must carry at least one byte");
        DiffRun { offset, data }
    }

    /// Byte offset of the run within its page.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// The new bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Length of the run in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: runs carry at least one byte.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A run-length encoding of the difference between a page and its twin.
///
/// Diffs are *the* unit of data movement in multiple-writer protocols: on a
/// release (eager RC) or on an acquire/access miss (lazy RC) the protocol
/// ships diffs instead of whole pages, which is what lets LRC "often avoid
/// bringing an entire page across the network" (paper, §5.3.4).
///
/// Applying a diff overwrites the runs' byte ranges. Diffs from causally
/// ordered intervals must be applied in happened-before order; diffs from
/// concurrent intervals touch disjoint bytes in properly-labeled programs,
/// so their application order does not matter.
///
/// # Example
///
/// ```
/// use lrc_pagemem::{Diff, PageBuf, PageSize};
///
/// let twin = PageBuf::zeroed(PageSize::new(256)?);
/// let mut page = twin.clone();
/// page.write(8, &[42; 16]);
/// let diff = Diff::between(&twin, &page);
/// assert_eq!(diff.modified_bytes(), 16);
/// assert_eq!(diff.encoded_size(), 12 + 8 + 16); // header + run header + data
/// # Ok::<(), lrc_pagemem::PageSizeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Diff {
    runs: Vec<DiffRun>,
}

impl Diff {
    /// Creates an empty diff (no modifications).
    pub fn new() -> Self {
        Diff { runs: Vec::new() }
    }

    /// Creates a diff from pre-built runs.
    ///
    /// # Panics
    ///
    /// Panics if runs overlap or are not sorted by offset; such a diff
    /// would not round-trip through the wire encoding.
    pub fn from_runs(runs: Vec<DiffRun>) -> Self {
        for pair in runs.windows(2) {
            let end = pair[0].offset() as usize + pair[0].len();
            assert!(
                end <= pair[1].offset() as usize,
                "diff runs must be sorted and disjoint"
            );
        }
        Diff { runs }
    }

    /// Compares a working page against its twin and encodes every byte that
    /// changed. Adjacent modified bytes coalesce into single runs.
    ///
    /// # Panics
    ///
    /// Panics if the pages have different sizes.
    pub fn between(twin: &PageBuf, current: &PageBuf) -> Self {
        assert_eq!(
            twin.len(),
            current.len(),
            "diffing pages of different sizes"
        );
        let old = twin.as_bytes();
        let new = current.as_bytes();
        let mut runs = Vec::new();
        let mut i = 0;
        let len = old.len();
        while i < len {
            if old[i] == new[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < len && old[i] != new[i] {
                i += 1;
            }
            runs.push(DiffRun::new(start as u32, new[start..i].to_vec()));
        }
        Diff { runs }
    }

    /// Overwrites the diff's byte ranges in `page`.
    ///
    /// # Panics
    ///
    /// Panics if a run extends past the end of the page.
    pub fn apply_to(&self, page: &mut PageBuf) {
        for run in &self.runs {
            page.write(run.offset() as usize, run.data());
        }
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// True if the diff carries no modifications.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates over the runs in offset order.
    pub fn runs(&self) -> impl Iterator<Item = &DiffRun> {
        self.runs.iter()
    }

    /// Total number of modified bytes.
    pub fn modified_bytes(&self) -> usize {
        self.runs.iter().map(DiffRun::len).sum()
    }

    /// Bytes this diff occupies on the wire: a fixed header plus a header
    /// and payload per run. This is the quantity charged to the "data"
    /// figures of the evaluation.
    pub fn encoded_size(&self) -> usize {
        DIFF_HEADER_BYTES
            + self
                .runs
                .iter()
                .map(|r| RUN_HEADER_BYTES + r.len())
                .sum::<usize>()
    }

    /// Merges a happened-before-ordered sequence of diffs of one page into
    /// a single minimal diff: later diffs overwrite earlier ones where they
    /// touch the same bytes, and adjacent runs coalesce.
    ///
    /// This is the paper's overwrite pruning (§4.3.2: a diff is not needed
    /// from interval `j` if a later interval `k` overwrote the
    /// modification) taken to byte granularity: what actually crosses the
    /// wire when one processor supplies a chain of diffs is the squashed
    /// result, never the redundant history.
    ///
    /// # Example
    ///
    /// ```
    /// use lrc_pagemem::{Diff, PageBuf, PageSize};
    ///
    /// let base = PageBuf::zeroed(PageSize::new(256)?);
    /// let mut v1 = base.clone();
    /// v1.write(0, &[1, 1, 1, 1]);
    /// let d1 = Diff::between(&base, &v1);
    /// let mut v2 = v1.clone();
    /// v2.write(0, &[2, 2, 2, 2]); // fully overwrites d1
    /// let d2 = Diff::between(&v1, &v2);
    ///
    /// let squashed = Diff::squash([&d1, &d2]);
    /// assert_eq!(squashed.modified_bytes(), 4, "d1's bytes were pruned");
    /// let mut page = base.clone();
    /// squashed.apply_to(&mut page);
    /// assert_eq!(page.as_bytes(), v2.as_bytes());
    /// # Ok::<(), lrc_pagemem::PageSizeError>(())
    /// ```
    pub fn squash<'a>(diffs: impl IntoIterator<Item = &'a Diff>) -> Diff {
        use std::collections::BTreeMap;
        let mut bytes: BTreeMap<u32, u8> = BTreeMap::new();
        for diff in diffs {
            for run in diff.runs() {
                for (i, &b) in run.data().iter().enumerate() {
                    bytes.insert(run.offset() + i as u32, b);
                }
            }
        }
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut cur: Option<(u32, Vec<u8>)> = None;
        for (off, b) in bytes {
            match &mut cur {
                Some((start, data)) if *start + data.len() as u32 == off => data.push(b),
                _ => {
                    if let Some((start, data)) = cur.take() {
                        runs.push(DiffRun::new(start, data));
                    }
                    cur = Some((off, vec![b]));
                }
            }
        }
        if let Some((start, data)) = cur {
            runs.push(DiffRun::new(start, data));
        }
        Diff { runs }
    }

    /// Appends the diff's wire encoding to `out`, tagged with the page it
    /// applies to and the sequence number of the interval that produced
    /// it. The layout matches [`Diff::encoded_size`] *exactly* — page id
    /// (4), run count (4), interval stamp (4), then per run offset (4),
    /// length (4), and the run's bytes — so the modeled byte accounting of
    /// `lrc-simnet` becomes a measurement for diffs.
    pub fn write_wire(&self, page: u32, stamp: u32, out: &mut Vec<u8>) {
        out.reserve(self.encoded_size());
        out.extend_from_slice(&page.to_le_bytes());
        out.extend_from_slice(&(self.runs.len() as u32).to_le_bytes());
        out.extend_from_slice(&stamp.to_le_bytes());
        for run in &self.runs {
            out.extend_from_slice(&run.offset().to_le_bytes());
            out.extend_from_slice(&(run.len() as u32).to_le_bytes());
            out.extend_from_slice(run.data());
        }
    }

    /// Decodes one wire diff from the front of `bytes`, returning the page
    /// tag, interval stamp, the diff, and the number of bytes consumed.
    ///
    /// Returns `None` on truncation, an unreasonable run count, empty
    /// runs, or runs that are not sorted and disjoint (a diff that would
    /// not have been produced by [`Diff::write_wire`]).
    pub fn read_wire(bytes: &[u8]) -> Option<(u32, u32, Diff, usize)> {
        let u32_at = |at: usize| -> Option<u32> {
            bytes
                .get(at..at + 4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        };
        let page = u32_at(0)?;
        let run_count = u32_at(4)? as usize;
        let stamp = u32_at(8)?;
        if run_count > bytes.len() / RUN_HEADER_BYTES {
            return None; // each run costs at least its header
        }
        let mut at = DIFF_HEADER_BYTES;
        let mut runs = Vec::with_capacity(run_count);
        let mut min_offset = 0usize;
        for _ in 0..run_count {
            let offset = u32_at(at)?;
            let len = u32_at(at + 4)? as usize;
            let data = bytes.get(at + 8..at + 8 + len)?;
            if len == 0 || (offset as usize) < min_offset {
                return None;
            }
            min_offset = offset as usize + len;
            runs.push(DiffRun::new(offset, data.to_vec()));
            at += RUN_HEADER_BYTES + len;
        }
        Some((page, stamp, Diff { runs }, at))
    }

    /// True if any byte range of `self` overlaps any byte range of `other`.
    /// Concurrent diffs of a properly-labeled program never overlap.
    pub fn overlaps(&self, other: &Diff) -> bool {
        // Runs are sorted by offset; walk both lists once.
        let mut a = self.runs.iter().peekable();
        let mut b = other.runs.iter().peekable();
        while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
            let x_end = x.offset() as usize + x.len();
            let y_end = y.offset() as usize + y.len();
            if x_end <= y.offset() as usize {
                a.next();
            } else if y_end <= x.offset() as usize {
                b.next();
            } else {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for Diff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diff({} runs, {} bytes modified, {} wire bytes)",
            self.run_count(),
            self.modified_bytes(),
            self.encoded_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PageSize;

    fn page() -> PageBuf {
        PageBuf::zeroed(PageSize::new(256).unwrap())
    }

    #[test]
    fn identical_pages_diff_empty() {
        let twin = page();
        let diff = Diff::between(&twin, &twin.clone());
        assert!(diff.is_empty());
        assert_eq!(diff.run_count(), 0);
        assert_eq!(diff.modified_bytes(), 0);
        assert_eq!(diff.encoded_size(), DIFF_HEADER_BYTES);
    }

    #[test]
    fn contiguous_writes_coalesce() {
        let twin = page();
        let mut cur = twin.clone();
        cur.write(10, &[1, 2, 3, 4]);
        let diff = Diff::between(&twin, &cur);
        assert_eq!(diff.run_count(), 1);
        assert_eq!(diff.modified_bytes(), 4);
    }

    #[test]
    fn disjoint_writes_make_separate_runs() {
        let twin = page();
        let mut cur = twin.clone();
        cur.write(0, &[9]);
        cur.write(100, &[9, 9]);
        cur.write(255, &[9]);
        let diff = Diff::between(&twin, &cur);
        assert_eq!(diff.run_count(), 3);
        assert_eq!(diff.modified_bytes(), 4);
    }

    #[test]
    fn writing_same_value_is_not_a_modification() {
        // A "write" that stores the value already present does not appear in
        // the diff — diffs encode changed bytes, exactly like Munin's.
        let mut twin = page();
        twin.write(5, &[7]);
        let mut cur = twin.clone();
        cur.write(5, &[7]);
        assert!(Diff::between(&twin, &cur).is_empty());
    }

    #[test]
    fn apply_reproduces_page() {
        let twin = page();
        let mut cur = twin.clone();
        cur.write(30, &[5; 50]);
        cur.write(200, &[6; 20]);
        let diff = Diff::between(&twin, &cur);
        let mut rebuilt = twin.clone();
        diff.apply_to(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn concurrent_disjoint_diffs_commute() {
        let twin = page();
        let mut a = twin.clone();
        a.write(0, &[1; 8]);
        let mut b = twin.clone();
        b.write(128, &[2; 8]);
        let da = Diff::between(&twin, &a);
        let db = Diff::between(&twin, &b);
        assert!(!da.overlaps(&db));

        let mut ab = twin.clone();
        da.apply_to(&mut ab);
        db.apply_to(&mut ab);
        let mut ba = twin.clone();
        db.apply_to(&mut ba);
        da.apply_to(&mut ba);
        assert_eq!(ab, ba);
    }

    #[test]
    fn overlap_detection() {
        let twin = page();
        let mut a = twin.clone();
        a.write(10, &[1; 10]);
        let mut b = twin.clone();
        b.write(15, &[2; 10]);
        let da = Diff::between(&twin, &a);
        let db = Diff::between(&twin, &b);
        assert!(da.overlaps(&db));
        assert!(db.overlaps(&da));
    }

    #[test]
    fn encoded_size_model() {
        let twin = page();
        let mut cur = twin.clone();
        cur.write(0, &[1; 10]);
        cur.write(50, &[2; 5]);
        let diff = Diff::between(&twin, &cur);
        assert_eq!(
            diff.encoded_size(),
            DIFF_HEADER_BYTES + (RUN_HEADER_BYTES + 10) + (RUN_HEADER_BYTES + 5)
        );
    }

    #[test]
    fn squash_prunes_and_coalesces() {
        let twin = page();
        let mut v1 = twin.clone();
        v1.write(0, &[1; 8]);
        v1.write(100, &[5; 4]);
        let d1 = Diff::between(&twin, &v1);
        let mut v2 = v1.clone();
        v2.write(4, &[2; 8]); // overlaps d1's tail, extends past it
        let d2 = Diff::between(&v1, &v2);

        let squashed = Diff::squash([&d1, &d2]);
        // Bytes 0..12 coalesce into one run; 100..104 stays separate.
        assert_eq!(squashed.run_count(), 2);
        assert_eq!(squashed.modified_bytes(), 16);
        let mut rebuilt = twin.clone();
        squashed.apply_to(&mut rebuilt);
        assert_eq!(rebuilt, v2);
        // Squashing never costs more than the sum of its parts.
        assert!(squashed.encoded_size() <= d1.encoded_size() + d2.encoded_size());
    }

    #[test]
    fn squash_of_nothing_is_empty() {
        assert!(Diff::squash([]).is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn from_runs_rejects_overlap() {
        Diff::from_runs(vec![
            DiffRun::new(0, vec![1; 10]),
            DiffRun::new(5, vec![2; 10]),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn empty_run_rejected() {
        DiffRun::new(0, Vec::new());
    }

    #[test]
    fn wire_round_trip_matches_encoded_size() {
        let twin = page();
        let mut cur = twin.clone();
        cur.write(3, &[9; 7]);
        cur.write(60, &[4; 2]);
        let diff = Diff::between(&twin, &cur);
        let mut buf = Vec::new();
        diff.write_wire(17, 5, &mut buf);
        assert_eq!(buf.len(), diff.encoded_size(), "wire bytes match model");
        let (page_id, stamp, back, used) = Diff::read_wire(&buf).unwrap();
        assert_eq!((page_id, stamp, used), (17, 5, buf.len()));
        assert_eq!(back, diff);
        // An empty diff is a bare header.
        let mut buf = Vec::new();
        Diff::new().write_wire(0, 0, &mut buf);
        assert_eq!(buf.len(), DIFF_HEADER_BYTES);
        assert!(Diff::read_wire(&buf).unwrap().2.is_empty());
    }

    #[test]
    fn wire_decode_rejects_corruption() {
        let twin = page();
        let mut cur = twin.clone();
        cur.write(0, &[1; 4]);
        let diff = Diff::between(&twin, &cur);
        let mut buf = Vec::new();
        diff.write_wire(0, 1, &mut buf);
        // Truncation at every boundary.
        for cut in [1, 4, 11, buf.len() - 1] {
            assert!(Diff::read_wire(&buf[..cut]).is_none(), "cut at {cut}");
        }
        // Absurd run count.
        let mut bad = buf.clone();
        bad[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Diff::read_wire(&bad).is_none());
        // Zero-length run.
        let mut bad = buf.clone();
        bad[16..20].copy_from_slice(&0u32.to_le_bytes());
        assert!(Diff::read_wire(&bad).is_none());
    }

    #[test]
    fn display_summarizes() {
        let twin = page();
        let mut cur = twin.clone();
        cur.write(0, &[1; 3]);
        let d = Diff::between(&twin, &cur);
        assert_eq!(
            d.to_string(),
            "diff(1 runs, 3 bytes modified, 23 wire bytes)"
        );
    }
}
