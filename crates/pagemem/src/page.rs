use std::fmt;

use crate::PageSize;

/// One page's bytes: a processor's working copy, a twin, or a home copy.
///
/// # Example
///
/// ```
/// use lrc_pagemem::{PageBuf, PageSize};
///
/// let mut page = PageBuf::zeroed(PageSize::new(512)?);
/// page.write_u64(64, 0xdead_beef);
/// assert_eq!(page.read_u64(64), 0xdead_beef);
/// # Ok::<(), lrc_pagemem::PageSizeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PageBuf {
    bytes: Box<[u8]>,
}

impl PageBuf {
    /// Creates an all-zero page of the given size.
    pub fn zeroed(size: PageSize) -> Self {
        PageBuf {
            bytes: vec![0u8; size.bytes()].into_boxed_slice(),
        }
    }

    /// Creates a page from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a valid page length (power of two in
    /// `[64, 65536]`).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        assert!(
            PageSize::new(bytes.len()).is_ok(),
            "page buffer length {} is not a valid page size",
            bytes.len()
        );
        PageBuf {
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// Page length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the page has no bytes (never the case for a valid page).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The page contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the page contents.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn read(&self, offset: usize, buf: &mut [u8]) {
        buf.copy_from_slice(&self.bytes[offset..offset + buf.len()]);
    }

    /// Returns the `len` bytes starting at `offset` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn slice(&self, offset: usize, len: usize) -> &[u8] {
        &self.bytes[offset..offset + len]
    }

    /// Writes `data` starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn write(&mut self, offset: usize, data: &[u8]) {
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Reads a little-endian `u64` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds the page.
    pub fn read_u64(&self, offset: usize) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[offset..offset + 8]);
        u64::from_le_bytes(raw)
    }

    /// Writes a little-endian `u64` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds the page.
    pub fn write_u64(&mut self, offset: usize, value: u64) {
        self.bytes[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the page.
    pub fn read_u32(&self, offset: usize) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.bytes[offset..offset + 4]);
        u32::from_le_bytes(raw)
    }

    /// Writes a little-endian `u32` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the page.
    pub fn write_u32(&mut self, offset: usize, value: u32) {
        self.bytes[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nonzero = self.bytes.iter().filter(|&&b| b != 0).count();
        write!(
            f,
            "PageBuf({} bytes, {} non-zero)",
            self.bytes.len(),
            nonzero
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size() -> PageSize {
        PageSize::new(256).unwrap()
    }

    #[test]
    fn zeroed_page_is_all_zero() {
        let page = PageBuf::zeroed(size());
        assert_eq!(page.len(), 256);
        assert!(page.as_bytes().iter().all(|&b| b == 0));
        assert!(!page.is_empty());
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut page = PageBuf::zeroed(size());
        page.write(10, &[1, 2, 3]);
        let mut buf = [0u8; 3];
        page.read(10, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(page.slice(10, 3), &[1, 2, 3]);
    }

    #[test]
    fn typed_accessors_round_trip() {
        let mut page = PageBuf::zeroed(size());
        page.write_u64(0, u64::MAX - 5);
        page.write_u32(128, 77);
        assert_eq!(page.read_u64(0), u64::MAX - 5);
        assert_eq!(page.read_u32(128), 77);
    }

    #[test]
    fn from_bytes_accepts_valid_lengths_only() {
        assert_eq!(PageBuf::from_bytes(vec![7u8; 128]).len(), 128);
    }

    #[test]
    #[should_panic(expected = "not a valid page size")]
    fn from_bytes_rejects_bad_length() {
        PageBuf::from_bytes(vec![0u8; 100]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_write_panics() {
        let mut page = PageBuf::zeroed(size());
        page.write(255, &[1, 2]);
    }

    #[test]
    fn debug_reports_density() {
        let mut page = PageBuf::zeroed(size());
        page.write(0, &[1, 1, 1]);
        assert_eq!(format!("{page:?}"), "PageBuf(256 bytes, 3 non-zero)");
    }
}
