use std::fmt;

use crate::{AddrSpace, PageBuf, PageId};

/// A flat, sequentially-consistent memory over an [`AddrSpace`].
///
/// Two roles in the system:
///
/// * the *home* copy of every page — what a processor fetches on a cold
///   access miss before applying diffs;
/// * the *oracle* in the simulator — applying each write of a trace in
///   trace order yields the value every read must return on a
///   properly-labeled program, for every protocol.
///
/// # Example
///
/// ```
/// use lrc_pagemem::{AddrSpace, Memory, PageSize};
///
/// let space = AddrSpace::new(PageSize::new(512)?, 4);
/// let mut mem = Memory::zeroed(space);
/// mem.write(700, &[1, 2, 3]); // straddles nothing, lands on page 1
/// assert_eq!(mem.read_vec(700, 3), vec![1, 2, 3]);
/// # Ok::<(), lrc_pagemem::PageSizeError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Memory {
    space: AddrSpace,
    pages: Vec<PageBuf>,
}

impl Memory {
    /// Creates an all-zero memory covering `space`.
    pub fn zeroed(space: AddrSpace) -> Self {
        let pages = space
            .pages()
            .map(|_| PageBuf::zeroed(space.page_size()))
            .collect();
        Memory { space, pages }
    }

    /// The address space this memory covers.
    pub fn space(&self) -> AddrSpace {
        self.space
    }

    /// Borrows one page.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page(&self, page: PageId) -> &PageBuf {
        &self.pages[page.index()]
    }

    /// Mutably borrows one page.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page_mut(&mut self, page: PageId) -> &mut PageBuf {
        &mut self.pages[page.index()]
    }

    /// Reads `buf.len()` bytes starting at flat address `addr`, crossing
    /// page boundaries as needed.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of range.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let mut cursor = 0;
        for seg in self.space.segments(addr, buf.len()) {
            self.pages[seg.page.index()].read(seg.offset, &mut buf[cursor..cursor + seg.len]);
            cursor += seg.len;
        }
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of range.
    pub fn read_vec(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf);
        buf
    }

    /// Writes `data` starting at flat address `addr`, crossing page
    /// boundaries as needed.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of range.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut cursor = 0;
        for seg in self.space.segments(addr, data.len()) {
            self.pages[seg.page.index()].write(seg.offset, &data[cursor..cursor + seg.len]);
            cursor += seg.len;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of range.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut raw = [0u8; 8];
        self.read(addr, &mut raw);
        u64::from_le_bytes(raw)
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of range.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Iterates over `(page id, page)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &PageBuf)> {
        self.space.pages().zip(self.pages.iter())
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Memory({} pages x {})",
            self.space.n_pages(),
            self.space.page_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PageSize;

    fn mem() -> Memory {
        Memory::zeroed(AddrSpace::new(PageSize::new(128).unwrap(), 4))
    }

    #[test]
    fn fresh_memory_reads_zero() {
        let m = mem();
        assert_eq!(m.read_vec(0, 16), vec![0u8; 16]);
        assert_eq!(m.read_u64(100), 0);
    }

    #[test]
    fn write_read_round_trip_within_page() {
        let mut m = mem();
        m.write(5, &[1, 2, 3]);
        assert_eq!(m.read_vec(5, 3), vec![1, 2, 3]);
    }

    #[test]
    fn write_read_across_page_boundary() {
        let mut m = mem();
        let data: Vec<u8> = (0..40).collect();
        m.write(120, &data); // crosses from page 0 into page 1
        assert_eq!(m.read_vec(120, 40), data);
        // The split really landed on two pages.
        assert_eq!(m.page(PageId::new(0)).slice(120, 8), &data[..8]);
        assert_eq!(m.page(PageId::new(1)).slice(0, 32), &data[8..]);
    }

    #[test]
    fn u64_helpers_round_trip() {
        let mut m = mem();
        m.write_u64(124, 0x0123_4567_89ab_cdef); // straddles pages 0 and 1
        assert_eq!(m.read_u64(124), 0x0123_4567_89ab_cdef);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let m = mem();
        let mut buf = [0u8; 8];
        m.read(512 - 4, &mut buf);
    }

    #[test]
    fn debug_reports_shape() {
        assert_eq!(format!("{:?}", mem()), "Memory(4 pages x 128B)");
    }
}
