use std::error::Error;
use std::fmt;

/// Identifier of one page of the shared address space.
///
/// Pages are numbered densely from zero; page `i` covers addresses
/// `[i * page_size, (i + 1) * page_size)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PageId(u32);

impl PageId {
    /// Creates a page id from its dense index.
    pub fn new(index: u32) -> Self {
        PageId(index)
    }

    /// Returns the id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for PageId {
    fn from(index: u32) -> Self {
        PageId(index)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// Error returned when constructing a [`PageSize`] from an invalid value.
///
/// Page sizes must be powers of two between 64 and 65536 bytes — the range
/// the ISCA '92 evaluation sweeps (512–8192) sits comfortably inside it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageSizeError {
    value: usize,
}

impl PageSizeError {
    /// The rejected value.
    pub fn value(&self) -> usize {
        self.value
    }
}

impl fmt::Display for PageSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid page size {}: must be a power of two in [64, 65536]",
            self.value
        )
    }
}

impl Error for PageSizeError {}

/// A validated power-of-two page size.
///
/// # Example
///
/// ```
/// use lrc_pagemem::PageSize;
///
/// let s = PageSize::new(4096)?;
/// assert_eq!(s.bytes(), 4096);
/// assert!(PageSize::new(1000).is_err());
/// # Ok::<(), lrc_pagemem::PageSizeError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageSize {
    bytes: u32,
    shift: u32,
}

impl PageSize {
    /// The page sizes swept by the paper's evaluation (Figures 5–14).
    pub const PAPER_SWEEP: [usize; 5] = [512, 1024, 2048, 4096, 8192];

    /// Creates a page size.
    ///
    /// # Errors
    ///
    /// Returns [`PageSizeError`] unless `bytes` is a power of two in
    /// `[64, 65536]`.
    pub fn new(bytes: usize) -> Result<Self, PageSizeError> {
        if !(64..=65536).contains(&bytes) || !bytes.is_power_of_two() {
            return Err(PageSizeError { value: bytes });
        }
        Ok(PageSize {
            bytes: bytes as u32,
            shift: bytes.trailing_zeros(),
        })
    }

    /// The size in bytes.
    pub fn bytes(self) -> usize {
        self.bytes as usize
    }

    /// log2 of the size; address `>> shift` is the page index.
    pub fn shift(self) -> u32 {
        self.shift
    }

    /// Mask selecting the in-page offset bits.
    pub fn offset_mask(self) -> u64 {
        (self.bytes as u64) - 1
    }
}

impl Default for PageSize {
    /// 4096 bytes, the conventional virtual-memory page.
    fn default() -> Self {
        PageSize::new(4096).expect("4096 is a valid page size")
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes)
    }
}

/// A contiguous byte range within a single page, produced by
/// [`AddrSpace::segments`] when an access is split along page boundaries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Page the bytes fall on.
    pub page: PageId,
    /// Byte offset within the page.
    pub offset: usize,
    /// Length in bytes, never zero and never crossing the page end.
    pub len: usize,
}

/// The shared address space: a flat range of bytes divided into pages.
///
/// The same workload trace can be mapped under different page sizes — this
/// is exactly how the paper sweeps page size with a fixed trace.
///
/// # Example
///
/// ```
/// use lrc_pagemem::{AddrSpace, PageId, PageSize};
///
/// let space = AddrSpace::new(PageSize::new(512)?, 16);
/// assert_eq!(space.total_bytes(), 8192);
/// assert_eq!(space.page_of(1000), PageId::new(1));
/// assert_eq!(space.offset_of(1000), 488);
/// # Ok::<(), lrc_pagemem::PageSizeError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AddrSpace {
    page_size: PageSize,
    n_pages: u32,
}

impl AddrSpace {
    /// Creates an address space of `n_pages` pages of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n_pages` is zero or the total size overflows `u64`.
    pub fn new(page_size: PageSize, n_pages: u32) -> Self {
        assert!(n_pages > 0, "address space needs at least one page");
        AddrSpace { page_size, n_pages }
    }

    /// Creates the smallest space of `page_size` pages covering `bytes`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or needs more than `u32::MAX` pages.
    pub fn with_capacity(page_size: PageSize, bytes: u64) -> Self {
        assert!(bytes > 0, "address space needs at least one byte");
        let pages = bytes.div_ceil(page_size.bytes() as u64);
        assert!(
            pages <= u32::MAX as u64,
            "capacity {bytes} needs too many pages"
        );
        AddrSpace::new(page_size, pages as u32)
    }

    /// The page size.
    pub fn page_size(self) -> PageSize {
        self.page_size
    }

    /// Number of pages.
    pub fn n_pages(self) -> u32 {
        self.n_pages
    }

    /// Total bytes covered.
    pub fn total_bytes(self) -> u64 {
        self.n_pages as u64 * self.page_size.bytes() as u64
    }

    /// True if `[addr, addr + len)` lies inside the space.
    pub fn contains(self, addr: u64, len: usize) -> bool {
        addr.checked_add(len as u64)
            .is_some_and(|end| end <= self.total_bytes())
    }

    /// Page holding `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn page_of(self, addr: u64) -> PageId {
        assert!(self.contains(addr, 1), "address {addr:#x} out of range");
        PageId((addr >> self.page_size.shift()) as u32)
    }

    /// Offset of `addr` within its page.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn offset_of(self, addr: u64) -> usize {
        assert!(self.contains(addr, 1), "address {addr:#x} out of range");
        (addr & self.page_size.offset_mask()) as usize
    }

    /// Splits the access `[addr, addr + len)` into per-page segments, in
    /// address order. An access wholly inside one page yields one segment.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of range.
    pub fn segments(self, addr: u64, len: usize) -> Vec<Segment> {
        assert!(len > 0, "empty access at {addr:#x}");
        assert!(
            self.contains(addr, len),
            "access [{addr:#x}, +{len}) out of range (space is {} bytes)",
            self.total_bytes()
        );
        let mut out = Vec::with_capacity(1);
        let page_bytes = self.page_size.bytes();
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let offset = (cur & self.page_size.offset_mask()) as usize;
            let take = remaining.min(page_bytes - offset);
            out.push(Segment {
                page: PageId((cur >> self.page_size.shift()) as u32),
                offset,
                len: take,
            });
            cur += take as u64;
            remaining -= take;
        }
        out
    }

    /// Iterates over all page ids.
    pub fn pages(self) -> impl Iterator<Item = PageId> {
        (0..self.n_pages).map(PageId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_validates() {
        assert!(PageSize::new(512).is_ok());
        assert!(PageSize::new(65536).is_ok());
        assert!(PageSize::new(64).is_ok());
        assert!(PageSize::new(32).is_err());
        assert!(PageSize::new(131072).is_err());
        assert!(PageSize::new(3000).is_err());
        assert!(PageSize::new(0).is_err());
    }

    #[test]
    fn page_size_error_reports_value() {
        let err = PageSize::new(1000).unwrap_err();
        assert_eq!(err.value(), 1000);
        assert!(err.to_string().contains("1000"));
    }

    #[test]
    fn page_size_shift_and_mask() {
        let s = PageSize::new(2048).unwrap();
        assert_eq!(s.shift(), 11);
        assert_eq!(s.offset_mask(), 2047);
        assert_eq!(s.to_string(), "2048B");
    }

    #[test]
    fn paper_sweep_sizes_are_valid() {
        for bytes in PageSize::PAPER_SWEEP {
            assert!(PageSize::new(bytes).is_ok(), "{bytes} must validate");
        }
    }

    #[test]
    fn addressing_round_trips() {
        let space = AddrSpace::new(PageSize::new(256).unwrap(), 8);
        for addr in [0u64, 1, 255, 256, 1000, 2047] {
            let page = space.page_of(addr);
            let off = space.offset_of(addr);
            assert_eq!(page.index() as u64 * 256 + off as u64, addr);
        }
    }

    #[test]
    fn with_capacity_rounds_up() {
        let space = AddrSpace::with_capacity(PageSize::new(512).unwrap(), 1025);
        assert_eq!(space.n_pages(), 3);
    }

    #[test]
    fn segments_within_one_page() {
        let space = AddrSpace::new(PageSize::new(256).unwrap(), 4);
        let segs = space.segments(10, 16);
        assert_eq!(
            segs,
            vec![Segment {
                page: PageId::new(0),
                offset: 10,
                len: 16
            }]
        );
    }

    #[test]
    fn segments_straddle_pages() {
        let space = AddrSpace::new(PageSize::new(256).unwrap(), 4);
        let segs = space.segments(250, 300);
        assert_eq!(
            segs,
            vec![
                Segment {
                    page: PageId::new(0),
                    offset: 250,
                    len: 6
                },
                Segment {
                    page: PageId::new(1),
                    offset: 0,
                    len: 256
                },
                Segment {
                    page: PageId::new(2),
                    offset: 0,
                    len: 38
                },
            ]
        );
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 300);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segments_reject_overflow() {
        let space = AddrSpace::new(PageSize::new(256).unwrap(), 1);
        space.segments(200, 100);
    }

    #[test]
    #[should_panic(expected = "empty access")]
    fn segments_reject_empty() {
        let space = AddrSpace::new(PageSize::new(256).unwrap(), 1);
        space.segments(0, 0);
    }

    #[test]
    fn pages_enumerates_all() {
        let space = AddrSpace::new(PageSize::new(64).unwrap(), 3);
        let ids: Vec<_> = space.pages().collect();
        assert_eq!(ids, vec![PageId::new(0), PageId::new(1), PageId::new(2)]);
    }
}
