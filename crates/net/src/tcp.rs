//! The TCP transport: framed wire messages over real sockets.
//!
//! Topology is hub-and-spoke around the engine-owning node (the shape the
//! node runtime uses): the hub [`TcpTransport::listen`]s and accepts one
//! connection per peer; each peer [`TcpTransport::connect`]s and
//! immediately sends a [`WireMsg::Hello`] identifying its node id, which
//! the hub reads synchronously during accept so it can address replies.
//!
//! Each connection runs a dedicated **send thread** (writes never block
//! the caller: [`Transport::send`] enqueues the encoded frame) and a
//! dedicated **recv thread** (reads the 32-byte header, validates it,
//! reads the declared body, checksums it, and pushes the frame onto the
//! endpoint's single incoming queue). Frames are length-prefixed by their
//! own header, so the stream needs no extra framing bytes and measured
//! bytes equal encoded bytes.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::lockdep::classes;
use parking_lot::Mutex;
use std::thread;

use crate::transport::{Backoff, NetError, NodeId, Transport, WireMeter, WireStats};
use crate::wire::{Frame, WireKind, WireMsg, FRAME_HEADER_BYTES};

/// One peer link: its send queue plus a death flag poisoned by whichever
/// I/O thread notices the link die first (recv EOF/corruption, or a
/// failed write). A send to a poisoned peer reports [`NetError::Closed`]
/// instead of silently queueing bytes no one will read — without the
/// flag, a caller could send a request into a dead link and then block
/// forever waiting for the reply.
struct PeerLink {
    tx: Sender<Vec<u8>>,
    dead: Arc<AtomicBool>,
}

/// A TCP endpoint (hub or spoke).
pub struct TcpTransport {
    node: NodeId,
    /// Per-peer send queues (consumed by that peer's send thread). Shared
    /// with a healing hub's acceptor thread, which re-attaches
    /// reconnecting spokes ([`TcpHub::accept_healing`]).
    peers: Arc<Mutex<HashMap<NodeId, PeerLink>>>,
    incoming: Mutex<Receiver<Frame>>,
    /// Held only during setup; [`TcpTransport::seal`] drops it so that
    /// once every peer's recv thread exits (EOF, error), the incoming
    /// channel closes and [`Transport::recv`] reports
    /// [`NetError::Closed`] instead of blocking forever. A healing hub's
    /// acceptor thread keeps its own clone, so such a hub stays open
    /// while it can still heal.
    incoming_tx: Option<Sender<Frame>>,
    meter: Arc<WireMeter>,
    /// Set on drop; a healing hub's acceptor thread polls it and exits.
    stop: Arc<AtomicBool>,
}

impl TcpTransport {
    fn new(node: NodeId) -> TcpTransport {
        let (incoming_tx, incoming_rx) = channel();
        TcpTransport {
            node,
            peers: Arc::new(Mutex::new_in(HashMap::new(), classes::NET_PEERS)),
            incoming: Mutex::new_in(incoming_rx, classes::NET_INCOMING),
            incoming_tx: Some(incoming_tx),
            meter: Arc::new(WireMeter::default()),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Ends the setup phase: after this, the recv threads hold the only
    /// senders into the incoming queue, so a dead session surfaces as
    /// [`NetError::Closed`].
    fn seal(&mut self) {
        self.incoming_tx = None;
    }

    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// returns a hub handle whose [`TcpHub::local_addr`] peers can
    /// connect to. Call [`TcpHub::accept`] to take the connections.
    ///
    /// # Errors
    ///
    /// I/O failures binding the listener.
    pub fn bind(addr: &str, node: NodeId) -> Result<TcpHub, NetError> {
        let listener = TcpListener::bind(addr)?;
        Ok(TcpHub { node, listener })
    }

    /// Connects to a hub at `addr` as `node`. Opens with a
    /// transport-level [`WireMsg::Hello`] (empty processor list) so the
    /// hub can address replies to this node.
    ///
    /// # Errors
    ///
    /// I/O failures reaching the hub.
    pub fn connect(addr: &str, node: NodeId, hub: NodeId) -> Result<TcpTransport, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut transport = TcpTransport::new(node);
        transport.attach(hub, stream);
        transport.seal();
        transport.send(
            &WireMsg::Hello {
                node,
                procs: Vec::new(),
            },
            hub,
            0,
        )?;
        Ok(transport)
    }

    /// Like [`TcpTransport::connect`], but retries refused or failed
    /// connection attempts under `backoff` — the shape a spoke starting
    /// concurrently with (or reconnecting to) its hub needs, since a
    /// single `connect()` races the hub's `bind`.
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectTimeout`] once the backoff budget is spent.
    pub fn connect_retry(
        addr: &str,
        node: NodeId,
        hub: NodeId,
        backoff: &Backoff,
    ) -> Result<TcpTransport, NetError> {
        backoff.retry(|| TcpTransport::connect(addr, node, hub))
    }

    /// Wires up the send and recv threads for one connected peer.
    fn attach(&self, peer: NodeId, stream: TcpStream) {
        let incoming = self
            .incoming_tx
            .as_ref()
            .expect("attach only runs during setup, before seal()");
        attach_link(self.node, peer, stream, incoming, &self.peers);
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// Wires up the send and recv threads for one connected peer and
/// installs (or **replaces**) its entry in the shared peer map. On
/// replacement the old link's queue sender drops, so its send thread
/// exits; its recv thread exits on EOF when the stale socket dies —
/// a reconnecting spoke thereby supersedes its own stale mapping.
fn attach_link(
    node: NodeId,
    peer: NodeId,
    stream: TcpStream,
    incoming_tx: &Sender<Frame>,
    peers: &Mutex<HashMap<NodeId, PeerLink>>,
) {
    let (tx, rx): (Sender<Vec<u8>>, Receiver<Vec<u8>>) = channel();
    let dead = Arc::new(AtomicBool::new(false));
    let write_half = stream.try_clone().expect("clone TCP stream");
    let send_dead = Arc::clone(&dead);
    thread::Builder::new()
        .name(format!("lrc-net-send-{node}-{peer}"))
        .spawn(move || send_loop(write_half, rx, send_dead))
        .expect("spawn send thread");
    let incoming = incoming_tx.clone();
    let recv_dead = Arc::clone(&dead);
    thread::Builder::new()
        .name(format!("lrc-net-recv-{node}-{peer}"))
        .spawn(move || recv_loop(stream, incoming, recv_dead))
        .expect("spawn recv thread");
    peers.lock().insert(peer, PeerLink { tx, dead });
}

/// A bound-but-not-yet-connected hub (see [`TcpTransport::bind`]).
pub struct TcpHub {
    node: NodeId,
    listener: TcpListener,
}

impl TcpHub {
    /// The address peers should connect to.
    ///
    /// # Panics
    ///
    /// Panics if the socket's local address cannot be read (never on a
    /// freshly bound listener).
    pub fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
            .to_string()
    }

    /// Accepts exactly `n_peers` connections and returns the hub
    /// endpoint. Each accepted peer must open with a transport-level
    /// [`WireMsg::Hello`] identifying its node id ([`TcpTransport::connect`]
    /// sends it); the hello addresses the link and is consumed here —
    /// application-level handshakes (the node runtime's `Hello` carrying
    /// hosted processors) travel as ordinary frames afterwards.
    ///
    /// # Errors
    ///
    /// I/O failures, or a first frame that is not a valid `Hello`.
    pub fn accept(self, n_peers: usize) -> Result<TcpTransport, NetError> {
        self.accept_conns(n_peers, None)
    }

    /// Like [`TcpHub::accept`], but bounded: if the full peer set has not
    /// connected (and identified itself) within `timeout`, returns
    /// [`NetError::AcceptTimeout`] naming the peers that did make it —
    /// a spoke that never starts surfaces as a typed error instead of a
    /// hub blocked in `accept` forever.
    ///
    /// # Errors
    ///
    /// [`NetError::AcceptTimeout`] on expiry; otherwise as
    /// [`TcpHub::accept`].
    pub fn accept_within(
        self,
        n_peers: usize,
        timeout: Duration,
    ) -> Result<TcpTransport, NetError> {
        self.accept_conns(n_peers, Some(Instant::now() + timeout))
    }

    fn accept_conns(
        self,
        n_peers: usize,
        deadline: Option<Instant>,
    ) -> Result<TcpTransport, NetError> {
        let conns = accept_spokes(&self.listener, n_peers, deadline)?;
        let mut transport = TcpTransport::new(self.node);
        for (peer, stream, hello_len) in conns {
            transport.meter.count_received(hello_len);
            transport.attach(peer, stream);
        }
        transport.seal();
        Ok(transport)
    }

    /// Like [`TcpHub::accept_within`], but the hub keeps healing after
    /// setup: the listener moves to a background acceptor thread that
    /// accepts late connections for as long as the transport lives, reads
    /// each one's transport-level [`WireMsg::Hello`], and **re-attaches**
    /// the peer — a reconnecting spoke supersedes its stale link, so a
    /// severed spoke can dial back in ([`TcpTransport::connect_retry`])
    /// without the hub restarting.
    ///
    /// Because the acceptor holds a sender into the incoming queue, a
    /// healing hub's [`Transport::recv`] never reports
    /// [`NetError::Closed`] merely because every current link died; it
    /// closes when the transport is dropped.
    ///
    /// # Errors
    ///
    /// As [`TcpHub::accept_within`] for the initial peer set.
    pub fn accept_healing(
        self,
        n_peers: usize,
        timeout: Duration,
    ) -> Result<TcpTransport, NetError> {
        let deadline = Instant::now() + timeout;
        let conns = accept_spokes(&self.listener, n_peers, Some(deadline))?;
        let mut transport = TcpTransport::new(self.node);
        for (peer, stream, hello_len) in conns {
            transport.meter.count_received(hello_len);
            transport.attach(peer, stream);
        }
        let incoming_tx = transport.incoming_tx.as_ref().expect("before seal").clone();
        transport.seal();
        let node = self.node;
        let peers = Arc::clone(&transport.peers);
        let meter = Arc::clone(&transport.meter);
        let stop = Arc::clone(&transport.stop);
        // accept_spokes left the listener nonblocking, which is exactly
        // what the polling acceptor loop needs.
        thread::Builder::new()
            .name(format!("lrc-net-heal-accept-{node}"))
            .spawn(move || heal_accept_loop(node, self.listener, incoming_tx, peers, meter, stop))
            .expect("spawn healing acceptor");
        Ok(transport)
    }
}

/// The healing hub's background acceptor: accepts late spokes off the
/// (nonblocking) listener, consumes each one's transport-level Hello
/// under a bounded read, and re-attaches the peer link. Exits when the
/// owning transport drops (`stop`) or the listener dies.
fn heal_accept_loop(
    node: NodeId,
    listener: TcpListener,
    incoming_tx: Sender<Frame>,
    peers: Arc<Mutex<HashMap<NodeId, PeerLink>>>,
    meter: Arc<WireMeter>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => break,
        };
        // A malformed or silent late connection is dropped, not fatal:
        // the hub must survive anything a flaky reconnect throws at it.
        let ok = stream.set_nodelay(true).is_ok()
            && stream.set_nonblocking(false).is_ok()
            && stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .is_ok();
        if !ok {
            continue;
        }
        let hello = match read_frame(&mut &stream) {
            Ok(hello) if hello.kind == WireKind::Hello => hello,
            _ => continue,
        };
        if stream.set_read_timeout(None).is_err() {
            continue;
        }
        meter.count_received(hello.wire_len());
        attach_link(node, hello.src, stream, &incoming_tx, &peers);
    }
}

/// Accepts `n_peers` spoke connections off `listener` and consumes each
/// spoke's opening transport-level [`WireMsg::Hello`], returning
/// `(peer id, stream, hello wire length)` triples. `None` deadline blocks
/// forever; with a deadline, both the accepts and the hello reads are
/// bounded, and expiry reports the peers collected so far. Shared by the
/// thread-per-peer hub and the reactor hub.
pub(crate) fn accept_spokes(
    listener: &TcpListener,
    n_peers: usize,
    deadline: Option<Instant>,
) -> Result<Vec<(NodeId, TcpStream, usize)>, NetError> {
    let timed_out = |conns: &[(NodeId, TcpStream, usize)]| NetError::AcceptTimeout {
        wanted: n_peers,
        connected: conns.iter().map(|&(peer, _, _)| peer).collect(),
    };
    if deadline.is_some() {
        listener.set_nonblocking(true)?;
    }
    let mut conns: Vec<(NodeId, TcpStream, usize)> = Vec::with_capacity(n_peers);
    while conns.len() < n_peers {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline.expect("WouldBlock only under a deadline") {
                    return Err(timed_out(&conns));
                }
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        stream.set_nodelay(true)?;
        stream.set_nonblocking(false)?;
        // Read the opening Hello synchronously to learn the peer id;
        // under a deadline, a connected-but-silent spoke must not wedge
        // the hub either.
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(timed_out(&conns));
            }
            stream.set_read_timeout(Some(remaining))?;
        }
        let hello = match read_frame(&mut &stream) {
            Ok(hello) => hello,
            Err(e) => {
                // A read failure at the deadline is the silent-spoke
                // case; anything earlier is a genuine I/O error.
                return Err(if deadline.is_some_and(|d| Instant::now() >= d) {
                    timed_out(&conns)
                } else {
                    e
                });
            }
        };
        if hello.kind != WireKind::Hello {
            return Err(NetError::Io(format!(
                "peer opened with {} instead of Hello",
                hello.kind
            )));
        }
        stream.set_read_timeout(None)?;
        conns.push((hello.src, stream, hello.wire_len()));
    }
    Ok(conns)
}

/// Drains the send queue onto the socket; exits when the queue closes or
/// a write fails (poisoning the peer's death flag).
fn send_loop(mut stream: TcpStream, rx: Receiver<Vec<u8>>, dead: Arc<AtomicBool>) {
    while let Ok(bytes) = rx.recv() {
        if stream.write_all(&bytes).is_err() {
            dead.store(true, Ordering::Release);
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// Reads frames off the socket into the shared incoming queue; exits on
/// EOF, error, or when the endpoint is dropped. EOF and corruption poison
/// the peer's death flag so later sends fail instead of queueing into the
/// void.
fn recv_loop(stream: TcpStream, incoming: Sender<Frame>, dead: Arc<AtomicBool>) {
    while let Ok(frame) = read_frame(&mut &stream) {
        if incoming.send(frame).is_err() {
            break;
        }
    }
    dead.store(true, Ordering::Release);
    let _ = stream.shutdown(std::net::Shutdown::Read);
}

/// Reads exactly one frame from the stream: 32-byte header, declared
/// body. The body is read once into its final buffer and moved into the
/// frame — no re-copy.
fn read_frame(stream: &mut &TcpStream) -> Result<Frame, NetError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    stream.read_exact(&mut header)?;
    let body_len = Frame::peek_body_len(&header)?;
    let mut body = vec![0u8; body_len];
    stream.read_exact(&mut body)?;
    Ok(Frame::from_wire_parts(&header, body)?)
}

impl Transport for TcpTransport {
    fn node(&self) -> NodeId {
        self.node
    }

    fn send(&self, msg: &WireMsg, dst: NodeId, seq: u64) -> Result<(), NetError> {
        let bytes = crate::transport::encode_frame_checked(msg, self.node, dst, seq)?;
        let len = bytes.len();
        let peers = self.peers.lock();
        let link = peers.get(&dst).ok_or(NetError::UnknownPeer(dst))?;
        if link.dead.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        link.tx.send(bytes).map_err(|_| NetError::Closed)?;
        self.meter.count_sent(msg.kind(), len);
        Ok(())
    }

    fn recv(&self) -> Result<Frame, NetError> {
        let frame = self.incoming.lock().recv().map_err(|_| NetError::Closed)?;
        self.meter.count_received(frame.wire_len());
        Ok(frame)
    }

    fn stats(&self) -> WireStats {
        self.meter.stats()
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let peers = self.peers.lock();
        write!(f, "TcpTransport(node {}, {} peers)", self.node, peers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_and_spoke_exchange_frames_on_loopback() {
        let hub = TcpTransport::bind("127.0.0.1:0", 0).expect("bind");
        let addr = hub.local_addr();
        let spoke_thread =
            thread::spawn(move || TcpTransport::connect(&addr, 1, 0).expect("connect"));
        let hub = hub.accept(1).expect("accept");
        let spoke = spoke_thread.join().unwrap();

        // Request/reply round trip (the link-level Hello was consumed by
        // accept and does not surface here).
        spoke.send(&WireMsg::Shutdown, 0, 5).unwrap();
        let frame = hub.recv().unwrap();
        assert_eq!((frame.kind, frame.seq), (WireKind::Shutdown, 5));
        hub.send(&WireMsg::Shutdown, 1, 6).unwrap();
        let frame = spoke.recv().unwrap();
        assert_eq!(
            (frame.kind, frame.src, frame.seq),
            (WireKind::Shutdown, 0, 6)
        );

        // Both directions were metered, hello included.
        assert!(spoke.stats().bytes_sent >= 2 * 32);
        assert_eq!(spoke.stats().msgs_sent, 2);
        assert_eq!(hub.stats().msgs_received, 2);
        assert_eq!(hub.stats().msgs_sent, 1);
    }

    #[test]
    fn peer_death_surfaces_as_closed_not_a_hang() {
        let hub = TcpTransport::bind("127.0.0.1:0", 0).expect("bind");
        let addr = hub.local_addr();
        let spoke_thread =
            thread::spawn(move || TcpTransport::connect(&addr, 1, 0).expect("connect"));
        let hub = hub.accept(1).expect("accept");
        // The spoke dies without a Shutdown message.
        drop(spoke_thread.join().unwrap());
        // The hub's recv thread sees EOF and exits; because the incoming
        // channel was sealed after setup, recv reports Closed.
        assert_eq!(hub.recv().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn send_after_peer_death_errors_instead_of_queueing_into_the_void() {
        let hub = TcpTransport::bind("127.0.0.1:0", 0).expect("bind");
        let addr = hub.local_addr();
        let spoke_thread =
            thread::spawn(move || TcpTransport::connect(&addr, 1, 0).expect("connect"));
        let hub = hub.accept(1).expect("accept");
        let spoke = spoke_thread.join().unwrap();
        // Sever the link: the hub endpoint goes away without a Shutdown.
        drop(hub);
        // recv observing Closed proves the spoke's recv thread exited and
        // poisoned the peer's death flag...
        assert_eq!(spoke.recv().unwrap_err(), NetError::Closed);
        // ...so a subsequent send must error. Before the death flag, it
        // returned Ok (the bytes sat in the dead link's queue) and a
        // caller blocking for the reply hung forever.
        assert_eq!(spoke.send(&WireMsg::Shutdown, 0, 1), Err(NetError::Closed));
    }

    #[test]
    fn in_flight_blocking_fetch_unblocks_when_the_peer_dies() {
        let hub = TcpTransport::bind("127.0.0.1:0", 0).expect("bind");
        let addr = hub.local_addr();
        let spoke_thread =
            thread::spawn(move || TcpTransport::connect(&addr, 1, 0).expect("connect"));
        let hub = hub.accept(1).expect("accept");
        let spoke = spoke_thread.join().unwrap();
        // The spoke issues a request and blocks for the reply — the shape
        // of every remote page fetch.
        spoke.send(&WireMsg::Shutdown, 0, 9).unwrap();
        let fetch = thread::spawn(move || spoke.recv());
        // The hub reads the request, then dies mid-fetch.
        hub.recv().unwrap();
        drop(hub);
        // The blocked fetch must resolve to Closed, not hang.
        assert_eq!(fetch.join().unwrap().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn oversized_body_is_refused_at_the_sender() {
        let t = TcpTransport::new(3);
        let msg = WireMsg::OpReply {
            result: Ok(vec![0u8; crate::wire::MAX_BODY_BYTES + 1]),
        };
        assert!(matches!(
            t.send(&msg, 7, 0),
            Err(NetError::Wire(crate::wire::WireError::Malformed(_)))
        ));
    }

    #[test]
    fn send_to_unconnected_peer_errors() {
        let t = TcpTransport::new(3);
        assert_eq!(
            t.send(&WireMsg::Shutdown, 7, 0),
            Err(NetError::UnknownPeer(7))
        );
    }

    #[test]
    fn accept_within_times_out_when_a_spoke_never_connects() {
        let hub = TcpTransport::bind("127.0.0.1:0", 0).expect("bind");
        let err = hub
            .accept_within(2, std::time::Duration::from_millis(100))
            .unwrap_err();
        assert_eq!(
            err,
            NetError::AcceptTimeout {
                wanted: 2,
                connected: Vec::new()
            }
        );
        assert!(err.to_string().contains("2 still missing"), "{err}");
    }

    #[test]
    fn accept_within_names_the_peers_that_did_connect() {
        let hub = TcpTransport::bind("127.0.0.1:0", 0).expect("bind");
        let addr = hub.local_addr();
        let spoke_thread =
            thread::spawn(move || TcpTransport::connect(&addr, 3, 0).expect("connect"));
        let err = hub
            .accept_within(2, std::time::Duration::from_millis(400))
            .unwrap_err();
        assert_eq!(
            err,
            NetError::AcceptTimeout {
                wanted: 2,
                connected: vec![3]
            },
            "the one spoke that connected is named; the missing one is deducible"
        );
        drop(spoke_thread.join().unwrap());
    }

    #[test]
    fn healing_hub_reattaches_a_reconnecting_spoke() {
        let hub = TcpTransport::bind("127.0.0.1:0", 0).expect("bind");
        let addr = hub.local_addr();
        let connect_addr = addr.clone();
        let spoke_thread =
            thread::spawn(move || TcpTransport::connect(&connect_addr, 1, 0).expect("connect"));
        let hub = hub
            .accept_healing(1, Duration::from_secs(5))
            .expect("accept");
        let spoke = spoke_thread.join().unwrap();
        spoke.send(&WireMsg::Shutdown, 0, 1).unwrap();
        assert_eq!(hub.recv().unwrap().seq, 1);
        // The spoke dies without warning...
        drop(spoke);
        // ...and a replacement dials back in under the same node id,
        // superseding the stale link.
        let spoke =
            TcpTransport::connect_retry(&addr, 1, 0, &Backoff::default()).expect("reconnect");
        spoke.send(&WireMsg::Shutdown, 0, 2).unwrap();
        let frame = hub.recv().unwrap();
        assert_eq!((frame.src, frame.seq), (1, 2));
        // The hub's reply routes over the new link.
        hub.send(&WireMsg::Shutdown, 1, 3).unwrap();
        assert_eq!(spoke.recv().unwrap().seq, 3);
    }

    #[test]
    fn connect_retry_times_out_with_a_typed_error() {
        // Reserve an ephemeral port, then free it so nothing listens.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(2), 2);
        let err = TcpTransport::connect_retry(&addr, 1, 0, &backoff).unwrap_err();
        assert!(
            matches!(err, NetError::ConnectTimeout { attempts: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn accept_within_bounds_a_connected_but_silent_spoke() {
        let hub = TcpTransport::bind("127.0.0.1:0", 0).expect("bind");
        let addr = hub.local_addr();
        // A raw connection that never sends its Hello: without the
        // deadline this wedged accept forever.
        let _silent = std::net::TcpStream::connect(&addr).expect("connect");
        let err = hub
            .accept_within(1, std::time::Duration::from_millis(200))
            .unwrap_err();
        assert_eq!(
            err,
            NetError::AcceptTimeout {
                wanted: 1,
                connected: Vec::new()
            }
        );
    }
}
