//! The pluggable transport abstraction.
//!
//! A [`Transport`] moves encoded [`Frame`]s between *nodes* (operating
//! system processes or test-local endpoints — not to be confused with the
//! DSM's simulated processors, several of which may live on one node).
//! Two backends ship with the crate: the deterministic in-process
//! [`ChannelTransport`](crate::ChannelTransport) and the
//! [`TcpTransport`](crate::TcpTransport) with length-prefixed framing over
//! real sockets. Both count the bytes they actually move, so the modeled
//! byte accounting of `lrc-simnet` can be cross-checked against a
//! measurement.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::wire::{Frame, WireError, WireKind, WireMsg};

/// Identifier of a transport endpoint (a node of the deployment).
pub type NodeId = u16;

/// Errors surfaced by transports.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetError {
    /// The peer (or the whole session) is gone.
    Closed,
    /// The destination node is not connected.
    UnknownPeer(NodeId),
    /// An underlying I/O failure (rendered; `io::Error` is not `Clone`).
    Io(String),
    /// The byte stream did not decode.
    Wire(WireError),
    /// A hub's bounded accept phase expired before every expected spoke
    /// connected (or an accepted spoke never sent its opening `Hello`).
    /// Names the peers that *did* make it, so the missing ones are
    /// deducible from the deployment's node list.
    AcceptTimeout {
        /// How many spokes the hub expected.
        wanted: usize,
        /// Node ids of the spokes that connected and identified
        /// themselves before the deadline.
        connected: Vec<NodeId>,
    },
    /// A bounded retry/backoff budget ([`Backoff`]) ran out before a
    /// connection (or reconnection) succeeded.
    ConnectTimeout {
        /// Connection attempts made before giving up.
        attempts: u32,
        /// The last underlying failure, rendered.
        last: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Closed => write!(f, "transport closed"),
            NetError::UnknownPeer(n) => write!(f, "no connection to node {n}"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::AcceptTimeout { wanted, connected } => write!(
                f,
                "accept timed out: {}/{wanted} peers connected (nodes {connected:?}), \
                 {} still missing",
                connected.len(),
                wanted - connected.len()
            ),
            NetError::ConnectTimeout { attempts, last } => write!(
                f,
                "connect gave up after {attempts} attempts (last error: {last})"
            ),
        }
    }
}

impl Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

/// A bounded, jittered exponential backoff schedule for connection
/// retries (initial connects and self-healing reconnects alike).
///
/// The schedule is a pure function of its parameters: attempt `i`
/// (0-based) sleeps `min(cap, base · 2^i)` scaled by a jitter factor in
/// `[0.5, 1.0]` drawn from a seeded xorshift stream — randomized enough
/// to de-synchronize a thundering herd, deterministic enough that a
/// failing run replays exactly (the same property the fault plans lean
/// on). Once `attempts` tries have failed, the caller reports
/// [`NetError::ConnectTimeout`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempts: u32,
    seed: u64,
}

impl Default for Backoff {
    /// 8 attempts, 25 ms doubling toward a 1 s cap — under 4 s worst
    /// case, long enough to ride out a restarting peer.
    fn default() -> Self {
        Backoff::new(Duration::from_millis(25), Duration::from_secs(1), 8)
    }
}

impl Backoff {
    /// A schedule of `attempts` tries, sleeping `base · 2^i` (capped at
    /// `cap`, jittered) after the i-th failure.
    pub fn new(base: Duration, cap: Duration, attempts: u32) -> Backoff {
        Backoff {
            base,
            cap,
            attempts,
            seed: 0x2545_f491_4f6c_dd1d,
        }
    }

    /// Sets the jitter seed (`0` is mapped to `1`; xorshift has no zero
    /// state).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Backoff {
        self.seed = if seed == 0 { 1 } else { seed };
        self
    }

    /// The try budget.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The jittered sleep after the `attempt`-th failure (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        // One xorshift64 step per prior attempt keeps the draw a pure
        // function of (seed, attempt).
        let mut rng = self.seed;
        for _ in 0..=attempt {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
        }
        let jitter_millis = (exp.as_millis() as u64 / 2).saturating_mul(rng % 1000) / 1000;
        exp / 2 + Duration::from_millis(jitter_millis)
    }

    /// Runs `try_once` up to the attempt budget, sleeping the jittered
    /// schedule between failures.
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectTimeout`] carrying the attempt count and the
    /// last underlying failure once the budget is spent.
    pub fn retry<T>(
        &self,
        mut try_once: impl FnMut() -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let mut last = NetError::Closed;
        for attempt in 0..self.attempts.max(1) {
            match try_once() {
                Ok(v) => return Ok(v),
                Err(e) => last = e,
            }
            if attempt + 1 < self.attempts.max(1) {
                std::thread::sleep(self.delay(attempt));
            }
        }
        Err(NetError::ConnectTimeout {
            attempts: self.attempts.max(1),
            last: last.to_string(),
        })
    }
}

/// A snapshot of one endpoint's measured traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WireStats {
    /// Frames sent.
    pub msgs_sent: u64,
    /// Bytes sent (headers + bodies, as encoded).
    pub bytes_sent: u64,
    /// Frames received.
    pub msgs_received: u64,
    /// Bytes received.
    pub bytes_received: u64,
}

/// Internal per-endpoint traffic meter (atomics; snapshot with
/// [`WireMeter::stats`]).
#[derive(Debug, Default)]
pub struct WireMeter {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_received: AtomicU64,
    bytes_received: AtomicU64,
    sent_by_kind: [AtomicU64; WireKind::COUNT],
    sent_bytes_by_kind: [AtomicU64; WireKind::COUNT],
}

impl WireMeter {
    /// Records one sent frame.
    pub fn count_sent(&self, kind: WireKind, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.sent_by_kind[kind.tag() as usize].fetch_add(1, Ordering::Relaxed);
        self.sent_bytes_by_kind[kind.tag() as usize].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one received frame.
    pub fn count_received(&self, bytes: usize) {
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Aggregate snapshot.
    pub fn stats(&self) -> WireStats {
        WireStats {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }

    /// Sent traffic of one message kind: `(frames, bytes)`.
    pub fn sent_of(&self, kind: WireKind) -> (u64, u64) {
        (
            self.sent_by_kind[kind.tag() as usize].load(Ordering::Relaxed),
            self.sent_bytes_by_kind[kind.tag() as usize].load(Ordering::Relaxed),
        )
    }
}

/// Encodes a message into frame bytes, refusing bodies over
/// [`crate::wire::MAX_BODY_BYTES`] *at the sender* — the receiver would
/// reject the header anyway, but failing here surfaces a typed error
/// instead of a wedged session.
pub(crate) fn encode_frame_checked(
    msg: &WireMsg,
    src: NodeId,
    dst: NodeId,
    seq: u64,
) -> Result<Vec<u8>, NetError> {
    let frame = msg.encode_frame(src, dst, seq);
    if frame.body.len() > crate::wire::MAX_BODY_BYTES {
        return Err(NetError::Wire(WireError::Malformed(format!(
            "body of {} bytes exceeds the {} byte cap",
            frame.body.len(),
            crate::wire::MAX_BODY_BYTES
        ))));
    }
    Ok(frame.encode())
}

/// A reliable, ordered, frame-oriented link between nodes.
///
/// Implementations encode the message once ([`WireMsg::encode_frame`] +
/// [`Frame::encode`]) and meter the encoded length, so "bytes sent" means
/// the same thing on every backend. `recv` blocks. Sessions normally end
/// with a [`WireMsg::Shutdown`] message; the TCP backend additionally
/// reports [`NetError::Closed`] once every peer link has died (EOF or a
/// corrupt stream), so an ungraceful peer death surfaces as an error
/// instead of a hang. A channel endpoint can also enqueue to itself, so
/// it only closes when the whole mesh is dropped.
pub trait Transport: Send + Sync {
    /// This endpoint's node id.
    fn node(&self) -> NodeId;

    /// Encodes and sends `msg` to `dst` with correlation id `seq`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownPeer`] for unconnected destinations,
    /// [`NetError::Closed`] / [`NetError::Io`] for dead links.
    fn send(&self, msg: &WireMsg, dst: NodeId, seq: u64) -> Result<(), NetError>;

    /// Receives the next frame, blocking until one arrives.
    ///
    /// The frame's header (magic, version, kind, checksum) is already
    /// validated; decode the body with [`WireMsg::decode`] and the
    /// session's [`crate::WireCtx`].
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] once no more frames can arrive.
    fn recv(&self) -> Result<Frame, NetError>;

    /// Measured traffic of this endpoint.
    fn stats(&self) -> WireStats;

    /// The link's reconnect generation: bumped by self-healing wrappers
    /// ([`crate::SelfHealing`]) every time the underlying connection is
    /// replaced; `0` forever on plain transports. Callers snapshot it
    /// around a blocking request/reply and re-send (same correlation id)
    /// when it moved — the in-flight reply died with the old link.
    fn generation(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_both_directions() {
        let m = WireMeter::default();
        m.count_sent(WireKind::OpRequest, 40);
        m.count_sent(WireKind::OpRequest, 50);
        m.count_received(32);
        let s = m.stats();
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.bytes_sent, 90);
        assert_eq!(s.msgs_received, 1);
        assert_eq!(s.bytes_received, 32);
        assert_eq!(m.sent_of(WireKind::OpRequest), (2, 90));
        assert_eq!(m.sent_of(WireKind::Hello), (0, 0));
    }

    #[test]
    fn errors_render() {
        assert!(NetError::Closed.to_string().contains("closed"));
        assert!(NetError::UnknownPeer(3).to_string().contains('3'));
        assert!(NetError::from(WireError::BadMagic)
            .to_string()
            .contains("magic"));
    }
}
