//! The pluggable transport abstraction.
//!
//! A [`Transport`] moves encoded [`Frame`]s between *nodes* (operating
//! system processes or test-local endpoints — not to be confused with the
//! DSM's simulated processors, several of which may live on one node).
//! Two backends ship with the crate: the deterministic in-process
//! [`ChannelTransport`](crate::ChannelTransport) and the
//! [`TcpTransport`](crate::TcpTransport) with length-prefixed framing over
//! real sockets. Both count the bytes they actually move, so the modeled
//! byte accounting of `lrc-simnet` can be cross-checked against a
//! measurement.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::wire::{Frame, WireError, WireKind, WireMsg};

/// Identifier of a transport endpoint (a node of the deployment).
pub type NodeId = u16;

/// Errors surfaced by transports.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetError {
    /// The peer (or the whole session) is gone.
    Closed,
    /// The destination node is not connected.
    UnknownPeer(NodeId),
    /// An underlying I/O failure (rendered; `io::Error` is not `Clone`).
    Io(String),
    /// The byte stream did not decode.
    Wire(WireError),
    /// A hub's bounded accept phase expired before every expected spoke
    /// connected (or an accepted spoke never sent its opening `Hello`).
    /// Names the peers that *did* make it, so the missing ones are
    /// deducible from the deployment's node list.
    AcceptTimeout {
        /// How many spokes the hub expected.
        wanted: usize,
        /// Node ids of the spokes that connected and identified
        /// themselves before the deadline.
        connected: Vec<NodeId>,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Closed => write!(f, "transport closed"),
            NetError::UnknownPeer(n) => write!(f, "no connection to node {n}"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::AcceptTimeout { wanted, connected } => write!(
                f,
                "accept timed out: {}/{wanted} peers connected (nodes {connected:?}), \
                 {} still missing",
                connected.len(),
                wanted - connected.len()
            ),
        }
    }
}

impl Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

/// A snapshot of one endpoint's measured traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WireStats {
    /// Frames sent.
    pub msgs_sent: u64,
    /// Bytes sent (headers + bodies, as encoded).
    pub bytes_sent: u64,
    /// Frames received.
    pub msgs_received: u64,
    /// Bytes received.
    pub bytes_received: u64,
}

/// Internal per-endpoint traffic meter (atomics; snapshot with
/// [`WireMeter::stats`]).
#[derive(Debug, Default)]
pub struct WireMeter {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_received: AtomicU64,
    bytes_received: AtomicU64,
    sent_by_kind: [AtomicU64; WireKind::COUNT],
    sent_bytes_by_kind: [AtomicU64; WireKind::COUNT],
}

impl WireMeter {
    /// Records one sent frame.
    pub fn count_sent(&self, kind: WireKind, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.sent_by_kind[kind.tag() as usize].fetch_add(1, Ordering::Relaxed);
        self.sent_bytes_by_kind[kind.tag() as usize].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one received frame.
    pub fn count_received(&self, bytes: usize) {
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Aggregate snapshot.
    pub fn stats(&self) -> WireStats {
        WireStats {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }

    /// Sent traffic of one message kind: `(frames, bytes)`.
    pub fn sent_of(&self, kind: WireKind) -> (u64, u64) {
        (
            self.sent_by_kind[kind.tag() as usize].load(Ordering::Relaxed),
            self.sent_bytes_by_kind[kind.tag() as usize].load(Ordering::Relaxed),
        )
    }
}

/// Encodes a message into frame bytes, refusing bodies over
/// [`crate::wire::MAX_BODY_BYTES`] *at the sender* — the receiver would
/// reject the header anyway, but failing here surfaces a typed error
/// instead of a wedged session.
pub(crate) fn encode_frame_checked(
    msg: &WireMsg,
    src: NodeId,
    dst: NodeId,
    seq: u64,
) -> Result<Vec<u8>, NetError> {
    let frame = msg.encode_frame(src, dst, seq);
    if frame.body.len() > crate::wire::MAX_BODY_BYTES {
        return Err(NetError::Wire(WireError::Malformed(format!(
            "body of {} bytes exceeds the {} byte cap",
            frame.body.len(),
            crate::wire::MAX_BODY_BYTES
        ))));
    }
    Ok(frame.encode())
}

/// A reliable, ordered, frame-oriented link between nodes.
///
/// Implementations encode the message once ([`WireMsg::encode_frame`] +
/// [`Frame::encode`]) and meter the encoded length, so "bytes sent" means
/// the same thing on every backend. `recv` blocks. Sessions normally end
/// with a [`WireMsg::Shutdown`] message; the TCP backend additionally
/// reports [`NetError::Closed`] once every peer link has died (EOF or a
/// corrupt stream), so an ungraceful peer death surfaces as an error
/// instead of a hang. A channel endpoint can also enqueue to itself, so
/// it only closes when the whole mesh is dropped.
pub trait Transport: Send + Sync {
    /// This endpoint's node id.
    fn node(&self) -> NodeId;

    /// Encodes and sends `msg` to `dst` with correlation id `seq`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownPeer`] for unconnected destinations,
    /// [`NetError::Closed`] / [`NetError::Io`] for dead links.
    fn send(&self, msg: &WireMsg, dst: NodeId, seq: u64) -> Result<(), NetError>;

    /// Receives the next frame, blocking until one arrives.
    ///
    /// The frame's header (magic, version, kind, checksum) is already
    /// validated; decode the body with [`WireMsg::decode`] and the
    /// session's [`crate::WireCtx`].
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] once no more frames can arrive.
    fn recv(&self) -> Result<Frame, NetError>;

    /// Measured traffic of this endpoint.
    fn stats(&self) -> WireStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_both_directions() {
        let m = WireMeter::default();
        m.count_sent(WireKind::OpRequest, 40);
        m.count_sent(WireKind::OpRequest, 50);
        m.count_received(32);
        let s = m.stats();
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.bytes_sent, 90);
        assert_eq!(s.msgs_received, 1);
        assert_eq!(s.bytes_received, 32);
        assert_eq!(m.sent_of(WireKind::OpRequest), (2, 90));
        assert_eq!(m.sent_of(WireKind::Hello), (0, 0));
    }

    #[test]
    fn errors_render() {
        assert!(NetError::Closed.to_string().contains("closed"));
        assert!(NetError::UnknownPeer(3).to_string().contains('3'));
        assert!(NetError::from(WireError::BadMagic)
            .to_string()
            .contains("magic"));
    }
}
