//! Deterministic fault injection for any [`Transport`].
//!
//! [`FaultyTransport`] wraps a real transport and applies a [`FaultPlan`]
//! to outgoing traffic: drop the nth frame, delay one, sever the link to
//! one peer after a send budget, kill the whole endpoint mid-protocol, or
//! drop a seeded pseudo-random fraction of frames. Faults are decided
//! from *send counts*, never wall-clock time, so a failing run replays
//! exactly — the property the crash-tolerance suite leans on to kill a
//! node at a chosen protocol step (mid-lock-transfer, mid-barrier,
//! mid-miss-reply) on every execution.
//!
//! The wrapper is transparent when the plan is empty, and composes: a
//! `FaultyTransport<ChannelTransport>` behaves like the channel mesh with
//! scripted failures; the same plan over [`crate::TcpTransport`] scripts
//! real socket deaths.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::lockdep::classes;
use parking_lot::Mutex;
use std::time::Duration;

use crate::transport::{NetError, NodeId, Transport, WireStats};
use crate::wire::{Frame, WireKind, WireMsg};

/// One scripted fault. Send indices are 1-based and count *attempted*
/// sends (including frames other rules later drop), so a rule's firing
/// point does not shift when rules are added in front of it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FaultRule {
    /// Silently discard the `nth` send of `kind` (any kind if `None`):
    /// the caller sees `Ok`, the peer sees nothing.
    DropNth {
        /// Which kind to match, or any.
        kind: Option<WireKind>,
        /// 1-based index among matching sends.
        nth: u64,
    },
    /// Sleep before delivering the `nth` send (reordering pressure for
    /// timing-sensitive paths; the frame still arrives).
    DelayNth {
        /// 1-based index among all sends.
        nth: u64,
        /// How long to hold the frame.
        delay: Duration,
    },
    /// After `after_sends` frames to `peer` have been let through, fail
    /// every further send to that peer with [`NetError::Closed`].
    SeverPeer {
        /// The peer whose link dies.
        peer: NodeId,
        /// Frames to that peer that still succeed.
        after_sends: u64,
    },
    /// Kill the endpoint at its `sends`-th send: that send and everything
    /// after it — including every later `recv` — fails with
    /// [`NetError::Closed`]. This is the "node crashes mid-protocol"
    /// fault: with a deterministic transport under it, the frame at which
    /// the node dies is the same on every run.
    KillAfter {
        /// 1-based index of the first send that fails.
        sends: u64,
    },
    /// Drop each send with probability `numer`/`denom`, decided by a
    /// seeded xorshift stream — random-looking but identical across runs
    /// with the same seed and send sequence.
    DropRandom {
        /// Drop probability numerator.
        numer: u32,
        /// Drop probability denominator (> 0).
        denom: u32,
    },
    /// A transient sever that heals: counting *attempted* sends to
    /// `peer` (1-based), attempts `1..=after` deliver, the next
    /// `down_for` attempts fail with [`NetError::Closed`], and every
    /// attempt after that delivers again — a link flap the self-healing
    /// transport must ride out with backoff rather than declare dead.
    SeverThenHeal {
        /// The peer whose link flaps.
        peer: NodeId,
        /// Attempted sends to that peer that succeed before the cut.
        after: u64,
        /// Attempted sends that fail while the link is down.
        down_for: u64,
    },
    /// Silently discard the first `n` sends of `kind` (any kind if
    /// `None`), 1-based among *attempted* matching sends — lossy-start
    /// pressure for retry paths.
    DropFirstN {
        /// Which kind to match, or any.
        kind: Option<WireKind>,
        /// How many leading matching sends to drop.
        n: u64,
    },
}

/// A scripted set of [`FaultRule`]s plus the seed for [`FaultRule::DropRandom`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// An empty plan (the wrapper becomes a transparent pass-through).
    pub fn new() -> FaultPlan {
        FaultPlan {
            rules: Vec::new(),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Sets the seed of the [`FaultRule::DropRandom`] stream.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> FaultPlan {
        self.seed = if seed == 0 { 1 } else { seed };
        self
    }

    /// Adds a rule.
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        if let FaultRule::DropRandom { denom, .. } = rule {
            assert!(denom > 0, "drop probability denominator must be positive");
        }
        self.rules.push(rule);
        self
    }

    /// Shorthand: kill the endpoint at its `sends`-th send (see
    /// [`FaultRule::KillAfter`]).
    #[must_use]
    pub fn kill_after_sends(self, sends: u64) -> FaultPlan {
        self.rule(FaultRule::KillAfter { sends })
    }

    /// Shorthand: sever the link to `peer` after `after_sends` delivered
    /// frames (see [`FaultRule::SeverPeer`]).
    #[must_use]
    pub fn sever_peer(self, peer: NodeId, after_sends: u64) -> FaultPlan {
        self.rule(FaultRule::SeverPeer { peer, after_sends })
    }

    /// Shorthand: drop the `nth` send of `kind` (see [`FaultRule::DropNth`]).
    #[must_use]
    pub fn drop_nth(self, kind: Option<WireKind>, nth: u64) -> FaultPlan {
        self.rule(FaultRule::DropNth { kind, nth })
    }

    /// Shorthand: flap the link to `peer` — deliver `after` attempts,
    /// fail the next `down_for`, then heal (see
    /// [`FaultRule::SeverThenHeal`]).
    #[must_use]
    pub fn sever_then_heal(self, peer: NodeId, after: u64, down_for: u64) -> FaultPlan {
        self.rule(FaultRule::SeverThenHeal {
            peer,
            after,
            down_for,
        })
    }

    /// Shorthand: drop the first `n` sends of `kind` (see
    /// [`FaultRule::DropFirstN`]).
    #[must_use]
    pub fn drop_first_n(self, kind: Option<WireKind>, n: u64) -> FaultPlan {
        self.rule(FaultRule::DropFirstN { kind, n })
    }
}

/// Mutable fault-decision state, advanced on every send.
#[derive(Debug)]
struct FaultState {
    /// Total sends attempted (1-based after increment).
    sends: u64,
    /// Sends attempted per kind tag.
    sends_by_kind: [u64; WireKind::COUNT],
    /// Frames delivered per destination (for [`FaultRule::SeverPeer`]).
    delivered_to: Vec<u64>,
    /// Sends *attempted* per destination, delivered or not (for
    /// [`FaultRule::SeverThenHeal`], whose window must not stretch when
    /// the caller retries into the cut).
    attempted_to: Vec<u64>,
    /// xorshift64 state for [`FaultRule::DropRandom`].
    rng: u64,
}

/// The outcome of consulting the plan for one send.
enum Verdict {
    Deliver,
    DeliverAfter(Duration),
    Drop,
    Sever,
    Kill,
}

/// A [`Transport`] wrapper that injects the faults of a [`FaultPlan`].
///
/// Dropped frames are counted in [`FaultyTransport::dropped`] but not in
/// the inner transport's stats (they never reach it); a killed endpoint
/// fails every subsequent `send` *and* `recv` with [`NetError::Closed`],
/// modeling a node that is gone, not merely deaf.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    state: Mutex<FaultState>,
    killed: AtomicBool,
    dropped: Mutex<u64>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the scripted `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTransport<T> {
        let seed = plan.seed;
        FaultyTransport {
            inner,
            plan,
            state: Mutex::new_in(
                FaultState {
                    sends: 0,
                    sends_by_kind: [0; WireKind::COUNT],
                    delivered_to: Vec::new(),
                    attempted_to: Vec::new(),
                    rng: seed,
                },
                classes::NET_FAULT_STATE,
            ),
            killed: AtomicBool::new(false),
            dropped: Mutex::new_in(0, classes::NET_FAULT_DROPPED),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Whether a [`FaultRule::KillAfter`] has fired.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }

    /// Frames silently discarded so far.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock()
    }

    /// Total sends attempted so far (delivered, dropped, or refused —
    /// the count fault rules index into).
    pub fn sends_attempted(&self) -> u64 {
        self.state.lock().sends
    }

    /// Advances the counters for one send and decides its fate. The most
    /// severe applicable verdict wins: kill > sever > drop > delay.
    fn consult(&self, kind: WireKind, dst: NodeId) -> Verdict {
        let mut st = self.state.lock();
        st.sends += 1;
        st.sends_by_kind[kind.tag() as usize] += 1;
        let sends = st.sends;
        let kind_sends = st.sends_by_kind[kind.tag() as usize];
        if st.delivered_to.len() <= dst as usize {
            st.delivered_to.resize(dst as usize + 1, 0);
        }
        if st.attempted_to.len() <= dst as usize {
            st.attempted_to.resize(dst as usize + 1, 0);
        }
        st.attempted_to[dst as usize] += 1;
        let attempted = st.attempted_to[dst as usize];
        let mut verdict = Verdict::Deliver;
        for rule in &self.plan.rules {
            match *rule {
                FaultRule::KillAfter { sends: at } if sends >= at => return Verdict::Kill,
                FaultRule::SeverPeer { peer, after_sends }
                    if peer == dst && st.delivered_to[dst as usize] >= after_sends =>
                {
                    verdict = Verdict::Sever;
                }
                FaultRule::DropNth { kind: k, nth }
                    if k.is_none_or(|k| k == kind)
                        && nth == if k.is_some() { kind_sends } else { sends }
                        && !matches!(verdict, Verdict::Sever) =>
                {
                    verdict = Verdict::Drop;
                }
                FaultRule::DropRandom { numer, denom } => {
                    // xorshift64 — one step per send whether or not it
                    // fires, so earlier rules don't shift the stream.
                    st.rng ^= st.rng << 13;
                    st.rng ^= st.rng >> 7;
                    st.rng ^= st.rng << 17;
                    if (st.rng % denom as u64) < numer as u64
                        && matches!(verdict, Verdict::Deliver | Verdict::DeliverAfter(_))
                    {
                        verdict = Verdict::Drop;
                    }
                }
                FaultRule::SeverThenHeal {
                    peer,
                    after,
                    down_for,
                } if peer == dst && attempted > after && attempted <= after + down_for => {
                    verdict = Verdict::Sever;
                }
                FaultRule::DropFirstN { kind: k, n }
                    if k.is_none_or(|k| k == kind)
                        && (if k.is_some() { kind_sends } else { sends }) <= n
                        && !matches!(verdict, Verdict::Sever) =>
                {
                    verdict = Verdict::Drop;
                }
                FaultRule::DelayNth { nth, delay } if nth == sends => {
                    if matches!(verdict, Verdict::Deliver) {
                        verdict = Verdict::DeliverAfter(delay);
                    }
                }
                _ => {}
            }
        }
        if matches!(verdict, Verdict::Deliver | Verdict::DeliverAfter(_)) {
            st.delivered_to[dst as usize] += 1;
        }
        verdict
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn send(&self, msg: &WireMsg, dst: NodeId, seq: u64) -> Result<(), NetError> {
        if self.is_killed() {
            return Err(NetError::Closed);
        }
        match self.consult(msg.kind(), dst) {
            Verdict::Deliver => self.inner.send(msg, dst, seq),
            Verdict::DeliverAfter(delay) => {
                std::thread::sleep(delay);
                self.inner.send(msg, dst, seq)
            }
            Verdict::Drop => {
                *self.dropped.lock() += 1;
                Ok(())
            }
            Verdict::Sever => Err(NetError::Closed),
            Verdict::Kill => {
                self.killed.store(true, Ordering::Release);
                Err(NetError::Closed)
            }
        }
    }

    fn recv(&self) -> Result<Frame, NetError> {
        if self.is_killed() {
            return Err(NetError::Closed);
        }
        let frame = self.inner.recv();
        // A kill that fired while this recv was blocked still poisons the
        // result: the node is gone, late frames do not resurrect it.
        if self.is_killed() {
            return Err(NetError::Closed);
        }
        frame
    }

    fn stats(&self) -> WireStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelNet;
    use lrc_vclock::ProcId;

    fn pair() -> (
        FaultyTransport<crate::ChannelTransport>,
        crate::ChannelTransport,
    ) {
        let mut mesh = ChannelNet::mesh(2);
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        (FaultyTransport::new(a, FaultPlan::new()), b)
    }

    fn hello() -> WireMsg {
        WireMsg::Hello {
            node: 0,
            procs: vec![ProcId::new(0)],
        }
    }

    #[test]
    fn empty_plan_is_transparent() {
        let (a, b) = pair();
        a.send(&hello(), 1, 7).unwrap();
        let frame = b.recv().unwrap();
        assert_eq!((frame.kind, frame.seq), (WireKind::Hello, 7));
        assert_eq!(a.dropped(), 0);
        assert_eq!(a.stats().msgs_sent, 1);
    }

    #[test]
    fn drop_nth_discards_exactly_that_frame() {
        let mut mesh = ChannelNet::mesh(2);
        let b = mesh.pop().unwrap();
        let a = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan::new().drop_nth(Some(WireKind::Hello), 2),
        );
        // Shutdown frames don't advance the Hello count.
        a.send(&WireMsg::Shutdown, 1, 0).unwrap();
        a.send(&hello(), 1, 1).unwrap(); // 1st Hello: delivered
        a.send(&hello(), 1, 2).unwrap(); // 2nd Hello: dropped, still Ok
        a.send(&hello(), 1, 3).unwrap(); // 3rd Hello: delivered
        assert_eq!(a.dropped(), 1);
        let seqs: Vec<u64> = (0..3).map(|_| b.recv().unwrap().seq).collect();
        assert_eq!(seqs, vec![0, 1, 3]);
    }

    #[test]
    fn kill_after_fails_everything_from_the_nth_send() {
        let (a, b) = pair();
        let a = FaultyTransport::new(a.inner, FaultPlan::new().kill_after_sends(3));
        a.send(&hello(), 1, 0).unwrap();
        a.send(&hello(), 1, 1).unwrap();
        assert!(!a.is_killed());
        assert_eq!(a.send(&hello(), 1, 2), Err(NetError::Closed));
        assert!(a.is_killed());
        assert_eq!(a.send(&hello(), 1, 3), Err(NetError::Closed));
        assert_eq!(a.recv().unwrap_err(), NetError::Closed);
        // Exactly the first two frames made it out.
        assert_eq!(b.recv().unwrap().seq, 0);
        assert_eq!(b.recv().unwrap().seq, 1);
        assert_eq!(a.stats().msgs_sent, 2);
    }

    #[test]
    fn sever_peer_cuts_one_link_only() {
        let mut mesh = ChannelNet::mesh(3);
        let c = mesh.pop().unwrap();
        let b = mesh.pop().unwrap();
        let a = FaultyTransport::new(mesh.pop().unwrap(), FaultPlan::new().sever_peer(1, 1));
        a.send(&hello(), 1, 0).unwrap(); // 1st to node 1: delivered
        assert_eq!(a.send(&hello(), 1, 1), Err(NetError::Closed)); // link dead
        a.send(&hello(), 2, 2).unwrap(); // node 2 unaffected
        assert_eq!(b.recv().unwrap().seq, 0);
        assert_eq!(c.recv().unwrap().seq, 2);
    }

    #[test]
    fn seeded_random_drop_replays_identically() {
        let run = |seed: u64| -> Vec<u64> {
            let mut mesh = ChannelNet::mesh(2);
            let b = mesh.pop().unwrap();
            let a = FaultyTransport::new(
                mesh.pop().unwrap(),
                FaultPlan::new()
                    .seed(seed)
                    .rule(FaultRule::DropRandom { numer: 1, denom: 3 }),
            );
            for seq in 0..32 {
                a.send(&WireMsg::Shutdown, 1, seq).unwrap();
            }
            let delivered = 32 - a.dropped();
            drop(a);
            (0..delivered).map(|_| b.recv().unwrap().seq).collect()
        };
        let first = run(42);
        assert_eq!(first, run(42), "same seed, same drops");
        assert!(first.len() < 32, "some frames dropped");
        assert!(!first.is_empty(), "some frames delivered");
        assert_ne!(first, run(1234), "different seed, different drops");
    }

    #[test]
    fn sever_then_heal_windows_on_attempted_sends() {
        let mut mesh = ChannelNet::mesh(2);
        let b = mesh.pop().unwrap();
        let a = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan::new().sever_then_heal(1, 2, 3),
        );
        a.send(&hello(), 1, 0).unwrap(); // attempt 1: delivered
        a.send(&hello(), 1, 1).unwrap(); // attempt 2: delivered
        for seq in 2..5 {
            // Attempts 3..=5 fail — retries into the cut count, so the
            // window does not stretch.
            assert_eq!(a.send(&hello(), 1, seq), Err(NetError::Closed));
        }
        a.send(&hello(), 1, 5).unwrap(); // attempt 6: healed
        let seqs: Vec<u64> = (0..3).map(|_| b.recv().unwrap().seq).collect();
        assert_eq!(seqs, vec![0, 1, 5]);
    }

    #[test]
    fn drop_first_n_loses_the_leading_frames_only() {
        let mut mesh = ChannelNet::mesh(2);
        let b = mesh.pop().unwrap();
        let a = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan::new().drop_first_n(Some(WireKind::Hello), 2),
        );
        a.send(&WireMsg::Shutdown, 1, 0).unwrap(); // other kinds unaffected
        a.send(&hello(), 1, 1).unwrap(); // 1st Hello: dropped, still Ok
        a.send(&hello(), 1, 2).unwrap(); // 2nd Hello: dropped
        a.send(&hello(), 1, 3).unwrap(); // 3rd Hello: delivered
        assert_eq!(a.dropped(), 2);
        let seqs: Vec<u64> = (0..2).map(|_| b.recv().unwrap().seq).collect();
        assert_eq!(seqs, vec![0, 3]);
    }

    #[test]
    fn delay_nth_still_delivers() {
        let (a, b) = pair();
        let a = FaultyTransport::new(
            a.inner,
            FaultPlan::new().rule(FaultRule::DelayNth {
                nth: 1,
                delay: Duration::from_millis(5),
            }),
        );
        a.send(&hello(), 1, 0).unwrap();
        assert_eq!(b.recv().unwrap().seq, 0);
        assert_eq!(a.dropped(), 0);
    }
}
