//! The reactor transport: every peer socket behind **one** readiness
//! thread (feature `reactor`).
//!
//! The thread-per-peer [`crate::TcpTransport`] spends `2·peers` OS
//! threads per endpoint; a hub serving hundreds of spokes drowns in
//! threads before the protocol's message savings matter. This backend
//! keeps the same topology, framing, handshake, and metering, but runs
//! **one reactor thread** that owns every connected socket:
//!
//! * sockets are non-blocking; readiness comes from a minimal `poll(2)`
//!   wrapper over raw fds (std already links libc — no crates.io);
//! * senders enqueue encoded frames onto a **wakeable submission queue**
//!   ([`Transport::send`] never touches a socket); a byte down a
//!   `UnixStream` pair wakes the reactor only on the empty→non-empty
//!   transition;
//! * the reactor drains the whole queue each cycle into **per-peer
//!   staging buffers**, so every frame bound for the same destination
//!   that accumulated since the last cycle flushes in a *single* write
//!   syscall — the writev-style batch the protocol-level coalescing
//!   builds on. [`ReactorTransport::batch_stats`] reports frames per
//!   syscall in both directions;
//! * reads pull whatever the socket has into a per-peer buffer and parse
//!   complete length-prefixed frames out of it incrementally
//!   ([`Frame::peek_body_len`] + [`Frame::from_wire_parts`]), so a read
//!   syscall can likewise deliver many frames.
//!
//! Death semantics match the TCP backend: EOF, a failed write, or a
//! corrupt stream poisons that peer's flag (later sends report
//! [`NetError::Closed`]); once every peer is gone the reactor retires and
//! a blocked [`Transport::recv`] resolves to `Closed` instead of hanging.
//! [`FaultyTransport`](crate::FaultyTransport) wraps this backend
//! unchanged — it is generic over [`Transport`].

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::lockdep::classes;
use parking_lot::Mutex;

use crate::tcp::accept_spokes;
use crate::transport::{NetError, NodeId, Transport, WireMeter, WireStats};
use crate::wire::{Frame, WireMsg, FRAME_HEADER_BYTES};

/// Minimal readiness wrapper: `poll(2)` over raw fds. The only unsafe
/// code in the crate, confined to this module; std links libc, so the
/// symbol is already there.
#[allow(unsafe_code)]
mod sys {
    use std::os::raw::{c_int, c_ulong};

    /// One registered fd, `struct pollfd`-compatible.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Blocks until at least one registered fd is ready; retries EINTR.
    pub fn poll_fds(fds: &mut [PollFd]) -> std::io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // repr(C) pollfd records for the duration of the call.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, -1) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// Syscall-level batching counters of one reactor endpoint: how many
/// frames each read/write syscall actually moved.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchStats {
    /// Successful write syscalls issued (EAGAIN probes excluded).
    pub write_syscalls: u64,
    /// Frames fully written to sockets.
    pub frames_written: u64,
    /// Successful read syscalls issued.
    pub read_syscalls: u64,
    /// Frames fully parsed off sockets.
    pub frames_read: u64,
}

impl BatchStats {
    /// Same-destination frames flushed per write syscall (the batching
    /// figure of merit; `> 1` means aggregation engaged).
    pub fn frames_per_write(&self) -> f64 {
        self.frames_written as f64 / self.write_syscalls.max(1) as f64
    }
}

/// Atomic mirror of [`BatchStats`], bumped from the reactor thread.
#[derive(Debug, Default)]
struct SharedBatch {
    write_syscalls: AtomicU64,
    frames_written: AtomicU64,
    read_syscalls: AtomicU64,
    frames_read: AtomicU64,
}

/// State shared between sender threads and the reactor thread. Sockets
/// are deliberately *not* here: the reactor owns them privately, so the
/// I/O hot path takes no locks at all.
struct Shared {
    /// Encoded frames awaiting the reactor, in submission order.
    submit: Mutex<VecDeque<(NodeId, Vec<u8>)>>,
    /// Per-peer death flags (the send-side view of liveness).
    peers: Mutex<HashMap<NodeId, Arc<AtomicBool>>>,
    /// Set by [`Drop`]; the reactor exits at the next wake.
    shutdown: AtomicBool,
    batch: SharedBatch,
}

/// A [`Transport`] endpoint whose sockets are all served by one reactor
/// thread (versus the TCP backend's send+recv thread pair per peer).
///
/// Wire-compatible with [`crate::TcpTransport`]: the two backends
/// interoperate on the same session and meter identical bytes.
pub struct ReactorTransport {
    node: NodeId,
    shared: Arc<Shared>,
    /// Write side of the wake pipe (non-blocking; a full pipe already
    /// guarantees a pending wake).
    wake_tx: UnixStream,
    incoming: Mutex<Receiver<Frame>>,
    meter: Arc<WireMeter>,
    reactor: Option<std::thread::JoinHandle<()>>,
}

impl ReactorTransport {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and returns a hub handle; call
    /// [`ReactorHub::accept`] / [`ReactorHub::accept_within`] to take the
    /// spoke connections and start the reactor.
    ///
    /// # Errors
    ///
    /// I/O failures binding the listener.
    pub fn bind(addr: &str, node: NodeId) -> Result<ReactorHub, NetError> {
        let listener = TcpListener::bind(addr)?;
        Ok(ReactorHub { node, listener })
    }

    /// Connects to a hub at `addr` as `node`, opening with the same
    /// transport-level [`WireMsg::Hello`] the TCP spoke sends (the hubs
    /// are interchangeable).
    ///
    /// # Errors
    ///
    /// I/O failures reaching the hub.
    pub fn connect(addr: &str, node: NodeId, hub: NodeId) -> Result<ReactorTransport, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let transport = ReactorTransport::start(node, vec![(hub, stream)])?;
        transport.send(
            &WireMsg::Hello {
                node,
                procs: Vec::new(),
            },
            hub,
            0,
        )?;
        Ok(transport)
    }

    /// Wires up the shared state and spawns the reactor thread over the
    /// already-connected `conns`.
    fn start(node: NodeId, conns: Vec<(NodeId, TcpStream)>) -> Result<ReactorTransport, NetError> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            submit: Mutex::new_in(VecDeque::new(), classes::NET_REACTOR_SUBMIT),
            peers: Mutex::new_in(HashMap::new(), classes::NET_REACTOR_PEERS),
            shutdown: AtomicBool::new(false),
            batch: SharedBatch::default(),
        });
        let (incoming_tx, incoming_rx) = channel();
        let mut peer_io = HashMap::new();
        {
            let mut peers = shared.peers.lock();
            for (peer, stream) in conns {
                stream.set_nonblocking(true)?;
                let dead = Arc::new(AtomicBool::new(false));
                peers.insert(peer, Arc::clone(&dead));
                peer_io.insert(peer, PeerIo::new(stream, dead));
            }
        }
        let reactor = Reactor {
            shared: Arc::clone(&shared),
            wake_rx,
            peers: peer_io,
            incoming: incoming_tx,
        };
        let thread = std::thread::Builder::new()
            .name(format!("lrc-net-reactor-{node}"))
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");
        Ok(ReactorTransport {
            node,
            shared,
            wake_tx,
            incoming: Mutex::new_in(incoming_rx, classes::NET_INCOMING),
            meter: Arc::new(WireMeter::default()),
            reactor: Some(thread),
        })
    }

    /// Syscall-level batching counters of this endpoint.
    pub fn batch_stats(&self) -> BatchStats {
        let b = &self.shared.batch;
        BatchStats {
            write_syscalls: b.write_syscalls.load(Ordering::Relaxed),
            frames_written: b.frames_written.load(Ordering::Relaxed),
            read_syscalls: b.read_syscalls.load(Ordering::Relaxed),
            frames_read: b.frames_read.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ReactorTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = (&self.wake_tx).write(&[1]);
        if let Some(thread) = self.reactor.take() {
            let _ = thread.join();
        }
    }
}

impl Transport for ReactorTransport {
    fn node(&self) -> NodeId {
        self.node
    }

    fn send(&self, msg: &WireMsg, dst: NodeId, seq: u64) -> Result<(), NetError> {
        let bytes = crate::transport::encode_frame_checked(msg, self.node, dst, seq)?;
        let len = bytes.len();
        let dead = {
            let peers = self.shared.peers.lock();
            Arc::clone(peers.get(&dst).ok_or(NetError::UnknownPeer(dst))?)
        };
        if dead.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        let was_empty = {
            let mut submit = self.shared.submit.lock();
            let was_empty = submit.is_empty();
            submit.push_back((dst, bytes));
            was_empty
        };
        // One wake byte per empty→non-empty transition is enough: the
        // reactor drains the queue whole under the lock, so every frame
        // pushed onto a non-empty queue is covered by the wake already in
        // flight for its head.
        if was_empty {
            let _ = (&self.wake_tx).write(&[1]);
        }
        self.meter.count_sent(msg.kind(), len);
        Ok(())
    }

    fn recv(&self) -> Result<Frame, NetError> {
        let frame = self.incoming.lock().recv().map_err(|_| NetError::Closed)?;
        self.meter.count_received(frame.wire_len());
        Ok(frame)
    }

    fn stats(&self) -> WireStats {
        self.meter.stats()
    }
}

impl std::fmt::Debug for ReactorTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let peers = self.shared.peers.lock();
        write!(
            f,
            "ReactorTransport(node {}, {} peers)",
            self.node,
            peers.len()
        )
    }
}

/// A bound-but-not-yet-connected reactor hub (see
/// [`ReactorTransport::bind`]).
pub struct ReactorHub {
    node: NodeId,
    listener: TcpListener,
}

impl ReactorHub {
    /// The address peers should connect to.
    ///
    /// # Panics
    ///
    /// Panics if the socket's local address cannot be read (never on a
    /// freshly bound listener).
    pub fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
            .to_string()
    }

    /// Accepts exactly `n_peers` connections (consuming each opening
    /// transport-level `Hello`, as [`crate::TcpHub::accept`] does) and
    /// starts the reactor over them.
    ///
    /// # Errors
    ///
    /// I/O failures, or a first frame that is not a valid `Hello`.
    pub fn accept(self, n_peers: usize) -> Result<ReactorTransport, NetError> {
        self.accept_conns(n_peers, None)
    }

    /// Like [`ReactorHub::accept`], but bounded by `timeout`; expiry
    /// returns [`NetError::AcceptTimeout`] naming the peers that did
    /// connect.
    ///
    /// # Errors
    ///
    /// [`NetError::AcceptTimeout`] on expiry; otherwise as
    /// [`ReactorHub::accept`].
    pub fn accept_within(
        self,
        n_peers: usize,
        timeout: Duration,
    ) -> Result<ReactorTransport, NetError> {
        self.accept_conns(n_peers, Some(Instant::now() + timeout))
    }

    fn accept_conns(
        self,
        n_peers: usize,
        deadline: Option<Instant>,
    ) -> Result<ReactorTransport, NetError> {
        let conns = accept_spokes(&self.listener, n_peers, deadline)?;
        let mut hello_bytes = Vec::with_capacity(conns.len());
        let conns: Vec<(NodeId, TcpStream)> = conns
            .into_iter()
            .map(|(peer, stream, hello_len)| {
                hello_bytes.push(hello_len);
                (peer, stream)
            })
            .collect();
        let transport = ReactorTransport::start(self.node, conns)?;
        for len in hello_bytes {
            transport.meter.count_received(len);
        }
        Ok(transport)
    }
}

/// One peer's private I/O state, owned by the reactor thread.
struct PeerIo {
    stream: TcpStream,
    dead: Arc<AtomicBool>,
    /// Unparsed inbound bytes (a frame may arrive split across reads).
    inbuf: Vec<u8>,
    /// Staged outbound bytes; `out[out_pos..]` is still unwritten.
    out: Vec<u8>,
    out_pos: usize,
    /// Lengths of the staged frames, front = currently flushing — how
    /// "frames completed per write syscall" is attributed.
    frame_lens: VecDeque<usize>,
    /// Bytes of `frame_lens.front()` already written.
    head_written: usize,
}

impl PeerIo {
    fn new(stream: TcpStream, dead: Arc<AtomicBool>) -> PeerIo {
        PeerIo {
            stream,
            dead,
            inbuf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            frame_lens: VecDeque::new(),
            head_written: 0,
        }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Appends one encoded frame to the staging buffer (compacting the
    /// already-written prefix first).
    fn stage(&mut self, bytes: Vec<u8>) {
        if self.out_pos > 0 {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        self.frame_lens.push_back(bytes.len());
        self.out.extend_from_slice(&bytes);
    }

    /// Writes as much staged output as the socket accepts right now —
    /// one syscall can carry every frame staged since the last cycle.
    fn flush(&mut self, batch: &SharedBatch) {
        while self.out_pos < self.out.len() {
            match (&self.stream).write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead.store(true, Ordering::Release);
                    return;
                }
                Ok(n) => {
                    batch.write_syscalls.fetch_add(1, Ordering::Relaxed);
                    self.out_pos += n;
                    self.head_written += n;
                    while let Some(&len) = self.frame_lens.front() {
                        if self.head_written < len {
                            break;
                        }
                        self.head_written -= len;
                        self.frame_lens.pop_front();
                        batch.frames_written.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead.store(true, Ordering::Release);
                    return;
                }
            }
        }
        self.out.clear();
        self.out_pos = 0;
    }

    /// Pulls whatever the socket has buffered and parses every complete
    /// frame out of `inbuf`. Returns `false` only when the incoming
    /// receiver is gone (the transport handle was dropped); peer death is
    /// recorded in the flag instead.
    fn read_and_parse(
        &mut self,
        scratch: &mut [u8],
        batch: &SharedBatch,
        incoming: &Sender<Frame>,
    ) -> bool {
        loop {
            match (&self.stream).read(scratch) {
                Ok(0) => {
                    self.dead.store(true, Ordering::Release);
                    break;
                }
                Ok(n) => {
                    batch.read_syscalls.fetch_add(1, Ordering::Relaxed);
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead.store(true, Ordering::Release);
                    break;
                }
            }
        }
        let mut consumed = 0;
        while self.inbuf.len() - consumed >= FRAME_HEADER_BYTES {
            let header = &self.inbuf[consumed..consumed + FRAME_HEADER_BYTES];
            let body_len = match Frame::peek_body_len(header) {
                Ok(len) => len,
                Err(_) => {
                    // Corrupt stream: poison the peer, drop the tail.
                    self.dead.store(true, Ordering::Release);
                    break;
                }
            };
            if self.inbuf.len() - consumed < FRAME_HEADER_BYTES + body_len {
                break;
            }
            let body_start = consumed + FRAME_HEADER_BYTES;
            let body = self.inbuf[body_start..body_start + body_len].to_vec();
            let frame = match Frame::from_wire_parts(header, body) {
                Ok(frame) => frame,
                Err(_) => {
                    self.dead.store(true, Ordering::Release);
                    break;
                }
            };
            consumed += FRAME_HEADER_BYTES + body_len;
            batch.frames_read.fetch_add(1, Ordering::Relaxed);
            if incoming.send(frame).is_err() {
                return false;
            }
        }
        if consumed > 0 {
            self.inbuf.drain(..consumed);
        }
        true
    }
}

/// The reactor thread's private state.
struct Reactor {
    shared: Arc<Shared>,
    wake_rx: UnixStream,
    peers: HashMap<NodeId, PeerIo>,
    incoming: Sender<Frame>,
}

impl Reactor {
    /// The event loop: poll → drain wake → stage submissions → flush
    /// staged writes → read/parse inbound → sweep dead peers. Exits on
    /// shutdown, when every peer has died (dropping the incoming sender,
    /// which resolves blocked `recv`s to `Closed`), or when the transport
    /// handle itself is gone.
    fn run(mut self) {
        let mut scratch = vec![0u8; 64 * 1024];
        'outer: loop {
            if self.shared.shutdown.load(Ordering::Acquire) || self.peers.is_empty() {
                break;
            }
            let ids: Vec<NodeId> = self.peers.keys().copied().collect();
            let mut fds = Vec::with_capacity(ids.len() + 1);
            fds.push(sys::PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            for id in &ids {
                let io = &self.peers[id];
                let mut events = sys::POLLIN;
                if io.has_pending_out() {
                    events |= sys::POLLOUT;
                }
                fds.push(sys::PollFd {
                    fd: io.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
            }
            if sys::poll_fds(&mut fds).is_err() {
                break;
            }
            if fds[0].revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 {
                self.drain_wake_pipe();
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            // Stage everything submitted since the last cycle — the
            // batching point: same-destination frames now share a flush.
            let submitted = std::mem::take(&mut *self.shared.submit.lock());
            for (dst, bytes) in submitted {
                if let Some(io) = self.peers.get_mut(&dst) {
                    io.stage(bytes);
                }
                // else: the peer died with frames in flight; they vanish,
                // exactly like bytes queued into a dead TCP send thread.
            }
            // Flush optimistically (the first attempt usually succeeds
            // without a POLLOUT round trip); WouldBlock leaves the rest
            // staged and the next poll registers POLLOUT for it.
            for id in &ids {
                let io = self.peers.get_mut(id).expect("id snapshot of this cycle");
                if io.has_pending_out() && !io.is_dead() {
                    io.flush(&self.shared.batch);
                }
            }
            for (i, id) in ids.iter().enumerate() {
                if fds[i + 1].revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) == 0 {
                    continue;
                }
                let io = self.peers.get_mut(id).expect("id snapshot of this cycle");
                if !io.is_dead()
                    && !io.read_and_parse(&mut scratch, &self.shared.batch, &self.incoming)
                {
                    break 'outer;
                }
            }
            self.peers.retain(|_, io| !io.is_dead());
        }
        // Dropping `self` closes every stream (peers see EOF) and the
        // incoming sender (blocked recvs resolve to Closed).
    }

    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut sink) {
                Ok(0) => break, // every wake sender is gone
                Ok(n) if n == sink.len() => continue,
                Ok(_) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireKind;
    use std::thread;

    fn loopback_pair() -> (ReactorTransport, ReactorTransport) {
        let hub = ReactorTransport::bind("127.0.0.1:0", 0).expect("bind");
        let addr = hub.local_addr();
        let spoke_thread =
            thread::spawn(move || ReactorTransport::connect(&addr, 1, 0).expect("connect"));
        let hub = hub.accept(1).expect("accept");
        (hub, spoke_thread.join().unwrap())
    }

    #[test]
    fn hub_and_spoke_exchange_frames_on_loopback() {
        let (hub, spoke) = loopback_pair();
        spoke.send(&WireMsg::Shutdown, 0, 5).unwrap();
        let frame = hub.recv().unwrap();
        assert_eq!((frame.kind, frame.seq), (WireKind::Shutdown, 5));
        hub.send(&WireMsg::Shutdown, 1, 6).unwrap();
        let frame = spoke.recv().unwrap();
        assert_eq!(
            (frame.kind, frame.src, frame.seq),
            (WireKind::Shutdown, 0, 6)
        );
        // Metering matches the TCP backend: the link-level Hello counts.
        assert!(spoke.stats().bytes_sent >= 2 * 32);
        assert_eq!(spoke.stats().msgs_sent, 2);
        assert_eq!(hub.stats().msgs_received, 2);
        assert_eq!(hub.stats().msgs_sent, 1);
    }

    #[test]
    fn interoperates_with_the_thread_per_peer_tcp_backend() {
        // Same wire protocol, same handshake: a reactor spoke against a
        // thread-per-peer hub (and the reply direction back).
        let hub = crate::TcpTransport::bind("127.0.0.1:0", 0).expect("bind");
        let addr = hub.local_addr();
        let spoke_thread =
            thread::spawn(move || ReactorTransport::connect(&addr, 1, 0).expect("connect"));
        let hub = hub.accept(1).expect("accept");
        let spoke = spoke_thread.join().unwrap();
        spoke.send(&WireMsg::Shutdown, 0, 11).unwrap();
        assert_eq!(hub.recv().unwrap().seq, 11);
        hub.send(&WireMsg::Shutdown, 1, 12).unwrap();
        assert_eq!(spoke.recv().unwrap().seq, 12);
    }

    #[test]
    fn peer_death_surfaces_as_closed_not_a_hang() {
        let (hub, spoke) = loopback_pair();
        drop(spoke);
        assert_eq!(hub.recv().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn send_after_peer_death_errors_instead_of_queueing_into_the_void() {
        let (hub, spoke) = loopback_pair();
        drop(hub);
        assert_eq!(spoke.recv().unwrap_err(), NetError::Closed);
        assert_eq!(spoke.send(&WireMsg::Shutdown, 0, 1), Err(NetError::Closed));
    }

    #[test]
    fn in_flight_blocking_fetch_unblocks_when_the_peer_dies() {
        let (hub, spoke) = loopback_pair();
        spoke.send(&WireMsg::Shutdown, 0, 9).unwrap();
        let fetch = thread::spawn(move || spoke.recv());
        hub.recv().unwrap();
        drop(hub);
        assert_eq!(fetch.join().unwrap().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn oversized_body_is_refused_at_the_sender() {
        let (_hub, spoke) = loopback_pair();
        let msg = WireMsg::OpReply {
            result: Ok(vec![0u8; crate::wire::MAX_BODY_BYTES + 1]),
        };
        assert!(matches!(
            spoke.send(&msg, 0, 0),
            Err(NetError::Wire(crate::wire::WireError::Malformed(_)))
        ));
    }

    #[test]
    fn send_to_unconnected_peer_errors() {
        let (_hub, spoke) = loopback_pair();
        assert_eq!(
            spoke.send(&WireMsg::Shutdown, 7, 0),
            Err(NetError::UnknownPeer(7))
        );
    }

    #[test]
    fn a_burst_delivers_in_order_with_exact_frame_accounting() {
        let (hub, spoke) = loopback_pair();
        const BURST: u64 = 256;
        for seq in 0..BURST {
            spoke.send(&WireMsg::Shutdown, 0, seq).unwrap();
        }
        for seq in 0..BURST {
            let frame = hub.recv().unwrap();
            assert_eq!((frame.kind, frame.seq), (WireKind::Shutdown, seq));
        }
        // Give the spoke's reactor a moment to finish attributing the
        // tail of the burst (the hub has the frames; the spoke's counters
        // trail the last write by at most one cycle).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let b = spoke.batch_stats();
            if b.frames_written == BURST + 1 || Instant::now() > deadline {
                // +1: the link-level Hello.
                assert_eq!(b.frames_written, BURST + 1, "every frame fully flushed");
                assert!(
                    b.write_syscalls <= b.frames_written,
                    "a write syscall never splits below one frame's worth of credit"
                );
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        // Hub side: the link-level Hello metered at accept + the burst.
        assert_eq!(hub.stats().msgs_received, BURST + 1);
    }

    #[test]
    fn accept_within_times_out_when_a_spoke_never_connects() {
        let hub = ReactorTransport::bind("127.0.0.1:0", 0).expect("bind");
        let err = hub
            .accept_within(3, Duration::from_millis(100))
            .unwrap_err();
        assert_eq!(
            err,
            NetError::AcceptTimeout {
                wanted: 3,
                connected: Vec::new()
            }
        );
    }
}
