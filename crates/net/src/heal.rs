//! Self-healing transport: reconnect-with-backoff behind the
//! [`Transport`] trait.
//!
//! [`SelfHealing`] wraps a *connector* — a closure that produces a fresh
//! connected transport — and the current live transport. When a `send`
//! or `recv` fails with a link-death error ([`NetError::Closed`] or
//! [`NetError::Io`]), the wrapper re-runs the connector under a jittered
//! exponential [`Backoff`] and retries the operation on the replacement.
//! Every successful replacement bumps the **generation** counter
//! ([`Transport::generation`]): callers that had a request in flight
//! snapshot the generation around the blocking wait and re-send (same
//! correlation id) when it moved, because the in-flight reply died with
//! the old link — the node runtime's duplicate-reply cache makes that
//! replay safe for non-idempotent operations.
//!
//! Healing is spoke-side: a spoke reconnects to its hub (whose
//! [`crate::TcpHub::accept_healing`] acceptor re-attaches it); the hub
//! itself never dials out. Wire statistics accumulate across retired
//! transports, so a healed endpoint's meter never goes backwards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::lockdep::classes;
use parking_lot::RwLock;

use crate::transport::{Backoff, NetError, NodeId, Transport, WireStats};
use crate::wire::{Frame, WireMsg};

/// Produces a fresh connected transport — one dial attempt. The
/// self-healing wrapper calls it under its [`Backoff`] budget, so the
/// connector itself should *not* retry internally.
pub type Connector = Box<dyn Fn() -> Result<Arc<dyn Transport>, NetError> + Send + Sync>;

/// The mutable heart of the wrapper: the live transport and its
/// generation, swapped atomically under the lock on heal.
struct Slot {
    inner: Arc<dyn Transport>,
    generation: u64,
}

/// A [`Transport`] that survives link death by reconnecting.
///
/// See the `heal` module docs for the healing protocol. Construct with
/// [`SelfHealing::connect`] (real reconnects) or
/// [`SelfHealing::retry_same`] (retry the same endpoint — pairs with
/// [`crate::FaultRule::SeverThenHeal`] for deterministic no-socket
/// tests).
pub struct SelfHealing {
    connector: Connector,
    backoff: Backoff,
    slot: RwLock<Slot>,
    /// Lock-free mirror of `slot.generation` for [`Transport::generation`].
    generation: AtomicU64,
    /// Traffic of retired transports, folded in at each heal so
    /// [`Transport::stats`] is monotonic across reconnects.
    retired: RwLock<WireStats>,
}

impl SelfHealing {
    /// Dials the initial connection through `connector` under `backoff`
    /// and wraps it.
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectTimeout`] if the initial connect budget is
    /// spent without a successful dial.
    pub fn connect(connector: Connector, backoff: Backoff) -> Result<SelfHealing, NetError> {
        let inner = backoff.retry(&connector)?;
        Ok(SelfHealing {
            connector,
            backoff,
            slot: RwLock::new_in(
                Slot {
                    inner,
                    generation: 0,
                },
                classes::NET_HEAL.with_order(0),
            ),
            generation: AtomicU64::new(0),
            // Order key 1: folded into under the slot lock on heal.
            retired: RwLock::new_in(WireStats::default(), classes::NET_HEAL.with_order(1)),
        })
    }

    /// Wraps an existing transport with a connector that hands the *same*
    /// endpoint back on every heal. Useful when the failure is transient
    /// at the fault layer (e.g. [`crate::FaultRule::SeverThenHeal`])
    /// rather than a dead socket: the retry loop and generation bumps
    /// behave exactly as with real reconnects, deterministically.
    pub fn retry_same(inner: Arc<dyn Transport>, backoff: Backoff) -> SelfHealing {
        let again = Arc::clone(&inner);
        SelfHealing {
            connector: Box::new(move || Ok(Arc::clone(&again))),
            backoff,
            slot: RwLock::new_in(
                Slot {
                    inner,
                    generation: 0,
                },
                classes::NET_HEAL.with_order(0),
            ),
            generation: AtomicU64::new(0),
            retired: RwLock::new_in(WireStats::default(), classes::NET_HEAL.with_order(1)),
        }
    }

    /// Snapshots the live transport and its generation without holding
    /// the lock across the (possibly blocking) inner call.
    fn snapshot(&self) -> (Arc<dyn Transport>, u64) {
        let slot = self.slot.read();
        (Arc::clone(&slot.inner), slot.generation)
    }

    /// Replaces the transport the caller observed as generation
    /// `observed` with a fresh connection. If another thread already
    /// healed past `observed`, returns immediately — one reconnect
    /// serves every thread that saw the same death.
    fn heal(&self, observed: u64) -> Result<(), NetError> {
        let mut slot = self.slot.write();
        if slot.generation != observed {
            return Ok(());
        }
        let fresh = self.backoff.retry(|| (self.connector)())?;
        // Fold the dying transport's traffic into the retired baseline
        // before letting go of it — unless the connector handed the same
        // endpoint back (retry_same), whose live meter keeps counting.
        if !Arc::ptr_eq(&slot.inner, &fresh) {
            let old = slot.inner.stats();
            let mut retired = self.retired.write();
            retired.msgs_sent += old.msgs_sent;
            retired.bytes_sent += old.bytes_sent;
            retired.msgs_received += old.msgs_received;
            retired.bytes_received += old.bytes_received;
        }
        slot.inner = fresh;
        slot.generation += 1;
        self.generation.store(slot.generation, Ordering::Release);
        Ok(())
    }

    /// Whether `err` means the link died (worth healing) as opposed to a
    /// caller mistake or protocol error (surface as-is).
    fn link_death(err: &NetError) -> bool {
        matches!(err, NetError::Closed | NetError::Io(_))
    }
}

impl Transport for SelfHealing {
    fn node(&self) -> NodeId {
        self.snapshot().0.node()
    }

    fn send(&self, msg: &WireMsg, dst: NodeId, seq: u64) -> Result<(), NetError> {
        let attempts = self.backoff.attempts().max(1);
        let mut last = NetError::Closed;
        for attempt in 0..attempts {
            let (inner, generation) = self.snapshot();
            match inner.send(msg, dst, seq) {
                Ok(()) => return Ok(()),
                Err(e) if SelfHealing::link_death(&e) => {
                    last = e;
                    self.heal(generation)?;
                    if attempt + 1 < attempts {
                        std::thread::sleep(self.backoff.delay(attempt));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(NetError::ConnectTimeout {
            attempts,
            last: last.to_string(),
        })
    }

    fn recv(&self) -> Result<Frame, NetError> {
        let attempts = self.backoff.attempts().max(1);
        let mut last = NetError::Closed;
        for attempt in 0..attempts {
            let (inner, generation) = self.snapshot();
            match inner.recv() {
                Ok(frame) => return Ok(frame),
                Err(e) if SelfHealing::link_death(&e) => {
                    last = e;
                    self.heal(generation)?;
                    if attempt + 1 < attempts {
                        std::thread::sleep(self.backoff.delay(attempt));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(NetError::ConnectTimeout {
            attempts,
            last: last.to_string(),
        })
    }

    fn stats(&self) -> WireStats {
        let retired = *self.retired.read();
        let live = self.snapshot().0.stats();
        WireStats {
            msgs_sent: retired.msgs_sent + live.msgs_sent,
            bytes_sent: retired.bytes_sent + live.bytes_sent,
            msgs_received: retired.msgs_received + live.msgs_received,
            bytes_received: retired.bytes_received + live.bytes_received,
        }
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for SelfHealing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SelfHealing(node {}, generation {})",
            self.node(),
            self.generation()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelNet;
    use crate::fault::{FaultPlan, FaultyTransport};
    use crate::wire::WireKind;
    use std::time::Duration;

    fn tight() -> Backoff {
        Backoff::new(Duration::from_millis(1), Duration::from_millis(2), 4)
    }

    #[test]
    fn sends_ride_out_a_transient_sever() {
        let mut mesh = ChannelNet::mesh(2);
        let b = mesh.pop().unwrap();
        // Attempts 3..=4 to peer 1 fail, then the link heals.
        let flaky = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan::new().sever_then_heal(1, 2, 2),
        );
        let healing = SelfHealing::retry_same(Arc::new(flaky), tight());
        for seq in 0..5 {
            healing.send(&WireMsg::Shutdown, 1, seq).unwrap();
        }
        // Sends 2 and 3 each burned one failed attempt before their
        // retry landed; all five frames arrive, in order.
        let seqs: Vec<u64> = (0..5).map(|_| b.recv().unwrap().seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        // Each in-place retry is still a generation bump: callers with
        // in-flight requests must learn the link flapped.
        assert!(healing.generation() >= 1);
    }

    #[test]
    fn a_sever_longer_than_the_budget_surfaces_connect_timeout() {
        let mesh = ChannelNet::mesh(2);
        let [a, _b] = <[_; 2]>::try_from(mesh).ok().unwrap();
        // Down for far more attempts than the 4-round budget will make:
        // the send keeps failing through every retry and surfaces a
        // typed timeout instead of spinning forever.
        let flaky = FaultyTransport::new(a, FaultPlan::new().sever_then_heal(1, 0, 1_000));
        let healing = SelfHealing::retry_same(Arc::new(flaky), tight());
        let err = healing.send(&WireMsg::Shutdown, 1, 0).unwrap_err();
        assert!(
            matches!(err, NetError::ConnectTimeout { attempts: 4, .. }),
            "{err}"
        );
        assert!(healing.generation() > 0);
    }

    #[test]
    fn connect_timeout_when_the_connector_never_succeeds() {
        let connector: Connector = Box::new(|| Err(NetError::Closed));
        let err = SelfHealing::connect(connector, tight()).unwrap_err();
        assert!(
            matches!(err, NetError::ConnectTimeout { attempts: 4, .. }),
            "{err}"
        );
    }

    #[test]
    fn non_link_errors_surface_without_healing() {
        let mesh = ChannelNet::mesh(2);
        let [a, _b] = <[_; 2]>::try_from(mesh).ok().unwrap();
        let healing = SelfHealing::retry_same(Arc::new(a), tight());
        assert_eq!(
            healing.send(&WireMsg::Shutdown, 9, 0),
            Err(NetError::UnknownPeer(9))
        );
        assert_eq!(healing.generation(), 0, "no heal for a caller mistake");
    }

    #[test]
    fn stats_accumulate_across_generations() {
        let mut mesh = ChannelNet::mesh(2);
        let b = mesh.pop().unwrap();
        let flaky = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan::new().sever_then_heal(1, 1, 1),
        );
        let healing = SelfHealing::retry_same(Arc::new(flaky), tight());
        for seq in 0..4 {
            healing.send(&WireMsg::Shutdown, 1, seq).unwrap();
        }
        // retry_same hands the same endpoint back, and the heal must not
        // fold its (still live) meter into the retired baseline — the
        // count stays exact, not doubled.
        for _ in 0..4 {
            assert_eq!(b.recv().unwrap().kind, WireKind::Shutdown);
        }
        assert_eq!(healing.stats().msgs_sent, 4);
    }
}
