//! The versioned binary wire format.
//!
//! Every protocol message of the DSM — lock acquire hops and grants,
//! barrier arrivals and exits, page-miss requests and replies, write
//! notices, interval records, diffs — plus the node runtime's RPC envelope
//! has a concrete byte layout here. The simulator charges *modeled* sizes
//! ([`lrc_simnet`]'s `sizes` module); this codec is the *measurement*:
//! most payload encodings match the model byte for byte (clocks, notice
//! batches, diffs, lock/barrier/page ids), and the places where a real
//! format must spend more (explicit counts, full-width sequence numbers)
//! are documented on the types and surface in the
//! [`lrc_simnet::SizeCrosscheck`] report.
//!
//! # Frame layout
//!
//! Every message travels in one frame:
//!
//! ```text
//! offset  field
//! 0..4    magic "LRCN"
//! 4..6    version (u16 LE) — currently 1
//! 6..7    kind (u8, see WireKind)
//! 7..8    flags (u8, reserved, must be 0)
//! 8..10   source node (u16 LE)
//! 10..12  destination node (u16 LE)
//! 12..20  sequence (u64 LE; RPC correlation id)
//! 20..24  body length (u32 LE)
//! 24..28  FNV-1a checksum of the body (u32 LE)
//! 28..32  reserved (u32 LE, must be 0)
//! 32..    body
//! ```
//!
//! The 32-byte header matches [`lrc_simnet::MSG_HEADER_BYTES`] exactly, so
//! the model's fixed per-message overhead is also a measurement.

use std::error::Error;
use std::fmt;

use lrc_core::EngineOp;
use lrc_pagemem::{Diff, PageId};
use lrc_sync::{BarrierId, LockId};
use lrc_vclock::{IntervalId, ProcId, VectorClock};

use crate::NodeId;

/// Frame magic.
pub const WIRE_MAGIC: [u8; 4] = *b"LRCN";
/// Current wire format version.
pub const WIRE_VERSION: u16 = 1;
/// Fixed frame header size (equal to the simulation model's
/// [`lrc_simnet::MSG_HEADER_BYTES`]).
pub const FRAME_HEADER_BYTES: usize = 32;
/// Largest accepted body (rejects absurd frames before allocating).
pub const MAX_BODY_BYTES: usize = 1 << 24;

const _: () = assert!(FRAME_HEADER_BYTES as u64 == lrc_simnet::MSG_HEADER_BYTES);

/// Errors produced while decoding wire data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The input ended before the structure did (byte offset, best
    /// effort).
    Truncated(usize),
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The frame's version is not [`WIRE_VERSION`].
    UnsupportedVersion(u16),
    /// The frame names a kind this version does not define.
    UnknownKind(u8),
    /// The body checksum does not match.
    BadChecksum,
    /// A structurally invalid body.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated(at) => write!(f, "truncated wire data at byte {at}"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::Malformed(detail) => write!(f, "malformed body: {detail}"),
        }
    }
}

impl Error for WireError {}

fn malformed(detail: impl Into<String>) -> WireError {
    WireError::Malformed(detail.into())
}

/// Writes a list length as the wire's 2-byte count.
///
/// # Panics
///
/// Panics if the list exceeds `u16::MAX` entries: the cast would silently
/// wrap the count and desynchronize the stream, so the sender fails loudly
/// instead (no protocol structure in this workspace approaches 65k entries
/// per message; barrier-time GC bounds notice history long before that).
fn put_count(out: &mut Vec<u8>, len: usize, what: &str) {
    assert!(
        len <= u16::MAX as usize,
        "{what} list of {len} entries exceeds the wire format's u16 count"
    );
    out.extend_from_slice(&(len as u16).to_le_bytes());
}

/// FNV-1a over the body — cheap corruption detection, not cryptography.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Every message kind of the wire protocol.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum WireKind {
    /// Session opener: a node announces itself and its hosted processors.
    Hello,
    /// Clean session end.
    Shutdown,
    /// RPC envelope: one operation of a remotely hosted processor.
    OpRequest,
    /// RPC envelope: the operation's outcome.
    OpReply,
    /// Lock acquire hop: requester → home.
    LockRequest,
    /// Lock acquire hop: home → grantor.
    LockForward,
    /// Lock grant with piggybacked clock, write notices, and (LU) diffs.
    LockGrant,
    /// Barrier arrival carrying clock and fresh notices.
    BarrierArrival,
    /// Barrier exit carrying merged clock and per-processor notices.
    BarrierExit,
    /// Page-miss diff request (optionally asking for a base copy).
    MissRequest,
    /// Page-miss reply: optional base page plus diffs.
    MissReply,
    /// A standalone write-notice batch (the no-piggyback ablation's
    /// separate consistency message).
    Notices,
    /// A restarted node asks to rejoin, presenting its processor and its
    /// last saved checkpoint (opaque bytes — the engine's own codec).
    RejoinRequest,
    /// The rejoin outcome: the barrier episode rejoined at, or an error.
    RejoinReply,
}

impl WireKind {
    /// All kinds, in tag order.
    pub const ALL: [WireKind; 14] = [
        WireKind::Hello,
        WireKind::Shutdown,
        WireKind::OpRequest,
        WireKind::OpReply,
        WireKind::LockRequest,
        WireKind::LockForward,
        WireKind::LockGrant,
        WireKind::BarrierArrival,
        WireKind::BarrierExit,
        WireKind::MissRequest,
        WireKind::MissReply,
        WireKind::Notices,
        WireKind::RejoinRequest,
        WireKind::RejoinReply,
    ];

    /// Number of kinds.
    pub const COUNT: usize = 14;

    /// Dense tag (also the frame header byte).
    pub fn tag(self) -> u8 {
        match self {
            WireKind::Hello => 0,
            WireKind::Shutdown => 1,
            WireKind::OpRequest => 2,
            WireKind::OpReply => 3,
            WireKind::LockRequest => 4,
            WireKind::LockForward => 5,
            WireKind::LockGrant => 6,
            WireKind::BarrierArrival => 7,
            WireKind::BarrierExit => 8,
            WireKind::MissRequest => 9,
            WireKind::MissReply => 10,
            WireKind::Notices => 11,
            WireKind::RejoinRequest => 12,
            WireKind::RejoinReply => 13,
        }
    }

    /// Reverse of [`WireKind::tag`].
    pub fn from_tag(tag: u8) -> Option<WireKind> {
        WireKind::ALL.get(tag as usize).copied()
    }
}

impl fmt::Display for WireKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One framed message: validated header fields plus the raw body.
///
/// [`Frame::decode`] checks magic, version, kind, flags, length, and
/// checksum; the body is then decoded into a [`WireMsg`] with
/// [`WireMsg::decode`] (which needs the session's [`WireCtx`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Message kind.
    pub kind: WireKind,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Sender-chosen sequence number (RPC correlation id).
    pub seq: u64,
    /// The encoded message body.
    pub body: Vec<u8>,
}

impl Frame {
    /// Total bytes this frame occupies on the wire.
    pub fn wire_len(&self) -> usize {
        FRAME_HEADER_BYTES + self.body.len()
    }

    /// Encodes the frame (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.push(self.kind.tag());
        out.push(0); // flags
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.body).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        out.extend_from_slice(&self.body);
        out
    }

    /// Decodes one frame from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation, bad magic, a foreign version, an
    /// unknown kind, or a checksum mismatch.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
        let header = bytes
            .get(..FRAME_HEADER_BYTES)
            .ok_or(WireError::Truncated(bytes.len()))?;
        Frame::decode_body(header, &bytes[FRAME_HEADER_BYTES..])
            .map(|(frame, body_len)| (frame, FRAME_HEADER_BYTES + body_len))
    }

    /// Validates a 32-byte header and returns the declared body length —
    /// what a streaming transport needs before it can read the body.
    ///
    /// # Errors
    ///
    /// See [`Frame::decode`].
    ///
    /// # Panics
    ///
    /// Panics if `header` is shorter than [`FRAME_HEADER_BYTES`].
    pub fn peek_body_len(header: &[u8]) -> Result<usize, WireError> {
        assert!(header.len() >= FRAME_HEADER_BYTES, "short frame header");
        if header[..4] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let body_len =
            u32::from_le_bytes([header[20], header[21], header[22], header[23]]) as usize;
        if body_len > MAX_BODY_BYTES {
            return Err(malformed(format!("body of {body_len} bytes exceeds cap")));
        }
        Ok(body_len)
    }

    /// Builds a frame from a validated 32-byte header and an *owned* body
    /// — what a streaming transport uses after reading exactly
    /// [`Frame::peek_body_len`] body bytes, so the body is moved, never
    /// re-copied.
    ///
    /// # Errors
    ///
    /// [`WireError`] on header problems, a body whose length disagrees
    /// with the header, or a checksum mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `header` is shorter than [`FRAME_HEADER_BYTES`].
    pub fn from_wire_parts(header: &[u8], body: Vec<u8>) -> Result<Frame, WireError> {
        let body_len = Frame::peek_body_len(header)?;
        if body.len() != body_len {
            return Err(malformed(format!(
                "body is {} bytes, header declares {body_len}",
                body.len()
            )));
        }
        let kind = WireKind::from_tag(header[6]).ok_or(WireError::UnknownKind(header[6]))?;
        if header[7] != 0 {
            return Err(malformed("nonzero flags"));
        }
        let src = u16::from_le_bytes([header[8], header[9]]);
        let dst = u16::from_le_bytes([header[10], header[11]]);
        let seq = u64::from_le_bytes(header[12..20].try_into().expect("8 header bytes"));
        let checksum = u32::from_le_bytes([header[24], header[25], header[26], header[27]]);
        if fnv1a(&body) != checksum {
            return Err(WireError::BadChecksum);
        }
        Ok(Frame {
            kind,
            src,
            dst,
            seq,
            body,
        })
    }

    /// Decodes a frame from a validated-length header and the bytes
    /// following it (at least the declared body). Returns the frame and
    /// the body length consumed.
    fn decode_body(header: &[u8], rest: &[u8]) -> Result<(Frame, usize), WireError> {
        let body_len = Frame::peek_body_len(header)?;
        let body = rest
            .get(..body_len)
            .ok_or(WireError::Truncated(FRAME_HEADER_BYTES + rest.len()))?;
        Frame::from_wire_parts(header, body.to_vec()).map(|frame| (frame, body_len))
    }
}

/// Session parameters a decoder needs that the byte stream deliberately
/// does not repeat per message (they are fixed at Hello time): the
/// processor count, which sizes every vector clock.
///
/// Keeping them out of the per-message encoding is what lets a clock cost
/// exactly [`lrc_simnet::vc_bytes`] on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireCtx {
    /// Number of processors in the cluster (vector clock width).
    pub n_procs: usize,
}

/// One interval's write notices as they travel on the wire: the interval
/// id, the creator's own clock entry (the "timestamp entry" of the
/// model's 12-byte header), and the pages it modified.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NoticeInterval {
    /// The interval the notices belong to.
    pub id: IntervalId,
    /// The interval's own clock entry (redundant with `id.seq()` in this
    /// implementation; kept as the model's explicit timestamp field).
    pub stamp_entry: u32,
    /// Pages the interval modified.
    pub pages: Vec<PageId>,
}

/// A batched write-notice list (TreadMarks-style interval records): one
/// header per distinct interval, then its page ids.
///
/// The per-interval encoding matches [`lrc_simnet::notice_batch_bytes`]
/// exactly; the batch spends 2 extra bytes on an explicit interval count
/// (the model delimits implicitly).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NoticeBatch {
    /// The intervals, each with its modified pages.
    pub intervals: Vec<NoticeInterval>,
}

impl NoticeBatch {
    /// Bytes the per-interval records occupy (the modeled quantity,
    /// excluding the 2-byte count prefix).
    pub fn record_bytes(&self) -> u64 {
        lrc_simnet::notice_batch_bytes(
            self.intervals.len(),
            self.intervals.iter().map(|iv| iv.pages.len()).sum(),
        )
    }

    fn write(&self, out: &mut Vec<u8>) {
        put_count(out, self.intervals.len(), "notice-interval");
        for iv in &self.intervals {
            out.extend_from_slice(&iv.id.proc().raw().to_le_bytes());
            out.extend_from_slice(&iv.id.seq().to_le_bytes());
            put_count(out, iv.pages.len(), "notice-page");
            out.extend_from_slice(&iv.stamp_entry.to_le_bytes());
            for g in &iv.pages {
                out.extend_from_slice(&g.raw().to_le_bytes());
            }
        }
    }

    fn read(r: &mut Reader<'_>) -> Result<NoticeBatch, WireError> {
        let count = r.u16()? as usize;
        let mut intervals = Vec::with_capacity(count.min(1 << 12));
        for _ in 0..count {
            let proc = ProcId::new(r.u16()?);
            let seq = r.u32()?;
            let n_pages = r.u16()? as usize;
            let stamp_entry = r.u32()?;
            let mut pages = Vec::with_capacity(n_pages.min(1 << 12));
            for _ in 0..n_pages {
                pages.push(PageId::new(r.u32()?));
            }
            intervals.push(NoticeInterval {
                id: IntervalId::new(proc, seq),
                stamp_entry,
                pages,
            });
        }
        Ok(NoticeBatch { intervals })
    }
}

/// A diff bound to the page and interval it belongs to, as shipped in
/// grants and miss replies. Encodes via [`Diff::write_wire`], so its wire
/// cost equals [`Diff::encoded_size`] — the exact quantity the simulation
/// model charges.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireDiff {
    /// The page the diff applies to.
    pub page: PageId,
    /// The producing interval's sequence number (the header's 4-byte
    /// stamp field).
    pub stamp: u32,
    /// The runs.
    pub diff: Diff,
}

impl WireDiff {
    fn write(&self, out: &mut Vec<u8>) {
        self.diff.write_wire(self.page.raw(), self.stamp, out);
    }

    fn read(r: &mut Reader<'_>) -> Result<WireDiff, WireError> {
        let (page, stamp, diff, used) =
            Diff::read_wire(r.rest()).ok_or_else(|| malformed("bad diff encoding"))?;
        r.skip(used);
        Ok(WireDiff {
            page: PageId::new(page),
            stamp,
            diff,
        })
    }
}

fn write_diff_list(diffs: &[WireDiff], out: &mut Vec<u8>) {
    put_count(out, diffs.len(), "diff");
    for d in diffs {
        d.write(out);
    }
}

fn read_diff_list(r: &mut Reader<'_>) -> Result<Vec<WireDiff>, WireError> {
    let count = r.u16()? as usize;
    let mut diffs = Vec::with_capacity(count.min(1 << 12));
    for _ in 0..count {
        diffs.push(WireDiff::read(r)?);
    }
    Ok(diffs)
}

/// Every message of the wire protocol, decoded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireMsg {
    /// Session opener: the sending node and the processors it hosts.
    Hello {
        /// The announcing node.
        node: NodeId,
        /// Processors hosted by that node.
        procs: Vec<ProcId>,
    },
    /// Clean session end.
    Shutdown,
    /// One operation of a remotely hosted processor (the RPC request).
    OpRequest {
        /// The processor performing the operation.
        proc: ProcId,
        /// The operation.
        op: EngineOp,
    },
    /// The operation's outcome (the RPC reply): read bytes on success, a
    /// rendered error otherwise.
    OpReply {
        /// `Ok(bytes)` (empty unless the operation was a read) or
        /// `Err(rendered message)`.
        result: Result<Vec<u8>, String>,
    },
    /// Lock acquire hop: requester → home. Carries the acquirer's clock
    /// so the grantor can compute missing write notices.
    LockRequest {
        /// The lock being acquired.
        lock: LockId,
        /// The acquiring processor.
        acquirer: ProcId,
        /// The acquirer's vector time.
        clock: VectorClock,
    },
    /// Lock acquire hop: home → grantor (same payload as the request).
    LockForward {
        /// The lock being acquired.
        lock: LockId,
        /// The acquiring processor.
        acquirer: ProcId,
        /// The acquirer's vector time.
        clock: VectorClock,
    },
    /// The grant back to the requester with piggybacked consistency data.
    LockGrant {
        /// The granted lock.
        lock: LockId,
        /// The grantor's transferable knowledge.
        clock: VectorClock,
        /// Write notices the acquirer lacks.
        notices: NoticeBatch,
        /// Update-policy diffs riding the grant.
        diffs: Vec<WireDiff>,
    },
    /// Arrival at the barrier master.
    BarrierArrival {
        /// The barrier.
        barrier: BarrierId,
        /// The arriving processor.
        proc: ProcId,
        /// The arriver's vector time.
        clock: VectorClock,
        /// Fresh write notices the master lacks.
        notices: NoticeBatch,
    },
    /// Departure from the barrier master.
    BarrierExit {
        /// The barrier.
        barrier: BarrierId,
        /// The merged vector time.
        clock: VectorClock,
        /// Notices this processor lacks.
        notices: NoticeBatch,
    },
    /// Page-miss diff request to one concurrent last modifier.
    MissRequest {
        /// The missing page.
        page: PageId,
        /// The diffs wanted from this supplier.
        wanted: Vec<(IntervalId, PageId)>,
        /// True if the supplier should also ship a base copy of `page`.
        want_base: bool,
    },
    /// The supplier's reply.
    MissReply {
        /// The page the reply resolves.
        page: PageId,
        /// Full base copy, when requested (cold misses).
        base: Option<Vec<u8>>,
        /// The requested diffs (squashed chains).
        diffs: Vec<WireDiff>,
    },
    /// A standalone write-notice batch (no-piggyback ablation).
    Notices {
        /// The sender's vector time.
        clock: VectorClock,
        /// The notices.
        notices: NoticeBatch,
    },
    /// A restarted node announces itself for rejoin. The checkpoint
    /// travels opaque: this layer frames it, the node runtime decodes it
    /// with the engine's own codec ([`lrc_core::EngineCheckpoint`]).
    RejoinRequest {
        /// The rejoining node.
        node: NodeId,
        /// The processor being revived.
        proc: ProcId,
        /// The node's last saved checkpoint, engine-encoded.
        checkpoint: Vec<u8>,
    },
    /// The rejoin outcome.
    RejoinReply {
        /// `Ok(episode)` — the barrier episode the processor rejoined at
        /// — or a rendered error (corrupt or incompatible checkpoint).
        result: Result<u64, String>,
    },
}

impl WireMsg {
    /// The message's kind.
    pub fn kind(&self) -> WireKind {
        match self {
            WireMsg::Hello { .. } => WireKind::Hello,
            WireMsg::Shutdown => WireKind::Shutdown,
            WireMsg::OpRequest { .. } => WireKind::OpRequest,
            WireMsg::OpReply { .. } => WireKind::OpReply,
            WireMsg::LockRequest { .. } => WireKind::LockRequest,
            WireMsg::LockForward { .. } => WireKind::LockForward,
            WireMsg::LockGrant { .. } => WireKind::LockGrant,
            WireMsg::BarrierArrival { .. } => WireKind::BarrierArrival,
            WireMsg::BarrierExit { .. } => WireKind::BarrierExit,
            WireMsg::MissRequest { .. } => WireKind::MissRequest,
            WireMsg::MissReply { .. } => WireKind::MissReply,
            WireMsg::Notices { .. } => WireKind::Notices,
            WireMsg::RejoinRequest { .. } => WireKind::RejoinRequest,
            WireMsg::RejoinReply { .. } => WireKind::RejoinReply,
        }
    }

    /// Encodes the message body (no frame header).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WireMsg::Hello { node, procs } => {
                out.extend_from_slice(&node.to_le_bytes());
                put_count(&mut out, procs.len(), "processor");
                for p in procs {
                    out.extend_from_slice(&p.raw().to_le_bytes());
                }
            }
            WireMsg::Shutdown => {}
            WireMsg::OpRequest { proc, op } => {
                out.extend_from_slice(&proc.raw().to_le_bytes());
                match op {
                    EngineOp::Read { addr, len } => {
                        out.push(0);
                        out.extend_from_slice(&addr.to_le_bytes());
                        out.extend_from_slice(&len.to_le_bytes());
                    }
                    EngineOp::Write { addr, data } => {
                        out.push(1);
                        out.extend_from_slice(&addr.to_le_bytes());
                        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                        out.extend_from_slice(data);
                    }
                    EngineOp::Acquire(l) => {
                        out.push(2);
                        out.extend_from_slice(&l.raw().to_le_bytes());
                    }
                    EngineOp::Release(l) => {
                        out.push(3);
                        out.extend_from_slice(&l.raw().to_le_bytes());
                    }
                    EngineOp::Barrier(b) => {
                        out.push(4);
                        out.extend_from_slice(&b.raw().to_le_bytes());
                    }
                }
            }
            WireMsg::OpReply { result } => match result {
                Ok(bytes) => {
                    out.push(0);
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(bytes);
                }
                Err(msg) => {
                    let msg = msg.as_bytes();
                    out.push(1);
                    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                    out.extend_from_slice(msg);
                }
            },
            WireMsg::LockRequest {
                lock,
                acquirer,
                clock,
            }
            | WireMsg::LockForward {
                lock,
                acquirer,
                clock,
            } => {
                // Lock field: id (4) + acquirer (2) + reserved (2) — the
                // model's 8-byte lock identifier.
                out.extend_from_slice(&lock.raw().to_le_bytes());
                out.extend_from_slice(&acquirer.raw().to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
                clock.write_wire(&mut out);
            }
            WireMsg::LockGrant {
                lock,
                clock,
                notices,
                diffs,
            } => {
                out.extend_from_slice(&lock.raw().to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
                clock.write_wire(&mut out);
                notices.write(&mut out);
                write_diff_list(diffs, &mut out);
            }
            WireMsg::BarrierArrival {
                barrier,
                proc,
                clock,
                notices,
            } => {
                // Barrier field: id (4) + proc (2) + reserved (2) — the
                // model's 8-byte barrier identifier.
                out.extend_from_slice(&barrier.raw().to_le_bytes());
                out.extend_from_slice(&proc.raw().to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
                clock.write_wire(&mut out);
                notices.write(&mut out);
            }
            WireMsg::BarrierExit {
                barrier,
                clock,
                notices,
            } => {
                out.extend_from_slice(&barrier.raw().to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
                clock.write_wire(&mut out);
                notices.write(&mut out);
            }
            WireMsg::MissRequest {
                page,
                wanted,
                want_base,
            } => {
                out.extend_from_slice(&page.raw().to_le_bytes());
                out.push(u8::from(*want_base));
                put_count(&mut out, wanted.len(), "diff-request");
                for (iv, g) in wanted {
                    iv.write_wire(&mut out);
                    out.extend_from_slice(&g.raw().to_le_bytes());
                }
            }
            WireMsg::MissReply { page, base, diffs } => {
                out.extend_from_slice(&page.raw().to_le_bytes());
                match base {
                    Some(bytes) => {
                        out.push(1);
                        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                        out.extend_from_slice(bytes);
                    }
                    None => out.push(0),
                }
                write_diff_list(diffs, &mut out);
            }
            WireMsg::Notices { clock, notices } => {
                clock.write_wire(&mut out);
                notices.write(&mut out);
            }
            WireMsg::RejoinRequest {
                node,
                proc,
                checkpoint,
            } => {
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&proc.raw().to_le_bytes());
                out.extend_from_slice(&(checkpoint.len() as u32).to_le_bytes());
                out.extend_from_slice(checkpoint);
            }
            WireMsg::RejoinReply { result } => match result {
                Ok(episode) => {
                    out.push(0);
                    out.extend_from_slice(&episode.to_le_bytes());
                }
                Err(msg) => {
                    let msg = msg.as_bytes();
                    out.push(1);
                    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                    out.extend_from_slice(msg);
                }
            },
        }
        out
    }

    /// Decodes a message body of the given kind.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or structural nonsense; trailing bytes
    /// after a complete body are also rejected.
    pub fn decode(kind: WireKind, body: &[u8], ctx: &WireCtx) -> Result<WireMsg, WireError> {
        let mut r = Reader { bytes: body, at: 0 };
        let msg = match kind {
            WireKind::Hello => {
                let node = r.u16()?;
                let count = r.u16()? as usize;
                let mut procs = Vec::with_capacity(count.min(1 << 12));
                for _ in 0..count {
                    procs.push(ProcId::new(r.u16()?));
                }
                WireMsg::Hello { node, procs }
            }
            WireKind::Shutdown => WireMsg::Shutdown,
            WireKind::OpRequest => {
                let proc = ProcId::new(r.u16()?);
                let tag = r.u8()?;
                let op = match tag {
                    0 => EngineOp::Read {
                        addr: r.u64()?,
                        len: r.u32()?,
                    },
                    1 => {
                        let addr = r.u64()?;
                        let len = r.u32()? as usize;
                        EngineOp::Write {
                            addr,
                            data: r.take(len)?.to_vec(),
                        }
                    }
                    2 => EngineOp::Acquire(LockId::new(r.u32()?)),
                    3 => EngineOp::Release(LockId::new(r.u32()?)),
                    4 => EngineOp::Barrier(BarrierId::new(r.u32()?)),
                    other => return Err(malformed(format!("unknown op tag {other}"))),
                };
                WireMsg::OpRequest { proc, op }
            }
            WireKind::OpReply => {
                let ok = match r.u8()? {
                    0 => true,
                    1 => false,
                    other => return Err(malformed(format!("unknown reply status {other}"))),
                };
                let len = r.u32()? as usize;
                let payload = r.take(len)?.to_vec();
                let result = if ok {
                    Ok(payload)
                } else {
                    Err(String::from_utf8(payload)
                        .map_err(|_| malformed("error text is not UTF-8"))?)
                };
                WireMsg::OpReply { result }
            }
            WireKind::LockRequest | WireKind::LockForward => {
                let lock = LockId::new(r.u32()?);
                let acquirer = ProcId::new(r.u16()?);
                r.u16()?; // reserved
                let clock = r.clock(ctx)?;
                if kind == WireKind::LockRequest {
                    WireMsg::LockRequest {
                        lock,
                        acquirer,
                        clock,
                    }
                } else {
                    WireMsg::LockForward {
                        lock,
                        acquirer,
                        clock,
                    }
                }
            }
            WireKind::LockGrant => {
                let lock = LockId::new(r.u32()?);
                r.u32()?; // reserved
                let clock = r.clock(ctx)?;
                let notices = NoticeBatch::read(&mut r)?;
                let diffs = read_diff_list(&mut r)?;
                WireMsg::LockGrant {
                    lock,
                    clock,
                    notices,
                    diffs,
                }
            }
            WireKind::BarrierArrival => {
                let barrier = BarrierId::new(r.u32()?);
                let proc = ProcId::new(r.u16()?);
                r.u16()?; // reserved
                let clock = r.clock(ctx)?;
                let notices = NoticeBatch::read(&mut r)?;
                WireMsg::BarrierArrival {
                    barrier,
                    proc,
                    clock,
                    notices,
                }
            }
            WireKind::BarrierExit => {
                let barrier = BarrierId::new(r.u32()?);
                r.u32()?; // reserved
                let clock = r.clock(ctx)?;
                let notices = NoticeBatch::read(&mut r)?;
                WireMsg::BarrierExit {
                    barrier,
                    clock,
                    notices,
                }
            }
            WireKind::MissRequest => {
                let page = PageId::new(r.u32()?);
                let want_base = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(malformed(format!("bad want_base {other}"))),
                };
                let count = r.u16()? as usize;
                let mut wanted = Vec::with_capacity(count.min(1 << 12));
                for _ in 0..count {
                    let iv = IntervalId::read_wire(r.rest()).ok_or(WireError::Truncated(r.at))?;
                    r.skip(IntervalId::WIRE_BYTES);
                    wanted.push((iv, PageId::new(r.u32()?)));
                }
                WireMsg::MissRequest {
                    page,
                    wanted,
                    want_base,
                }
            }
            WireKind::MissReply => {
                let page = PageId::new(r.u32()?);
                let base = match r.u8()? {
                    0 => None,
                    1 => {
                        let len = r.u32()? as usize;
                        Some(r.take(len)?.to_vec())
                    }
                    other => return Err(malformed(format!("bad base flag {other}"))),
                };
                let diffs = read_diff_list(&mut r)?;
                WireMsg::MissReply { page, base, diffs }
            }
            WireKind::Notices => {
                let clock = r.clock(ctx)?;
                let notices = NoticeBatch::read(&mut r)?;
                WireMsg::Notices { clock, notices }
            }
            WireKind::RejoinRequest => {
                let node = r.u16()?;
                let proc = ProcId::new(r.u16()?);
                let len = r.u32()? as usize;
                let checkpoint = r.take(len)?.to_vec();
                WireMsg::RejoinRequest {
                    node,
                    proc,
                    checkpoint,
                }
            }
            WireKind::RejoinReply => {
                let result = match r.u8()? {
                    0 => Ok(r.u64()?),
                    1 => {
                        let len = r.u32()? as usize;
                        let payload = r.take(len)?.to_vec();
                        Err(String::from_utf8(payload)
                            .map_err(|_| malformed("error text is not UTF-8"))?)
                    }
                    other => return Err(malformed(format!("unknown rejoin status {other}"))),
                };
                WireMsg::RejoinReply { result }
            }
        };
        if r.at != body.len() {
            return Err(malformed(format!(
                "{} trailing bytes after {kind}",
                body.len() - r.at
            )));
        }
        Ok(msg)
    }

    /// Encodes the message as a complete frame.
    pub fn encode_frame(&self, src: NodeId, dst: NodeId, seq: u64) -> Frame {
        Frame {
            kind: self.kind(),
            src,
            dst,
            seq,
            body: self.encode_body(),
        }
    }
}

/// A bounds-checked cursor over a message body.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let slice = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or(WireError::Truncated(self.at))?;
        self.at += n;
        Ok(slice)
    }

    fn rest(&self) -> &'a [u8] {
        &self.bytes[self.at..]
    }

    fn skip(&mut self, n: usize) {
        self.at += n;
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn clock(&mut self, ctx: &WireCtx) -> Result<VectorClock, WireError> {
        let vc = VectorClock::read_wire(self.rest(), ctx.n_procs)
            .ok_or(WireError::Truncated(self.at))?;
        self.skip(4 * ctx.n_procs);
        Ok(vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> WireCtx {
        WireCtx { n_procs: 3 }
    }

    fn clock() -> VectorClock {
        let mut vc = VectorClock::new(3);
        vc.set(ProcId::new(0), 4);
        vc.set(ProcId::new(2), 9);
        vc
    }

    fn round_trip(msg: WireMsg) {
        let frame = msg.encode_frame(0, 1, 42);
        let bytes = frame.encode();
        assert_eq!(bytes.len(), frame.wire_len());
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, frame);
        let decoded = WireMsg::decode(back.kind, &back.body, &ctx()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn every_message_kind_round_trips() {
        let notices = NoticeBatch {
            intervals: vec![NoticeInterval {
                id: IntervalId::new(ProcId::new(1), 7),
                stamp_entry: 7,
                pages: vec![PageId::new(0), PageId::new(5)],
            }],
        };
        let diff = {
            use lrc_pagemem::{PageBuf, PageSize};
            let twin = PageBuf::zeroed(PageSize::new(64).unwrap());
            let mut cur = twin.clone();
            cur.write(8, &[3; 5]);
            Diff::between(&twin, &cur)
        };
        let wire_diff = WireDiff {
            page: PageId::new(5),
            stamp: 7,
            diff,
        };
        for msg in [
            WireMsg::Hello {
                node: 1,
                procs: vec![ProcId::new(2), ProcId::new(3)],
            },
            WireMsg::Shutdown,
            WireMsg::OpRequest {
                proc: ProcId::new(1),
                op: EngineOp::Write {
                    addr: 640,
                    data: vec![1, 2, 3],
                },
            },
            WireMsg::OpReply {
                result: Ok(vec![9; 8]),
            },
            WireMsg::OpReply {
                result: Err("lk0 is held by p1".into()),
            },
            WireMsg::LockRequest {
                lock: LockId::new(3),
                acquirer: ProcId::new(1),
                clock: clock(),
            },
            WireMsg::LockForward {
                lock: LockId::new(3),
                acquirer: ProcId::new(1),
                clock: clock(),
            },
            WireMsg::LockGrant {
                lock: LockId::new(3),
                clock: clock(),
                notices: notices.clone(),
                diffs: vec![wire_diff.clone()],
            },
            WireMsg::BarrierArrival {
                barrier: BarrierId::new(0),
                proc: ProcId::new(2),
                clock: clock(),
                notices: notices.clone(),
            },
            WireMsg::BarrierExit {
                barrier: BarrierId::new(0),
                clock: clock(),
                notices: notices.clone(),
            },
            WireMsg::MissRequest {
                page: PageId::new(5),
                wanted: vec![(IntervalId::new(ProcId::new(1), 7), PageId::new(5))],
                want_base: true,
            },
            WireMsg::MissReply {
                page: PageId::new(5),
                base: Some(vec![0; 64]),
                diffs: vec![wire_diff],
            },
            WireMsg::Notices {
                clock: clock(),
                notices,
            },
            WireMsg::RejoinRequest {
                node: 2,
                proc: ProcId::new(1),
                checkpoint: vec![7; 40],
            },
            WireMsg::RejoinReply { result: Ok(3) },
            WireMsg::RejoinReply {
                result: Err("incompatible checkpoint: store era changed".into()),
            },
        ] {
            round_trip(msg);
        }
    }

    #[test]
    fn frame_rejects_corruption() {
        let frame = WireMsg::Shutdown.encode_frame(0, 1, 1);
        let bytes = frame.encode();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Frame::decode(&bad).unwrap_err(), WireError::BadMagic);
        // Foreign version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            Frame::decode(&bad).unwrap_err(),
            WireError::UnsupportedVersion(99)
        ));
        // Unknown kind.
        let mut bad = bytes.clone();
        bad[6] = 200;
        assert!(matches!(
            Frame::decode(&bad).unwrap_err(),
            WireError::UnknownKind(200)
        ));
        // Truncated header.
        assert!(matches!(
            Frame::decode(&bytes[..10]).unwrap_err(),
            WireError::Truncated(_)
        ));
    }

    #[test]
    fn checksum_catches_flipped_body_bytes() {
        let frame = WireMsg::Hello {
            node: 2,
            procs: vec![ProcId::new(0)],
        }
        .encode_frame(2, 0, 0);
        let mut bytes = frame.encode();
        *bytes.last_mut().unwrap() ^= 0x40;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let msg = WireMsg::Shutdown;
        let mut body = msg.encode_body();
        body.push(0);
        assert!(matches!(
            WireMsg::decode(WireKind::Shutdown, &body, &ctx()).unwrap_err(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn header_matches_modeled_overhead() {
        assert_eq!(
            FRAME_HEADER_BYTES as u64,
            lrc_simnet::MSG_HEADER_BYTES,
            "frame header must cost exactly what the model charges"
        );
    }

    #[test]
    fn kind_tags_are_dense() {
        for (i, kind) in WireKind::ALL.iter().enumerate() {
            assert_eq!(kind.tag() as usize, i);
            assert_eq!(WireKind::from_tag(kind.tag()), Some(*kind));
        }
        assert_eq!(WireKind::from_tag(99), None);
    }

    #[test]
    fn errors_display() {
        assert!(WireError::BadChecksum.to_string().contains("checksum"));
        assert!(WireError::Truncated(7).to_string().contains('7'));
    }
}
