//! The in-process channel transport: loopback links over `std::sync::mpsc`.
//!
//! Messages are *really* serialized — every send encodes a full frame and
//! every receive decodes and checksum-verifies it — so the channel backend
//! measures exactly the bytes TCP would move, while staying deterministic
//! enough for conformance tests: one incoming queue per node, FIFO per
//! sender, no sockets, no timing.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use parking_lot::lockdep::classes;
use parking_lot::Mutex;

use crate::transport::{NetError, NodeId, Transport, WireMeter, WireStats};
use crate::wire::{Frame, WireMsg};

/// One endpoint of an in-process mesh built by [`ChannelNet::mesh`].
pub struct ChannelTransport {
    node: NodeId,
    /// Encoded-frame queues into every *other* node. The own slot is
    /// `None`: an endpoint deliberately holds no sender into its own
    /// queue, so once every other endpoint is dropped, [`recv`] reports
    /// [`NetError::Closed`] instead of blocking forever (which is what
    /// lets a client's reply demultiplexer thread exit).
    ///
    /// [`recv`]: Transport::recv
    peers: Vec<Option<Sender<Vec<u8>>>>,
    incoming: Mutex<Receiver<Vec<u8>>>,
    meter: Arc<WireMeter>,
}

/// Builder for fully connected in-process meshes.
pub struct ChannelNet;

impl ChannelNet {
    /// Creates `n_nodes` mutually connected endpoints; index `i` of the
    /// returned vector is node `i`'s transport.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    pub fn mesh(n_nodes: usize) -> Vec<ChannelTransport> {
        assert!(n_nodes > 0, "a mesh needs at least one node");
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_nodes).map(|_| channel::<Vec<u8>>()).unzip();
        rxs.into_iter()
            .enumerate()
            .map(|(i, rx)| ChannelTransport {
                node: i as NodeId,
                peers: txs
                    .iter()
                    .enumerate()
                    .map(|(j, tx)| (j != i).then(|| tx.clone()))
                    .collect(),
                incoming: Mutex::new_in(rx, classes::NET_INCOMING),
                meter: Arc::new(WireMeter::default()),
            })
            .collect()
    }
}

impl Transport for ChannelTransport {
    fn node(&self) -> NodeId {
        self.node
    }

    fn send(&self, msg: &WireMsg, dst: NodeId, seq: u64) -> Result<(), NetError> {
        let tx = self
            .peers
            .get(dst as usize)
            .and_then(Option::as_ref)
            .ok_or(NetError::UnknownPeer(dst))?;
        let bytes = crate::transport::encode_frame_checked(msg, self.node, dst, seq)?;
        let len = bytes.len();
        tx.send(bytes).map_err(|_| NetError::Closed)?;
        self.meter.count_sent(msg.kind(), len);
        Ok(())
    }

    fn recv(&self) -> Result<Frame, NetError> {
        let bytes = self.incoming.lock().recv().map_err(|_| NetError::Closed)?;
        let (frame, used) = Frame::decode(&bytes)?;
        debug_assert_eq!(used, bytes.len(), "channel delivers whole frames");
        self.meter.count_received(bytes.len());
        Ok(frame)
    }

    fn stats(&self) -> WireStats {
        self.meter.stats()
    }
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChannelTransport(node {})", self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireKind;

    #[test]
    fn mesh_delivers_in_order_with_metering() {
        let mut mesh = ChannelNet::mesh(2);
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        assert_eq!((a.node(), b.node()), (0, 1));
        for seq in 0..3 {
            a.send(&WireMsg::Shutdown, 1, seq).unwrap();
        }
        for seq in 0..3 {
            let frame = b.recv().unwrap();
            assert_eq!(frame.kind, WireKind::Shutdown);
            assert_eq!((frame.src, frame.dst, frame.seq), (0, 1, seq));
        }
        let sent = a.stats();
        let received = b.stats();
        assert_eq!(sent.msgs_sent, 3);
        assert_eq!(sent.bytes_sent, 3 * 32, "empty bodies cost the header");
        assert_eq!(received.msgs_received, 3);
        assert_eq!(received.bytes_received, sent.bytes_sent);
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let mesh = ChannelNet::mesh(1);
        assert_eq!(
            mesh[0].send(&WireMsg::Shutdown, 9, 0),
            Err(NetError::UnknownPeer(9))
        );
    }

    #[test]
    fn self_send_is_rejected_and_closed_surfaces() {
        // No endpoint holds a sender into its own queue: self-sends are
        // errors, and once every other endpoint is gone, recv reports
        // Closed instead of blocking forever.
        let mut mesh = ChannelNet::mesh(2);
        let b = mesh.pop().unwrap();
        assert_eq!(
            b.send(&WireMsg::Shutdown, 1, 0),
            Err(NetError::UnknownPeer(1))
        );
        drop(mesh); // node 0 held the only sender into b's queue
        assert_eq!(b.recv().unwrap_err(), NetError::Closed);
    }
}
