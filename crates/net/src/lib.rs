//! `lrc-net` — the wire protocol and pluggable transports that run the
//! DSM as message-passing nodes.
//!
//! The paper's protocol was designed for message-passing multicomputers,
//! but the rest of this workspace executes it as in-process method calls
//! over a *simulated* fabric. This crate is the missing layer for a real
//! deployment, in three parts:
//!
//! * **Wire codec** ([`wire`]) — a versioned binary format for every
//!   protocol message: lock request/forward/grant, barrier arrival/exit,
//!   page-miss request/reply, write-notice batches (interval records),
//!   diffs, and the node runtime's RPC envelope. Payload encodings match
//!   `lrc-simnet`'s modeled sizes wherever the model is implementable
//!   byte for byte (clocks, notice records, diffs, the 32-byte header),
//!   turning the simulator's byte accounting into a measurement.
//! * **Transports** ([`Transport`]) — the in-process [`ChannelTransport`]
//!   (deterministic, loopback, used by the `net_vs_sim` conformance
//!   suite) and the [`TcpTransport`] (length-prefixed framing, connection
//!   management, per-peer send/recv threads). Both meter the bytes they
//!   actually move ([`WireStats`]).
//! * The **node runtime** lives in `lrc-dsm` (`lrc_dsm::node`): it hosts
//!   processors on nodes and services remote requests by decoding frames
//!   into [`lrc_core::EngineOp`]s and dispatching them into the engines.
//!
//! # Example
//!
//! ```
//! use lrc_net::{ChannelNet, Transport, WireCtx, WireMsg};
//! use lrc_vclock::ProcId;
//!
//! let mut mesh = ChannelNet::mesh(2);
//! let b = mesh.pop().unwrap();
//! let a = mesh.pop().unwrap();
//!
//! a.send(
//!     &WireMsg::Hello { node: 0, procs: vec![ProcId::new(0)] },
//!     1,
//!     0,
//! )?;
//! let frame = b.recv()?;
//! let msg = WireMsg::decode(frame.kind, &frame.body, &WireCtx { n_procs: 2 })?;
//! assert!(matches!(msg, WireMsg::Hello { node: 0, .. }));
//! assert_eq!(a.stats().bytes_sent, frame.wire_len() as u64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
// The default build carries no unsafe code at all; the `reactor` feature
// adds exactly one `#[allow]`ed module (the poll(2) FFI in `reactor::sys`),
// so even then new unsafe cannot appear elsewhere in the crate.
#![cfg_attr(not(feature = "reactor"), forbid(unsafe_code))]
#![cfg_attr(feature = "reactor", deny(unsafe_code))]
#![warn(missing_docs)]

mod channel;
mod fault;
mod heal;
#[cfg(feature = "reactor")]
mod reactor;
mod tcp;
mod transport;
pub mod wire;

pub use channel::{ChannelNet, ChannelTransport};
pub use fault::{FaultPlan, FaultRule, FaultyTransport};
pub use heal::{Connector, SelfHealing};
#[cfg(feature = "reactor")]
pub use reactor::{BatchStats, ReactorHub, ReactorTransport};
pub use tcp::{TcpHub, TcpTransport};
pub use transport::{Backoff, NetError, NodeId, Transport, WireMeter, WireStats};
pub use wire::{
    Frame, NoticeBatch, NoticeInterval, WireCtx, WireDiff, WireError, WireKind, WireMsg,
    FRAME_HEADER_BYTES, MAX_BODY_BYTES, WIRE_MAGIC, WIRE_VERSION,
};
