//! Property-based coverage of the wire codec: every message type
//! round-trips exactly through encode → frame → decode, truncated and
//! corrupted frames are rejected, foreign versions are refused, and the
//! encodings designed to match `lrc-simnet`'s modeled sizes really do.

use lrc_core::EngineOp;
use lrc_net::{Frame, NoticeBatch, NoticeInterval, WireCtx, WireDiff, WireError, WireMsg};
use lrc_pagemem::{Diff, PageBuf, PageId, PageSize};
use lrc_simnet::{notice_batch_bytes, vc_bytes, BARRIER_ID_BYTES, LOCK_ID_BYTES, MSG_HEADER_BYTES};
use lrc_sync::{BarrierId, LockId};
use lrc_vclock::{IntervalId, ProcId, VectorClock};
use proptest::prelude::*;

const N: usize = 4;

fn clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u32..1000, N).prop_map(|v| {
        let mut vc = VectorClock::new(N);
        for (i, s) in v.into_iter().enumerate() {
            vc.set(ProcId::new(i as u16), s);
        }
        vc
    })
}

fn interval() -> impl Strategy<Value = IntervalId> {
    (0u16..N as u16, 1u32..10_000).prop_map(|(p, s)| IntervalId::new(ProcId::new(p), s))
}

fn notices() -> impl Strategy<Value = NoticeBatch> {
    prop::collection::vec((interval(), prop::collection::vec(0u32..64, 1..5)), 0..4).prop_map(
        |ivs| NoticeBatch {
            intervals: ivs
                .into_iter()
                .map(|(id, pages)| NoticeInterval {
                    id,
                    stamp_entry: id.seq(),
                    pages: pages.into_iter().map(PageId::new).collect(),
                })
                .collect(),
        },
    )
}

/// A random diff: write random disjoint runs into a 256-byte page.
fn diff() -> impl Strategy<Value = Diff> {
    prop::collection::vec((0u8..8, 1usize..9, 1u8..=255), 0..4).prop_map(|chunks| {
        let size = PageSize::new(256).unwrap();
        let twin = PageBuf::zeroed(size);
        let mut cur = twin.clone();
        for (slot, len, byte) in chunks {
            // Slots of 32 bytes keep runs disjoint regardless of order.
            cur.write(slot as usize * 32, &vec![byte; len]);
        }
        Diff::between(&twin, &cur)
    })
}

fn wire_diff() -> impl Strategy<Value = WireDiff> {
    (0u32..64, 1u32..100, diff()).prop_map(|(page, stamp, diff)| WireDiff {
        page: PageId::new(page),
        stamp,
        diff,
    })
}

fn engine_op() -> impl Strategy<Value = EngineOp> {
    prop_oneof![
        (0u64..4096, 1u32..64).prop_map(|(addr, len)| EngineOp::Read { addr, len }),
        (0u64..4096, prop::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(addr, data)| EngineOp::Write { addr, data }),
        (0u32..8).prop_map(|l| EngineOp::Acquire(LockId::new(l))),
        (0u32..8).prop_map(|l| EngineOp::Release(LockId::new(l))),
        (0u32..8).prop_map(|b| EngineOp::Barrier(BarrierId::new(b))),
    ]
}

fn msg() -> impl Strategy<Value = WireMsg> {
    prop_oneof![
        (0u16..4, prop::collection::vec(0u16..N as u16, 0..3)).prop_map(|(node, procs)| {
            WireMsg::Hello {
                node,
                procs: procs.into_iter().map(ProcId::new).collect(),
            }
        }),
        Just(WireMsg::Shutdown),
        (0u16..N as u16, engine_op()).prop_map(|(p, op)| WireMsg::OpRequest {
            proc: ProcId::new(p),
            op,
        }),
        prop::collection::vec(any::<u8>(), 0..64)
            .prop_map(|bytes| WireMsg::OpReply { result: Ok(bytes) }),
        (0u32..16).prop_map(|e| WireMsg::OpReply {
            result: Err(format!("error {e}")),
        }),
        (0u32..8, 0u16..N as u16, clock()).prop_map(|(l, p, clock)| WireMsg::LockRequest {
            lock: LockId::new(l),
            acquirer: ProcId::new(p),
            clock,
        }),
        (0u32..8, 0u16..N as u16, clock()).prop_map(|(l, p, clock)| WireMsg::LockForward {
            lock: LockId::new(l),
            acquirer: ProcId::new(p),
            clock,
        }),
        (
            0u32..8,
            clock(),
            notices(),
            prop::collection::vec(wire_diff(), 0..3)
        )
            .prop_map(|(l, clock, notices, diffs)| WireMsg::LockGrant {
                lock: LockId::new(l),
                clock,
                notices,
                diffs,
            }),
        (0u32..4, 0u16..N as u16, clock(), notices()).prop_map(|(b, p, clock, notices)| {
            WireMsg::BarrierArrival {
                barrier: BarrierId::new(b),
                proc: ProcId::new(p),
                clock,
                notices,
            }
        }),
        (0u32..4, clock(), notices()).prop_map(|(b, clock, notices)| WireMsg::BarrierExit {
            barrier: BarrierId::new(b),
            clock,
            notices,
        }),
        (
            0u32..64,
            prop::collection::vec((interval(), 0u32..64), 0..4),
            any::<bool>()
        )
            .prop_map(|(page, wanted, want_base)| WireMsg::MissRequest {
                page: PageId::new(page),
                wanted: wanted
                    .into_iter()
                    .map(|(iv, g)| (iv, PageId::new(g)))
                    .collect(),
                want_base,
            }),
        (
            0u32..64,
            prop_oneof![
                Just(None),
                prop::collection::vec(any::<u8>(), 64..65).prop_map(Some)
            ],
            prop::collection::vec(wire_diff(), 0..3)
        )
            .prop_map(|(page, base, diffs)| WireMsg::MissReply {
                page: PageId::new(page),
                base,
                diffs,
            }),
        (clock(), notices()).prop_map(|(clock, notices)| WireMsg::Notices { clock, notices }),
    ]
}

fn ctx() -> WireCtx {
    WireCtx { n_procs: N }
}

proptest! {
    /// Encode → frame bytes → decode is the identity for every message
    /// type, and the frame length bookkeeping agrees with the bytes.
    #[test]
    fn every_message_round_trips(msg in msg(), src in 0u16..4, dst in 0u16..4, seq in 0u64..1000) {
        let frame = msg.encode_frame(src, dst, seq);
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.wire_len());
        let (back, used) = Frame::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!((back.src, back.dst, back.seq), (src, dst, seq));
        let decoded = WireMsg::decode(back.kind, &back.body, &ctx()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Any strict prefix of a frame fails to decode — truncation never
    /// passes silently.
    #[test]
    fn truncated_frames_are_rejected(msg in msg(), cut in 0usize..10_000) {
        let bytes = msg.encode_frame(0, 1, 7).encode();
        let cut = cut % bytes.len();
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
    }

    /// Flipping any body byte trips the checksum (frames with empty
    /// bodies have nothing to flip and are skipped).
    #[test]
    fn corrupted_bodies_are_rejected(msg in msg(), pick in any::<u64>()) {
        let frame = msg.encode_frame(0, 1, 7);
        if !frame.body.is_empty() {
            let mut bytes = frame.encode();
            let at = 32 + (pick as usize % frame.body.len());
            bytes[at] ^= 0x5a;
            prop_assert_eq!(Frame::decode(&bytes).unwrap_err(), WireError::BadChecksum);
        }
    }

    /// Every version except the current one is refused with
    /// `UnsupportedVersion` — the cross-version rejection gate.
    #[test]
    fn foreign_versions_are_rejected(msg in msg(), version in 0u16..100) {
        // The stub proptest has no prop_assume; dodge the one valid value.
        let version = if version == lrc_net::WIRE_VERSION { 0 } else { version };
        let mut bytes = msg.encode_frame(0, 1, 7).encode();
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::UnsupportedVersion(version)
        );
    }

    /// Garbage that does not start with the magic never decodes.
    #[test]
    fn garbage_is_rejected(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        if bytes.get(..4) != Some(&lrc_net::WIRE_MAGIC[..]) {
            prop_assert!(Frame::decode(&bytes).is_err());
        }
    }

    /// A valid body re-framed under a *wrong length prefix* is rejected
    /// cleanly — no panic, no partial decode. Four mismatch shapes: the
    /// prefix overruns the buffer (truncation), under-spans the real body
    /// (checksum refuses the prefix slice), spans appended junk (checksum
    /// refuses the grown body), or claims an absurd size (cap refuses
    /// before allocating).
    #[test]
    fn wrong_length_prefix_is_cleanly_rejected(
        msg in msg(),
        delta in 1usize..48,
        junk in prop::collection::vec(any::<u8>(), 1..48),
    ) {
        let frame = msg.encode_frame(0, 1, 9);
        let body_len = frame.body.len();
        let good = frame.encode();
        prop_assert!(Frame::decode(&good).is_ok(), "baseline frame decodes");

        // Overrun: the prefix promises more bytes than the buffer holds.
        let mut overrun = good.clone();
        overrun[20..24].copy_from_slice(&((body_len + delta) as u32).to_le_bytes());
        prop_assert!(matches!(
            Frame::decode(&overrun),
            Err(WireError::Truncated(_))
        ));

        // Undershoot: the prefix claims a strict prefix of the real body;
        // the checksum (stored over the full body) must refuse it.
        if body_len > 0 {
            let declared = (delta - 1) % body_len; // 0..body_len-1
            let mut short = good.clone();
            short[20..24].copy_from_slice(&(declared as u32).to_le_bytes());
            prop_assert_eq!(
                Frame::decode(&short).unwrap_err(),
                WireError::BadChecksum,
                "an under-spanning prefix must not yield a partial decode"
            );
        }

        // Grown: junk appended and the prefix re-framed to cover it.
        let mut grown = good.clone();
        grown.extend_from_slice(&junk);
        grown[20..24].copy_from_slice(&((body_len + junk.len()) as u32).to_le_bytes());
        prop_assert_eq!(Frame::decode(&grown).unwrap_err(), WireError::BadChecksum);

        // Absurd: over the body cap — refused before any allocation.
        let mut absurd = good;
        absurd[20..24]
            .copy_from_slice(&((lrc_net::MAX_BODY_BYTES + 1) as u32).to_le_bytes());
        prop_assert!(matches!(
            Frame::decode(&absurd),
            Err(WireError::Malformed(_))
        ));
    }

    /// The encodings designed to be measurements of the simulation model
    /// match it exactly: clocks cost `vc_bytes`, notice records cost
    /// `notice_batch_bytes`, diffs cost `Diff::encoded_size`, and the
    /// frame header costs `MSG_HEADER_BYTES`. Explicit counts are the
    /// only overhead, and they are exactly 2 bytes per list.
    #[test]
    fn payload_sizes_match_the_model(clock in clock(), notices in notices(), d in wire_diff()) {
        prop_assert_eq!(clock.wire_len() as u64, vc_bytes(N));

        let batch_msg = WireMsg::Notices { clock: clock.clone(), notices: notices.clone() };
        let record_bytes = notice_batch_bytes(
            notices.intervals.len(),
            notices.intervals.iter().map(|iv| iv.pages.len()).sum(),
        );
        prop_assert_eq!(notices.record_bytes(), record_bytes);
        prop_assert_eq!(
            batch_msg.encode_body().len() as u64,
            vc_bytes(N) + 2 + record_bytes,
            "clock + interval count + records"
        );

        let mut diff_bytes = Vec::new();
        d.diff.write_wire(d.page.raw(), d.stamp, &mut diff_bytes);
        prop_assert_eq!(diff_bytes.len(), d.diff.encoded_size());

        let lock_request = WireMsg::LockRequest {
            lock: LockId::new(1),
            acquirer: ProcId::new(0),
            clock: clock.clone(),
        };
        prop_assert_eq!(
            lock_request.encode_body().len() as u64,
            LOCK_ID_BYTES + vc_bytes(N),
            "a lock hop costs exactly the modeled payload"
        );

        let arrival = WireMsg::BarrierArrival {
            barrier: BarrierId::new(0),
            proc: ProcId::new(1),
            clock,
            notices,
        };
        prop_assert_eq!(
            arrival.encode_body().len() as u64,
            BARRIER_ID_BYTES + vc_bytes(N) + 2 + record_bytes
        );

        let frame = WireMsg::Shutdown.encode_frame(0, 1, 0);
        prop_assert_eq!(frame.encode().len() as u64, MSG_HEADER_BYTES);
    }
}
