//! Behavioral tests for the LRC engine: the protocol properties the paper
//! states, asserted against real message traffic and real page contents.

use lrc_core::{LrcConfig, LrcEngine, Policy};
use lrc_simnet::{MsgKind, OpClass, MSG_HEADER_BYTES};
use lrc_sync::{BarrierId, LockId};
use lrc_vclock::ProcId;

fn p(i: u16) -> ProcId {
    ProcId::new(i)
}

fn l(i: u32) -> LockId {
    LockId::new(i)
}

fn b(i: u32) -> BarrierId {
    BarrierId::new(i)
}

/// 4 procs, 16 pages of 512 bytes.
fn engine(policy: Policy) -> LrcEngine {
    LrcEngine::new(LrcConfig::new(4, 16 * 512).page_size(512).policy(policy)).unwrap()
}

#[test]
fn releases_are_purely_local() {
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 0, 42);
    let before = dsm.net().snapshot();
    dsm.release(p(1), l(0)).unwrap();
    let delta = dsm.net().stats().since(&before);
    assert_eq!(
        delta.total().msgs,
        0,
        "LRC releases send no messages (§4.2)"
    );
}

#[test]
fn acquire_costs_three_messages_steady_state() {
    // home(lock 0) = p0; rotate p1 -> p2 -> p3: requester, home, grantor
    // all distinct => 3 messages per lock transfer (Table 1).
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 0, 1);
    dsm.release(p(1), l(0)).unwrap();

    for (round, &requester) in [p(2), p(3), p(2), p(3)].iter().enumerate() {
        let before = dsm.net().snapshot();
        dsm.acquire(requester, l(0)).unwrap();
        let delta = dsm.net().stats().since(&before);
        assert_eq!(delta.class(OpClass::Lock).msgs, 3, "round {round}");
        dsm.write_u64(requester, 0, round as u64);
        dsm.release(requester, l(0)).unwrap();
    }
}

#[test]
fn local_reacquire_is_free() {
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(2), l(0)).unwrap();
    dsm.write_u64(p(2), 0, 5);
    dsm.release(p(2), l(0)).unwrap();
    let before = dsm.net().snapshot();
    dsm.acquire(p(2), l(0)).unwrap();
    dsm.release(p(2), l(0)).unwrap();
    assert_eq!(dsm.net().stats().since(&before).total().msgs, 0);
}

#[test]
fn notices_piggyback_and_invalidate() {
    // Lock 0's home is p0; use p1/p2/p3 so every hop is a real message.
    let dsm = engine(Policy::Invalidate);
    // p1 warms its copy of page 0.
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 0, 1);
    dsm.release(p(1), l(0)).unwrap();
    // p2 modifies the page under the lock.
    dsm.acquire(p(2), l(0)).unwrap();
    dsm.write_u64(p(2), 8, 2);
    dsm.release(p(2), l(0)).unwrap();
    assert!(dsm.page_valid(p(1), dsm.space().page_of(0)));
    // p1 re-acquires: write notice for p2's interval arrives piggybacked,
    // invalidating p1's copy — with no extra messages beyond the transfer.
    let before = dsm.net().snapshot();
    dsm.acquire(p(1), l(0)).unwrap();
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.total().msgs, 3);
    assert!(!dsm.page_valid(p(1), dsm.space().page_of(0)));
    assert!(dsm.counters().invalidations >= 1);
    dsm.release(p(1), l(0)).unwrap();
}

#[test]
fn migratory_data_rides_the_lock_chain() {
    // Figure 4 of the paper: each acquire moves lock + data in one grant
    // (LU) — the acquirer then reads/writes with zero additional traffic.
    let dsm = engine(Policy::Update);
    dsm.acquire(p(0), l(0)).unwrap();
    dsm.write_u64(p(0), 0, 100);
    dsm.release(p(0), l(0)).unwrap();

    for round in 1..4u16 {
        let proc = p(round);
        dsm.acquire(proc, l(0)).unwrap();
        let before = dsm.net().snapshot();
        let v = dsm.read_u64(proc, 0);
        // First access by this proc is a *cold* miss (base copy), later
        // rounds piggyback everything on the grant.
        let miss_msgs = dsm.net().stats().since(&before).class(OpClass::Miss).msgs;
        assert!(miss_msgs <= 2, "round {round}: at most one cold fetch");
        assert_eq!(v, 100 + (round as u64 - 1));
        dsm.write_u64(proc, 0, 100 + round as u64);
        dsm.release(proc, l(0)).unwrap();
    }

    // Second sweep: everyone has a resident copy; LU piggybacks all diffs
    // on the grant, so a full acquire-read-write-release round costs
    // exactly the lock-transfer messages and nothing else (2 when the
    // requester is the lock's home p0, 3 otherwise).
    for round in 0..4u16 {
        let proc = p(round);
        let before = dsm.net().snapshot();
        dsm.acquire(proc, l(0)).unwrap();
        let v = dsm.read_u64(proc, 0);
        assert_eq!(v, 103 + round as u64);
        dsm.write_u64(proc, 0, 104 + round as u64);
        dsm.release(proc, l(0)).unwrap();
        let delta = dsm.net().stats().since(&before);
        // Round 0: requester p0 is the home (forward + grant). Round 1:
        // grantor p0 is the home (request + grant). Later rounds: all
        // three processors distinct.
        let expected = if round <= 1 { 2 } else { 3 };
        assert_eq!(
            delta.total().msgs,
            expected,
            "round {round}: lock transfer only"
        );
    }
}

#[test]
fn cold_miss_fetches_base_from_home() {
    let dsm = engine(Policy::Invalidate);
    // Page 5's home is p1 (5 % 4). p0 reads it cold: 2 messages, page-sized
    // reply.
    let page_bytes = 512;
    let before = dsm.net().snapshot();
    let v = dsm.read_u64(p(0), 5 * page_bytes);
    assert_eq!(v, 0, "initial contents are zero");
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.class(OpClass::Miss).msgs, 2);
    assert!(delta.class(OpClass::Miss).bytes >= page_bytes);
    assert_eq!(dsm.counters().cold_misses, 1);

    // The home itself reads cold for free.
    let before = dsm.net().snapshot();
    dsm.read_u64(p(1), 5 * page_bytes);
    assert_eq!(dsm.net().stats().since(&before).total().msgs, 0);
}

#[test]
fn warm_miss_moves_diffs_not_pages() {
    // §4.3.3: a processor holding an invalidated copy fetches only diffs.
    let dsm = engine(Policy::Invalidate);
    // p0 and p1 both warm page 0.
    dsm.acquire(p(0), l(0)).unwrap();
    dsm.write_u64(p(0), 0, 1);
    dsm.release(p(0), l(0)).unwrap();
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 8, 2);
    dsm.release(p(1), l(0)).unwrap();
    // p0 re-acquires; its copy is invalidated; the subsequent read is a
    // warm miss served by one modifier with one small diff.
    dsm.acquire(p(0), l(0)).unwrap();
    let before = dsm.net().snapshot();
    assert_eq!(dsm.read_u64(p(0), 8), 2);
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.class(OpClass::Miss).msgs, 2, "2m with m = 1");
    let bytes = delta.class(OpClass::Miss).bytes;
    assert!(
        bytes < 2 * MSG_HEADER_BYTES + 100,
        "diff-only reply must be far below page size, got {bytes}"
    );
    assert_eq!(dsm.counters().warm_misses, 1);
    dsm.release(p(0), l(0)).unwrap();
}

#[test]
fn full_page_miss_ablation_inflates_data() {
    let run = |full_page: bool| -> u64 {
        let mut cfg = LrcConfig::new(4, 16 * 512).page_size(512);
        if full_page {
            cfg = cfg.full_page_misses();
        }
        let dsm = LrcEngine::new(cfg).unwrap();
        dsm.acquire(p(0), l(0)).unwrap();
        dsm.write_u64(p(0), 0, 1);
        dsm.release(p(0), l(0)).unwrap();
        dsm.acquire(p(1), l(0)).unwrap();
        dsm.write_u64(p(1), 8, 2);
        dsm.release(p(1), l(0)).unwrap();
        dsm.acquire(p(0), l(0)).unwrap();
        let before = dsm.net().snapshot();
        dsm.read_u64(p(0), 8);
        dsm.net().stats().since(&before).class(OpClass::Miss).bytes
    };
    let diff_bytes = run(false);
    let page_bytes = run(true);
    assert!(
        page_bytes > diff_bytes,
        "ablated warm miss ({page_bytes}B) must outweigh diffs ({diff_bytes}B)"
    );
    assert!(page_bytes >= 512);
}

#[test]
fn no_piggyback_ablation_adds_messages() {
    let run = |piggyback: bool| -> u64 {
        let mut cfg = LrcConfig::new(4, 16 * 512).page_size(512);
        if !piggyback {
            cfg = cfg.no_piggyback();
        }
        let dsm = LrcEngine::new(cfg).unwrap();
        dsm.acquire(p(1), l(0)).unwrap();
        dsm.write_u64(p(1), 0, 1);
        dsm.release(p(1), l(0)).unwrap();
        let before = dsm.net().snapshot();
        dsm.acquire(p(2), l(0)).unwrap();
        dsm.release(p(2), l(0)).unwrap();
        dsm.net().stats().since(&before).class(OpClass::Lock).msgs
    };
    assert_eq!(run(true), 3);
    assert_eq!(run(false), 4, "separate notice message per acquire");
}

#[test]
fn false_sharing_needs_no_messages_between_writers() {
    // Two processors write different words of the same page concurrently:
    // multiple-writer protocols exchange nothing until synchronization.
    let dsm = engine(Policy::Invalidate);
    // Warm both copies first (cold fetches).
    dsm.read_u64(p(0), 0);
    dsm.read_u64(p(1), 0);
    let before = dsm.net().snapshot();
    for i in 0..10 {
        dsm.write_u64(p(0), 0, i);
        dsm.write_u64(p(1), 256, 100 + i);
    }
    assert_eq!(
        dsm.net().stats().since(&before).total().msgs,
        0,
        "no ping-pong on falsely shared pages"
    );
}

#[test]
fn false_sharing_merges_at_barrier() {
    let dsm = engine(Policy::Invalidate);
    dsm.read_u64(p(0), 0);
    dsm.read_u64(p(1), 0);
    dsm.write_u64(p(0), 0, 7);
    dsm.write_u64(p(1), 8, 9);
    for i in 0..4 {
        dsm.barrier(p(i), b(0)).unwrap();
    }
    // After the barrier both writers' modifications are visible everywhere.
    assert_eq!(dsm.read_u64(p(2), 0), 7);
    assert_eq!(dsm.read_u64(p(2), 8), 9);
    assert_eq!(
        dsm.read_u64(p(0), 8),
        9,
        "writer sees the other writer's word"
    );
    assert_eq!(dsm.read_u64(p(1), 0), 7);
    assert_eq!(dsm.read_u64(p(0), 0), 7, "own write survives the merge");
}

#[test]
fn barrier_costs_two_n_minus_one_messages() {
    let dsm = engine(Policy::Invalidate);
    dsm.write_u64(p(2), 0, 3); // some dirty state to notice
    let before = dsm.net().snapshot();
    for i in 0..4 {
        dsm.barrier(p(i), b(0)).unwrap();
    }
    let delta = dsm.net().stats().since(&before);
    assert_eq!(
        delta.class(OpClass::Barrier).msgs,
        2 * (4 - 1),
        "2(n-1), LI row of Table 1"
    );
    assert_eq!(delta.kind(MsgKind::BarrierArrival).msgs, 3);
    assert_eq!(delta.kind(MsgKind::BarrierExit).msgs, 3);
    assert_eq!(dsm.counters().barrier_episodes, 1);
}

#[test]
fn update_policy_pulls_diffs_at_barrier() {
    let dsm = engine(Policy::Update);
    // p1 and p2 cache page 0 (cold fetches).
    dsm.read_u64(p(1), 0);
    dsm.read_u64(p(2), 0);
    // p0 writes it.
    dsm.read_u64(p(0), 0);
    dsm.write_u64(p(0), 16, 5);
    let before = dsm.net().snapshot();
    for i in 0..4 {
        dsm.barrier(p(i), b(0)).unwrap();
    }
    let delta = dsm.net().stats().since(&before);
    // 2(n-1) barrier messages + 2u with u = 2 cacher-modifier pairs.
    assert_eq!(delta.class(OpClass::Barrier).msgs, 6 + 4);
    assert_eq!(delta.kind(MsgKind::BarrierDiffRequest).msgs, 2);
    // Caches stay valid: reads after the barrier are free.
    let before = dsm.net().snapshot();
    assert_eq!(dsm.read_u64(p(1), 16), 5);
    assert_eq!(dsm.read_u64(p(2), 16), 5);
    assert_eq!(dsm.net().stats().since(&before).total().msgs, 0);
}

#[test]
fn invalidate_policy_pays_at_miss_instead() {
    let dsm = engine(Policy::Invalidate);
    dsm.read_u64(p(1), 0);
    dsm.read_u64(p(0), 0);
    dsm.write_u64(p(0), 16, 5);
    let before = dsm.net().snapshot();
    for i in 0..4 {
        dsm.barrier(p(i), b(0)).unwrap();
    }
    // Barrier itself: exactly 2(n-1).
    assert_eq!(
        dsm.net()
            .stats()
            .since(&before)
            .class(OpClass::Barrier)
            .msgs,
        6
    );
    assert!(!dsm.page_valid(p(1), dsm.space().page_of(0)));
    // The miss happens on next access.
    let before = dsm.net().snapshot();
    assert_eq!(dsm.read_u64(p(1), 16), 5);
    assert_eq!(
        dsm.net().stats().since(&before).class(OpClass::Miss).msgs,
        2
    );
}

#[test]
fn transitive_chain_propagates_notices() {
    // p0 writes x under l0; p1 relays via l0 -> l1; p2 must see p0's write
    // after acquiring l1 (the transitive "preceding" of §1).
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(0), l(0)).unwrap();
    dsm.write_u64(p(0), 64, 11);
    dsm.release(p(0), l(0)).unwrap();
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.release(p(1), l(0)).unwrap();
    dsm.acquire(p(1), l(1)).unwrap();
    dsm.release(p(1), l(1)).unwrap();
    dsm.acquire(p(2), l(1)).unwrap();
    assert_eq!(dsm.read_u64(p(2), 64), 11);
    dsm.release(p(2), l(1)).unwrap();
}

#[test]
fn reads_of_valid_pages_are_free() {
    let dsm = engine(Policy::Invalidate);
    dsm.read_u64(p(0), 0); // cold once
    let before = dsm.net().snapshot();
    for _ in 0..100 {
        dsm.read_u64(p(0), 0);
        dsm.write_u64(p(0), 0, 9);
    }
    assert_eq!(dsm.net().stats().since(&before).total().msgs, 0);
}

#[test]
fn overwritten_values_resolve_in_happened_before_order() {
    // p0 writes 1, p1 overwrites with 2 (same word, via the lock chain),
    // then p2 misses: it must see 2, never 1.
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(0), l(0)).unwrap();
    dsm.write_u64(p(0), 32, 1);
    dsm.release(p(0), l(0)).unwrap();
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 32, 2);
    dsm.release(p(1), l(0)).unwrap();
    dsm.acquire(p(2), l(0)).unwrap();
    assert_eq!(dsm.read_u64(p(2), 32), 2);
    dsm.release(p(2), l(0)).unwrap();
}

#[test]
fn migratory_miss_served_by_single_last_modifier() {
    // After a chain p0 -> p1 -> p2 of modifications, p3's miss is served
    // by m = 1 concurrent last modifier (2 messages), because each writer
    // accumulated its predecessors' diffs.
    let dsm = engine(Policy::Invalidate);
    for i in 0..3u16 {
        dsm.acquire(p(i), l(0)).unwrap();
        dsm.write_u64(p(i), 8 * i as u64, i as u64 + 1);
        dsm.release(p(i), l(0)).unwrap();
    }
    dsm.acquire(p(3), l(0)).unwrap();
    let before = dsm.net().snapshot();
    assert_eq!(dsm.read_u64(p(3), 0), 1);
    assert_eq!(dsm.read_u64(p(3), 8), 2);
    assert_eq!(dsm.read_u64(p(3), 16), 3);
    let delta = dsm.net().stats().since(&before);
    assert_eq!(
        delta.class(OpClass::Miss).msgs,
        2,
        "one round trip to the concurrent last modifier"
    );
    dsm.release(p(3), l(0)).unwrap();
}

#[test]
fn lock_errors_propagate() {
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(0), l(0)).unwrap();
    assert!(dsm.acquire(p(1), l(0)).is_err());
    assert!(dsm.release(p(1), l(0)).is_err());
    dsm.release(p(0), l(0)).unwrap();
}

#[test]
fn interval_store_grows_only_for_nonempty_intervals() {
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(0), l(0)).unwrap();
    dsm.release(p(0), l(0)).unwrap(); // empty critical section
    assert_eq!(dsm.store().interval_count(), 0);
    assert_eq!(dsm.counters().intervals_closed, 0);
    dsm.acquire(p(0), l(0)).unwrap();
    dsm.write_u64(p(0), 0, 1);
    dsm.release(p(0), l(0)).unwrap();
    assert_eq!(dsm.store().interval_count(), 1);
}

#[test]
fn clock_advances_only_on_real_intervals() {
    let dsm = engine(Policy::Invalidate);
    let before = dsm.clock(p(0)).get(p(0));
    dsm.acquire(p(0), l(0)).unwrap();
    dsm.release(p(0), l(0)).unwrap();
    assert_eq!(
        dsm.clock(p(0)).get(p(0)),
        before,
        "empty intervals are not numbered"
    );
    dsm.acquire(p(0), l(0)).unwrap();
    dsm.write_u64(p(0), 0, 1);
    dsm.release(p(0), l(0)).unwrap();
    assert_eq!(dsm.clock(p(0)).get(p(0)), before + 1);
}
