//! Regression tests for protocol bugs found in the engine's slow paths:
//! the cold-miss base copy leaking a supplier's *uncommitted* open-interval
//! writes, and a failed (contended) acquire mutating interval state.

use lrc_core::{LrcConfig, LrcEngine, Policy};
use lrc_sync::{LockError, LockId};
use lrc_vclock::ProcId;

fn p(i: u16) -> ProcId {
    ProcId::new(i)
}

fn l(i: u32) -> LockId {
    LockId::new(i)
}

/// 4 procs, 16 pages of 512 bytes.
fn engine(policy: Policy) -> LrcEngine {
    LrcEngine::new(LrcConfig::new(4, 16 * 512).page_size(512).policy(policy)).unwrap()
}

/// A cold miss whose base copy ships from a processor with an *open*
/// (unreleased) interval on the page must not observe that interval's
/// writes: the supplier serves its twin — the last committed contents —
/// not its live copy. Before the fix, the reader here saw 42.
#[test]
fn cold_miss_does_not_leak_unreleased_writes() {
    for policy in [Policy::Invalidate, Policy::Update] {
        let dsm = engine(policy);
        // Page 0's home is p0, so p0 both writes it and supplies the base.
        dsm.write_u64(p(0), 8, 42); // open interval: twin is the zero page
        assert_eq!(
            dsm.read_u64(p(1), 8),
            0,
            "{policy}: p1's cold fetch must see the committed (initial) \
             contents, not p0's unreleased write"
        );
        // Once p0 releases and p1 synchronizes, the write must flow.
        dsm.acquire(p(0), l(0)).unwrap();
        dsm.release(p(0), l(0)).unwrap(); // closes p0's interval
        dsm.acquire(p(1), l(0)).unwrap(); // notice arrives at p1
        assert_eq!(
            dsm.read_u64(p(1), 8),
            42,
            "{policy}: released writes must still propagate normally"
        );
        dsm.release(p(1), l(0)).unwrap();
    }
}

/// Same leak through the warm path of a *diff-supplying* target: the
/// supplier's committed diff must arrive, but the uncommitted writes of its
/// current open interval must not ride along on the base page.
#[test]
fn cold_miss_base_from_diff_supplier_excludes_open_interval() {
    let dsm = engine(Policy::Invalidate);
    // p1 commits a write to page 0 (home p0, but p1 becomes the first
    // diff target for p3's miss below).
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 0, 7);
    dsm.release(p(1), l(0)).unwrap();
    // p3 learns of p1's interval through the lock.
    dsm.acquire(p(3), l(0)).unwrap();
    // Meanwhile p1 starts a new, unreleased interval on the same page
    // (false sharing: a different word).
    dsm.write_u64(p(1), 16, 99);
    // p3's cold miss fetches base + diff from p1. The committed 7 must
    // arrive; the uncommitted 99 must not.
    assert_eq!(dsm.read_u64(p(3), 0), 7, "committed diff applies");
    assert_eq!(
        dsm.read_u64(p(3), 16),
        0,
        "open-interval write must not leak"
    );
    dsm.release(p(3), l(0)).unwrap();
}

/// A contended acquire fails with `HeldByOther` — the blocking runtime
/// retries it in a loop. The failed attempt must leave interval state
/// completely untouched: no interval close, no clock movement. Before the
/// fix, `close_interval` ran ahead of the lock-table check, so every retry
/// of a blocked acquirer with dirty pages closed an interval.
#[test]
fn failed_contended_acquire_has_no_side_effects() {
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(0), l(0)).unwrap();

    // p1 has an open interval with real modifications.
    dsm.write_u64(p(1), 512, 5);
    let clock_before = dsm.clock(p(1));
    let counters_before = dsm.counters();
    let intervals_before = dsm.store().interval_count();

    for _ in 0..3 {
        assert!(matches!(
            dsm.acquire(p(1), l(0)),
            Err(LockError::HeldByOther { .. })
        ));
    }

    assert_eq!(
        dsm.clock(p(1)),
        clock_before,
        "failed acquires must not advance the clock"
    );
    assert_eq!(dsm.store().interval_count(), intervals_before);
    let counters = dsm.counters();
    assert_eq!(
        counters.intervals_closed, counters_before.intervals_closed,
        "failed acquires must not close intervals"
    );
    assert_eq!(counters.acquires, counters_before.acquires);

    // The eventual successful acquire closes exactly one interval.
    dsm.release(p(0), l(0)).unwrap();
    dsm.acquire(p(1), l(0)).unwrap();
    assert_eq!(
        dsm.counters().intervals_closed,
        counters_before.intervals_closed + 1
    );
    dsm.release(p(1), l(0)).unwrap();
}

/// The same invariant under the *update* policy, where acquire-time side
/// effects are heavier (diff pulls for every cached page): a contended
/// acquire must change nothing — no clock movement, no interval, no
/// traffic. Before the acquire-before-`close_interval` fix, every retry
/// with dirty pages closed an interval here too.
#[test]
fn failed_contended_acquire_is_side_effect_free_under_update_policy() {
    let dsm = engine(Policy::Update);
    dsm.acquire(p(0), l(0)).unwrap();

    dsm.write_u64(p(1), 512, 5); // p1 has an open interval
    let clock_before = dsm.clock(p(1));
    let counters_before = dsm.counters();
    let intervals_before = dsm.store().interval_count();
    let net_before = dsm.net().stats();

    for _ in 0..3 {
        assert!(matches!(
            dsm.acquire(p(1), l(0)),
            Err(LockError::HeldByOther { .. })
        ));
    }

    assert_eq!(dsm.clock(p(1)), clock_before);
    assert_eq!(dsm.store().interval_count(), intervals_before);
    let counters = dsm.counters();
    assert_eq!(counters.intervals_closed, counters_before.intervals_closed);
    assert_eq!(counters.updates, counters_before.updates);
    assert_eq!(
        dsm.net().stats(),
        net_before,
        "failed acquires must put nothing on the wire"
    );

    dsm.release(p(0), l(0)).unwrap();
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.release(p(1), l(0)).unwrap();
}

/// A failed acquire must not *split* the open interval. Before the fix,
/// the first failed retry closed the interval mid-stream, so writes
/// before and after the retries landed in two intervals — observable as
/// an extra write notice at the next processor's acquire (and extra
/// notice bytes on the wire).
#[test]
fn retried_acquire_does_not_split_the_open_interval() {
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(0), l(0)).unwrap();

    dsm.write_u64(p(1), 512, 1); // open interval, first write
    for _ in 0..2 {
        assert!(dsm.acquire(p(1), l(0)).is_err());
    }
    dsm.write_u64(p(1), 520, 2); // same page, same (still-open) interval

    dsm.release(p(0), l(0)).unwrap();
    dsm.acquire(p(1), l(0)).unwrap(); // closes exactly one interval
    dsm.release(p(1), l(0)).unwrap();
    assert_eq!(
        dsm.store().interval_count(),
        1,
        "both writes belong to one interval"
    );

    // The next acquirer learns p1's modifications as ONE notice: the
    // interval was never split.
    let before = dsm.counters().notices_received;
    dsm.acquire(p(2), l(0)).unwrap();
    assert_eq!(
        dsm.counters().notices_received - before,
        1,
        "one interval, one write notice for the page"
    );
    dsm.release(p(2), l(0)).unwrap();
}

/// A double acquire (`AlreadyHeld`) is misuse, and must be side-effect
/// free for the same reason.
#[test]
fn double_acquire_has_no_side_effects() {
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(2), l(1)).unwrap();
    dsm.write_u64(p(2), 1024, 9);
    let clock_before = dsm.clock(p(2));
    assert!(matches!(
        dsm.acquire(p(2), l(1)),
        Err(LockError::AlreadyHeld { .. })
    ));
    assert_eq!(dsm.clock(p(2)), clock_before);
    assert_eq!(dsm.store().interval_count(), 0);
}

/// A release of an unheld lock must not close the open interval either.
#[test]
fn failed_release_has_no_side_effects() {
    let dsm = engine(Policy::Invalidate);
    dsm.write_u64(p(1), 512, 5);
    let clock_before = dsm.clock(p(1));
    assert!(dsm.release(p(1), l(0)).is_err());
    assert_eq!(dsm.clock(p(1)), clock_before);
    assert_eq!(dsm.store().interval_count(), 0);
}
