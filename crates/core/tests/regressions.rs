//! Regression tests for protocol bugs found in the engine's slow paths:
//! the cold-miss base copy leaking a supplier's *uncommitted* open-interval
//! writes, and a failed (contended) acquire mutating interval state.

use lrc_core::{LrcConfig, LrcEngine, Policy};
use lrc_sync::{LockError, LockId};
use lrc_vclock::ProcId;

fn p(i: u16) -> ProcId {
    ProcId::new(i)
}

fn l(i: u32) -> LockId {
    LockId::new(i)
}

/// 4 procs, 16 pages of 512 bytes.
fn engine(policy: Policy) -> LrcEngine {
    LrcEngine::new(LrcConfig::new(4, 16 * 512).page_size(512).policy(policy)).unwrap()
}

/// A cold miss whose base copy ships from a processor with an *open*
/// (unreleased) interval on the page must not observe that interval's
/// writes: the supplier serves its twin — the last committed contents —
/// not its live copy. Before the fix, the reader here saw 42.
#[test]
fn cold_miss_does_not_leak_unreleased_writes() {
    for policy in [Policy::Invalidate, Policy::Update] {
        let dsm = engine(policy);
        // Page 0's home is p0, so p0 both writes it and supplies the base.
        dsm.write_u64(p(0), 8, 42); // open interval: twin is the zero page
        assert_eq!(
            dsm.read_u64(p(1), 8),
            0,
            "{policy}: p1's cold fetch must see the committed (initial) \
             contents, not p0's unreleased write"
        );
        // Once p0 releases and p1 synchronizes, the write must flow.
        dsm.acquire(p(0), l(0)).unwrap();
        dsm.release(p(0), l(0)).unwrap(); // closes p0's interval
        dsm.acquire(p(1), l(0)).unwrap(); // notice arrives at p1
        assert_eq!(
            dsm.read_u64(p(1), 8),
            42,
            "{policy}: released writes must still propagate normally"
        );
        dsm.release(p(1), l(0)).unwrap();
    }
}

/// Same leak through the warm path of a *diff-supplying* target: the
/// supplier's committed diff must arrive, but the uncommitted writes of its
/// current open interval must not ride along on the base page.
#[test]
fn cold_miss_base_from_diff_supplier_excludes_open_interval() {
    let dsm = engine(Policy::Invalidate);
    // p1 commits a write to page 0 (home p0, but p1 becomes the first
    // diff target for p3's miss below).
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 0, 7);
    dsm.release(p(1), l(0)).unwrap();
    // p3 learns of p1's interval through the lock.
    dsm.acquire(p(3), l(0)).unwrap();
    // Meanwhile p1 starts a new, unreleased interval on the same page
    // (false sharing: a different word).
    dsm.write_u64(p(1), 16, 99);
    // p3's cold miss fetches base + diff from p1. The committed 7 must
    // arrive; the uncommitted 99 must not.
    assert_eq!(dsm.read_u64(p(3), 0), 7, "committed diff applies");
    assert_eq!(
        dsm.read_u64(p(3), 16),
        0,
        "open-interval write must not leak"
    );
    dsm.release(p(3), l(0)).unwrap();
}

/// A contended acquire fails with `HeldByOther` — the blocking runtime
/// retries it in a loop. The failed attempt must leave interval state
/// completely untouched: no interval close, no clock movement. Before the
/// fix, `close_interval` ran ahead of the lock-table check, so every retry
/// of a blocked acquirer with dirty pages closed an interval.
#[test]
fn failed_contended_acquire_has_no_side_effects() {
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(0), l(0)).unwrap();

    // p1 has an open interval with real modifications.
    dsm.write_u64(p(1), 512, 5);
    let clock_before = dsm.clock(p(1));
    let counters_before = dsm.counters();
    let intervals_before = dsm.store().interval_count();

    for _ in 0..3 {
        assert!(matches!(
            dsm.acquire(p(1), l(0)),
            Err(LockError::HeldByOther { .. })
        ));
    }

    assert_eq!(
        dsm.clock(p(1)),
        clock_before,
        "failed acquires must not advance the clock"
    );
    assert_eq!(dsm.store().interval_count(), intervals_before);
    let counters = dsm.counters();
    assert_eq!(
        counters.intervals_closed, counters_before.intervals_closed,
        "failed acquires must not close intervals"
    );
    assert_eq!(counters.acquires, counters_before.acquires);

    // The eventual successful acquire closes exactly one interval.
    dsm.release(p(0), l(0)).unwrap();
    dsm.acquire(p(1), l(0)).unwrap();
    assert_eq!(
        dsm.counters().intervals_closed,
        counters_before.intervals_closed + 1
    );
    dsm.release(p(1), l(0)).unwrap();
}

/// A double acquire (`AlreadyHeld`) is misuse, and must be side-effect
/// free for the same reason.
#[test]
fn double_acquire_has_no_side_effects() {
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(2), l(1)).unwrap();
    dsm.write_u64(p(2), 1024, 9);
    let clock_before = dsm.clock(p(2));
    assert!(matches!(
        dsm.acquire(p(2), l(1)),
        Err(LockError::AlreadyHeld { .. })
    ));
    assert_eq!(dsm.clock(p(2)), clock_before);
    assert_eq!(dsm.store().interval_count(), 0);
}

/// A release of an unheld lock must not close the open interval either.
#[test]
fn failed_release_has_no_side_effects() {
    let dsm = engine(Policy::Invalidate);
    dsm.write_u64(p(1), 512, 5);
    let clock_before = dsm.clock(p(1));
    assert!(dsm.release(p(1), l(0)).is_err());
    assert_eq!(dsm.clock(p(1)), clock_before);
    assert_eq!(dsm.store().interval_count(), 0);
}
