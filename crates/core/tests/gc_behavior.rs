//! Tests of barrier-time garbage collection — the TreadMarks-style answer
//! to the unbounded consistency-history problem the paper leaves open.

use lrc_core::{LrcConfig, LrcEngine, Policy};
use lrc_sync::{BarrierId, LockId};
use lrc_vclock::ProcId;

fn p(i: u16) -> ProcId {
    ProcId::new(i)
}

fn engine(policy: Policy) -> LrcEngine {
    LrcEngine::new(
        LrcConfig::new(4, 16 * 512)
            .page_size(512)
            .policy(policy)
            .gc_at_barriers(),
    )
    .unwrap()
}

#[test]
fn gc_empties_the_store_at_every_barrier() {
    let dsm = engine(Policy::Invalidate);
    for round in 0..5u64 {
        for i in 0..4u16 {
            dsm.acquire(p(i), LockId::new(0)).unwrap();
            dsm.write_u64(p(i), 8 * i as u64, round * 10 + i as u64 + 1);
            dsm.release(p(i), LockId::new(0)).unwrap();
        }
        assert!(
            dsm.store().interval_count() > 0,
            "history accumulates between barriers"
        );
        for i in 0..4u16 {
            dsm.barrier(p(i), BarrierId::new(0)).unwrap();
        }
        assert_eq!(
            dsm.store().interval_count(),
            0,
            "round {round}: history collected"
        );
        assert_eq!(dsm.store().diff_count(), 0);
        assert_eq!(dsm.store().diff_bytes(), 0);
    }
    assert_eq!(dsm.counters().gc_rounds, 5);
}

#[test]
fn without_gc_the_store_grows_unboundedly() {
    let mut with = engine(Policy::Invalidate);
    let mut without = LrcEngine::new(
        LrcConfig::new(4, 16 * 512)
            .page_size(512)
            .policy(Policy::Invalidate),
    )
    .unwrap();
    for dsm in [&mut with, &mut without] {
        for round in 0..10u64 {
            for i in 0..4u16 {
                dsm.acquire(p(i), LockId::new(0)).unwrap();
                dsm.write_u64(p(i), 8 * i as u64, round + 2);
                dsm.release(p(i), LockId::new(0)).unwrap();
            }
            for i in 0..4u16 {
                dsm.barrier(p(i), BarrierId::new(0)).unwrap();
            }
        }
    }
    assert_eq!(with.store().interval_count(), 0);
    assert!(
        without.store().interval_count() >= 40,
        "un-collected history keeps every interval"
    );
}

#[test]
fn values_survive_collection() {
    // Writes before the GC barrier must be readable after it, even though
    // their diffs are gone: resident copies were validated and cold misses
    // fall back to the post-GC owner.
    for policy in [Policy::Invalidate, Policy::Update] {
        let dsm = engine(policy);
        dsm.acquire(p(1), LockId::new(0)).unwrap();
        dsm.write_u64(p(1), 0, 111);
        dsm.write_u64(p(1), 520, 222); // second page
        dsm.release(p(1), LockId::new(0)).unwrap();
        for i in 0..4u16 {
            dsm.barrier(p(i), BarrierId::new(0)).unwrap();
        }
        // p2 cached nothing before the barrier: cold miss after GC.
        assert_eq!(dsm.read_u64(p(2), 0), 111, "{policy}: cold read after GC");
        assert_eq!(dsm.read_u64(p(2), 520), 222, "{policy}");
        // p3 likewise, via the other access path (write-miss).
        dsm.acquire(p(3), LockId::new(0)).unwrap();
        dsm.write_u64(p(3), 8, 333);
        assert_eq!(
            dsm.read_u64(p(3), 0),
            111,
            "{policy}: base preserved under write"
        );
        dsm.release(p(3), LockId::new(0)).unwrap();
    }
}

#[test]
fn chains_across_gc_rounds_stay_consistent() {
    let dsm = engine(Policy::Invalidate);
    let lock = LockId::new(1);
    let mut expected = 0u64;
    for round in 0..6u64 {
        for i in 0..4u16 {
            dsm.acquire(p(i), lock).unwrap();
            let v = dsm.read_u64(p(i), 256);
            assert_eq!(v, expected, "round {round}, proc {i}");
            expected += 1;
            dsm.write_u64(p(i), 256, expected);
            dsm.release(p(i), lock).unwrap();
        }
        for i in 0..4u16 {
            dsm.barrier(p(i), BarrierId::new(0)).unwrap();
        }
    }
    assert_eq!(dsm.read_u64(p(0), 256), 24);
}

#[test]
fn gc_validates_invalid_resident_copies() {
    let dsm = engine(Policy::Invalidate);
    // p2 caches page 0; p1's locked write invalidates it via notices.
    dsm.read_u64(p(2), 0);
    dsm.acquire(p(1), LockId::new(0)).unwrap();
    dsm.write_u64(p(1), 0, 7);
    dsm.release(p(1), LockId::new(0)).unwrap();
    dsm.acquire(p(2), LockId::new(0)).unwrap();
    dsm.release(p(2), LockId::new(0)).unwrap();
    assert!(!dsm.page_valid(p(2), dsm.space().page_of(0)));
    for i in 0..4u16 {
        dsm.barrier(p(i), BarrierId::new(0)).unwrap();
    }
    assert!(
        dsm.page_valid(p(2), dsm.space().page_of(0)),
        "GC brings resident copies up to date"
    );
    assert!(dsm.counters().gc_validated_pages >= 1);
    // And the content is right, with no further traffic.
    let before = dsm.net().snapshot();
    assert_eq!(dsm.read_u64(p(2), 0), 7);
    assert_eq!(dsm.net().stats().since(&before).total().msgs, 0);
}
