//! Slow-path bookkeeping shared by both protocol engine families
//! ([`LrcEngine`](crate::LrcEngine) here, `EagerEngine` in `lrc-eager`):
//! in-flight gauges, contended-gate accounting, and the miss-fetch
//! instrumentation hook. One definition so the wait/overlap semantics —
//! what the contention counters *mean* — cannot silently diverge between
//! the engines.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use lrc_pagemem::PageId;
use lrc_vclock::ProcId;
use parking_lot::{Mutex, MutexGuard};

/// Test/bench instrumentation: a callback the engine invokes once per miss
/// during the *fetch phase* — after the fetch plan is built and its
/// request/reply round trips are charged, before the plan is applied. At
/// that point the engine holds no shared-structure lock for the miss
/// (only the missed page's gate, plus the engine-wide serialization mutex
/// under the `serialize_slow_paths` baseline), so a hook that blocks or
/// sleeps models a stalled network fetch: concurrent misses on *other*
/// pages and synchronization on unrelated locks must keep flowing.
pub type FetchHook = Box<dyn Fn(ProcId, PageId) + Send + Sync>;

/// A write-once [`FetchHook`] slot with a `Debug` that does not require
/// the hook itself to implement it.
#[derive(Default)]
pub struct FetchHookCell(OnceLock<FetchHook>);

impl FetchHookCell {
    /// The installed hook, if any.
    pub fn get(&self) -> Option<&FetchHook> {
        self.0.get()
    }

    /// Installs `hook`; returns `false` if one is already installed.
    pub fn set(&self, hook: FetchHook) -> bool {
        self.0.set(hook).is_ok()
    }
}

impl fmt::Debug for FetchHookCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FetchHookCell(installed: {})", self.0.get().is_some())
    }
}

/// RAII over an in-flight gauge: [`InFlight::enter`] increments it, the
/// guard's drop decrements — so error returns and panics unwind it too.
pub struct InFlight<'a>(&'a AtomicU64);

impl<'a> InFlight<'a> {
    /// Increments `gauge` and returns the guard plus the *pre-increment*
    /// value (how many others were already in flight).
    pub fn enter(gauge: &'a AtomicU64) -> (Self, u64) {
        let others = gauge.fetch_add(1, Ordering::Relaxed);
        (InFlight(gauge), others)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Locks `gate`, recording in `waited` whether it was contended (a
/// try-lock probe first, so an uncontended gate costs no extra atomics).
pub fn gate_lock<'a>(gate: &'a Mutex<()>, waited: &mut bool) -> MutexGuard<'a, ()> {
    match gate.try_lock() {
        Some(guard) => guard,
        None => {
            *waited = true;
            gate.lock()
        }
    }
}

/// Settles the contention counters for one slow-path entry: a `waited`
/// entry blocked behind another slow path; an un-waited entry that
/// `overlapped` one is a wait the retired engine-wide protocol mutex
/// would have imposed.
pub fn settle_contention(waited: bool, overlapped: bool, waits: &AtomicU64, avoided: &AtomicU64) {
    if waited {
        waits.fetch_add(1, Ordering::Relaxed);
    } else if overlapped {
        avoided.fetch_add(1, Ordering::Relaxed);
    }
}

/// Raises a high-water-mark counter to at least `value` (statistics only
/// — relaxed ordering).
pub fn raise(counter: &AtomicU64, value: u64) {
    counter.fetch_max(value, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_gauge_counts_and_unwinds() {
        let gauge = AtomicU64::new(0);
        let (a, others) = InFlight::enter(&gauge);
        assert_eq!(others, 0);
        let (b, others) = InFlight::enter(&gauge);
        assert_eq!(others, 1);
        assert_eq!(gauge.load(Ordering::Relaxed), 2);
        drop(a);
        drop(b);
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn gate_lock_reports_contention_only_when_held() {
        let gate = Mutex::new(());
        let mut waited = false;
        let guard = gate_lock(&gate, &mut waited);
        assert!(!waited);
        drop(guard);
    }

    #[test]
    fn settle_counts_at_most_one_event_per_entry() {
        let waits = AtomicU64::new(0);
        let avoided = AtomicU64::new(0);
        settle_contention(false, false, &waits, &avoided);
        settle_contention(false, true, &waits, &avoided);
        settle_contention(true, true, &waits, &avoided);
        assert_eq!(waits.load(Ordering::Relaxed), 1);
        assert_eq!(avoided.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn raise_is_a_high_water_mark() {
        let peak = AtomicU64::new(0);
        raise(&peak, 3);
        raise(&peak, 1);
        assert_eq!(peak.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn hook_cell_installs_once() {
        let cell = FetchHookCell::default();
        assert!(cell.get().is_none());
        assert!(format!("{cell:?}").contains("installed: false"));
        assert!(cell.set(Box::new(|_, _| {})));
        assert!(!cell.set(Box::new(|_, _| {})), "second install refused");
        assert!(cell.get().is_some());
    }
}
