use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};

use lrc_hist::HistoryRecorder;
use lrc_pagemem::{AddrSpace, Diff, PageBuf, PageId};
use lrc_simnet::{
    notice_batch_bytes, vc_bytes, Fabric, MsgKind, BARRIER_ID_BYTES, DIFF_REQUEST_ENTRY_BYTES,
    LOCK_ID_BYTES, PAGE_ID_BYTES,
};
use lrc_sync::{BarrierArrival, BarrierError, BarrierId, BarrierSet, LockError, LockId, LockTable};
use lrc_vclock::{IntervalId, ProcId, StampedInterval, VectorClock};
use parking_lot::lockdep::classes;
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard};

use crate::counters::{bump, SharedLazyCounters};
use crate::pagestate::PageEntry;
use crate::slowpath::{gate_lock, raise, settle_contention, FetchHook, FetchHookCell, InFlight};
use crate::{
    ConfigError, EngineOp, EngineOpError, FetchPlan, IntervalStore, LazyCounters, LrcConfig,
    Policy, ProtocolMutation,
};

/// One processor's private slice of the engine: its page table, vector
/// time, and open-interval dirty list. Everything an ordinary cached read
/// or write touches lives here, behind this shard's own mutex, so two
/// processors hitting valid cached pages never contend.
#[derive(Debug)]
struct ProcShard {
    /// The processor's vector time; own entry = the *open* interval's seq.
    clock: VectorClock,
    /// Pages dirtied in the open interval.
    dirty: Vec<PageId>,
    /// The processor's page table.
    pages: Vec<PageEntry>,
    /// True after [`LrcEngine::declare_dead`], until a rejoin. A dead
    /// processor's clock is frozen (valid knowledge — everything it closed
    /// was flushed first) but its frames are reset and every public
    /// operation on it asserts.
    dead: bool,
    /// Barrier-episode count at the moment of death — the start of the
    /// rejoin lease (see [`LrcConfig::death_lease_episodes`]).
    dead_since: u64,
    /// True once garbage collection advanced the store era while this
    /// processor's lease had expired: rejoin from any pre-collection
    /// checkpoint is refused with
    /// [`CheckpointError::LeaseExpired`](crate::CheckpointError::LeaseExpired)
    /// instead of the generic era mismatch, directing the node to
    /// cold-join from the latest shipped checkpoint.
    lease_expired: bool,
}

/// What [`LrcEngine::declare_dead`] did on the survivors' behalf.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DeathReport {
    /// Locks the dead processor held, force-released in this order (each
    /// recorded as an ordinary release, so the history stays checkable).
    pub released: Vec<LockId>,
    /// Barrier episodes completed because the dead processor was the last
    /// arrival missing: `(barrier, episode)`.
    pub completed_episodes: Vec<(BarrierId, u64)>,
}

/// The lazy release consistency engine: `n` processors, their page copies,
/// interval bookkeeping, and the full acquire/release/barrier/miss protocol
/// of §4, with every message charged to an internal [`Fabric`].
///
/// The engine is *data-full*: writes carry real bytes, and reads return the
/// bytes a processor of the simulated DSM would observe — which on a
/// properly-labeled program must equal sequential consistency (the `lrc-sim`
/// crate checks exactly that).
///
/// # Concurrency
///
/// Every method takes `&self`: the engine is internally synchronized so a
/// threaded runtime can drive all processors concurrently through one
/// shared engine, while single-threaded trace replay uses the same API.
/// State is split three ways:
///
/// * **per-processor shards** (page table, clock, dirty list), each
///   behind its own mutex — the only lock an ordinary access to a valid
///   cached page takes;
/// * **shared protocol state** — the [`IntervalStore`] behind a `RwLock`
///   (read-mostly, with a snapshot [`IntervalStore::version`]), and the
///   lock table, barrier set, and post-GC owner map behind their own
///   mutexes;
/// * **statistics** — the fabric meter and [`LazyCounters`] are relaxed
///   atomics, aggregated on read.
///
/// Slow paths do **not** share a global mutex; they serialize only on the
/// object they act on, which is the whole point of the lazy protocol's
/// slow paths being rare and independent:
///
/// * acquire and release of a lock hold that lock's **gate** (one mutex
///   per lock), so transfers of the *same* lock are totally ordered —
///   the order the lock table numbers its grants in — while unrelated
///   locks change hands concurrently;
/// * miss resolution holds the missed page's **gate** (one mutex per
///   page, the in-flight-miss table): misses on distinct pages resolve
///   concurrently, and a same-page follower waits on the resolver, not
///   on the engine;
/// * barrier arrivals serialize only on the barrier set's mutex; an
///   episode's *completion* runs on the last arriver's thread while every
///   other processor is parked by the runtime awaiting the episode, so it
///   has the engine to itself and may hold the store's write lock across
///   the whole completion (which also makes barrier-time GC atomic);
/// * within a gated slow path, the store's write lock is held only for
///   the brief bookkeeping steps (closing an interval, applying a fetch
///   plan) — **never across a fetch**. Plans are built against a read
///   snapshot of the store; the snapshot's [`IntervalStore::version`] is
///   revalidated under the write lock before the plan applies, and a
///   stale plan (the store was garbage-collected meanwhile) is rebuilt
///   ([`LazyCounters::snapshot_retries`]).
///
/// Lock order: serialization mutex (baseline flag only) → lock gate /
/// page gate → lock-table / barrier-set mutexes → store lock → gc-owner
/// map → shard mutexes → death escrow. A shard mutex may be taken while
/// holding the store lock, never the reverse; no path holds two gates of
/// the same kind or two shard mutexes at once; the gc-owner map is only
/// ever taken while the store lock is held (both its writers and its
/// readers), and never held across acquiring anything else; the death
/// escrow is taken last, on the death and collection paths only.
///
/// Two assumptions bound the concurrency (both enforced by the `lrc-dsm`
/// runtime and trivially true single-threaded): each processor is driven
/// by one thread at a time, and a processor that arrived at a barrier
/// issues nothing until the episode completes.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct LrcEngine {
    cfg: LrcConfig,
    space: AddrSpace,
    /// Per-processor state (fast-path data).
    shards: Vec<Mutex<ProcShard>>,
    /// Interval records, diffs, and possession tracking (read-mostly).
    store: RwLock<IntervalStore>,
    locks: Mutex<LockTable>,
    barriers: Mutex<BarrierSet>,
    /// After garbage collection: the processor holding the authoritative
    /// copy of each page whose diff history was discarded.
    gc_owner: Mutex<Vec<Option<ProcId>>>,
    /// Committed contents of pages whose post-GC authoritative owner
    /// died, parked at [`LrcEngine::declare_dead`] (the dead frames are
    /// reset) and consumed when a lease-expired collection re-homes the
    /// pages onto live frames.
    escrow: Mutex<HashMap<PageId, PageBuf>>,
    /// Per-lock gates: acquire/release of one lock serialize here; distinct
    /// locks proceed concurrently.
    lock_gates: Vec<Mutex<()>>,
    /// Per-page gates (the in-flight-miss table): a miss holds its page's
    /// gate for the whole resolution, so same-page followers wait on the
    /// resolver and distinct pages resolve concurrently.
    page_gates: Vec<Mutex<()>>,
    /// The pre-split measurement baseline ([`LrcConfig::serialize_slow_paths`]):
    /// when present, every slow path locks this first, reproducing the
    /// retired engine-wide `protocol` mutex.
    serial_gate: Option<Mutex<()>>,
    /// Slow paths currently in flight (gauge behind
    /// [`LazyCounters::slow_waits_avoided`]).
    slow_inflight: AtomicU64,
    /// Misses currently in flight (gauge behind
    /// [`LazyCounters::miss_inflight_peak`]).
    miss_inflight: AtomicU64,
    /// Test/bench instrumentation (see [`FetchHook`]).
    fetch_hook: FetchHookCell,
    net: Fabric,
    counters: SharedLazyCounters,
    /// Optional history recorder (`lrc-hist`): when attached, every
    /// public operation logs itself — reads with the bytes they observed,
    /// synchronization operations with the engine-assigned grant/episode
    /// order. The unattached fast path costs one atomic load.
    recorder: OnceLock<Arc<HistoryRecorder>>,
}

impl LrcEngine {
    /// Builds an engine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration does not validate.
    pub fn new(cfg: LrcConfig) -> Result<Self, ConfigError> {
        let space = cfg.address_space()?;
        let n = cfg.n_procs;
        let shards = ProcId::all(n)
            .map(|p| {
                let mut clock = VectorClock::new(n);
                clock.set(p, 1); // interval numbering starts at 1
                Mutex::new_in(
                    ProcShard {
                        clock,
                        dirty: Vec::new(),
                        pages: (0..space.n_pages()).map(|_| PageEntry::default()).collect(),
                        dead: false,
                        dead_since: 0,
                        lease_expired: false,
                    },
                    classes::ENGINE_SHARD,
                )
            })
            .collect();
        Ok(LrcEngine {
            space,
            shards,
            store: RwLock::new_in(IntervalStore::new(n), classes::CORE_STORE),
            locks: Mutex::new_in(LockTable::new(cfg.n_locks, n), classes::SYNC_LOCK_TABLE),
            barriers: Mutex::new_in(
                BarrierSet::new(cfg.n_barriers, n),
                classes::SYNC_BARRIER_SET,
            ),
            gc_owner: Mutex::new_in(vec![None; space.n_pages() as usize], classes::CORE_GC_OWNER),
            escrow: Mutex::new_in(HashMap::new(), classes::CORE_ESCROW),
            lock_gates: (0..cfg.n_locks)
                .map(|l| Mutex::new_in((), classes::ENGINE_LOCK_GATE.with_order(l as u64)))
                .collect(),
            page_gates: (0..space.n_pages())
                .map(|p| Mutex::new_in((), classes::ENGINE_PAGE_GATE.with_order(u64::from(p))))
                .collect(),
            serial_gate: cfg
                .serialize_slow_paths
                .then(|| Mutex::new_in((), classes::ENGINE_SERIAL_GATE)),
            slow_inflight: AtomicU64::new(0),
            miss_inflight: AtomicU64::new(0),
            fetch_hook: FetchHookCell::default(),
            net: Fabric::new(n),
            counters: SharedLazyCounters::default(),
            recorder: OnceLock::new(),
            cfg,
        })
    }

    /// Attaches a history recorder: from now on every read (with its
    /// observed bytes), write, acquire, release, and barrier crossing is
    /// appended to the recorder's per-processor logs. Synchronization
    /// events carry engine-assigned orders — the lock table's per-lock
    /// grant numbers and the barrier set's episodes — so the recorded
    /// happens-before edges agree with the protocol without any global
    /// serialization. Attach before driving the engine so the history
    /// starts complete.
    ///
    /// # Panics
    ///
    /// Panics if a recorder is already attached or its processor count
    /// differs from the engine's.
    pub fn attach_recorder(&self, recorder: Arc<HistoryRecorder>) {
        assert_eq!(
            recorder.n_procs(),
            self.cfg.n_procs,
            "recorder processor count does not match the engine"
        );
        assert!(
            self.recorder.set(recorder).is_ok(),
            "a history recorder is already attached"
        );
    }

    /// Installs the miss-fetch instrumentation hook (see [`FetchHook`]).
    /// Tests use a blocking hook to *prove* slow-path independence without
    /// timing assumptions; benches use a sleeping hook to model real
    /// network round-trip latency.
    ///
    /// # Panics
    ///
    /// Panics if a hook is already installed.
    pub fn set_fetch_hook(&self, hook: FetchHook) {
        assert!(
            self.fetch_hook.set(hook),
            "a fetch hook is already installed"
        );
    }

    #[inline]
    fn recorder(&self) -> Option<&HistoryRecorder> {
        self.recorder.get().map(Arc::as_ref)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LrcConfig {
        &self.cfg
    }

    /// The derived address space.
    pub fn space(&self) -> AddrSpace {
        self.space
    }

    /// The network meter.
    pub fn net(&self) -> &Fabric {
        &self.net
    }

    /// Enables per-message logging on the internal fabric (for tests).
    pub fn enable_net_trace(&self) {
        self.net.enable_trace();
    }

    /// Snapshot of the protocol event counters.
    pub fn counters(&self) -> LazyCounters {
        self.counters.snapshot()
    }

    /// The interval/diff store (shared read access, for inspection).
    ///
    /// **Do not call any engine method while holding the guard.** Slow
    /// paths take the store's write lock for interval closes and plan
    /// application (and therefore any read or write that misses does), so
    /// a read-then-write on the same thread deadlocks; from other threads
    /// it merely blocks them. Read what you need and drop the guard.
    pub fn store(&self) -> RwLockReadGuard<'_, IntervalStore> {
        self.store.read()
    }

    /// Processor `p`'s current vector time (a snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn clock(&self, p: ProcId) -> VectorClock {
        self.shard(p).clock.clone()
    }

    /// True if `p` holds a valid copy of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `page` is out of range.
    pub fn page_valid(&self, p: ProcId, page: PageId) -> bool {
        self.shard(p).pages[page.index()].valid
    }

    /// The home processor of a page (supplies cold copies with no known
    /// modifier).
    pub fn page_home(&self, page: PageId) -> ProcId {
        ProcId::new((page.index() % self.cfg.n_procs) as u16)
    }

    /// The current holder of `lock`, if any (`None` for free or unknown
    /// locks) — diagnostics for stuck-waiter reports.
    pub fn lock_holder(&self, lock: LockId) -> Option<ProcId> {
        self.locks.lock().holder(lock)
    }

    /// The live processors the current episode of `barrier` is still
    /// waiting for (empty for unknown barriers) — the failure detector's
    /// suspect list when a barrier wait times out.
    pub fn barrier_absentees(&self, barrier: BarrierId) -> Vec<ProcId> {
        self.barriers.lock().absent(barrier)
    }

    fn shard(&self, p: ProcId) -> MutexGuard<'_, ProcShard> {
        self.shards[p.index()].lock()
    }

    // ---- slow-path bookkeeping ----

    /// Marks one slow path in flight (decremented by the returned guard)
    /// and reports whether any *other* slow path was in flight at entry —
    /// the overlap the retired global protocol mutex would have serialized.
    fn enter_slow_path(&self) -> (InFlight<'_>, bool) {
        let (guard, others) = InFlight::enter(&self.slow_inflight);
        (guard, others > 0)
    }

    /// Locks the serialized-baseline mutex, when configured.
    fn serial_gate<'a>(&'a self, waited: &mut bool) -> Option<MutexGuard<'a, ()>> {
        self.serial_gate.as_ref().map(|g| gate_lock(g, waited))
    }

    /// Settles the contention counters for one slow-path entry.
    fn settle_slow_entry(&self, waited: bool, overlapped: bool) {
        settle_contention(
            waited,
            overlapped,
            &self.counters.slow_waits,
            &self.counters.slow_waits_avoided,
        );
    }

    /// Under [`ProtocolMutation::StaleSnapshotApply`]: removes the
    /// causally-latest diff from `plan` — emulating a plan whose snapshot
    /// predates that interval's availability being applied without
    /// revalidation — and returns its page so the caller can finalize it
    /// *as if* the plan had applied completely. Stock engines return
    /// `None` and leave the plan alone.
    fn stale_snapshot_drop(&self, store: &IntervalStore, plan: &mut FetchPlan) -> Option<PageId> {
        if self.cfg.mutation != ProtocolMutation::StaleSnapshotApply {
            return None;
        }
        let weight_of = |iv: IntervalId| {
            let w = store
                .stamp(iv)
                .expect("planned interval recorded")
                .clock()
                .weight();
            (w, iv.proc(), iv.seq())
        };
        let latest_free = plan
            .from_free
            .iter()
            .enumerate()
            .max_by_key(|(_, &(iv, _))| weight_of(iv))
            .map(|(i, &(iv, g))| (weight_of(iv), i, g));
        let latest_fetched = plan
            .targets
            .iter()
            .enumerate()
            .flat_map(|(ti, (_, diffs))| {
                diffs
                    .iter()
                    .enumerate()
                    .map(move |(di, &(iv, g))| (weight_of(iv), (ti, di), g))
            })
            .max_by_key(|&(w, _, _)| w);
        match (latest_free, latest_fetched) {
            (Some((wf, i, g)), Some((wt, _, _))) if wf >= wt => {
                plan.from_free.remove(i);
                Some(g)
            }
            (Some((_, i, g)), None) => {
                plan.from_free.remove(i);
                Some(g)
            }
            (_, Some((_, (ti, di), g))) => {
                plan.targets[ti].1.remove(di);
                if plan.targets[ti].1.is_empty() {
                    plan.targets.remove(ti);
                }
                Some(g)
            }
            (None, None) => None,
        }
    }

    /// Finalizes `page` at `p` as if a fetch plan had fully applied to it:
    /// pending notices cleared, resident copy marked valid. Only the
    /// [`ProtocolMutation::StaleSnapshotApply`] emulation calls this for a
    /// page whose newest diff was *not* applied.
    fn finalize_stale_page(&self, p: ProcId, page: PageId) {
        let mut shard = self.shard(p);
        let entry = &mut shard.pages[page.index()];
        entry.pending.clear();
        if entry.copy.is_some() {
            entry.valid = true;
        }
    }

    // ---- ordinary accesses ----

    /// Reads `buf.len()` bytes at `addr` as processor `p`, resolving
    /// access misses as needed. Hitting a valid cached page takes only
    /// `p`'s shard lock.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `p` is out of range.
    pub fn read_into(&self, p: ProcId, addr: u64, buf: &mut [u8]) {
        let mut cursor = 0;
        for seg in self.space.segments(addr, buf.len()) {
            loop {
                {
                    let shard = self.shard(p);
                    assert!(!shard.dead, "read by dead processor {p}");
                    let entry = &shard.pages[seg.page.index()];
                    if entry.valid {
                        let copy = entry.copy.as_ref().expect("valid page has a copy");
                        copy.read(seg.offset, &mut buf[cursor..cursor + seg.len]);
                        break;
                    }
                }
                self.resolve_miss(p, seg.page);
            }
            cursor += seg.len;
        }
        if let Some(rec) = self.recorder() {
            rec.read(p, addr, buf);
        }
    }

    /// Reads `len` bytes at `addr` into a fresh vector.
    ///
    /// # Panics
    ///
    /// See [`LrcEngine::read_into`].
    pub fn read_vec(&self, p: ProcId, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read_into(p, addr, &mut buf);
        buf
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Panics
    ///
    /// See [`LrcEngine::read_into`].
    pub fn read_u64(&self, p: ProcId, addr: u64) -> u64 {
        let mut raw = [0u8; 8];
        self.read_into(p, addr, &mut raw);
        u64::from_le_bytes(raw)
    }

    /// Writes `data` at `addr` as processor `p`. The first write to a page
    /// in an interval twins it (§4.3.1); misses resolve first so the twin
    /// reflects all noticed modifications. Writing a valid cached page
    /// takes only `p`'s shard lock.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `p` is out of range.
    pub fn write(&self, p: ProcId, addr: u64, data: &[u8]) {
        let mut cursor = 0;
        for seg in self.space.segments(addr, data.len()) {
            loop {
                {
                    let mut shard = self.shard(p);
                    assert!(!shard.dead, "write by dead processor {p}");
                    let gi = seg.page.index();
                    if shard.pages[gi].valid {
                        if !shard.pages[gi].is_dirty() {
                            shard.pages[gi].ensure_twin();
                            shard.dirty.push(seg.page);
                        }
                        let copy = shard.pages[gi]
                            .copy
                            .as_mut()
                            .expect("valid page has a copy");
                        copy.write(seg.offset, &data[cursor..cursor + seg.len]);
                        break;
                    }
                }
                self.resolve_miss(p, seg.page);
            }
            cursor += seg.len;
        }
        if let Some(rec) = self.recorder() {
            rec.write(p, addr, data);
        }
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Panics
    ///
    /// See [`LrcEngine::write`].
    pub fn write_u64(&self, p: ProcId, addr: u64, value: u64) {
        self.write(p, addr, &value.to_le_bytes());
    }

    /// Dispatches one decoded remote request as processor `p` — the entry
    /// point a network node uses to service messages for processors it
    /// does not host locally. Reads return their bytes; every other
    /// successful operation returns an empty vector.
    ///
    /// # Errors
    ///
    /// [`EngineOpError`] wrapping the lock or barrier failure. Contended
    /// acquires surface as [`lrc_sync::LockError::HeldByOther`]; a
    /// blocking runtime retries them (see `lrc-dsm`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range accesses, like the direct methods.
    pub fn apply_op(&self, p: ProcId, op: &EngineOp) -> Result<Vec<u8>, EngineOpError> {
        match op {
            EngineOp::Read { addr, len } => Ok(self.read_vec(p, *addr, *len as usize)),
            EngineOp::Write { addr, data } => {
                self.write(p, *addr, data);
                Ok(Vec::new())
            }
            EngineOp::Acquire(lock) => {
                self.acquire(p, *lock)?;
                Ok(Vec::new())
            }
            EngineOp::Release(lock) => {
                self.release(p, *lock)?;
                Ok(Vec::new())
            }
            EngineOp::Barrier(barrier) => {
                self.barrier(p, *barrier)?;
                Ok(Vec::new())
            }
        }
    }

    // ---- special accesses ----

    /// Acquires `lock` as processor `p`: finds and transfers the lock (up
    /// to 3 messages), receives piggybacked write notices for every
    /// interval performed at the grantor but not at `p`, and — under the
    /// update policy — pulls diffs to bring all cached pages up to date.
    ///
    /// Serializes only on `lock`'s gate: acquires of unrelated locks, and
    /// misses on any page, proceed concurrently.
    ///
    /// # Errors
    ///
    /// Propagates [`LockError`] (held lock, unknown ids). The lock path is
    /// resolved *before* any interval state changes, so a failed acquire —
    /// in particular a contended [`LockError::HeldByOther`] that a blocking
    /// runtime retries in a loop — has no side effects.
    pub fn acquire(&self, p: ProcId, lock: LockId) -> Result<(), LockError> {
        assert!(!self.shard(p).dead, "acquire by dead processor {p}");
        let (_inflight, overlapped) = self.enter_slow_path();
        let mut waited = false;
        let _serial = self.serial_gate(&mut waited);
        let _gate = self
            .lock_gates
            .get(lock.index())
            .map(|g| gate_lock(g, &mut waited));
        self.settle_slow_entry(waited, overlapped);

        let path = self.locks.lock().acquire(p, lock)?;
        bump(&self.counters.acquires, 1);
        if let Some(rec) = self.recorder() {
            // The grant number was assigned by the lock table under its
            // own mutex, inside this lock's gate: the recorded order is
            // the order the lock actually changed hands in.
            rec.acquire(p, lock, path.grant_seq);
        }
        self.close_interval(p);
        let q = path.grantor;
        if q == p {
            // Local re-acquire: nothing new to learn, nothing on the wire.
            return Ok(());
        }

        // Request and forward hops carry the acquirer's vector clock so the
        // grantor can compute the missing write notices (§4.2).
        let hop_payload = LOCK_ID_BYTES + vc_bytes(self.cfg.n_procs);
        if let Some((src, dst)) = path.request {
            self.net.send(src, dst, MsgKind::LockRequest, hop_payload);
        }
        if let Some((src, dst)) = path.forward {
            self.net.send(src, dst, MsgKind::LockForward, hop_payload);
        }

        // The grantor's knowledge is safe to read here: everything it
        // closed is in the store before its clock shows it (close_interval
        // publishes under the store's write lock before bumping), so the
        // notice computation below never names an unrecorded interval.
        let mut know_q = Self::knowledge_of(&self.shard(q).clock, q);
        if self.cfg.mutation == ProtocolMutation::StaleGrantKnowledge {
            // Mutation testing: the grantor under-reports its own latest
            // closed interval, so the acquirer never hears about the
            // grantor's most recent critical section. The history checker
            // must reject the run.
            know_q.set(q, know_q.get(q).saturating_sub(1));
        }
        let mut store = self.store.read();
        let p_clock = self.shard(p).clock.clone();
        let notices = store.notices_missing(&p_clock, &know_q);
        self.deliver_notices(p, &notices);
        self.shard(p).clock.merge(&know_q);

        // Update policy: bring every cached page up to date now. Diffs the
        // grantor holds ride the grant; the rest cost 2 messages per other
        // concurrent last modifier (Table 1's `2h`). The plan is built
        // against the read snapshot, the round trips are charged with no
        // store lock held, and the write lock is taken only to apply —
        // revalidating the snapshot version first.
        let mut grant_payload =
            LOCK_ID_BYTES + vc_bytes(self.cfg.n_procs) + Self::notice_bytes(&notices);
        if self.cfg.policy == Policy::Update {
            loop {
                let needed = self.needed_for_cached_pages(p);
                let mut plan = FetchPlan::build(&store, p, Some(q), &needed);
                let stale_page = self.stale_snapshot_drop(&store, &mut plan);
                let version = store.version();
                let free_payload = self.diff_payload(&store, &plan.from_free);
                let fetches: Vec<(ProcId, u64, u64)> = plan
                    .targets
                    .iter()
                    .map(|(target, diffs)| {
                        (
                            *target,
                            diffs.len() as u64 * DIFF_REQUEST_ENTRY_BYTES,
                            self.diff_payload(&store, diffs),
                        )
                    })
                    .collect();
                drop(store);
                for (target, request, reply) in fetches {
                    self.net.round_trip(
                        p,
                        target,
                        MsgKind::AcquireDiffRequest,
                        request,
                        MsgKind::AcquireDiffReply,
                        reply,
                    );
                }
                let mut wstore = self.store.write();
                if wstore.version() != version
                    && self.cfg.mutation != ProtocolMutation::StaleSnapshotApply
                {
                    // The store was reorganized between snapshot and
                    // apply: the plan may name discarded diffs. Rebuild.
                    bump(&self.counters.snapshot_retries, 1);
                    drop(wstore);
                    store = self.store.read();
                    continue;
                }
                let touched = self.apply_plan(&mut wstore, p, &plan);
                bump(&self.counters.updates, touched as u64);
                drop(wstore);
                if let Some(g) = stale_page {
                    self.finalize_stale_page(p, g);
                }
                grant_payload += free_payload;
                break;
            }
        } else {
            drop(store);
        }

        if self.cfg.piggyback_notices {
            if let Some((src, dst)) = path.grant {
                self.net.send(src, dst, MsgKind::LockGrant, grant_payload);
            }
        } else if self.cfg.coalesce_notices {
            // Ablated *but* coalescing: the separate consistency message is
            // bound for the same destination as the grant it trails, so the
            // two merge back into one — same bytes, one header fewer. (This
            // is the transport-level batching made protocol-aware: the
            // messages would share a flush anyway.)
            if let Some((src, dst)) = path.grant {
                self.net.send(src, dst, MsgKind::LockGrant, grant_payload);
                bump(&self.counters.coalesced_msgs, 1);
            }
        } else {
            // Ablation: the grant carries only the lock; consistency data
            // travels in a separate message.
            if let Some((src, dst)) = path.grant {
                self.net.send(src, dst, MsgKind::LockGrant, LOCK_ID_BYTES);
                self.net
                    .send(src, dst, MsgKind::LockGrant, grant_payload - LOCK_ID_BYTES);
            }
        }
        Ok(())
    }

    /// Releases `lock`. Purely local under LRC: the interval closes (diffs
    /// are made for dirtied pages) and the lock table records `p` as the
    /// last releaser. **No messages are sent** (§4.2). Serializes only on
    /// `lock`'s gate.
    ///
    /// # Errors
    ///
    /// Propagates [`LockError::NotHolder`] and range errors; a failed
    /// release leaves interval state untouched.
    pub fn release(&self, p: ProcId, lock: LockId) -> Result<(), LockError> {
        assert!(!self.shard(p).dead, "release by dead processor {p}");
        let (_inflight, overlapped) = self.enter_slow_path();
        let mut waited = false;
        let _serial = self.serial_gate(&mut waited);
        let _gate = self
            .lock_gates
            .get(lock.index())
            .map(|g| gate_lock(g, &mut waited));
        self.settle_slow_entry(waited, overlapped);

        let grant = self.locks.lock().release(p, lock)?;
        if let Some(rec) = self.recorder() {
            rec.release(p, lock, grant);
        }
        // Still inside the gate: the next acquirer of this lock cannot
        // read the releaser's knowledge until the interval has closed.
        self.close_interval(p);
        bump(&self.counters.releases, 1);
        Ok(())
    }

    /// Arrives at `barrier` as processor `p`. Arrival messages carry the
    /// processor's clock and fresh write notices to the master; when the
    /// last processor arrives, exit messages distribute the merged
    /// knowledge: `2(n-1)` messages per episode, with all consistency
    /// information piggybacked (Table 1, LI row). Under the update policy
    /// each processor then pulls diffs for its cached pages (`2u`).
    ///
    /// Arrivals serialize only on the barrier set's mutex; the completion
    /// runs on the last arriver's thread while all other processors are
    /// parked awaiting the episode.
    ///
    /// # Errors
    ///
    /// Propagates [`BarrierError`] (double arrival, range errors).
    pub fn barrier(&self, p: ProcId, barrier: BarrierId) -> Result<BarrierArrival, BarrierError> {
        assert!(!self.shard(p).dead, "barrier by dead processor {p}");
        let (_inflight, overlapped) = self.enter_slow_path();
        let mut waited = false;
        let _serial = self.serial_gate(&mut waited);
        self.settle_slow_entry(waited, overlapped);

        let master = {
            let barriers = self.barriers.lock();
            barriers.check_arrival(p, barrier)?;
            barriers.master(barrier)
        };
        self.close_interval(p);
        if p != master {
            let store = self.store.read();
            let master_clock = self.shard(master).clock.clone();
            let know_p = Self::knowledge_of(&self.shard(p).clock, p);
            let fresh = store.notices_missing(&master_clock, &know_p);
            let payload =
                BARRIER_ID_BYTES + vc_bytes(self.cfg.n_procs) + Self::notice_bytes(&fresh);
            self.net.send(p, master, MsgKind::BarrierArrival, payload);
        }
        let outcome = self.barriers.lock().arrive(p, barrier)?;
        if let Some(rec) = self.recorder() {
            rec.barrier(p, barrier, outcome.episode());
        }
        if let BarrierArrival::Complete { .. } = outcome {
            self.complete_barrier(master);
        }
        Ok(outcome)
    }

    // ---- internals ----

    /// Closes `p`'s open interval: diffs every dirtied page against its
    /// twin, records the interval (if any page actually changed), and opens
    /// the next interval. The interval is published to the store *before*
    /// the clock bump (both under the store's write lock plus `p`'s shard
    /// lock), so any processor that observes the new clock value finds the
    /// interval recorded.
    fn close_interval(&self, p: ProcId) {
        let mut store = self.store.write();
        let mut shard = self.shard(p);
        let dirtied = std::mem::take(&mut shard.dirty);
        let mut page_diffs = Vec::with_capacity(dirtied.len());
        for g in dirtied {
            let entry = &mut shard.pages[g.index()];
            let twin = entry.twin.take().expect("dirty page has a twin");
            let copy = entry.copy.as_ref().expect("dirty page has a copy");
            let diff = Diff::between(&twin, copy);
            if !diff.is_empty() {
                page_diffs.push((g, diff));
            }
        }
        if self.cfg.mutation == ProtocolMutation::SkipTwinDiff {
            // Mutation testing: the twins were consumed but their diffs
            // are discarded — this interval's writes silently never
            // propagate. The history checker must reject the run.
            return;
        }
        if page_diffs.is_empty() {
            return;
        }
        let seq = shard.clock.get(p);
        let stamp = StampedInterval::new(IntervalId::new(p, seq), shard.clock.clone());
        store.close_interval(stamp, page_diffs);
        bump(&self.counters.intervals_closed, 1);
        shard.clock.bump(p);
    }

    /// A processor's transferable knowledge: its clock with the own entry
    /// lowered to the last *closed* interval.
    fn knowledge_of(clock: &VectorClock, p: ProcId) -> VectorClock {
        let mut vc = clock.clone();
        let open = vc.get(p);
        vc.set(p, open - 1);
        vc
    }

    /// Wire size of a batch of write notices: one header per distinct
    /// interval plus a page id per notice (TreadMarks-style interval
    /// records).
    fn notice_bytes(notices: &[crate::WriteNotice]) -> u64 {
        let mut intervals: Vec<_> = notices.iter().map(|n| n.interval).collect();
        intervals.sort();
        intervals.dedup();
        notice_batch_bytes(intervals.len(), notices.len())
    }

    /// Delivers write notices to `p`: pending lists grow and, under the
    /// invalidate policy, resident valid copies are invalidated.
    fn deliver_notices(&self, p: ProcId, notices: &[crate::WriteNotice]) {
        if self.cfg.mutation == ProtocolMutation::DropNotices {
            // Mutation testing: knowledge merges but the page-level
            // notices vanish, so stale copies stay valid. The history
            // checker must reject the run.
            return;
        }
        bump(&self.counters.notices_received, notices.len() as u64);
        let mut shard = self.shard(p);
        for n in notices {
            debug_assert_ne!(n.interval.proc(), p, "no notices for own intervals");
            let entry = &mut shard.pages[n.page.index()];
            entry.pending.push(n.interval);
            if self.cfg.policy == Policy::Invalidate && entry.valid {
                entry.valid = false;
                bump(&self.counters.invalidations, 1);
            }
        }
    }

    /// All pending diffs of pages `p` has a copy of (the update policy's
    /// working set at acquires and barriers).
    fn needed_for_cached_pages(&self, p: ProcId) -> Vec<(IntervalId, PageId)> {
        let shard = self.shard(p);
        let mut needed = Vec::new();
        for (gi, entry) in shard.pages.iter().enumerate() {
            if entry.copy.is_some() && !entry.pending.is_empty() {
                let g = PageId::new(gi as u32);
                needed.extend(entry.pending.iter().map(|&iv| (iv, g)));
            }
        }
        needed
    }

    /// Wire size of a batch of diffs supplied by one processor: per page,
    /// the chain is squashed in happened-before order before shipping, so
    /// overwritten modifications never cross the wire (§4.3.2's pruning of
    /// intervals "in which the modification was overwritten").
    fn diff_payload(&self, store: &IntervalStore, diffs: &[(IntervalId, PageId)]) -> u64 {
        let mut by_page: Vec<(PageId, Vec<IntervalId>)> = Vec::new();
        for &(iv, g) in diffs {
            match by_page.iter_mut().find(|(page, _)| *page == g) {
                Some((_, ivs)) => ivs.push(iv),
                None => by_page.push((g, vec![iv])),
            }
        }
        let mut total = 0u64;
        for (g, mut ivs) in by_page {
            ivs.sort_by_key(|&iv| {
                let w = store
                    .stamp(iv)
                    .expect("planned interval recorded")
                    .clock()
                    .weight();
                (w, iv.proc(), iv.seq())
            });
            let chain: Vec<&Diff> = ivs
                .iter()
                .map(|&iv| store.diff(iv, g).expect("planned diff exists"))
                .collect();
            total += if chain.len() == 1 {
                chain[0].encoded_size() as u64
            } else {
                Diff::squash(chain).encoded_size() as u64
            };
        }
        total
    }

    /// One request/reply exchange fetching `diffs` from `target` (used by
    /// the barrier paths, which run exclusively and may hold the store
    /// lock across the charge; the acquire and miss paths precompute
    /// payloads from their read snapshot and charge lock-free instead).
    fn fetch_round_trip(
        &self,
        store: &IntervalStore,
        p: ProcId,
        target: ProcId,
        diffs: &[(IntervalId, PageId)],
        request: MsgKind,
        reply: MsgKind,
    ) {
        let request_payload = diffs.len() as u64 * DIFF_REQUEST_ENTRY_BYTES;
        let reply_payload = if self.cfg.full_page_misses && request == MsgKind::MissRequest {
            // Ablation of §4.3.3: the reply ships whole pages instead of
            // diffs.
            let mut pages: Vec<PageId> = diffs.iter().map(|&(_, g)| g).collect();
            pages.sort();
            pages.dedup();
            pages.len() as u64 * self.space.page_size().bytes() as u64
        } else {
            self.diff_payload(store, diffs)
        };
        self.net
            .round_trip(p, target, request, request_payload, reply, reply_payload);
    }

    /// Applies every diff of a plan to `p`'s copies in happened-before
    /// order, page by page, and marks the touched pages valid. Returns the
    /// number of distinct pages touched.
    fn apply_plan(&self, store: &mut IntervalStore, p: ProcId, plan: &FetchPlan) -> usize {
        let mut all: Vec<(IntervalId, PageId)> = plan.from_free.clone();
        for (_, diffs) in &plan.targets {
            all.extend_from_slice(diffs);
        }
        if all.is_empty() {
            return 0;
        }
        // Linear extension of happened-before: stamp weight, then id.
        all.sort_by_key(|&(iv, _)| {
            let w = store
                .stamp(iv)
                .expect("planned interval recorded")
                .clock()
                .weight();
            (w, iv.proc(), iv.seq())
        });
        if self.cfg.mutation == ProtocolMutation::WrongDiffOrder {
            // Mutation testing: apply the chain newest-first, so the
            // oldest modification clobbers the newest whenever a page
            // pulls more than one diff. The history checker must reject
            // the run.
            all.reverse();
        }
        let mut shard = self.shard(p);
        let mut touched: Vec<PageId> = Vec::new();
        for (iv, g) in all {
            // Split borrow: the holder bit flips and the diff is applied
            // straight out of the store — no per-diff clone on the hot
            // miss path.
            let diff = store.hold_and_diff(p, iv, g).expect("planned diff exists");
            let entry = &mut shard.pages[g.index()];
            let copy = entry.copy_mut(self.space.page_size());
            diff.apply_to(copy);
            if let Some(twin) = entry.twin.as_mut() {
                // Concurrent writer here: keep the twin in sync so this
                // processor's own diff stays minimal and correct.
                diff.apply_to(twin);
            }
            bump(&self.counters.diffs_applied, 1);
            touched.push(g);
        }
        touched.sort();
        touched.dedup();
        let count = touched.len();
        for g in touched {
            let entry = &mut shard.pages[g.index()];
            entry.pending.clear();
            entry.valid = true;
        }
        count
    }

    /// Resolves an access miss on `page` at `p` (§4.3.2/§4.3.3): pulls the
    /// needed diffs from the concurrent last modifiers (2m messages), plus
    /// a base copy if the page was never resident.
    ///
    /// Holds `page`'s gate for the whole resolution (same-page followers
    /// wait on this resolver), but no store lock across the fetch: the
    /// plan and its payload sizes come from a read snapshot, the round
    /// trips are charged lock-free, and the write lock is taken only to
    /// apply — after revalidating the snapshot's store version.
    fn resolve_miss(&self, p: ProcId, page: PageId) {
        let (_inflight, overlapped) = self.enter_slow_path();
        let (_miss_inflight, miss_others) = InFlight::enter(&self.miss_inflight);
        raise(&self.counters.miss_inflight_peak, miss_others + 1);
        let mut waited = false;
        let _serial = self.serial_gate(&mut waited);
        let _gate = gate_lock(&self.page_gates[page.index()], &mut waited);
        self.settle_slow_entry(waited, overlapped);

        {
            let shard = self.shard(p);
            if shard.pages[page.index()].valid {
                // Resolved while this processor waited for the gate (only
                // possible through this processor's own earlier call).
                return;
            }
        }
        let mut first_attempt = true;
        loop {
            // Snapshot phase: pending list, plan, and payload sizes all
            // read under ONE store read guard. The pending list must not
            // be read before the guard is taken: garbage collection
            // clears pendings and the interval history together under the
            // store's write lock, so a pre-guard pending snapshot could
            // name intervals the guarded store no longer records and
            // panic `FetchPlan::build` instead of reaching the version
            // revalidation below.
            let store = self.store.read();
            let (cold, needed) = {
                let shard = self.shard(p);
                let entry = &shard.pages[page.index()];
                let needed: Vec<(IntervalId, PageId)> =
                    entry.pending.iter().map(|&iv| (iv, page)).collect();
                (entry.copy.is_none(), needed)
            };
            if first_attempt {
                if cold {
                    bump(&self.counters.cold_misses, 1);
                } else {
                    bump(&self.counters.warm_misses, 1);
                }
            }
            let gc_owner = cold.then(|| self.gc_owner.lock()[page.index()]).flatten();

            let mut plan = FetchPlan::build(&store, p, None, &needed);
            let stale_dropped = self.stale_snapshot_drop(&store, &mut plan);
            let version = store.version();
            debug_assert!(
                !first_attempt || stale_dropped.is_some() || cold || !plan.is_empty(),
                "warm miss without pending diffs cannot occur"
            );

            // Cold miss: "a copy of the page may have to be retrieved"
            // (§4.3.3). The base ships from the first diff supplier when
            // there is one, from the post-GC owner if the history was
            // collected, and from the page's home (the initial contents)
            // otherwise.
            let mut base: Option<PageBuf> = None;
            let mut base_trip: Option<ProcId> = None;
            if cold {
                let supplier = plan
                    .targets
                    .first()
                    .map(|(t, _)| *t)
                    .or(gc_owner)
                    .unwrap_or_else(|| self.page_home(page));
                base = Some(if supplier == p {
                    // Only possible for the untouched-home case: the
                    // initial contents are local.
                    PageBuf::zeroed(self.space.page_size())
                } else {
                    let buf = {
                        let supplier_shard = self.shard(supplier);
                        let entry = &supplier_shard.pages[page.index()];
                        // Clone the supplier's *committed* contents without
                        // disturbing its state. A dirty page's live copy
                        // holds uncommitted open-interval writes that must
                        // not leak to the faulting processor before their
                        // release — the twin is the last committed contents
                        // (it is kept in sync with every applied diff). A
                        // never-touched home supplies the initial zero
                        // page.
                        match (&entry.twin, &entry.copy) {
                            (Some(twin), _) => twin.clone(),
                            (None, Some(copy)) => copy.clone(),
                            (None, None) => PageBuf::zeroed(self.space.page_size()),
                        }
                    };
                    // The base rides the first diff reply when the supplier
                    // is also a fetch target; otherwise it is its own round
                    // trip.
                    if plan.targets.first().is_none_or(|(t, _)| *t != supplier) {
                        base_trip = Some(supplier);
                    }
                    buf
                });
            }
            let page_bytes = self.space.page_size().bytes() as u64;
            let trips: Vec<(ProcId, u64, u64)> = plan
                .targets
                .iter()
                .enumerate()
                .map(|(i, (target, diffs))| {
                    if cold && i == 0 {
                        // The first supplier's reply also carries the base.
                        (
                            *target,
                            diffs.len() as u64 * DIFF_REQUEST_ENTRY_BYTES + PAGE_ID_BYTES,
                            self.diff_payload(&store, diffs) + page_bytes,
                        )
                    } else {
                        let reply = if self.cfg.full_page_misses {
                            // Ablation of §4.3.3: whole pages, not diffs.
                            // All of a miss's diffs name the missed page.
                            page_bytes
                        } else {
                            self.diff_payload(&store, diffs)
                        };
                        (
                            *target,
                            diffs.len() as u64 * DIFF_REQUEST_ENTRY_BYTES,
                            reply,
                        )
                    }
                })
                .collect();
            drop(store);

            // Fetch phase: round trips with no store lock held. A stalled
            // fetch here blocks only this page's gate.
            if let Some(supplier) = base_trip {
                self.net.round_trip(
                    p,
                    supplier,
                    MsgKind::MissRequest,
                    PAGE_ID_BYTES,
                    MsgKind::MissReply,
                    page_bytes,
                );
            }
            for (target, request, reply) in trips {
                self.net.round_trip(
                    p,
                    target,
                    MsgKind::MissRequest,
                    request,
                    MsgKind::MissReply,
                    reply,
                );
            }
            if let Some(hook) = self.fetch_hook.get() {
                hook(p, page);
            }

            // Apply phase: revalidate the snapshot, then apply under the
            // write lock.
            let mut wstore = self.store.write();
            if wstore.version() != version
                && self.cfg.mutation != ProtocolMutation::StaleSnapshotApply
            {
                bump(&self.counters.snapshot_retries, 1);
                drop(wstore);
                first_attempt = false;
                continue;
            }
            if let Some(buf) = base {
                self.shard(p).pages[page.index()].copy = Some(buf);
            }
            self.apply_plan(&mut wstore, p, &plan);
            drop(wstore);
            let mut shard = self.shard(p);
            let entry = &mut shard.pages[page.index()];
            entry.pending.clear();
            entry.valid = true;
            return;
        }
    }

    /// Completes a barrier episode at `master`: merge all knowledge, send
    /// exit messages with the notices each processor lacks, and apply the
    /// policy. Runs on the last arriver's thread; every other processor is
    /// parked by the runtime awaiting the episode, so the completion holds
    /// the store's write lock across the whole compound update.
    fn complete_barrier(&self, master: ProcId) {
        let n = self.cfg.n_procs;
        // A dead processor contributes its knowledge (its frozen clock
        // names only intervals that were flushed into the store when it
        // was declared dead) but receives nothing: no exit message, no
        // notices, no clock merge. Its frames were reset at death — the
        // catch-up happens at rejoin, against its checkpoint.
        let dead: Vec<bool> = ProcId::all(n).map(|r| self.shard(r).dead).collect();
        let mut merged = VectorClock::new(n);
        for r in ProcId::all(n) {
            merged.merge(&Self::knowledge_of(&self.shard(r).clock, r));
        }
        let mut store = self.store.write();
        // Compute per-processor missing notices against pre-merge clocks.
        let missing: Vec<Vec<crate::WriteNotice>> = ProcId::all(n)
            .map(|r| {
                if dead[r.index()] {
                    return Vec::new();
                }
                if self.cfg.mutation == ProtocolMutation::DroppedClockMerge {
                    // Mutation testing: the master computes each
                    // processor's exit notices against that processor's
                    // OWN knowledge instead of the episode's merged clock
                    // — nobody learns what their peers wrote before the
                    // barrier. Clocks still merge below, so the loss is
                    // silent. The history checker must reject the run.
                    let own = Self::knowledge_of(&self.shard(r).clock, r);
                    store.notices_missing(&self.shard(r).clock, &own)
                } else {
                    store.notices_missing(&self.shard(r).clock, &merged)
                }
            })
            .collect();
        for r in ProcId::all(n) {
            if dead[r.index()] {
                continue;
            }
            if r != master {
                let payload =
                    BARRIER_ID_BYTES + vc_bytes(n) + Self::notice_bytes(&missing[r.index()]);
                self.net.send(master, r, MsgKind::BarrierExit, payload);
            }
            self.deliver_notices(r, &missing[r.index()]);
            self.shard(r).clock.merge(&merged);
        }
        if self.cfg.policy == Policy::Update {
            // Every processor pulls the diffs for its cached pages: one
            // round trip per (cacher, modifier) pair — Table 1's `2u`.
            for r in ProcId::all(n) {
                if dead[r.index()] {
                    continue;
                }
                let needed = self.needed_for_cached_pages(r);
                let plan = FetchPlan::build(&store, r, None, &needed);
                for (target, diffs) in &plan.targets {
                    self.fetch_round_trip(
                        &store,
                        r,
                        *target,
                        diffs,
                        MsgKind::BarrierDiffRequest,
                        MsgKind::BarrierDiffReply,
                    );
                }
                let touched = self.apply_plan(&mut store, r, &plan);
                bump(&self.counters.updates, touched as u64);
            }
        }
        bump(&self.counters.barrier_episodes, 1);
        // Garbage collection normally pauses while any processor is down:
        // clearing the interval history would strand both the rejoin
        // catch-up (the era guard would reject the checkpoint) and cold
        // misses whose authoritative owner is the dead processor's reset
        // frame. A configured death lease bounds that pause: once every
        // dead processor has missed at least `death_lease_episodes`
        // completed episodes, its lease is marked expired and collection
        // proceeds — re-homing dead-owned pages onto live frames first —
        // after which an expired processor can only cold-join from a
        // checkpoint of the new era. Each deferred round bumps
        // `gc_deferrals`, so the stall stays observable and bounded.
        if self.cfg.gc_at_barriers {
            let any_dead = dead.iter().any(|&d| d);
            if !any_dead {
                self.collect_garbage(&mut store, &dead);
            } else {
                let episode = self.counters.snapshot().barrier_episodes;
                let all_dead = dead.iter().all(|&d| d);
                let leases_expired = !all_dead
                    && self.cfg.death_lease_episodes.is_some_and(|lease| {
                        ProcId::all(n)
                            .filter(|r| dead[r.index()])
                            .all(|r| episode.saturating_sub(self.shard(r).dead_since) >= lease)
                    });
                if leases_expired {
                    for r in ProcId::all(n).filter(|r| dead[r.index()]) {
                        self.shard(r).lease_expired = true;
                    }
                    self.collect_garbage(&mut store, &dead);
                } else {
                    bump(&self.counters.gc_deferrals, 1);
                }
            }
        }
    }

    /// Barrier-time garbage collection (TreadMarks-style): every processor
    /// brings its resident pages fully up to date (charged as barrier
    /// traffic), pages never cached anywhere keep only an owner pointer,
    /// and the entire interval/diff history is discarded — bumping the
    /// store's snapshot version so any in-flight plan would revalidate.
    /// Safe exactly at barrier completion, when every interval has
    /// performed everywhere.
    fn collect_garbage(&self, store: &mut IntervalStore, dead: &[bool]) {
        let n = self.cfg.n_procs;
        // Validate every resident copy (the update policy already did).
        if self.cfg.policy == Policy::Invalidate {
            for r in ProcId::all(n) {
                if dead[r.index()] {
                    // A dead processor's frames were reset at death:
                    // nothing resident to validate.
                    continue;
                }
                let needed = self.needed_for_cached_pages(r);
                if needed.is_empty() {
                    continue;
                }
                let plan = FetchPlan::build(store, r, None, &needed);
                for (target, diffs) in &plan.targets {
                    self.fetch_round_trip(
                        store,
                        r,
                        *target,
                        diffs,
                        MsgKind::BarrierDiffRequest,
                        MsgKind::BarrierDiffReply,
                    );
                }
                let touched = self.apply_plan(store, r, &plan);
                bump(&self.counters.gc_validated_pages, touched as u64);
            }
        }
        // Record the authoritative owner of every page whose history is
        // about to disappear, then drop the history and dangling notices.
        {
            let mut gc_owner = self.gc_owner.lock();
            for (page, owner) in store.latest_writers() {
                gc_owner[page.index()] = Some(owner);
            }
        }
        if dead.iter().any(|&d| d) {
            self.rehome_dead_owned_pages(store, dead);
        }
        for r in ProcId::all(n) {
            let mut shard = self.shard(r);
            for entry in &mut shard.pages {
                entry.pending.clear();
            }
        }
        store.clear();
        bump(&self.counters.gc_rounds, 1);
    }

    /// Re-homes every page whose post-GC authoritative owner is dead onto
    /// a live processor, so the history can be collected while the owner
    /// is down without losing the only committed copy (a dead processor's
    /// frames were reset at death, so it can supply nothing).
    ///
    /// Per page, in preference order: a live processor already holding a
    /// resident copy — just brought fully up to date by the collection
    /// pass — becomes the owner with no data movement; otherwise the page
    /// is materialized from the death escrow (its committed contents at
    /// the owner's death, zero if it was never written before this era)
    /// plus the current era's diff chain applied in happened-before
    /// order, and installed valid into the lowest-numbered live
    /// processor's frame. Installing valid is sound exactly here, at
    /// barrier completion: every recorded interval has performed at every
    /// live processor. The bytes come from the local escrow replica, not
    /// the fabric, so no messages are charged.
    fn rehome_dead_owned_pages(&self, store: &IntervalStore, dead: &[bool]) {
        let n = self.cfg.n_procs;
        let orphaned: Vec<PageId> = {
            let gc_owner = self.gc_owner.lock();
            gc_owner
                .iter()
                .enumerate()
                .filter(|(_, owner)| owner.is_some_and(|o| dead[o.index()]))
                .map(|(gi, _)| PageId::new(gi as u32))
                .collect()
        };
        if orphaned.is_empty() {
            return;
        }
        let fallback = ProcId::all(n)
            .find(|r| !dead[r.index()])
            .expect("re-homing requires a live processor");
        for page in orphaned {
            let resident = ProcId::all(n)
                .find(|&r| !dead[r.index()] && self.shard(r).pages[page.index()].copy.is_some());
            let new_owner = match resident {
                Some(r) => r,
                None => {
                    let mut buf = self
                        .escrow
                        .lock()
                        .get(&page)
                        .cloned()
                        .unwrap_or_else(|| PageBuf::zeroed(self.space.page_size()));
                    let mut chain = store.diff_intervals_of_page(page);
                    chain.sort_by_key(|&iv| {
                        let w = store
                            .stamp(iv)
                            .expect("recorded interval has a stamp")
                            .clock()
                            .weight();
                        (w, iv.proc(), iv.seq())
                    });
                    for iv in chain {
                        store
                            .diff(iv, page)
                            .expect("listed diff exists")
                            .apply_to(&mut buf);
                    }
                    {
                        let mut shard = self.shard(fallback);
                        let entry = &mut shard.pages[page.index()];
                        entry.copy = Some(buf);
                        entry.valid = true;
                    }
                    fallback
                }
            };
            self.gc_owner.lock()[page.index()] = Some(new_owner);
            self.escrow.lock().remove(&page);
        }
    }

    // ---- crash tolerance ----

    /// True if `p` has been declared dead and has not rejoined.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn is_dead(&self, p: ProcId) -> bool {
        self.shard(p).dead
    }

    /// True while any processor is dead with an *unexpired* rejoin lease.
    ///
    /// This is the window in which automatic checkpoint cuts must pause:
    /// death resets the processor's frames, so a cut taken now would
    /// record empty frames under a clock that still claims knowledge of
    /// the processor's own intervals — poisoning it as a rejoin source
    /// (the catch-up delivery would skip exactly the history the frames
    /// no longer hold). The pre-death death cut stays the newest
    /// recoverable state until the processor rejoins, or its lease
    /// expires and garbage collection re-homes its pages — after which
    /// post-GC cuts are valid cold-join sources again.
    pub fn awaiting_rejoin(&self) -> bool {
        ProcId::all(self.cfg.n_procs).any(|p| {
            let shard = self.shard(p);
            shard.dead && !shard.lease_expired
        })
    }

    /// Declares `p` dead on the survivors' behalf.
    ///
    /// The crash model is a compute-client failure: engine operations are
    /// atomic, so the crash lands *between* operations. The engine first
    /// flushes `p`'s open interval (all its committed writes become one
    /// closed interval in the store — exactly what `p`'s next release
    /// would have published), then force-releases every lock `p` holds
    /// (each recorded as an ordinary release so the history stays
    /// checkable), records the crash marker, resets `p`'s frames to cold,
    /// and completes any barrier episode that was waiting only on `p`.
    ///
    /// The flush comes *before* the lock releases: the moment a
    /// force-released lock is grantable, the next acquirer reads `p`'s
    /// clock, which must already cover the flushed interval.
    ///
    /// `p`'s clock stays frozen (it is valid knowledge), its frames are
    /// discarded (a real crash loses them — rejoin restores a checkpoint
    /// instead), and every subsequent operation by `p` panics until
    /// [`LrcEngine::rejoin`].
    ///
    /// The caller (the runtime's failure detector) must ensure `p`'s
    /// driving thread has stopped issuing operations.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or already dead.
    pub fn declare_dead(&self, p: ProcId) -> DeathReport {
        {
            let mut shard = self.shard(p);
            assert!(!shard.dead, "processor {p} is already dead");
            shard.dead = true;
            shard.dead_since = self.counters.snapshot().barrier_episodes;
        }
        // Flush: every write of the open interval becomes durable history.
        self.close_interval(p);
        let held = self.locks.lock().held_by(p);
        let mut released = Vec::with_capacity(held.len());
        for lock in held {
            // Serialize with in-flight acquires of this lock, like any
            // release would.
            let mut waited = false;
            let _gate = self
                .lock_gates
                .get(lock.index())
                .map(|g| gate_lock(g, &mut waited));
            let grant = self
                .locks
                .lock()
                .release(p, lock)
                .expect("dead holder releases its own lock");
            if let Some(rec) = self.recorder() {
                rec.release(p, lock, grant);
            }
            bump(&self.counters.releases, 1);
            released.push(lock);
        }
        if let Some(rec) = self.recorder() {
            rec.crash(p);
        }
        // Park the committed contents of every page whose post-GC
        // authoritative owner is `p`: the frames are about to be reset,
        // and a lease-expired collection must still be able to re-home
        // those pages onto live frames (cold misses would otherwise read
        // zeros). The store read lock serializes this scan with a
        // concurrent collection rewriting the owner map. Consumed by
        // `rehome_dead_owned_pages`.
        let owned: Vec<PageId> = {
            let _store = self.store.read();
            let gc_owner = self.gc_owner.lock();
            gc_owner
                .iter()
                .enumerate()
                .filter(|(_, owner)| **owner == Some(p))
                .map(|(gi, _)| PageId::new(gi as u32))
                .collect()
        };
        if !owned.is_empty() {
            let shard = self.shard(p);
            let mut escrow = self.escrow.lock();
            for page in owned {
                let entry = &shard.pages[page.index()];
                // Post-flush, the committed contents are the copy (the
                // twin-first match mirrors the cold-miss supplier path and
                // covers a capture racing an open interval).
                let committed = match (&entry.twin, &entry.copy) {
                    (Some(twin), _) => Some(twin.clone()),
                    (None, Some(copy)) => Some(copy.clone()),
                    (None, None) => None,
                };
                if let Some(buf) = committed {
                    escrow.insert(page, buf);
                }
            }
        }
        {
            let mut shard = self.shard(p);
            shard.dirty.clear();
            for entry in &mut shard.pages {
                *entry = PageEntry::default();
            }
        }
        let completed_episodes = self.barriers.lock().mark_dead(p);
        for &(barrier, _) in &completed_episodes {
            let master = self.barriers.lock().master(barrier);
            self.complete_barrier(master);
        }
        DeathReport {
            released,
            completed_episodes,
        }
    }

    /// Checks that a checkpoint describes this engine's shape.
    fn check_shape(&self, ckpt: &crate::EngineCheckpoint) -> Result<(), crate::CheckpointError> {
        let (n, page_bytes, n_pages) = (
            self.cfg.n_procs,
            self.space.page_size().bytes(),
            self.space.n_pages() as usize,
        );
        if (ckpt.n_procs, ckpt.page_bytes, ckpt.n_pages) != (n, page_bytes, n_pages)
            || ckpt.procs.len() != n
            || ckpt.owners.len() != n_pages
        {
            return Err(crate::CheckpointError::Incompatible(format!(
                "checkpoint is {}×{}B×{} pages, engine is {n}×{page_bytes}B×{n_pages}",
                ckpt.n_procs, ckpt.page_bytes, ckpt.n_pages
            )));
        }
        for proc in &ckpt.procs {
            for frame in &proc.frames {
                if frame.page.index() >= n_pages {
                    return Err(crate::CheckpointError::Incompatible(format!(
                        "frame page {} out of range",
                        frame.page
                    )));
                }
                if frame
                    .contents
                    .as_ref()
                    .is_some_and(|c| c.len() != page_bytes)
                {
                    return Err(crate::CheckpointError::Incompatible(
                        "frame contents are not page-sized".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Rebuilds one frame from its checkpoint.
    fn restore_frame(&self, shard: &mut ProcShard, frame: &crate::FrameCheckpoint) {
        let entry = &mut shard.pages[frame.page.index()];
        if let Some(contents) = &frame.contents {
            let mut buf = PageBuf::zeroed(self.space.page_size());
            buf.write(0, contents);
            entry.copy = Some(buf);
        }
        entry.valid = frame.valid;
        entry.pending = frame.pending.clone();
    }

    /// Records one checkpoint cut shipped by the runtime's automatic
    /// policy: bumps [`LazyCounters::checkpoints_cut`] and adds the
    /// encoded bytes that went to the sink (a delta counts its delta
    /// size, not the full cut it stands for) to
    /// [`LazyCounters::delta_bytes`]. Pure statistics — the cut itself is
    /// [`LrcEngine::checkpoint`].
    pub fn note_checkpoint(&self, shipped_bytes: u64) {
        bump(&self.counters.checkpoints_cut, 1);
        bump(&self.counters.delta_bytes, shipped_bytes);
    }

    /// Captures a checkpoint of the whole engine.
    ///
    /// Call at a synchronization point — in practice right after a barrier
    /// episode completes, before any processor issues its next operation —
    /// so the cut is consistent. The capture itself tolerates open
    /// intervals: a dirty page contributes its *twin* (the committed
    /// contents), so uncommitted writes are never checkpointed, exactly as
    /// a real crash would lose them.
    pub fn checkpoint(&self) -> crate::EngineCheckpoint {
        let store = self.store.read();
        let owners = self.gc_owner.lock().clone();
        let n = self.cfg.n_procs;
        let mut procs = Vec::with_capacity(n);
        for p in ProcId::all(n) {
            let shard = self.shard(p);
            let mut frames = Vec::new();
            for (gi, entry) in shard.pages.iter().enumerate() {
                let contents = match (&entry.twin, &entry.copy) {
                    (Some(twin), _) => Some(twin.as_bytes().to_vec()),
                    (None, Some(copy)) => Some(copy.as_bytes().to_vec()),
                    (None, None) => None,
                };
                let frame = crate::FrameCheckpoint {
                    page: PageId::new(gi as u32),
                    contents,
                    valid: entry.valid,
                    pending: entry.pending.clone(),
                };
                if !frame.is_default() {
                    frames.push(frame);
                }
            }
            procs.push(crate::ProcCheckpoint {
                clock: shard.clock.clone(),
                frames,
            });
        }
        crate::EngineCheckpoint {
            n_procs: n,
            page_bytes: self.space.page_size().bytes(),
            n_pages: self.space.n_pages() as usize,
            episode: self.counters.snapshot().barrier_episodes,
            store_era: store.version(),
            owners,
            store: store.export(),
            procs,
        }
    }

    /// Restores a whole-engine checkpoint into this (freshly built)
    /// engine: the interval store, owner table, and every processor's
    /// frames and clock are replaced. Locks must be free and no barrier
    /// episode in progress — the checkpoint was cut at a synchronization
    /// point, and lock/barrier state is not checkpointed.
    ///
    /// # Errors
    ///
    /// [`crate::CheckpointError::Incompatible`] if the checkpoint
    /// describes a different engine shape.
    pub fn restore(&self, ckpt: &crate::EngineCheckpoint) -> Result<(), crate::CheckpointError> {
        self.check_shape(ckpt)?;
        let mut store = self.store.write();
        *store = IntervalStore::import(self.cfg.n_procs, ckpt.store_era, &ckpt.store);
        *self.gc_owner.lock() = ckpt.owners.clone();
        self.escrow.lock().clear();
        for p in ProcId::all(self.cfg.n_procs) {
            let mut shard = self.shard(p);
            shard.clock = ckpt.procs[p.index()].clock.clone();
            shard.dirty.clear();
            shard.dead = false;
            shard.dead_since = 0;
            shard.lease_expired = false;
            for entry in &mut shard.pages {
                *entry = PageEntry::default();
            }
            for frame in &ckpt.procs[p.index()].frames {
                self.restore_frame(&mut shard, frame);
            }
        }
        Ok(())
    }

    /// Rejoins dead processor `p` from a checkpoint of this run.
    ///
    /// The checkpoint's frames and clock are restored, then `p` catches up
    /// through the normal protocol: every write notice between the
    /// checkpoint's knowledge and the cluster's current knowledge (the
    /// survivors' merged clocks, plus `p`'s own intervals flushed at
    /// death) is delivered into the restored frames, and any page with
    /// unapplied notices is invalidated — under *both* policies — so the
    /// next access pulls diffs through the ordinary miss path. Diffs of
    /// `p`'s own flushed intervals are reapplied from local possession
    /// (see [`FetchPlan::build`]).
    ///
    /// After rejoin the application must resynchronize (acquire or
    /// barrier) before trusting shared data, like any release-consistent
    /// reader.
    ///
    /// # Errors
    ///
    /// [`crate::CheckpointError::Incompatible`] if the shape mismatches,
    /// `p` is not dead, or the store has been garbage-collected since the
    /// checkpoint was captured (the catch-up history is gone — restart
    /// from a full restore instead).
    /// [`crate::CheckpointError::LeaseExpired`] when that collection was
    /// the deliberate result of `p`'s rejoin lease running out
    /// ([`LrcConfig::death_lease_episodes`]): no pre-collection checkpoint
    /// can ever succeed again, so the node must cold-join from the latest
    /// checkpoint shipped after the collection.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn rejoin(
        &self,
        p: ProcId,
        ckpt: &crate::EngineCheckpoint,
    ) -> Result<(), crate::CheckpointError> {
        self.check_shape(ckpt)?;
        let n = self.cfg.n_procs;
        {
            let store = self.store.read();
            if store.version() != ckpt.store_era {
                let why = format!(
                    "store era {} differs from checkpoint era {}: the \
                     catch-up history was garbage-collected",
                    store.version(),
                    ckpt.store_era
                );
                // A lease-expired processor's history was collected *on
                // purpose*: the typed error tells the runtime to cold-join
                // from the latest shipped checkpoint instead of retrying.
                return Err(if self.shard(p).lease_expired {
                    crate::CheckpointError::LeaseExpired(why)
                } else {
                    crate::CheckpointError::Incompatible(why)
                });
            }
            // Target knowledge: the checkpoint's own view, every live
            // survivor's knowledge, and p's own flushed intervals.
            let ckpt_clock = &ckpt.procs[p.index()].clock;
            let have = Self::knowledge_of(ckpt_clock, p);
            let mut want = have.clone();
            for r in ProcId::all(n) {
                if r == p {
                    continue;
                }
                let shard_r = self.shard(r);
                if !shard_r.dead {
                    want.merge(&Self::knowledge_of(&shard_r.clock, r));
                }
            }
            let latest = store.latest_seq(p);
            if want.get(p) < latest {
                want.set(p, latest);
            }
            let notices = store.notices_missing(&have, &want);

            let mut shard = self.shard(p);
            if !shard.dead {
                return Err(crate::CheckpointError::Incompatible(format!(
                    "processor {p} is not declared dead"
                )));
            }
            shard.dirty.clear();
            for entry in &mut shard.pages {
                *entry = PageEntry::default();
            }
            for frame in &ckpt.procs[p.index()].frames {
                self.restore_frame(&mut shard, frame);
            }
            // Catch-up delivery. Unlike deliver_notices this may carry
            // p's *own* post-checkpoint intervals, and it invalidates
            // under the update policy too: rejoin is not an acquire, so
            // nothing will pull for cached pages afterwards — the miss
            // path must.
            bump(&self.counters.notices_received, notices.len() as u64);
            for notice in &notices {
                let entry = &mut shard.pages[notice.page.index()];
                entry.pending.push(notice.interval);
                if entry.valid {
                    entry.valid = false;
                    bump(&self.counters.invalidations, 1);
                }
            }
            // Advance the clock past everything just delivered, so the
            // next synchronization does not re-deliver the same notices
            // (duplicate pendings would poison the fetch planner). The
            // own entry reopens past both the checkpoint's open interval
            // and the flushed history.
            let mut clock = ckpt_clock.clone();
            clock.merge(&want);
            clock.set(p, ckpt_clock.get(p).max(latest + 1));
            shard.clock = clock;
            shard.dead = false;
            shard.dead_since = 0;
            shard.lease_expired = false;
        }
        self.barriers.lock().revive(p);
        Ok(())
    }
}
