use std::collections::HashMap;

use lrc_pagemem::PageId;
use lrc_vclock::{IntervalId, ProcId};

use crate::IntervalStore;

/// A plan for fetching a set of needed diffs.
///
/// Built by [`FetchPlan::build`]: needed diffs are assigned either to the
/// `free_source` (a processor we are already exchanging messages with — the
/// lock grantor, whose diffs piggyback on the grant) or to explicit fetch
/// *targets*, each costing one request/reply round trip. Targets are chosen
/// greedily from the creators of causally-latest diffs, so a chain of
/// migratory modifications is served by its **concurrent last modifiers**
/// only — the paper's `m` (misses) and `h` (LU acquires) quantities equal
/// [`FetchPlan::target_count`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FetchPlan {
    /// Diffs that ride an existing message exchange (no extra messages).
    pub from_free: Vec<(IntervalId, PageId)>,
    /// Explicit targets: processor → diffs it supplies.
    pub targets: Vec<(ProcId, Vec<(IntervalId, PageId)>)>,
}

impl FetchPlan {
    /// Plans fetching `needed` diffs for processor `for_proc`.
    ///
    /// `needed` must be free of duplicates. `free_source` is a processor
    /// whose reply is already being paid for (e.g. the lock grantor);
    /// `None` when there is no such processor (access misses, barriers).
    ///
    /// Assignment order runs from causally latest to earliest (by stamp
    /// weight), so each new target is a *last* modifier; diffs it also
    /// holds (its chain) are assigned to it without new targets.
    pub fn build(
        store: &IntervalStore,
        for_proc: ProcId,
        free_source: Option<ProcId>,
        needed: &[(IntervalId, PageId)],
    ) -> FetchPlan {
        let mut order: Vec<(u64, IntervalId, PageId)> = needed
            .iter()
            .map(|&(iv, g)| {
                let weight = store
                    .stamp(iv)
                    .map(|s| s.clock().weight())
                    .expect("needed diff must have a recorded interval");
                (weight, iv, g)
            })
            .collect();
        // Latest first; ties broken deterministically.
        order.sort_by(|a, b| b.cmp(a));

        let mut plan = FetchPlan::default();
        let mut target_index: HashMap<ProcId, usize> = HashMap::new();
        for (_, iv, g) in order {
            // A diff the processor already holds costs no messages: it is
            // applied from local possession. In normal operation pending
            // diffs are never already held, so this arm is reserved for
            // crash recovery — a rejoined processor replaying the write
            // notices of its *own* post-checkpoint intervals (flushed into
            // the store when it was declared dead) finds itself the
            // recorded holder and reapplies them locally.
            if store.holds(for_proc, iv, g) {
                plan.from_free.push((iv, g));
                continue;
            }
            if free_source.is_some_and(|q| store.holds(q, iv, g)) {
                plan.from_free.push((iv, g));
                continue;
            }
            // Prefer an already-chosen target that holds the diff.
            let existing = plan
                .targets
                .iter()
                .position(|(t, _)| store.holds(*t, iv, g));
            let slot = match existing {
                Some(i) => i,
                None => {
                    // New target: the diff's creator always holds it.
                    let creator = iv.proc();
                    *target_index.entry(creator).or_insert_with(|| {
                        plan.targets.push((creator, Vec::new()));
                        plan.targets.len() - 1
                    })
                }
            };
            plan.targets[slot].1.push((iv, g));
        }
        plan
    }

    /// Number of explicit fetch targets (the paper's `m` / `h`).
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Total diffs fetched, across free and explicit sources.
    pub fn diff_count(&self) -> usize {
        self.from_free.len() + self.targets.iter().map(|(_, d)| d.len()).sum::<usize>()
    }

    /// True if nothing needs fetching.
    pub fn is_empty(&self) -> bool {
        self.from_free.is_empty() && self.targets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_pagemem::{Diff, PageBuf, PageSize};
    use lrc_vclock::{StampedInterval, VectorClock};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn g(i: u32) -> PageId {
        PageId::new(i)
    }

    fn diff1() -> Diff {
        let twin = PageBuf::zeroed(PageSize::new(64).unwrap());
        let mut cur = twin.clone();
        cur.write(0, &[1]);
        Diff::between(&twin, &cur)
    }

    /// Closes an interval for `proc` at `seq` writing `page`, with a clock
    /// covering `covers`.
    fn close(store: &mut IntervalStore, proc: u16, seq: u32, page: PageId, covers: &[(u16, u32)]) {
        let mut vc = VectorClock::new(4);
        vc.set(p(proc), seq);
        for &(q, s) in covers {
            vc.set(p(q), s);
        }
        store.close_interval(
            StampedInterval::new(IntervalId::new(p(proc), seq), vc),
            vec![(page, diff1())],
        );
    }

    #[test]
    fn empty_need_empty_plan() {
        let store = IntervalStore::new(4);
        let plan = FetchPlan::build(&store, p(0), None, &[]);
        assert!(plan.is_empty());
        assert_eq!(plan.target_count(), 0);
        assert_eq!(plan.diff_count(), 0);
    }

    #[test]
    fn migratory_chain_served_by_last_modifier() {
        // p1 writes page (interval 1), p2 learns it, fetches the diff, and
        // writes the page (interval 1 of p2). p0 then needs both diffs: the
        // single concurrent last modifier p2 supplies its chain, m = 1.
        let mut store = IntervalStore::new(4);
        let page = g(0);
        close(&mut store, 1, 1, page, &[]);
        let iv1 = IntervalId::new(p(1), 1);
        store.add_holder(p(2), iv1, page); // p2 fetched it on its own miss
        close(&mut store, 2, 1, page, &[(1, 1)]);
        let iv2 = IntervalId::new(p(2), 1);

        let plan = FetchPlan::build(&store, p(0), None, &[(iv1, page), (iv2, page)]);
        assert_eq!(plan.target_count(), 1, "one concurrent last modifier");
        assert_eq!(plan.targets[0].0, p(2));
        assert_eq!(plan.diff_count(), 2);
    }

    #[test]
    fn concurrent_modifiers_each_targeted() {
        // p1 and p2 write the page concurrently (false sharing): two
        // concurrent last modifiers, m = 2.
        let mut store = IntervalStore::new(4);
        let page = g(0);
        close(&mut store, 1, 1, page, &[]);
        close(&mut store, 2, 1, page, &[]);
        let needed = [
            (IntervalId::new(p(1), 1), page),
            (IntervalId::new(p(2), 1), page),
        ];
        let plan = FetchPlan::build(&store, p(0), None, &needed);
        assert_eq!(plan.target_count(), 2);
    }

    #[test]
    fn free_source_absorbs_its_diffs() {
        // The lock grantor p1 holds both diffs: everything piggybacks.
        let mut store = IntervalStore::new(4);
        let page = g(0);
        close(&mut store, 2, 1, page, &[]);
        let iv2 = IntervalId::new(p(2), 1);
        store.add_holder(p(1), iv2, page);
        close(&mut store, 1, 1, page, &[(2, 1)]);
        let iv1 = IntervalId::new(p(1), 1);

        let plan = FetchPlan::build(&store, p(0), Some(p(1)), &[(iv1, page), (iv2, page)]);
        assert_eq!(plan.target_count(), 0, "grantor supplies everything");
        assert_eq!(plan.from_free.len(), 2);
    }

    #[test]
    fn diffs_already_held_cost_no_messages() {
        // Crash recovery: a rejoined processor replans its own flushed
        // interval. It is the recorded holder, so the diff applies locally
        // — no free source, no fetch target.
        let mut store = IntervalStore::new(4);
        let page = g(0);
        close(&mut store, 0, 1, page, &[]);
        let own = IntervalId::new(p(0), 1);
        close(&mut store, 1, 2, page, &[(0, 1)]);
        let other = IntervalId::new(p(1), 2);

        let plan = FetchPlan::build(&store, p(0), None, &[(own, page), (other, page)]);
        assert_eq!(plan.from_free, vec![(own, page)]);
        assert_eq!(plan.target_count(), 1, "only the foreign diff is fetched");
        assert_eq!(plan.targets[0].0, p(1));
    }

    #[test]
    fn multi_page_fetch_batches_by_target() {
        // p1 modified two pages in one interval: one target, two diffs.
        let mut store = IntervalStore::new(4);
        let mut vc = VectorClock::new(4);
        vc.set(p(1), 1);
        store.close_interval(
            StampedInterval::new(IntervalId::new(p(1), 1), vc),
            vec![(g(0), diff1()), (g(1), diff1())],
        );
        let iv = IntervalId::new(p(1), 1);
        let plan = FetchPlan::build(&store, p(0), None, &[(iv, g(0)), (iv, g(1))]);
        assert_eq!(plan.target_count(), 1);
        assert_eq!(plan.targets[0].1.len(), 2);
    }
}
