use std::collections::HashMap;

use lrc_pagemem::{Diff, PageId};
use lrc_vclock::{IntervalId, ProcId, StampedInterval, VectorClock};

/// A write notice: page × interval, without the data (§4.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WriteNotice {
    /// The interval in which the page was modified.
    pub interval: IntervalId,
    /// The modified page.
    pub page: PageId,
}

/// One closed interval: its stamp plus the pages it modified.
#[derive(Clone, Debug)]
pub(crate) struct IntervalRecord {
    pub stamp: StampedInterval,
    pub pages: Vec<PageId>,
}

/// The system-wide interval, diff, and possession bookkeeping.
///
/// Conceptually each processor keeps its own interval records and diffs;
/// because the simulator has a global view, the store is shared and every
/// query is filtered by the asking processor's vector clock, so no
/// processor can observe intervals that have not performed at it.
///
/// Possession tracking records which processors hold each diff *as an
/// object* (creators, fetchers, and cold-miss recipients), which is what
/// lets a miss be served by the *concurrent last modifiers* only: a
/// modifier forwards the dominated diffs it holds along with its own
/// (§4.3.2).
#[derive(Clone, Debug, Default)]
pub struct IntervalStore {
    /// Closed, non-empty intervals per processor, in ascending seq order.
    records: Vec<Vec<IntervalRecord>>,
    /// Diff payloads, keyed by (interval, page).
    diffs: HashMap<(IntervalId, PageId), Diff>,
    /// Which processors hold each diff object (bitmask by proc index).
    holders: HashMap<(IntervalId, PageId), u64>,
    /// Louvre-style lightweight version: bumped by every *destructive*
    /// reorganization (today: [`IntervalStore::clear`], the barrier-time
    /// garbage collection). Additive mutations — closing intervals, adding
    /// holders — leave it unchanged, because a fetch plan built against an
    /// older snapshot stays applicable when the store only grew. Slow
    /// paths build plans under the read lock, note the version, fetch with
    /// no store lock held at all, and revalidate the version before
    /// applying under the write lock.
    version: u64,
}

impl IntervalStore {
    /// Creates an empty store for `n_procs` processors.
    pub fn new(n_procs: usize) -> Self {
        IntervalStore {
            records: vec![Vec::new(); n_procs],
            diffs: HashMap::new(),
            holders: HashMap::new(),
            version: 0,
        }
    }

    /// The store's snapshot version: unchanged by additive mutations,
    /// bumped by destructive reorganizations (garbage collection). A fetch
    /// plan built while the version was `v` may be applied as long as the
    /// version still reads `v`; otherwise the plan may reference discarded
    /// diffs and must be rebuilt.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Records a closed interval with its modified pages and their diffs.
    /// The creator holds all of its own diffs.
    ///
    /// # Panics
    ///
    /// Panics if the interval is out of seq order for its processor or a
    /// diff is missing for a listed page.
    pub(crate) fn close_interval(
        &mut self,
        stamp: StampedInterval,
        mut page_diffs: Vec<(PageId, Diff)>,
    ) {
        let id = stamp.id();
        let list = &mut self.records[id.proc().index()];
        if let Some(last) = list.last() {
            assert!(
                last.stamp.id().seq() < id.seq(),
                "interval {} closed out of order",
                id
            );
        }
        page_diffs.sort_by_key(|(g, _)| *g);
        let pages = page_diffs.iter().map(|(g, _)| *g).collect();
        for (page, diff) in page_diffs {
            self.diffs.insert((id, page), diff);
            self.holders.insert((id, page), 1u64 << id.proc().index());
        }
        list.push(IntervalRecord { stamp, pages });
    }

    /// The stamp of a recorded interval.
    pub(crate) fn stamp(&self, id: IntervalId) -> Option<&StampedInterval> {
        let list = &self.records[id.proc().index()];
        list.binary_search_by_key(&id.seq(), |r| r.stamp.id().seq())
            .ok()
            .map(|i| &list[i].stamp)
    }

    /// The diff of `(interval, page)`.
    pub fn diff(&self, interval: IntervalId, page: PageId) -> Option<&Diff> {
        self.diffs.get(&(interval, page))
    }

    /// True if `proc` holds the diff `(interval, page)` as an object.
    pub fn holds(&self, proc: ProcId, interval: IntervalId, page: PageId) -> bool {
        self.holders
            .get(&(interval, page))
            .is_some_and(|mask| mask & (1u64 << proc.index()) != 0)
    }

    /// Records that `proc` now holds the diff `(interval, page)`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `(interval, page)` names no recorded diff
    /// — a protocol bookkeeping bug (e.g. applying a garbage-collected
    /// diff) that would otherwise silently corrupt possession tracking.
    pub(crate) fn add_holder(&mut self, proc: ProcId, interval: IntervalId, page: PageId) {
        match self.holders.get_mut(&(interval, page)) {
            Some(mask) => *mask |= 1u64 << proc.index(),
            None => debug_assert!(
                false,
                "add_holder({proc}, {interval}, {page}): no such diff is recorded"
            ),
        }
    }

    /// Split-borrow fetch for the apply path: records `proc` as a holder of
    /// `(interval, page)` and returns the diff *by reference* in one call.
    ///
    /// `holders` and `diffs` are disjoint fields, so the mutable holder
    /// update and the shared diff borrow coexist — callers applying a plan
    /// no longer clone every diff out of the store just to appease the
    /// borrow checker (the hottest allocation on the miss path).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `(interval, page)` names no recorded diff
    /// (see [`IntervalStore::add_holder`]).
    pub(crate) fn hold_and_diff(
        &mut self,
        proc: ProcId,
        interval: IntervalId,
        page: PageId,
    ) -> Option<&Diff> {
        self.add_holder(proc, interval, page);
        self.diffs.get(&(interval, page))
    }

    /// All write notices of intervals of `creator` with sequence in
    /// `(after, upto]` — what a grantor sends an acquirer whose clock entry
    /// for `creator` is `after` when the grantor's knowledge is `upto`.
    pub fn notices_between(
        &self,
        creator: ProcId,
        after: u32,
        upto: u32,
    ) -> impl Iterator<Item = WriteNotice> + '_ {
        let list = &self.records[creator.index()];
        let start = list.partition_point(|r| r.stamp.id().seq() <= after);
        list[start..]
            .iter()
            .take_while(move |r| r.stamp.id().seq() <= upto)
            .flat_map(|r| {
                let id = r.stamp.id();
                r.pages
                    .iter()
                    .map(move |&page| WriteNotice { interval: id, page })
            })
    }

    /// All write notices a processor with knowledge `have` is missing
    /// relative to knowledge `want` (pointwise interval ranges).
    pub fn notices_missing(&self, have: &VectorClock, want: &VectorClock) -> Vec<WriteNotice> {
        let mut out = Vec::new();
        for (proc, upto) in want.iter() {
            let after = have.get(proc);
            if upto > after {
                out.extend(self.notices_between(proc, after, upto));
            }
        }
        out
    }

    /// Number of recorded (non-empty) intervals.
    pub fn interval_count(&self) -> usize {
        self.records.iter().map(Vec::len).sum()
    }

    /// Number of stored diffs.
    pub fn diff_count(&self) -> usize {
        self.diffs.len()
    }

    /// Total bytes of stored diff payloads (wire encoding).
    pub fn diff_bytes(&self) -> u64 {
        self.diffs.values().map(|d| d.encoded_size() as u64).sum()
    }

    /// All recorded intervals carrying a diff for `page` (unordered) —
    /// the garbage collector's re-homing pass materializes a dead-owned
    /// page by applying this set in happened-before order over its
    /// escrowed base.
    pub(crate) fn diff_intervals_of_page(&self, page: PageId) -> Vec<IntervalId> {
        self.diffs
            .keys()
            .filter(|&&(_, g)| g == page)
            .map(|&(iv, _)| iv)
            .collect()
    }

    /// The causally-latest recorded writer of every written page (by stamp
    /// weight, ties broken by processor id) — the processor a cold miss
    /// falls back to after the history is garbage-collected.
    pub fn latest_writers(&self) -> HashMap<PageId, ProcId> {
        let mut best: HashMap<PageId, (u64, ProcId)> = HashMap::new();
        for list in &self.records {
            for rec in list {
                let weight = rec.stamp.clock().weight();
                let proc = rec.stamp.id().proc();
                for &page in &rec.pages {
                    let entry = best.entry(page).or_insert((weight, proc));
                    if (weight, proc) > *entry {
                        *entry = (weight, proc);
                    }
                }
            }
        }
        best.into_iter().map(|(g, (_, p))| (g, p)).collect()
    }

    /// The highest closed-interval sequence number recorded for `p`
    /// (0 if none survives — empty intervals leave no records, and
    /// garbage collection discards them all).
    pub fn latest_seq(&self, p: ProcId) -> u32 {
        self.records[p.index()]
            .last()
            .map_or(0, |r| r.stamp.id().seq())
    }

    /// Exports every interval record with its diff payloads and holder
    /// masks — grouped by processor, ascending seq within each — the
    /// checkpoint serialization view of the store.
    pub(crate) fn export(&self) -> Vec<crate::StoreEntry> {
        self.records
            .iter()
            .flatten()
            .map(|rec| {
                let id = rec.stamp.id();
                let diffs = rec
                    .pages
                    .iter()
                    .map(|&g| (g, self.diffs[&(id, g)].clone(), self.holders[&(id, g)]))
                    .collect();
                (rec.stamp.clone(), diffs)
            })
            .collect()
    }

    /// Rebuilds a store from an exported view (the inverse of
    /// [`IntervalStore::export`]). `version` restores the snapshot era so
    /// the recovery guard against rejoining across a garbage collection
    /// keeps working after a whole-engine restore.
    ///
    /// # Panics
    ///
    /// Panics if a processor's intervals arrive out of seq order.
    pub(crate) fn import(
        n_procs: usize,
        version: u64,
        entries: &[crate::StoreEntry],
    ) -> IntervalStore {
        let mut store = IntervalStore::new(n_procs);
        store.version = version;
        for (stamp, diffs) in entries {
            let id = stamp.id();
            let list = &mut store.records[id.proc().index()];
            if let Some(last) = list.last() {
                assert!(
                    last.stamp.id().seq() < id.seq(),
                    "interval {} imported out of order",
                    id
                );
            }
            let mut pages = Vec::with_capacity(diffs.len());
            for (page, diff, mask) in diffs {
                pages.push(*page);
                store.diffs.insert((id, *page), diff.clone());
                store.holders.insert((id, *page), *mask);
            }
            list.push(IntervalRecord {
                stamp: stamp.clone(),
                pages,
            });
        }
        store
    }

    /// Discards every interval record, diff, and possession entry — the
    /// barrier-time garbage collection step. Callers must first ensure all
    /// processors have applied what they need.
    pub(crate) fn clear(&mut self) {
        for list in &mut self.records {
            list.clear();
        }
        self.diffs.clear();
        self.holders.clear();
        // Outstanding read snapshots now dangle: invalidate them.
        self.version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_pagemem::{PageBuf, PageSize};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn stamp(proc: u16, seq: u32, n: usize) -> StampedInterval {
        let mut vc = VectorClock::new(n);
        vc.set(p(proc), seq);
        StampedInterval::new(IntervalId::new(p(proc), seq), vc)
    }

    fn diff_of(bytes: &[u8]) -> Diff {
        let twin = PageBuf::zeroed(PageSize::new(64).unwrap());
        let mut cur = twin.clone();
        cur.write(0, bytes);
        Diff::between(&twin, &cur)
    }

    #[test]
    fn close_and_query_round_trip() {
        let mut s = IntervalStore::new(2);
        let g = PageId::new(3);
        s.close_interval(stamp(0, 1, 2), vec![(g, diff_of(&[1]))]);
        assert_eq!(s.interval_count(), 1);
        assert_eq!(s.diff_count(), 1);
        assert!(s.diff_bytes() > 0);
        let id = IntervalId::new(p(0), 1);
        assert!(s.stamp(id).is_some());
        assert!(s.diff(id, g).is_some());
        assert!(s.holds(p(0), id, g), "creator holds its diff");
        assert!(!s.holds(p(1), id, g));
        s.add_holder(p(1), id, g);
        assert!(s.holds(p(1), id, g));
    }

    #[test]
    fn notices_between_selects_seq_window() {
        let mut s = IntervalStore::new(1);
        let g = PageId::new(0);
        for seq in [1u32, 3, 5] {
            s.close_interval(stamp(0, seq, 1), vec![(g, diff_of(&[seq as u8]))]);
        }
        let got: Vec<u32> = s
            .notices_between(p(0), 1, 5)
            .map(|n| n.interval.seq())
            .collect();
        assert_eq!(got, vec![3, 5], "window is (after, upto]");
        assert_eq!(s.notices_between(p(0), 5, 5).count(), 0);
        assert_eq!(s.notices_between(p(0), 0, 2).count(), 1);
    }

    #[test]
    fn notices_missing_diffs_clocks() {
        let mut s = IntervalStore::new(2);
        let g = PageId::new(0);
        s.close_interval(stamp(0, 1, 2), vec![(g, diff_of(&[1]))]);
        s.close_interval(stamp(1, 2, 2), vec![(g, diff_of(&[2]))]);
        let mut have = VectorClock::new(2);
        have.set(p(0), 1); // already knows p0@1
        let mut want = VectorClock::new(2);
        want.set(p(0), 1);
        want.set(p(1), 2);
        let missing = s.notices_missing(&have, &want);
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].interval, IntervalId::new(p(1), 2));
    }

    #[test]
    fn empty_intervals_leave_no_records() {
        let s = IntervalStore::new(2);
        assert_eq!(s.interval_count(), 0);
        assert_eq!(
            s.notices_missing(&VectorClock::new(2), &VectorClock::new(2))
                .len(),
            0
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "no such diff"))]
    fn add_holder_rejects_unknown_diff() {
        let mut s = IntervalStore::new(2);
        let g = PageId::new(0);
        s.close_interval(stamp(0, 1, 2), vec![(g, diff_of(&[1]))]);
        // Wrong page for a real interval: bookkeeping bug, must fail loudly
        // in debug builds (and stay a no-op in release builds).
        s.add_holder(p(1), IntervalId::new(p(0), 1), PageId::new(7));
    }

    #[test]
    fn version_moves_only_on_destructive_reorganization() {
        let mut s = IntervalStore::new(2);
        assert_eq!(s.version(), 0);
        let g = PageId::new(0);
        s.close_interval(stamp(0, 1, 2), vec![(g, diff_of(&[1]))]);
        s.add_holder(p(1), IntervalId::new(p(0), 1), g);
        assert_eq!(s.version(), 0, "additive mutations keep snapshots valid");
        s.clear();
        assert_eq!(s.version(), 1, "garbage collection invalidates snapshots");
        s.clear();
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn export_import_round_trips_records_diffs_and_holders() {
        let mut s = IntervalStore::new(3);
        let g0 = PageId::new(0);
        let g1 = PageId::new(5);
        s.close_interval(
            stamp(0, 1, 3),
            vec![(g0, diff_of(&[1])), (g1, diff_of(&[2]))],
        );
        s.close_interval(stamp(1, 1, 3), vec![(g0, diff_of(&[3]))]);
        s.close_interval(stamp(0, 4, 3), vec![(g1, diff_of(&[4]))]);
        s.add_holder(p(2), IntervalId::new(p(0), 1), g0);
        s.clear(); // bump the era, then rebuild some history
        s.close_interval(stamp(2, 7, 3), vec![(g0, diff_of(&[5]))]);
        s.add_holder(p(0), IntervalId::new(p(2), 7), g0);

        let back = IntervalStore::import(3, s.version(), &s.export());
        assert_eq!(back.version(), s.version());
        assert_eq!(back.interval_count(), s.interval_count());
        assert_eq!(back.diff_count(), s.diff_count());
        assert_eq!(back.diff_bytes(), s.diff_bytes());
        assert_eq!(back.latest_seq(p(2)), 7);
        assert_eq!(back.latest_seq(p(1)), 0, "cleared history leaves no seq");
        let id = IntervalId::new(p(2), 7);
        assert!(back.holds(p(2), id, g0), "creator mask survives");
        assert!(back.holds(p(0), id, g0), "fetched-holder mask survives");
        assert_eq!(back.diff(id, g0), s.diff(id, g0));
    }

    #[test]
    fn latest_seq_tracks_last_closed_interval() {
        let mut s = IntervalStore::new(2);
        assert_eq!(s.latest_seq(p(0)), 0);
        let g = PageId::new(0);
        s.close_interval(stamp(0, 2, 2), vec![(g, diff_of(&[1]))]);
        s.close_interval(stamp(0, 6, 2), vec![(g, diff_of(&[2]))]);
        assert_eq!(s.latest_seq(p(0)), 6);
        assert_eq!(s.latest_seq(p(1)), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_close_rejected() {
        let mut s = IntervalStore::new(1);
        s.close_interval(stamp(0, 5, 1), vec![]);
        s.close_interval(stamp(0, 3, 1), vec![]);
    }
}
