//! The lazy release consistency (LRC) protocol engine.
//!
//! This crate implements the primary contribution of *Lazy Release
//! Consistency for Software Distributed Shared Memory* (Keleher, Cox,
//! Zwaenepoel; ISCA 1992): an algorithm for release-consistent software DSM
//! that postpones the propagation of modifications from release time to
//! **acquire** time, and then moves only the modifications that
//! *happened-before* the acquire.
//!
//! The moving parts, in paper order:
//!
//! * **Intervals** (§4.2) — each processor's execution is divided into
//!   intervals, a new one at each special access. Intervals carry vector
//!   timestamps; interval `j` happened-before interval `i` iff `i`'s clock
//!   covers `j`.
//! * **Write notices** (§4.2) — at an acquire, the grantor sends the
//!   acquirer write notices (page × interval, *not* the data) for every
//!   interval that performed at the grantor but not yet at the acquirer,
//!   piggybacked on the lock grant. Releases are purely local.
//! * **Data movement** (§4.3) — under the **invalidate** policy
//!   ([`Policy::Invalidate`], protocol "LI") noticed pages are invalidated
//!   and their diffs pulled at the next access miss from the *concurrent
//!   last modifiers*; under the **update** policy ([`Policy::Update`],
//!   "LU") the acquirer pulls diffs for all its cached pages at acquire
//!   time. Diffs are applied in happened-before order.
//! * **Multiple writers** (§4.3.1) — twins are made on the first write of
//!   an interval and diffs encode exactly the modified bytes, so falsely
//!   shared pages never ping-pong.
//! * **The §4.3.3 optimization** — a processor holding an *invalidated*
//!   copy fetches only diffs, never the whole page. (Disable with
//!   [`LrcConfig::full_page_misses`] to measure its effect.)
//!
//! The engine maintains *real page contents*: every write carries bytes,
//! twins and diffs are real, and reads return exactly what a DSM would
//! return. Message and byte costs are charged to an [`lrc_simnet::Fabric`].
//! The trace-driven simulator (`lrc-sim`) and the threaded runtime
//! (`lrc-dsm`) are both thin drivers around [`LrcEngine`].
//!
//! # Example
//!
//! ```
//! use lrc_core::{LrcConfig, LrcEngine, Policy};
//! use lrc_sync::LockId;
//! use lrc_vclock::ProcId;
//!
//! let dsm = LrcEngine::new(LrcConfig::new(2, 1 << 16).policy(Policy::Invalidate))?;
//! let (p0, p1, l) = (ProcId::new(0), ProcId::new(1), LockId::new(0));
//!
//! dsm.acquire(p0, l)?;
//! dsm.write(p0, 64, &7u64.to_le_bytes());
//! dsm.release(p0, l)?;
//!
//! dsm.acquire(p1, l)?; // write notice arrives, page invalidated
//! let mut buf = [0u8; 8];
//! dsm.read_into(p1, 64, &mut buf); // miss: diff pulled from p0
//! assert_eq!(u64::from_le_bytes(buf), 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod config;
mod counters;
mod engine;
mod pagestate;
mod plan;
mod remote;
pub mod slowpath;
mod store;

pub use checkpoint::{
    CheckpointDelta, CheckpointError, EngineCheckpoint, FrameCheckpoint, ProcCheckpoint, StoreEntry,
};
pub use config::{ConfigError, LrcConfig, Policy, ProtocolMutation, MAX_PROCS};
pub use counters::LazyCounters;
pub use engine::{DeathReport, LrcEngine};
pub use plan::FetchPlan;
pub use remote::{EngineOp, EngineOpError};
pub use slowpath::FetchHook;
pub use store::{IntervalStore, WriteNotice};
