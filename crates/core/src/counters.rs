use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The engine's internal, thread-safe mirror of [`LazyCounters`]: one
/// relaxed atomic per event class, so concurrently running processors never
/// contend on a statistics lock. [`SharedLazyCounters::snapshot`]
/// aggregates into the plain, `Copy` public struct on read.
#[derive(Debug, Default)]
pub(crate) struct SharedLazyCounters {
    pub cold_misses: AtomicU64,
    pub warm_misses: AtomicU64,
    pub diffs_applied: AtomicU64,
    pub notices_received: AtomicU64,
    pub invalidations: AtomicU64,
    pub updates: AtomicU64,
    pub intervals_closed: AtomicU64,
    pub acquires: AtomicU64,
    pub releases: AtomicU64,
    pub barrier_episodes: AtomicU64,
    pub gc_rounds: AtomicU64,
    pub gc_validated_pages: AtomicU64,
    pub slow_waits: AtomicU64,
    pub slow_waits_avoided: AtomicU64,
    pub miss_inflight_peak: AtomicU64,
    pub snapshot_retries: AtomicU64,
    pub coalesced_msgs: AtomicU64,
    pub gc_deferrals: AtomicU64,
    pub checkpoints_cut: AtomicU64,
    pub delta_bytes: AtomicU64,
}

/// Adds `n` to a counter field (statistics only — relaxed ordering).
pub(crate) fn bump(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

impl SharedLazyCounters {
    /// Aggregates the atomics into a plain snapshot.
    pub fn snapshot(&self) -> LazyCounters {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        LazyCounters {
            cold_misses: get(&self.cold_misses),
            warm_misses: get(&self.warm_misses),
            diffs_applied: get(&self.diffs_applied),
            notices_received: get(&self.notices_received),
            invalidations: get(&self.invalidations),
            updates: get(&self.updates),
            intervals_closed: get(&self.intervals_closed),
            acquires: get(&self.acquires),
            releases: get(&self.releases),
            barrier_episodes: get(&self.barrier_episodes),
            gc_rounds: get(&self.gc_rounds),
            gc_validated_pages: get(&self.gc_validated_pages),
            slow_waits: get(&self.slow_waits),
            slow_waits_avoided: get(&self.slow_waits_avoided),
            miss_inflight_peak: get(&self.miss_inflight_peak),
            snapshot_retries: get(&self.snapshot_retries),
            coalesced_msgs: get(&self.coalesced_msgs),
            gc_deferrals: get(&self.gc_deferrals),
            checkpoints_cut: get(&self.checkpoints_cut),
            delta_bytes: get(&self.delta_bytes),
        }
    }
}

/// Protocol-level event counters of an [`LrcEngine`](crate::LrcEngine),
/// complementing the message/byte accounting of the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LazyCounters {
    /// Access misses on pages never cached before (base copy needed).
    pub cold_misses: u64,
    /// Access misses on resident but invalidated copies (diffs only).
    pub warm_misses: u64,
    /// Diffs applied to local copies.
    pub diffs_applied: u64,
    /// Write notices received (at acquires and barrier exits).
    pub notices_received: u64,
    /// Pages invalidated on notice arrival (invalidate policy).
    pub invalidations: u64,
    /// Acquire- or barrier-time page updates (update policy).
    pub updates: u64,
    /// Intervals closed with at least one modified page.
    pub intervals_closed: u64,
    /// Lock acquires processed.
    pub acquires: u64,
    /// Lock releases processed.
    pub releases: u64,
    /// Barrier episodes completed.
    pub barrier_episodes: u64,
    /// Garbage-collection rounds performed (gc_at_barriers).
    pub gc_rounds: u64,
    /// Pages force-validated by garbage collection.
    pub gc_validated_pages: u64,
    /// Slow-path entries (synchronization operations and misses) that had
    /// to block behind another in-flight slow path: a same-lock
    /// acquire/release, a same-page miss, or — under the
    /// `serialize_slow_paths` baseline — *any* concurrent slow path.
    pub slow_waits: u64,
    /// Slow-path entries that ran while at least one other slow path was
    /// in flight *without* blocking — exactly the serialization the
    /// retired engine-wide protocol mutex used to impose. The split's win,
    /// measurable even where wall-clock scaling is not (single-core CI).
    pub slow_waits_avoided: u64,
    /// High-water mark of misses resolving concurrently (counting any
    /// same-page follower waiting on the resolver).
    pub miss_inflight_peak: u64,
    /// Miss/acquire fetch plans discarded because the interval store was
    /// reorganized (garbage-collected) between the read snapshot the plan
    /// was built against and the apply step's revalidation.
    pub snapshot_retries: u64,
    /// Protocol messages *not sent* because `coalesce_notices` merged them
    /// into another message bound for the same destination (a standalone
    /// notice batch riding its grant, or a base-copy request folded into a
    /// diff request). Each unit is one saved message header.
    pub coalesced_msgs: u64,
    /// Barrier-time garbage-collection rounds *deferred* because a dead
    /// processor's rejoin lease was still live (clearing the history
    /// would have stranded its catch-up). Bounded by
    /// [`LrcConfig::death_lease_episodes`](crate::LrcConfig): once the
    /// lease expires, GC proceeds and the era advances.
    pub gc_deferrals: u64,
    /// Checkpoints cut through
    /// [`LrcEngine::note_checkpoint`](crate::LrcEngine::note_checkpoint)
    /// — the runtime's automatic policy cuts, full and delta alike.
    pub checkpoints_cut: u64,
    /// Encoded bytes of those checkpoints as shipped to the sink (deltas
    /// count their delta size, not the full cut they stand for).
    pub delta_bytes: u64,
}

impl LazyCounters {
    /// Total access misses.
    pub fn misses(&self) -> u64 {
        self.cold_misses + self.warm_misses
    }
}

impl fmt::Display for LazyCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "misses {} (cold {} / warm {}), diffs {}, notices {}, inv {}, upd {}, intervals {}",
            self.misses(),
            self.cold_misses,
            self.warm_misses,
            self.diffs_applied,
            self.notices_received,
            self.invalidations,
            self.updates,
            self.intervals_closed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_sum_cold_and_warm() {
        let c = LazyCounters {
            cold_misses: 2,
            warm_misses: 3,
            ..Default::default()
        };
        assert_eq!(c.misses(), 5);
        assert!(c.to_string().contains("misses 5"));
    }
}
