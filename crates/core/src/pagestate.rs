use lrc_pagemem::{PageBuf, PageSize};
use lrc_vclock::IntervalId;

/// One processor's view of one page.
///
/// Invariants maintained by the engine:
///
/// * `valid` implies `copy.is_some()` and `pending.is_empty()` — a valid
///   copy reflects every modification the processor has been noticed about;
/// * `twin.is_some()` iff the page is dirty in the current interval;
/// * `pending` holds notices (in arrival order) whose diffs have not yet
///   been applied to `copy`. Pages never cached (`copy.is_none()`) keep
///   accumulating notices so a cold miss knows the page's full known write
///   history.
#[derive(Clone, Debug, Default)]
pub(crate) struct PageEntry {
    /// The processor's copy of the page, if it ever fetched or wrote it.
    pub copy: Option<PageBuf>,
    /// Twin made before the first write of the current interval.
    pub twin: Option<PageBuf>,
    /// True if `copy` reflects all known modifications.
    pub valid: bool,
    /// Noticed-but-unapplied intervals that modified this page.
    pub pending: Vec<IntervalId>,
}

impl PageEntry {
    /// True if the page is writable in the current interval (dirty).
    pub fn is_dirty(&self) -> bool {
        self.twin.is_some()
    }

    /// Ensures a zeroed copy exists (cold pages start as the initial,
    /// all-zero contents) and returns it mutably.
    pub fn copy_mut(&mut self, size: PageSize) -> &mut PageBuf {
        self.copy.get_or_insert_with(|| PageBuf::zeroed(size))
    }

    /// Makes the twin if the page is not yet dirty in this interval.
    ///
    /// # Panics
    ///
    /// Panics if the page has no copy yet; the engine always resolves the
    /// miss (creating the copy) before the first write.
    pub fn ensure_twin(&mut self) {
        if self.twin.is_none() {
            let copy = self.copy.as_ref().expect("twin requires a resident copy");
            self.twin = Some(copy.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_vclock::ProcId;

    fn size() -> PageSize {
        PageSize::new(128).unwrap()
    }

    #[test]
    fn default_entry_is_cold() {
        let e = PageEntry::default();
        assert!(e.copy.is_none());
        assert!(!e.valid);
        assert!(!e.is_dirty());
        assert!(e.pending.is_empty());
    }

    #[test]
    fn copy_mut_materializes_zeroed_page() {
        let mut e = PageEntry::default();
        let copy = e.copy_mut(size());
        assert!(copy.as_bytes().iter().all(|&b| b == 0));
        copy.write(0, &[5]);
        assert_eq!(e.copy.as_ref().unwrap().as_bytes()[0], 5);
    }

    #[test]
    fn ensure_twin_snapshots_once() {
        let mut e = PageEntry::default();
        e.copy_mut(size()).write(0, &[1]);
        e.ensure_twin();
        assert!(e.is_dirty());
        // Further writes do not disturb the twin.
        e.copy.as_mut().unwrap().write(0, &[2]);
        e.ensure_twin();
        assert_eq!(e.twin.as_ref().unwrap().as_bytes()[0], 1);
    }

    #[test]
    #[should_panic(expected = "resident copy")]
    fn twin_requires_copy() {
        let mut e = PageEntry::default();
        e.ensure_twin();
    }

    #[test]
    fn pending_tracks_notices() {
        let mut e = PageEntry::default();
        e.pending.push(IntervalId::new(ProcId::new(1), 3));
        assert_eq!(e.pending.len(), 1);
    }
}
