//! Remote-request entry points: the operation vocabulary a network node
//! dispatches into an engine after decoding a wire message.
//!
//! A message-passing deployment (`lrc-net` + `lrc-dsm`'s node runtime)
//! hosts processors on nodes that are not colocated with the engine. Those
//! processors' shared-memory and synchronization operations arrive as
//! decoded frames; [`EngineOp`] is their in-memory form. Data-plane
//! operations (reads, writes, and through them miss resolution) dispatch
//! through `LrcEngine::apply_op` (and its eager / `AnyEngine`
//! counterparts); synchronization operations are non-blocking at the
//! engine, so the node runtime routes them through its blocking wrappers
//! (`lrc-dsm`'s `ProcHandle`), which retry contended acquires and park on
//! barrier episodes before reaching the same engine calls.

use std::error::Error;
use std::fmt;

use lrc_sync::{BarrierError, BarrierId, LockError, LockId};

/// One decoded remote request against one processor of an engine.
///
/// Mirrors the five trace/runtime operations; `Write` carries its payload
/// bytes because, unlike a trace replay, a remote writer ships real data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineOp {
    /// Read `len` bytes at `addr` (the reply carries the bytes).
    Read {
        /// Start address in the shared space.
        addr: u64,
        /// Number of bytes to read.
        len: u32,
    },
    /// Write `data` at `addr`.
    Write {
        /// Start address in the shared space.
        addr: u64,
        /// The bytes to store.
        data: Vec<u8>,
    },
    /// Acquire a lock (non-blocking at the engine; the node runtime
    /// retries contended acquires on its blocking path).
    Acquire(LockId),
    /// Release a lock.
    Release(LockId),
    /// Arrive at a barrier.
    Barrier(BarrierId),
}

impl fmt::Display for EngineOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineOp::Read { addr, len } => write!(f, "read {len}B @{addr:#x}"),
            EngineOp::Write { addr, data } => write!(f, "write {}B @{addr:#x}", data.len()),
            EngineOp::Acquire(l) => write!(f, "acquire {l}"),
            EngineOp::Release(l) => write!(f, "release {l}"),
            EngineOp::Barrier(b) => write!(f, "barrier {b}"),
        }
    }
}

/// Failure of a dispatched [`EngineOp`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineOpError {
    /// The operation was a lock operation and the lock layer refused it.
    Lock(LockError),
    /// The operation was a barrier arrival and the barrier layer refused
    /// it.
    Barrier(BarrierError),
}

impl fmt::Display for EngineOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineOpError::Lock(e) => write!(f, "lock error: {e}"),
            EngineOpError::Barrier(e) => write!(f, "barrier error: {e}"),
        }
    }
}

impl Error for EngineOpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineOpError::Lock(e) => Some(e),
            EngineOpError::Barrier(e) => Some(e),
        }
    }
}

impl From<LockError> for EngineOpError {
    fn from(e: LockError) -> Self {
        EngineOpError::Lock(e)
    }
}

impl From<BarrierError> for EngineOpError {
    fn from(e: BarrierError) -> Self {
        EngineOpError::Barrier(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_display() {
        assert_eq!(
            EngineOp::Read { addr: 16, len: 8 }.to_string(),
            "read 8B @0x10"
        );
        assert_eq!(
            EngineOp::Write {
                addr: 0,
                data: vec![1, 2]
            }
            .to_string(),
            "write 2B @0x0"
        );
        assert_eq!(EngineOp::Acquire(LockId::new(3)).to_string(), "acquire lk3");
        assert_eq!(EngineOp::Release(LockId::new(3)).to_string(), "release lk3");
        assert_eq!(
            EngineOp::Barrier(BarrierId::new(1)).to_string(),
            "barrier br1"
        );
    }

    #[test]
    fn errors_wrap_and_chain() {
        let e = EngineOpError::from(LockError::UnknownLock(LockId::new(9)));
        assert!(e.to_string().contains("unknown lock"));
        assert!(e.source().is_some());
        let e = EngineOpError::from(BarrierError::UnknownBarrier(BarrierId::new(9)));
        assert!(matches!(e, EngineOpError::Barrier(_)));
    }
}
