//! Episode checkpoints of a running engine.
//!
//! A checkpoint captures everything a crashed processor needs to rejoin
//! without replaying the whole run: each processor's page frames (resident
//! contents, validity, unapplied write notices) and vector clock, plus the
//! shared interval store (stamps, diff payloads, possession masks) and the
//! garbage-collection owner table. Checkpoints are cut at synchronization
//! points — the engine captures committed page contents (the twin of a
//! dirty page), so an open interval's uncommitted writes are never in a
//! checkpoint, exactly as they would be lost in a real crash.
//!
//! Serialization reuses the protocol's wire codecs ([`VectorClock`],
//! [`IntervalId`], [`Diff`]) so checkpoints travel the same transports as
//! protocol messages. Between barrier episodes only a small suffix of the
//! state changes; [`EngineCheckpoint::delta_since`] captures exactly that
//! suffix and [`CheckpointDelta::apply_to`] replays it onto the base.

use std::error::Error;
use std::fmt;

use lrc_pagemem::{Diff, PageId};
use lrc_vclock::{IntervalId, ProcId, StampedInterval, VectorClock};

/// One exported interval of the store: its stamp plus one
/// `(page, diff, holder-mask)` row per page the interval modified.
pub type StoreEntry = (StampedInterval, Vec<(PageId, Diff, u64)>);

const MAGIC: &[u8; 4] = b"LRCK";
const DELTA_MAGIC: &[u8; 4] = b"LRCD";
const FORMAT: u16 = 1;

/// A checkpoint of one processor's frame of one page.
///
/// Only non-default frames are recorded: a page the processor never
/// touched (and was never noticed about) has no entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FrameCheckpoint {
    /// The page.
    pub page: PageId,
    /// Committed resident contents, if the processor has a copy. For a
    /// page dirty at capture time this is the *twin* — the pre-interval
    /// contents plus every applied diff, i.e. exactly the committed state.
    pub contents: Option<Vec<u8>>,
    /// Whether the copy reflected all known modifications.
    pub valid: bool,
    /// Noticed-but-unapplied intervals, in arrival order.
    pub pending: Vec<IntervalId>,
}

impl FrameCheckpoint {
    /// True if this frame carries no information (cold and unnoticed) —
    /// such frames are omitted from checkpoints and, in a delta, mean
    /// "reset this frame".
    pub fn is_default(&self) -> bool {
        self.contents.is_none() && !self.valid && self.pending.is_empty()
    }
}

/// One processor's checkpointed state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcCheckpoint {
    /// The processor's vector clock (own entry = its open interval).
    pub clock: VectorClock,
    /// Non-default page frames, ascending by page.
    pub frames: Vec<FrameCheckpoint>,
}

/// A full checkpoint of the engine at a synchronization point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EngineCheckpoint {
    /// Number of processors.
    pub n_procs: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Number of pages in the address space.
    pub n_pages: usize,
    /// Completed barrier episodes at capture time — the checkpoint's
    /// version; later checkpoints of the same run have larger values.
    pub episode: u64,
    /// The interval store's snapshot era at capture ([`crate::IntervalStore::version`]).
    /// A processor may rejoin from this checkpoint only while the live
    /// store is still in the same era — garbage collection discards the
    /// history the catch-up needs.
    pub store_era: u64,
    /// Garbage-collection owner per page (`None` where unassigned).
    pub owners: Vec<Option<ProcId>>,
    /// The interval store: stamps, diffs, and possession masks.
    pub store: Vec<StoreEntry>,
    /// Per-processor state, index = processor id.
    pub procs: Vec<ProcCheckpoint>,
}

/// The difference between two checkpoints of the same run — what changed
/// since `base_episode`, enough to rebuild the newer checkpoint from the
/// older one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckpointDelta {
    /// Episode of the checkpoint this delta applies to.
    pub base_episode: u64,
    /// Episode of the checkpoint this delta produces.
    pub episode: u64,
    /// Store era of the produced checkpoint.
    pub store_era: u64,
    /// If true, `store` is a full replacement (a garbage collection
    /// intervened, so the base's entries cannot be patched additively);
    /// otherwise `store` holds only entries absent from the base.
    pub store_replaced: bool,
    /// New (or, if `store_replaced`, all) store entries.
    pub store: Vec<StoreEntry>,
    /// Full replacement owner table of the produced checkpoint.
    pub owners: Vec<Option<ProcId>>,
    /// Per-processor: the new clock plus every frame that changed. A
    /// listed default frame means "reset" (the processor crashed and its
    /// frames were discarded).
    pub procs: Vec<ProcCheckpoint>,
}

/// Why a checkpoint could not be decoded, applied, or rejoined from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckpointError {
    /// The serialized bytes are malformed or truncated.
    Corrupt(String),
    /// The checkpoint does not fit its target (engine shape, delta base,
    /// or store era mismatch).
    Incompatible(String),
    /// The operation itself is not implemented for the target engine
    /// family (e.g. rejoin on an eager engine) — a property of the
    /// *engine*, not of the checkpoint, so it is distinct from
    /// [`CheckpointError::Incompatible`]: retrying with a better-matched
    /// checkpoint cannot succeed. Mirrors
    /// [`crate::ConfigError::UnsupportedMutation`].
    Unsupported(String),
    /// The dead processor's rejoin lease expired: garbage collection
    /// advanced the store era past the checkpoint's, so the catch-up
    /// history this checkpoint needs is gone *by policy* (see
    /// [`LrcConfig::death_lease_episodes`](crate::LrcConfig)). Retrying
    /// with the same checkpoint cannot succeed — cold-join from the
    /// latest checkpoint cut after the collection instead.
    LeaseExpired(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::Incompatible(why) => write!(f, "incompatible checkpoint: {why}"),
            CheckpointError::Unsupported(why) => {
                write!(f, "unsupported checkpoint operation: {why}")
            }
            CheckpointError::LeaseExpired(why) => {
                write!(f, "rejoin lease expired: {why}")
            }
        }
    }
}

impl Error for CheckpointError {}

fn corrupt(why: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(why.into())
}

// ---------------------------------------------------------------------
// Binary codec. Little-endian throughout, matching the wire layer.

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("truncated at byte {}", self.at)))?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("eight bytes")))
    }

    /// A count that must be plausible for `per_item`-byte items — rejects
    /// absurd counts before they turn into huge allocations.
    fn count(&mut self, per_item: usize) -> Result<usize, CheckpointError> {
        let n = self.u32()? as usize;
        let left = self.bytes.len() - self.at;
        if n.saturating_mul(per_item.max(1)) > left {
            return Err(corrupt(format!("count {n} exceeds remaining bytes")));
        }
        Ok(n)
    }

    fn clock(&mut self, n_procs: usize) -> Result<VectorClock, CheckpointError> {
        let bytes = self.take(4 * n_procs)?;
        VectorClock::read_wire(bytes, n_procs).ok_or_else(|| corrupt("short vector clock"))
    }

    fn interval(&mut self) -> Result<IntervalId, CheckpointError> {
        let bytes = self.take(IntervalId::WIRE_BYTES)?;
        IntervalId::read_wire(bytes).ok_or_else(|| corrupt("short interval id"))
    }

    fn done(&self) -> Result<(), CheckpointError> {
        if self.at != self.bytes.len() {
            return Err(corrupt(format!(
                "{} trailing bytes",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

fn write_frame(frame: &FrameCheckpoint, page_bytes: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&frame.page.raw().to_le_bytes());
    let mut flags = 0u8;
    if frame.contents.is_some() {
        flags |= 1;
    }
    if frame.valid {
        flags |= 2;
    }
    out.push(flags);
    if let Some(contents) = &frame.contents {
        assert_eq!(contents.len(), page_bytes, "frame contents are page-sized");
        out.extend_from_slice(contents);
    }
    out.extend_from_slice(&(frame.pending.len() as u32).to_le_bytes());
    for iv in &frame.pending {
        iv.write_wire(out);
    }
}

fn read_frame(
    r: &mut Reader<'_>,
    page_bytes: usize,
    n_pages: usize,
) -> Result<FrameCheckpoint, CheckpointError> {
    let page = PageId::new(r.u32()?);
    if page.index() >= n_pages {
        return Err(corrupt(format!("frame page {page} out of range")));
    }
    let flags = r.u8()?;
    if flags & !3 != 0 {
        return Err(corrupt(format!("unknown frame flags {flags:#x}")));
    }
    let contents = if flags & 1 != 0 {
        Some(r.take(page_bytes)?.to_vec())
    } else {
        None
    };
    let valid = flags & 2 != 0;
    let n_pending = r.count(IntervalId::WIRE_BYTES)?;
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        pending.push(r.interval()?);
    }
    Ok(FrameCheckpoint {
        page,
        contents,
        valid,
        pending,
    })
}

fn write_store_entry(entry: &StoreEntry, out: &mut Vec<u8>) {
    let (stamp, diffs) = entry;
    stamp.id().write_wire(out);
    stamp.clock().write_wire(out);
    out.extend_from_slice(&(diffs.len() as u32).to_le_bytes());
    for (page, diff, mask) in diffs {
        out.extend_from_slice(&mask.to_le_bytes());
        // The diff codec embeds the page and a u32 stamp slot; the slot
        // carries the interval seq (redundant here, but keeps the frames
        // byte-identical to the ones the fetch paths ship).
        diff.write_wire(page.raw(), stamp.id().seq(), out);
    }
}

fn read_store_entry(r: &mut Reader<'_>, n_procs: usize) -> Result<StoreEntry, CheckpointError> {
    let id = r.interval()?;
    if id.proc().index() >= n_procs {
        return Err(corrupt(format!("interval {id} names an unknown processor")));
    }
    let clock = r.clock(n_procs)?;
    let stamp = StampedInterval::new(id, clock);
    let n_diffs = r.count(8)?;
    let mut diffs = Vec::with_capacity(n_diffs);
    for _ in 0..n_diffs {
        let mask = r.u64()?;
        let rest = &r.bytes[r.at..];
        let (page, _stamp, diff, used) =
            Diff::read_wire(rest).ok_or_else(|| corrupt("short diff"))?;
        r.at += used;
        diffs.push((PageId::new(page), diff, mask));
    }
    Ok((stamp, diffs))
}

fn write_owners(owners: &[Option<ProcId>], out: &mut Vec<u8>) {
    let set: Vec<(u32, u16)> = owners
        .iter()
        .enumerate()
        .filter_map(|(g, o)| o.map(|p| (g as u32, p.raw())))
        .collect();
    out.extend_from_slice(&(set.len() as u32).to_le_bytes());
    for (page, proc) in set {
        out.extend_from_slice(&page.to_le_bytes());
        out.extend_from_slice(&proc.to_le_bytes());
    }
}

fn read_owners(
    r: &mut Reader<'_>,
    n_pages: usize,
    n_procs: usize,
) -> Result<Vec<Option<ProcId>>, CheckpointError> {
    let mut owners = vec![None; n_pages];
    let n = r.count(6)?;
    for _ in 0..n {
        let page = r.u32()? as usize;
        let proc = r.u16()?;
        if page >= n_pages || (proc as usize) >= n_procs {
            return Err(corrupt("owner entry out of range"));
        }
        owners[page] = Some(ProcId::new(proc));
    }
    Ok(owners)
}

fn write_header(
    magic: &[u8; 4],
    n_procs: usize,
    page_bytes: usize,
    n_pages: usize,
    out: &mut Vec<u8>,
) {
    out.extend_from_slice(magic);
    out.extend_from_slice(&FORMAT.to_le_bytes());
    out.extend_from_slice(&(n_procs as u16).to_le_bytes());
    out.extend_from_slice(&(page_bytes as u32).to_le_bytes());
    out.extend_from_slice(&(n_pages as u32).to_le_bytes());
}

fn read_header(
    r: &mut Reader<'_>,
    magic: &[u8; 4],
) -> Result<(usize, usize, usize), CheckpointError> {
    if r.take(4)? != magic {
        return Err(corrupt("bad magic"));
    }
    let format = r.u16()?;
    if format != FORMAT {
        return Err(corrupt(format!("unsupported format {format}")));
    }
    let n_procs = r.u16()? as usize;
    let page_bytes = r.u32()? as usize;
    let n_pages = r.u32()? as usize;
    if n_procs == 0 || n_procs > crate::MAX_PROCS {
        return Err(corrupt(format!("implausible processor count {n_procs}")));
    }
    if n_pages == 0 || page_bytes == 0 {
        return Err(corrupt("empty address space"));
    }
    Ok((n_procs, page_bytes, n_pages))
}

impl EngineCheckpoint {
    /// Serializes the checkpoint.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_header(MAGIC, self.n_procs, self.page_bytes, self.n_pages, &mut out);
        out.extend_from_slice(&self.episode.to_le_bytes());
        out.extend_from_slice(&self.store_era.to_le_bytes());
        write_owners(&self.owners, &mut out);
        out.extend_from_slice(&(self.store.len() as u32).to_le_bytes());
        for entry in &self.store {
            write_store_entry(entry, &mut out);
        }
        for proc in &self.procs {
            proc.clock.write_wire(&mut out);
            out.extend_from_slice(&(proc.frames.len() as u32).to_le_bytes());
            for frame in &proc.frames {
                write_frame(frame, self.page_bytes, &mut out);
            }
        }
        out
    }

    /// Deserializes a checkpoint produced by [`EngineCheckpoint::encode`].
    pub fn decode(bytes: &[u8]) -> Result<EngineCheckpoint, CheckpointError> {
        let mut r = Reader::new(bytes);
        let (n_procs, page_bytes, n_pages) = read_header(&mut r, MAGIC)?;
        let episode = r.u64()?;
        let store_era = r.u64()?;
        let owners = read_owners(&mut r, n_pages, n_procs)?;
        let n_entries = r.count(IntervalId::WIRE_BYTES)?;
        let mut store = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            store.push(read_store_entry(&mut r, n_procs)?);
        }
        let mut procs = Vec::with_capacity(n_procs);
        for _ in 0..n_procs {
            let clock = r.clock(n_procs)?;
            let n_frames = r.count(5)?;
            let mut frames = Vec::with_capacity(n_frames);
            for _ in 0..n_frames {
                frames.push(read_frame(&mut r, page_bytes, n_pages)?);
            }
            procs.push(ProcCheckpoint { clock, frames });
        }
        r.done()?;
        Ok(EngineCheckpoint {
            n_procs,
            page_bytes,
            n_pages,
            episode,
            store_era,
            owners,
            store,
            procs,
        })
    }

    /// The incremental difference from `base` (an earlier checkpoint of
    /// the same run) to `self`: changed frames, new clocks, and store
    /// entries the base lacks. `base.apply` of the result reproduces
    /// `self` exactly.
    pub fn delta_since(&self, base: &EngineCheckpoint) -> Result<CheckpointDelta, CheckpointError> {
        if (self.n_procs, self.page_bytes, self.n_pages)
            != (base.n_procs, base.page_bytes, base.n_pages)
        {
            return Err(CheckpointError::Incompatible(
                "checkpoints describe different engines".into(),
            ));
        }
        if base.episode > self.episode {
            return Err(CheckpointError::Incompatible(format!(
                "base episode {} is newer than {}",
                base.episode, self.episode
            )));
        }
        let store_replaced = self.store_era != base.store_era;
        let store = if store_replaced {
            self.store.clone()
        } else {
            // Additive era: the base's entries are a prefix set of ours.
            let known: std::collections::HashSet<IntervalId> =
                base.store.iter().map(|(s, _)| s.id()).collect();
            self.store
                .iter()
                .filter(|(s, _)| !known.contains(&s.id()))
                .cloned()
                .collect()
        };
        let mut procs = Vec::with_capacity(self.n_procs);
        for (new, old) in self.procs.iter().zip(&base.procs) {
            let mut frames: Vec<FrameCheckpoint> = new
                .frames
                .iter()
                .filter(|f| old.frames.iter().find(|o| o.page == f.page) != Some(*f))
                .cloned()
                .collect();
            // Frames the base had that vanished (a crash reset them):
            // emit explicit defaults so apply knows to drop them.
            for old_frame in &old.frames {
                if !new.frames.iter().any(|f| f.page == old_frame.page) {
                    frames.push(FrameCheckpoint {
                        page: old_frame.page,
                        contents: None,
                        valid: false,
                        pending: Vec::new(),
                    });
                }
            }
            frames.sort_by_key(|f| f.page);
            procs.push(ProcCheckpoint {
                clock: new.clock.clone(),
                frames,
            });
        }
        Ok(CheckpointDelta {
            base_episode: base.episode,
            episode: self.episode,
            store_era: self.store_era,
            store_replaced,
            store,
            owners: self.owners.clone(),
            procs,
        })
    }
}

impl CheckpointDelta {
    /// Rebuilds the newer checkpoint from `base` and this delta.
    pub fn apply_to(&self, base: &EngineCheckpoint) -> Result<EngineCheckpoint, CheckpointError> {
        if self.base_episode != base.episode {
            return Err(CheckpointError::Incompatible(format!(
                "delta expects base episode {}, got {}",
                self.base_episode, base.episode
            )));
        }
        if self.procs.len() != base.procs.len() || self.owners.len() != base.owners.len() {
            return Err(CheckpointError::Incompatible(
                "delta describes a different engine".into(),
            ));
        }
        let mut store = if self.store_replaced {
            self.store.clone()
        } else {
            let mut merged = base.store.clone();
            merged.extend(self.store.iter().cloned());
            merged
        };
        // Import order: grouped by processor, ascending seq within each.
        store.sort_by_key(|(s, _)| (s.id().proc(), s.id().seq()));
        let mut procs = Vec::with_capacity(base.procs.len());
        for (patch, old) in self.procs.iter().zip(&base.procs) {
            let mut frames: Vec<FrameCheckpoint> = old
                .frames
                .iter()
                .filter(|o| !patch.frames.iter().any(|f| f.page == o.page))
                .cloned()
                .collect();
            frames.extend(patch.frames.iter().filter(|f| !f.is_default()).cloned());
            frames.sort_by_key(|f| f.page);
            procs.push(ProcCheckpoint {
                clock: patch.clock.clone(),
                frames,
            });
        }
        Ok(EngineCheckpoint {
            n_procs: base.n_procs,
            page_bytes: base.page_bytes,
            n_pages: base.n_pages,
            episode: self.episode,
            store_era: self.store_era,
            owners: self.owners.clone(),
            store,
            procs,
        })
    }

    /// Serializes the delta.
    pub fn encode(&self, page_bytes: usize, n_pages: usize) -> Vec<u8> {
        let mut out = Vec::new();
        write_header(DELTA_MAGIC, self.procs.len(), page_bytes, n_pages, &mut out);
        out.extend_from_slice(&self.base_episode.to_le_bytes());
        out.extend_from_slice(&self.episode.to_le_bytes());
        out.extend_from_slice(&self.store_era.to_le_bytes());
        out.push(self.store_replaced as u8);
        write_owners(&self.owners, &mut out);
        out.extend_from_slice(&(self.store.len() as u32).to_le_bytes());
        for entry in &self.store {
            write_store_entry(entry, &mut out);
        }
        for proc in &self.procs {
            proc.clock.write_wire(&mut out);
            out.extend_from_slice(&(proc.frames.len() as u32).to_le_bytes());
            for frame in &proc.frames {
                write_frame(frame, page_bytes, &mut out);
            }
        }
        out
    }

    /// Deserializes a delta produced by [`CheckpointDelta::encode`].
    pub fn decode(bytes: &[u8]) -> Result<CheckpointDelta, CheckpointError> {
        let mut r = Reader::new(bytes);
        let (n_procs, page_bytes, n_pages) = read_header(&mut r, DELTA_MAGIC)?;
        let base_episode = r.u64()?;
        let episode = r.u64()?;
        let store_era = r.u64()?;
        let store_replaced = match r.u8()? {
            0 => false,
            1 => true,
            f => return Err(corrupt(format!("bad store-replaced flag {f}"))),
        };
        let owners = read_owners(&mut r, n_pages, n_procs)?;
        let n_entries = r.count(IntervalId::WIRE_BYTES)?;
        let mut store = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            store.push(read_store_entry(&mut r, n_procs)?);
        }
        let mut procs = Vec::with_capacity(n_procs);
        for _ in 0..n_procs {
            let clock = r.clock(n_procs)?;
            let n_frames = r.count(5)?;
            let mut frames = Vec::with_capacity(n_frames);
            for _ in 0..n_frames {
                frames.push(read_frame(&mut r, page_bytes, n_pages)?);
            }
            procs.push(ProcCheckpoint { clock, frames });
        }
        r.done()?;
        Ok(CheckpointDelta {
            base_episode,
            episode,
            store_era,
            store_replaced,
            store,
            owners,
            procs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_pagemem::{PageBuf, PageSize};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn g(i: u32) -> PageId {
        PageId::new(i)
    }

    fn diff_of(byte: u8) -> Diff {
        let twin = PageBuf::zeroed(PageSize::new(64).unwrap());
        let mut cur = twin.clone();
        cur.write(3, &[byte]);
        Diff::between(&twin, &cur)
    }

    fn entry(proc: u16, seq: u32, page: u32, mask: u64) -> StoreEntry {
        let mut vc = VectorClock::new(2);
        vc.set(p(proc), seq);
        let stamp = StampedInterval::new(IntervalId::new(p(proc), seq), vc);
        (stamp, vec![(g(page), diff_of(seq as u8), mask)])
    }

    fn sample() -> EngineCheckpoint {
        let mut clock0 = VectorClock::new(2);
        clock0.set(p(0), 3);
        clock0.set(p(1), 1);
        let mut clock1 = VectorClock::new(2);
        clock1.set(p(1), 2);
        EngineCheckpoint {
            n_procs: 2,
            page_bytes: 64,
            n_pages: 4,
            episode: 5,
            store_era: 1,
            owners: vec![None, Some(p(1)), None, None],
            store: vec![entry(0, 2, 1, 0b01), entry(1, 1, 0, 0b11)],
            procs: vec![
                ProcCheckpoint {
                    clock: clock0,
                    frames: vec![FrameCheckpoint {
                        page: g(1),
                        contents: Some(vec![7u8; 64]),
                        valid: true,
                        pending: Vec::new(),
                    }],
                },
                ProcCheckpoint {
                    clock: clock1,
                    frames: vec![FrameCheckpoint {
                        page: g(0),
                        contents: None,
                        valid: false,
                        pending: vec![IntervalId::new(p(0), 2)],
                    }],
                },
            ],
        }
    }

    #[test]
    fn checkpoint_encode_decode_round_trips() {
        let ckpt = sample();
        let bytes = ckpt.encode();
        let back = EngineCheckpoint::decode(&bytes).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn decode_rejects_corruption() {
        let ckpt = sample();
        let bytes = ckpt.encode();
        assert!(matches!(
            EngineCheckpoint::decode(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::Corrupt(_))
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(EngineCheckpoint::decode(&bad_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            EngineCheckpoint::decode(&trailing),
            Err(CheckpointError::Corrupt(why)) if why.contains("trailing")
        ));
    }

    #[test]
    fn delta_captures_only_changes_and_applies_back() {
        let base = sample();
        let mut next = base.clone();
        next.episode = 6;
        // Canonical store order: grouped by processor, ascending seq.
        next.store.insert(1, entry(0, 4, 2, 0b01));
        next.procs[0].frames[0].contents = Some(vec![9u8; 64]);
        next.procs[0].clock.set(p(0), 5);
        // p1's frame vanished (crash reset).
        next.procs[1].frames.clear();

        let delta = next.delta_since(&base).unwrap();
        assert!(!delta.store_replaced);
        assert_eq!(delta.store.len(), 1, "only the new interval travels");
        assert_eq!(delta.procs[0].frames.len(), 1, "only the changed frame");
        assert_eq!(delta.procs[1].frames.len(), 1);
        assert!(delta.procs[1].frames[0].is_default(), "reset marker");

        assert_eq!(delta.apply_to(&base).unwrap(), next);

        let bytes = delta.encode(base.page_bytes, base.n_pages);
        assert_eq!(CheckpointDelta::decode(&bytes).unwrap(), delta);
    }

    #[test]
    fn delta_across_garbage_collection_replaces_the_store() {
        let base = sample();
        let mut next = base.clone();
        next.episode = 7;
        next.store_era = 2;
        next.store = vec![entry(1, 9, 3, 0b10)];
        let delta = next.delta_since(&base).unwrap();
        assert!(delta.store_replaced);
        assert_eq!(delta.apply_to(&base).unwrap(), next);
    }

    #[test]
    fn delta_guards_shape_and_base() {
        let base = sample();
        let mut other = base.clone();
        other.n_pages = 8;
        other.owners = vec![None; 8];
        assert!(matches!(
            base.delta_since(&other),
            Err(CheckpointError::Incompatible(_))
        ));
        let delta = base.delta_since(&base).unwrap();
        let mut wrong = base.clone();
        wrong.episode = 99;
        assert!(delta.apply_to(&wrong).is_err());
    }
}
