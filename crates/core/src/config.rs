use std::error::Error;
use std::fmt;

use lrc_pagemem::{AddrSpace, PageSize, PageSizeError};

/// Maximum processors per system. Diff-possession tracking uses a 64-bit
/// mask; the paper's evaluation uses 16 processors.
pub const MAX_PROCS: usize = 64;

/// Data-movement policy of a release-consistent protocol (§4.3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Policy {
    /// Invalidate on write notice; pull diffs at the next access miss.
    /// With the lazy engine this is the paper's **LI** protocol.
    #[default]
    Invalidate,
    /// Update: pull diffs for all cached pages when notices arrive (at
    /// acquires and barriers), keeping caches valid. The paper's **LU**.
    Update,
}

impl Policy {
    /// Short protocol suffix used in reports ("I" / "U").
    pub fn suffix(self) -> &'static str {
        match self {
            Policy::Invalidate => "I",
            Policy::Update => "U",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Invalidate => f.write_str("invalidate"),
            Policy::Update => f.write_str("update"),
        }
    }
}

/// A deliberately-broken protocol variant, for **mutation testing** the
/// verification stack: the history checker (`lrc-hist`) must reject runs
/// of every non-[`Stock`](ProtocolMutation::Stock) variant. Never enable
/// outside tests — each mutation silently corrupts memory consistency
/// while keeping the engine superficially functional (locks still hand
/// off, barriers still complete, nothing panics).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ProtocolMutation {
    /// The faithful protocol.
    #[default]
    Stock,
    /// Skip twin-diffing when an interval closes: writes are never turned
    /// into diffs, so no write notice is ever generated and modifications
    /// never leave the writing processor.
    SkipTwinDiff,
    /// Drop write notices instead of delivering them: acquirers and
    /// barrier crossers merge clocks but never learn which pages changed,
    /// so stale copies stay valid.
    DropNotices,
    /// Apply fetch plans built against an outdated store snapshot without
    /// revalidating — the failure mode the versioned-snapshot slow paths
    /// guard against. The mutation emulates the hazard deterministically:
    /// at every miss and acquire-time update pull, the causally-latest
    /// planned diff is treated as having vanished between plan and apply
    /// (skipped), yet its page is finalized as if the plan had applied
    /// completely (pending cleared, copy valid), and the apply-side
    /// version check is skipped. Readers then observe pages the protocol
    /// believes are current but are missing their newest modification.
    StaleSnapshotApply,
    /// Apply fetched diffs in *reverse* happened-before order: when a miss
    /// or update pull brings in more than one diff for a page, the oldest
    /// modification lands last and clobbers the newest. Single-diff pulls
    /// are unaffected, so the engine works until a page accumulates a
    /// chain of modifications.
    WrongDiffOrder,
    /// The barrier master computes each processor's exit notices against
    /// that processor's *own* clock instead of the episode's merged
    /// knowledge: no processor is told about the intervals its peers
    /// closed before arriving, so post-barrier reads see stale pages.
    /// Clocks still merge — only the page-level knowledge is lost.
    DroppedClockMerge,
    /// A lock grantor under-reports its own latest closed interval by one
    /// when computing the knowledge it piggybacks on the grant: the
    /// acquirer never receives the write notice for the grantor's most
    /// recent critical section and keeps reading its stale copy.
    StaleGrantKnowledge,
}

impl fmt::Display for ProtocolMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolMutation::Stock => f.write_str("stock"),
            ProtocolMutation::SkipTwinDiff => f.write_str("skip-twin-diff"),
            ProtocolMutation::DropNotices => f.write_str("drop-notices"),
            ProtocolMutation::StaleSnapshotApply => f.write_str("stale-snapshot-apply"),
            ProtocolMutation::WrongDiffOrder => f.write_str("wrong-diff-order"),
            ProtocolMutation::DroppedClockMerge => f.write_str("dropped-clock-merge"),
            ProtocolMutation::StaleGrantKnowledge => f.write_str("stale-grant-knowledge"),
        }
    }
}

/// Configuration of an [`LrcEngine`](crate::LrcEngine).
///
/// Start from [`LrcConfig::new`] and chain setters:
///
/// ```
/// use lrc_core::{LrcConfig, Policy};
///
/// let cfg = LrcConfig::new(16, 1 << 20)
///     .page_size(2048)
///     .policy(Policy::Update)
///     .locks(8)
///     .barriers(2);
/// assert_eq!(cfg.n_procs, 16);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LrcConfig {
    /// Number of processors (1 to [`MAX_PROCS`]).
    pub n_procs: usize,
    /// Shared address space size in bytes.
    pub mem_bytes: u64,
    /// Page size in bytes (power of two, 64–65536). Default 4096.
    pub page_bytes: usize,
    /// Number of locks available. Default 16.
    pub n_locks: usize,
    /// Number of barriers available. Default 4.
    pub n_barriers: usize,
    /// Data-movement policy. Default invalidate (LI).
    pub policy: Policy,
    /// Piggyback write notices on lock-grant and barrier messages (the
    /// paper's design). When disabled — an ablation — notices travel in a
    /// separate message per acquire, like a naive implementation would
    /// send. Default `true`.
    pub piggyback_notices: bool,
    /// Merge protocol messages bound for the same destination when their
    /// payloads travel together anyway: the no-piggyback ablation's
    /// separate notice message rides the grant it accompanies, and a cold
    /// miss whose base-copy supplier is also a diff supplier asks for both
    /// in one round trip. Pure messaging optimization — the bytes moved
    /// and the protocol state reached are identical; only the message
    /// *count* (and per-message header cost) drops. Default `false` so the
    /// stock accounting stays comparable with prior runs.
    pub coalesce_notices: bool,
    /// When `true` — an ablation — a processor holding an invalidated copy
    /// re-fetches the entire page on a miss instead of only diffs,
    /// disabling the optimization of §4.3.3. Default `false`.
    pub full_page_misses: bool,
    /// Garbage-collect consistency information at every barrier (the
    /// TreadMarks approach to the unbounded-history problem the paper
    /// leaves to future work): every processor validates its cached pages,
    /// then all interval records and diffs are discarded. Cold misses
    /// afterwards fetch whole pages from the last writer. Default `false`.
    pub gc_at_barriers: bool,
    /// How many barrier episodes a dead processor's *rejoin lease* lasts.
    /// While any dead processor's lease is live, barrier-time garbage
    /// collection is deferred (counted in
    /// [`LazyCounters::gc_deferrals`](crate::LazyCounters)) so the
    /// catch-up history a rejoin needs survives. Once every dead
    /// processor has been dead for at least this many completed episodes,
    /// GC proceeds: the store era advances, and a rejoin from a
    /// checkpoint of the old era is refused with
    /// [`CheckpointError::LeaseExpired`](crate::CheckpointError) — the
    /// node must cold-join from a checkpoint cut after the collection.
    /// `None` (the default) means leases never expire: GC pauses for as
    /// long as any processor is dead, the pre-lease behavior.
    pub death_lease_episodes: Option<u64>,
    /// Deliberately-broken protocol variant for mutation testing the
    /// checker stack. Default [`ProtocolMutation::Stock`] (faithful).
    pub mutation: ProtocolMutation,
    /// Measurement baseline: serialize every slow path (acquire, release,
    /// barrier, miss resolution) on one engine-wide mutex, reproducing the
    /// pre-split `protocol`-mutex architecture so benches can quantify the
    /// fine-grained slow paths against it. Never enable outside
    /// benchmarks; it changes only *contention*, not protocol behavior.
    /// Default `false`.
    pub serialize_slow_paths: bool,
}

impl LrcConfig {
    /// Creates a configuration with the given processor count and shared
    /// space, and defaults for everything else.
    pub fn new(n_procs: usize, mem_bytes: u64) -> Self {
        LrcConfig {
            n_procs,
            mem_bytes,
            page_bytes: 4096,
            n_locks: 16,
            n_barriers: 4,
            policy: Policy::Invalidate,
            piggyback_notices: true,
            coalesce_notices: false,
            full_page_misses: false,
            gc_at_barriers: false,
            death_lease_episodes: None,
            mutation: ProtocolMutation::Stock,
            serialize_slow_paths: false,
        }
    }

    /// Sets the page size in bytes.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.page_bytes = bytes;
        self
    }

    /// Sets the data-movement policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the number of locks.
    pub fn locks(mut self, n: usize) -> Self {
        self.n_locks = n;
        self
    }

    /// Sets the number of barriers.
    pub fn barriers(mut self, n: usize) -> Self {
        self.n_barriers = n;
        self
    }

    /// Disables write-notice piggybacking (ablation).
    pub fn no_piggyback(mut self) -> Self {
        self.piggyback_notices = false;
        self
    }

    /// Enables same-destination message coalescing (see
    /// [`LrcConfig::coalesce_notices`]).
    pub fn coalesce_notices(mut self) -> Self {
        self.coalesce_notices = true;
        self
    }

    /// Forces full-page fetches on every miss (ablation of §4.3.3).
    pub fn full_page_misses(mut self) -> Self {
        self.full_page_misses = true;
        self
    }

    /// Enables barrier-time garbage collection of consistency information.
    pub fn gc_at_barriers(mut self) -> Self {
        self.gc_at_barriers = true;
        self
    }

    /// Bounds how long a dead processor defers garbage collection (see
    /// [`LrcConfig::death_lease_episodes`]).
    pub fn death_lease(mut self, episodes: u64) -> Self {
        self.death_lease_episodes = Some(episodes);
        self
    }

    /// Selects a deliberately-broken protocol variant (mutation testing
    /// only; see [`ProtocolMutation`]).
    pub fn mutate(mut self, mutation: ProtocolMutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// Serializes every slow path on one engine-wide mutex — the pre-split
    /// baseline, for benchmarking only (see
    /// [`LrcConfig::serialize_slow_paths`]).
    pub fn serialize_slow_paths(mut self) -> Self {
        self.serialize_slow_paths = true;
        self
    }

    /// Validates the configuration and derives the address space.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the processor count or page size is out of range
    /// or the space is empty.
    pub fn address_space(&self) -> Result<AddrSpace, ConfigError> {
        if self.n_procs == 0 || self.n_procs > MAX_PROCS {
            return Err(ConfigError::BadProcs(self.n_procs));
        }
        if self.mem_bytes == 0 {
            return Err(ConfigError::EmptySpace);
        }
        let size = PageSize::new(self.page_bytes).map_err(ConfigError::BadPageSize)?;
        Ok(AddrSpace::with_capacity(size, self.mem_bytes))
    }
}

/// Errors from validating an [`LrcConfig`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// Processor count outside `1..=MAX_PROCS`.
    BadProcs(usize),
    /// Shared space of zero bytes.
    EmptySpace,
    /// Invalid page size.
    BadPageSize(PageSizeError),
    /// A [`ProtocolMutation`] was requested for an engine family that
    /// does not implement it (mutations exist for the lazy engines only;
    /// silently ignoring one would make a mutation-test vacuous).
    UnsupportedMutation(ProtocolMutation),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadProcs(n) => {
                write!(f, "processor count {n} outside 1..={MAX_PROCS}")
            }
            ConfigError::EmptySpace => f.write_str("shared address space is empty"),
            ConfigError::BadPageSize(e) => write!(f, "{e}"),
            ConfigError::UnsupportedMutation(m) => write!(
                f,
                "protocol mutation '{m}' is only implemented by the lazy engines"
            ),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::BadPageSize(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let cfg = LrcConfig::new(4, 1 << 16);
        assert_eq!(cfg.page_bytes, 4096);
        assert_eq!(cfg.policy, Policy::Invalidate);
        assert!(cfg.piggyback_notices);
        assert!(!cfg.full_page_misses);
        let space = cfg.address_space().unwrap();
        assert_eq!(space.n_pages(), 16);
    }

    #[test]
    fn builder_chains() {
        let cfg = LrcConfig::new(8, 1 << 20)
            .page_size(512)
            .policy(Policy::Update)
            .locks(3)
            .barriers(1)
            .no_piggyback()
            .full_page_misses()
            .gc_at_barriers();
        assert_eq!(cfg.page_bytes, 512);
        assert_eq!(cfg.policy, Policy::Update);
        assert_eq!(cfg.n_locks, 3);
        assert_eq!(cfg.n_barriers, 1);
        assert!(!cfg.piggyback_notices);
        assert!(cfg.full_page_misses);
        assert!(cfg.gc_at_barriers);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert_eq!(
            LrcConfig::new(0, 1024).address_space(),
            Err(ConfigError::BadProcs(0))
        );
        assert_eq!(
            LrcConfig::new(65, 1024).address_space(),
            Err(ConfigError::BadProcs(65))
        );
        assert_eq!(
            LrcConfig::new(2, 0).address_space(),
            Err(ConfigError::EmptySpace)
        );
        assert!(matches!(
            LrcConfig::new(2, 1024).page_size(100).address_space(),
            Err(ConfigError::BadPageSize(_))
        ));
    }

    #[test]
    fn policy_display() {
        assert_eq!(Policy::Invalidate.to_string(), "invalidate");
        assert_eq!(Policy::Update.suffix(), "U");
    }

    #[test]
    fn mutations_default_stock_and_display() {
        let cfg = LrcConfig::new(2, 1 << 14);
        assert_eq!(cfg.mutation, ProtocolMutation::Stock);
        let broken = cfg.mutate(ProtocolMutation::SkipTwinDiff);
        assert_eq!(broken.mutation, ProtocolMutation::SkipTwinDiff);
        assert_eq!(ProtocolMutation::Stock.to_string(), "stock");
        assert_eq!(ProtocolMutation::SkipTwinDiff.to_string(), "skip-twin-diff");
        assert_eq!(ProtocolMutation::DropNotices.to_string(), "drop-notices");
        assert_eq!(
            ProtocolMutation::StaleSnapshotApply.to_string(),
            "stale-snapshot-apply"
        );
        assert_eq!(
            ProtocolMutation::WrongDiffOrder.to_string(),
            "wrong-diff-order"
        );
        assert_eq!(
            ProtocolMutation::DroppedClockMerge.to_string(),
            "dropped-clock-merge"
        );
        assert_eq!(
            ProtocolMutation::StaleGrantKnowledge.to_string(),
            "stale-grant-knowledge"
        );
    }

    #[test]
    fn serialized_baseline_defaults_off() {
        let cfg = LrcConfig::new(2, 1 << 14);
        assert!(!cfg.serialize_slow_paths);
        assert!(cfg.serialize_slow_paths().serialize_slow_paths);
    }

    #[test]
    fn errors_display() {
        assert!(ConfigError::BadProcs(0).to_string().contains("0"));
        assert!(ConfigError::EmptySpace.to_string().contains("empty"));
    }
}
