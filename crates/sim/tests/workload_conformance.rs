//! The paper's evaluation claims (§5.3–§5.4), asserted as tests.
//!
//! Each test replays the synthetic SPLASH-like workloads across protocols
//! and page sizes and checks the *shape* the paper reports — who wins, in
//! which regime — not absolute numbers. A moderate scale keeps the suite
//! fast while leaving the orderings stable.

use lrc_sim::{run_trace, sweep, Metric, ProtocolKind, SimOptions, SweepConfig};
use lrc_trace::check_labeling;
use lrc_workloads::{AppKind, Scale};

use ProtocolKind::{
    EagerInvalidate as EI, EagerUpdate as EU, LazyInvalidate as LI, LazyUpdate as LU,
};

fn shape_scale() -> Scale {
    Scale {
        procs: 8,
        units: 60,
        seed: 1992,
    }
}

fn shape_sweep(app: AppKind) -> lrc_sim::SweepResult {
    let trace = app.generate(&shape_scale());
    let config = SweepConfig {
        page_sizes: vec![512, 2048, 8192],
        kinds: ProtocolKind::ALL.to_vec(),
        options: SimOptions::fast(),
    };
    sweep(&trace, &config).expect("sweep runs")
}

fn msgs(s: &lrc_sim::SweepResult, kind: ProtocolKind, page: usize) -> u64 {
    s.get(kind, page).expect("cell exists").messages()
}

fn data(s: &lrc_sim::SweepResult, kind: ProtocolKind, page: usize) -> u64 {
    s.get(kind, page).expect("cell exists").data_bytes()
}

/// Every workload is properly labeled and every protocol's replay matches
/// sequential consistency on it — the foundational correctness claim that
/// makes the traffic comparison meaningful.
#[test]
fn all_workloads_pass_the_sc_oracle_under_all_protocols() {
    for app in AppKind::ALL {
        let trace = app.generate(&Scale::small(4));
        assert!(check_labeling(&trace).is_ok(), "{app} must be race-free");
        for kind in ProtocolKind::ALL {
            for page in [512, 4096] {
                run_trace(&trace, kind, page, &SimOptions::checked())
                    .unwrap_or_else(|e| panic!("{app}/{kind}/{page}: {e}"));
            }
        }
    }
}

/// §5.4, first sentence: the lazy protocols generally reduce both messages
/// and data. Asserted as: the best lazy protocol beats the best eager
/// protocol on both metrics for every application at every page size —
/// with one documented exception. At 512-byte pages on Water (the
/// quietest program), EI's rare full-page reloads are cheaper than LRC's
/// per-transfer vector-clock and interval-record overhead, because our
/// synthetic Water has a higher synchronization-to-data ratio than the
/// original; see EXPERIMENTS.md. From 1 KB pages upward the paper's
/// ordering holds everywhere.
#[test]
fn best_lazy_beats_best_eager_everywhere() {
    for app in AppKind::ALL {
        let s = shape_sweep(app);
        for page in [512, 2048, 8192] {
            let lazy_m = msgs(&s, LI, page).min(msgs(&s, LU, page));
            let eager_m = msgs(&s, EI, page).min(msgs(&s, EU, page));
            assert!(
                lazy_m as f64 <= eager_m as f64 * 1.05,
                "{app}@{page}: lazy {lazy_m} msgs must beat eager {eager_m}"
            );
            if app == AppKind::Water && page == 512 {
                continue; // the documented deviation above
            }
            let lazy_d = data(&s, LI, page).min(data(&s, LU, page));
            let eager_d = data(&s, EI, page).min(data(&s, EU, page));
            assert!(
                lazy_d < eager_d,
                "{app}@{page}: lazy data {lazy_d} must beat eager {eager_d}"
            );
        }
    }
}

/// §5.3.1/§5.3.2: on the migratory, lock-controlled applications the lazy
/// protocols reduce messages and data for **all** page sizes.
#[test]
fn migratory_apps_favor_lazy_at_all_page_sizes() {
    for app in [AppKind::LocusRoute, AppKind::Cholesky, AppKind::Pthor] {
        let s = shape_sweep(app);
        for page in [512, 2048, 8192] {
            for lazy in [LI, LU] {
                for eager in [EI, EU] {
                    assert!(
                        msgs(&s, lazy, page) < msgs(&s, eager, page),
                        "{app}@{page}: {lazy} msgs must beat {eager}"
                    );
                }
            }
            // Data: the best lazy beats the best eager at every size;
            // both lazy protocols dominate both eager ones once false
            // sharing kicks in (>= 2 KB pages). At 512 bytes LU can tie
            // with EI within a few percent (diff-fetch batching vs
            // full-page fetches of equal size).
            let lazy_d = data(&s, LI, page).min(data(&s, LU, page));
            let eager_d = data(&s, EI, page).min(data(&s, EU, page));
            assert!(lazy_d < eager_d, "{app}@{page}: best lazy data must win");
            if page >= 2048 {
                for lazy in [LI, LU] {
                    for eager in [EI, EU] {
                        assert!(
                            data(&s, lazy, page) < data(&s, eager, page),
                            "{app}@{page}: {lazy} data must beat {eager}"
                        );
                    }
                }
            }
        }
    }
}

/// §5.4: "LU sends fewer messages than EU for migratory data because
/// updates are only sent to the next processor to acquire the lock" — EU
/// updates every cached copy at every release (the Figure 3 pathology).
#[test]
fn eu_is_pathological_on_migratory_data() {
    for app in [AppKind::LocusRoute, AppKind::Cholesky, AppKind::Pthor] {
        let s = shape_sweep(app);
        for page in [512, 2048, 8192] {
            assert!(
                msgs(&s, EU, page) > 2 * msgs(&s, LU, page),
                "{app}@{page}: EU must send far more messages than LU"
            );
        }
    }
}

/// §5.3.5: "Data totals for EI are particularly high [on Pthor], because
/// frequent reloads cause the entire page to be sent" — and the blow-up
/// grows with page size.
#[test]
fn pthor_ei_data_balloons_with_page_size() {
    let s = shape_sweep(AppKind::Pthor);
    for page in [2048, 8192] {
        for other in [LI, LU, EU] {
            assert!(
                data(&s, EI, page) > 2 * data(&s, other, page),
                "EI@{page} must dwarf {other}"
            );
        }
    }
    let small = data(&s, EI, 512);
    let large = data(&s, EI, 8192);
    assert!(
        large > 5 * small,
        "EI data must grow steeply with page size"
    );
}

/// §5.3.5: "The message count for LI is higher than for LU, because LI has
/// more access misses."
#[test]
fn pthor_li_pays_more_misses_than_lu() {
    let s = shape_sweep(AppKind::Pthor);
    for page in [2048, 8192] {
        assert!(
            msgs(&s, LI, page) > msgs(&s, LU, page),
            "LI must exceed LU at {page}"
        );
        let li_miss = s
            .get(LI, page)
            .unwrap()
            .class(lrc_simnet::OpClass::Miss)
            .msgs;
        let lu_miss = s
            .get(LU, page)
            .unwrap()
            .class(lrc_simnet::OpClass::Miss)
            .msgs;
        assert!(
            li_miss > lu_miss,
            "the excess is access misses ({li_miss} vs {lu_miss})"
        );
    }
}

/// §5.3.3: MP3D's traffic is dominated by access misses; "the update
/// protocols exchange fewer messages, because they incur fewer access
/// misses", and the lazy protocols exchange less data than EI because
/// misses move diffs, not pages.
#[test]
fn mp3d_update_policies_avoid_misses_and_lazy_moves_diffs() {
    let s = shape_sweep(AppKind::Mp3d);
    // Where misses dominate (small pages), updating avoids them: the
    // update variant of each family sends fewer messages.
    assert!(
        msgs(&s, LU, 512) < msgs(&s, LI, 512),
        "LU must beat LI at 512"
    );
    assert!(
        msgs(&s, EU, 512) < msgs(&s, EI, 512),
        "EU must beat EI at 512"
    );
    for page in [512, 2048, 8192] {
        assert!(
            data(&s, LI, page) < data(&s, EI, page),
            "LI data must beat EI at {page}"
        );
    }
    // At large pages both invalidate protocols degrade (the paper: the
    // barrier programs "performed poorly with invalidate protocols and
    // large page sizes"); LI's advantage over EI is asserted where misses
    // move diffs instead of pages without rampant false sharing.
    for page in [512, 2048] {
        assert!(
            msgs(&s, LI, page) < msgs(&s, EI, page),
            "LI messages must beat EI at {page}"
        );
    }
    // Misses dominate the invalidate protocols' message counts.
    let li = s.get(LI, 512).unwrap();
    assert!(
        li.class(lrc_simnet::OpClass::Miss).msgs * 2 > li.messages(),
        "misses must dominate LI's traffic"
    );
}

/// §5.3.4: Water communicates least; lazy protocols still use fewer
/// messages, and from moderate page sizes up their data totals win because
/// misses avoid full-page transfers.
#[test]
fn water_is_quiet_and_lazy_wins_from_moderate_pages_up() {
    let s = shape_sweep(AppKind::Water);
    for page in [512, 2048, 8192] {
        // "Only slightly fewer messages ... for large page sizes": strict
        // at small pages, within 5% at 8 KB where LI and EI converge.
        assert!(
            (msgs(&s, LI, page) as f64) < msgs(&s, EI, page) as f64 * 1.05,
            "lazy may not exceed EI messages at {page}"
        );
        assert!(
            msgs(&s, LI, page) < msgs(&s, EU, page),
            "lazy strictly beats EU messages at {page}"
        );
    }
    assert!(
        msgs(&s, LI, 512) < msgs(&s, EI, 512),
        "strict win at small pages"
    );
    for page in [2048, 8192] {
        assert!(
            data(&s, LI, page) < data(&s, EI, page) && data(&s, LI, page) < data(&s, EU, page),
            "lazy less data at {page}"
        );
    }
    // Least communication of the five applications (messages per event).
    let water_trace = AppKind::Water.generate(&shape_scale());
    let water_rate = msgs(&s, LI, 2048) as f64 / water_trace.len() as f64;
    for app in [
        AppKind::LocusRoute,
        AppKind::Cholesky,
        AppKind::Pthor,
        AppKind::Mp3d,
    ] {
        let other = shape_sweep(app);
        let trace = app.generate(&shape_scale());
        let rate = msgs(&other, LI, 2048) as f64 / trace.len() as f64;
        assert!(
            water_rate < rate,
            "water must communicate least per access ({water_rate:.4} vs {app} {rate:.4})"
        );
    }
}

/// §5.4: false sharing increases the number of processors sharing a page
/// as pages grow; the eager protocols then communicate between processors
/// that share a page but not data, while lazy protocols do not.
#[test]
fn false_sharing_widens_the_eager_gap() {
    let trace = lrc_workloads::micro::false_sharing(8, 24, 16);
    let config = SweepConfig {
        page_sizes: vec![128, 8192],
        kinds: vec![LI, EI],
        options: SimOptions::fast(),
    };
    let s = sweep(&trace, &config).expect("sweep runs");
    // At 128-byte pages each word-owner has its own page: little sharing.
    // At 8192 all eight owners share one page.
    let gap_small = data(&s, EI, 128) as f64 / data(&s, LI, 128) as f64;
    let gap_large = data(&s, EI, 8192) as f64 / data(&s, LI, 8192) as f64;
    assert!(
        gap_large > gap_small,
        "eager's relative data cost must grow with false sharing ({gap_small:.2} -> {gap_large:.2})"
    );
}

/// The garbage-collection extension (TreadMarks-style, barrier-time)
/// preserves sequential consistency on every workload while keeping the
/// history store empty after each barrier.
#[test]
fn gc_preserves_correctness_on_all_workloads() {
    let options = SimOptions {
        check_sc: true,
        gc_at_barriers: true,
        ..SimOptions::fast()
    };
    for app in AppKind::ALL {
        let trace = app.generate(&Scale::small(4));
        for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::LazyUpdate] {
            run_trace(&trace, kind, 512, &options)
                .unwrap_or_else(|e| panic!("{app}/{kind} with GC: {e}"));
        }
    }
}

/// Determinism: the whole pipeline (generator + simulator) is reproducible.
#[test]
fn sweeps_are_deterministic() {
    let a = shape_sweep(AppKind::Cholesky);
    let b = shape_sweep(AppKind::Cholesky);
    for kind in ProtocolKind::ALL {
        assert_eq!(
            a.series(kind, Metric::Messages),
            b.series(kind, Metric::Messages)
        );
        assert_eq!(
            a.series(kind, Metric::DataKbytes),
            b.series(kind, Metric::DataKbytes)
        );
    }
}
