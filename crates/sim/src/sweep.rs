use std::fmt;

use lrc_pagemem::PageSize;
use lrc_trace::Trace;

use crate::{run_trace, ProtocolKind, RunReport, SimError, SimOptions};

/// Which quantity a rendered table reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Message counts (the paper's odd-numbered figures).
    Messages,
    /// Data volume in kilobytes (the even-numbered figures).
    DataKbytes,
}

impl Metric {
    /// Human-readable axis label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Messages => "messages",
            Metric::DataKbytes => "data (kbytes)",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Parameters of a page-size × protocol sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Page sizes to sweep (defaults to the paper's 512–8192).
    pub page_sizes: Vec<usize>,
    /// Protocols to run (defaults to all four).
    pub kinds: Vec<ProtocolKind>,
    /// Per-run options.
    pub options: SimOptions,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            page_sizes: PageSize::PAPER_SWEEP.to_vec(),
            kinds: ProtocolKind::ALL.to_vec(),
            options: SimOptions::fast(),
        }
    }
}

/// All runs of one trace across the sweep grid.
#[derive(Clone, Debug)]
pub struct SweepResult {
    name: String,
    page_sizes: Vec<usize>,
    kinds: Vec<ProtocolKind>,
    cells: Vec<RunReport>,
}

/// Replays `trace` for every `(page size, protocol)` cell of the sweep —
/// the procedure behind each of the paper's Figures 5–14 pairs.
///
/// # Errors
///
/// Propagates the first [`SimError`] encountered.
///
/// # Example
///
/// ```
/// use lrc_sim::{sweep, SweepConfig};
/// use lrc_trace::{TraceBuilder, TraceMeta};
/// use lrc_vclock::ProcId;
///
/// let mut b = TraceBuilder::new(TraceMeta::new("tiny", 2, 0, 0, 1 << 14));
/// b.write(ProcId::new(0), 0, 8)?;
/// b.read(ProcId::new(1), 4096, 8)?;
/// let trace = b.finish()?;
///
/// let result = sweep(&trace, &SweepConfig::default())?;
/// println!("{}", result.render(lrc_sim::Metric::Messages));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sweep(trace: &Trace, config: &SweepConfig) -> Result<SweepResult, SimError> {
    let mut cells = Vec::with_capacity(config.page_sizes.len() * config.kinds.len());
    for &page_bytes in &config.page_sizes {
        for &kind in &config.kinds {
            cells.push(run_trace(trace, kind, page_bytes, &config.options)?);
        }
    }
    Ok(SweepResult {
        name: trace.meta().name().to_string(),
        page_sizes: config.page_sizes.clone(),
        kinds: config.kinds.clone(),
        cells,
    })
}

impl SweepResult {
    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The swept page sizes.
    pub fn page_sizes(&self) -> &[usize] {
        &self.page_sizes
    }

    /// The swept protocols.
    pub fn kinds(&self) -> &[ProtocolKind] {
        &self.kinds
    }

    /// The report of one cell.
    pub fn get(&self, kind: ProtocolKind, page_bytes: usize) -> Option<&RunReport> {
        self.cells
            .iter()
            .find(|r| r.kind == kind && r.page_bytes == page_bytes)
    }

    /// All reports, page-size major.
    pub fn iter(&self) -> impl Iterator<Item = &RunReport> {
        self.cells.iter()
    }

    /// One protocol's series across page sizes, in sweep order — a figure
    /// line.
    pub fn series(&self, kind: ProtocolKind, metric: Metric) -> Vec<f64> {
        self.page_sizes
            .iter()
            .filter_map(|&ps| self.get(kind, ps))
            .map(|r| match metric {
                Metric::Messages => r.messages() as f64,
                Metric::DataKbytes => r.data_kbytes(),
            })
            .collect()
    }

    /// Renders the sweep as the paper would tabulate one figure: rows are
    /// page sizes, columns are protocols.
    pub fn render(&self, metric: Metric) -> String {
        let mut out = format!("{} — {}\n", self.name, metric);
        out.push_str(&format!("{:>10}", "page"));
        for kind in &self.kinds {
            out.push_str(&format!("{:>14}", kind.label()));
        }
        out.push('\n');
        for &ps in &self.page_sizes {
            out.push_str(&format!("{ps:>10}"));
            for &kind in &self.kinds {
                match (self.get(kind, ps), metric) {
                    (Some(r), Metric::Messages) => out.push_str(&format!("{:>14}", r.messages())),
                    (Some(r), Metric::DataKbytes) => {
                        out.push_str(&format!("{:>14.1}", r.data_kbytes()))
                    }
                    (None, _) => out.push_str(&format!("{:>14}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_sync::LockId;
    use lrc_trace::{TraceBuilder, TraceMeta};
    use lrc_vclock::ProcId;

    fn trace() -> Trace {
        let mut b = TraceBuilder::new(TraceMeta::new("mini", 2, 1, 0, 1 << 14));
        for round in 0..4u16 {
            let p = ProcId::new(round % 2);
            b.acquire(p, LockId::new(0)).unwrap();
            b.read(p, 128, 8).unwrap();
            b.write(p, 128, 8).unwrap();
            b.release(p, LockId::new(0)).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn sweep_covers_the_grid() {
        let result = sweep(&trace(), &SweepConfig::default()).unwrap();
        assert_eq!(result.iter().count(), 5 * 4);
        assert_eq!(result.page_sizes(), PageSize::PAPER_SWEEP);
        assert_eq!(result.kinds().len(), 4);
        for kind in ProtocolKind::ALL {
            for ps in PageSize::PAPER_SWEEP {
                assert!(result.get(kind, ps).is_some(), "{kind} @{ps}");
            }
        }
        assert!(result.get(ProtocolKind::LazyUpdate, 123).is_none());
    }

    #[test]
    fn series_matches_cells() {
        let result = sweep(&trace(), &SweepConfig::default()).unwrap();
        let series = result.series(ProtocolKind::LazyInvalidate, Metric::Messages);
        assert_eq!(series.len(), 5);
        assert_eq!(
            series[0],
            result
                .get(ProtocolKind::LazyInvalidate, 512)
                .unwrap()
                .messages() as f64
        );
    }

    #[test]
    fn render_is_tabular() {
        let result = sweep(&trace(), &SweepConfig::default()).unwrap();
        let text = result.render(Metric::Messages);
        assert!(text.starts_with("mini — messages"));
        assert!(text.contains("LI"));
        assert!(text.contains("EU"));
        assert_eq!(
            text.lines().count(),
            2 + 5,
            "header rows + one per page size"
        );
        let data = result.render(Metric::DataKbytes);
        assert!(data.contains("kbytes"));
    }

    #[test]
    fn custom_grid_is_respected() {
        let config = SweepConfig {
            page_sizes: vec![1024],
            kinds: vec![ProtocolKind::LazyInvalidate],
            options: SimOptions::checked(),
        };
        let result = sweep(&trace(), &config).unwrap();
        assert_eq!(result.iter().count(), 1);
    }
}
