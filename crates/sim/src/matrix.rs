use std::fmt;

use lrc_simnet::MsgRecord;
use lrc_trace::Trace;
use lrc_vclock::ProcId;

use crate::engine_any::EngineParams;
use crate::{AnyEngine, ProtocolKind, RunReport, SimError, SimOptions};

/// A processor-to-processor traffic matrix.
///
/// Entry `(src, dst)` counts the messages and bytes `src` sent to `dst`.
/// The matrix makes the paper's intuition visible: under LRC, migratory
/// data produces a lock-transfer *chain* (each processor talks to the next
/// acquirer and the lock home), while eager update produces a dense matrix
/// (every release talks to every cacher).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CommMatrix {
    n: usize,
    msgs: Vec<u64>,
    bytes: Vec<u64>,
}

impl CommMatrix {
    /// Builds a matrix from a message log.
    pub fn from_records(n_procs: usize, records: &[MsgRecord]) -> Self {
        let mut m = CommMatrix {
            n: n_procs,
            msgs: vec![0; n_procs * n_procs],
            bytes: vec![0; n_procs * n_procs],
        };
        for rec in records {
            let i = rec.src.index() * n_procs + rec.dst.index();
            m.msgs[i] += 1;
            m.bytes[i] += lrc_simnet::MSG_HEADER_BYTES + rec.payload;
        }
        m
    }

    /// Number of processors.
    pub fn n_procs(&self) -> usize {
        self.n
    }

    /// Messages sent from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn msgs(&self, src: ProcId, dst: ProcId) -> u64 {
        self.msgs[src.index() * self.n + dst.index()]
    }

    /// Bytes sent from `src` to `dst` (headers included).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn bytes(&self, src: ProcId, dst: ProcId) -> u64 {
        self.bytes[src.index() * self.n + dst.index()]
    }

    /// Total messages.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Number of ordered processor pairs that exchanged at least one
    /// message — the matrix's *density* (out of `n·(n-1)` possible).
    pub fn active_pairs(&self) -> usize {
        self.msgs.iter().filter(|&&m| m > 0).count()
    }

    /// The heaviest communicating pairs, by message count, descending.
    pub fn hotspots(&self, top: usize) -> Vec<(ProcId, ProcId, u64)> {
        let mut pairs: Vec<(ProcId, ProcId, u64)> = (0..self.n)
            .flat_map(|s| (0..self.n).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d)
            .map(|(s, d)| {
                (
                    ProcId::new(s as u16),
                    ProcId::new(d as u16),
                    self.msgs[s * self.n + d],
                )
            })
            .filter(|&(_, _, m)| m > 0)
            .collect();
        pairs.sort_by_key(|&(s, d, m)| (std::cmp::Reverse(m), s, d));
        pairs.truncate(top);
        pairs
    }

    /// Renders the message matrix as an aligned table.
    pub fn render(&self) -> String {
        let mut out = String::from("      ");
        for d in 0..self.n {
            out.push_str(&format!("{:>8}", format!("->p{d}")));
        }
        out.push('\n');
        for s in 0..self.n {
            out.push_str(&format!("p{s:<5}"));
            for d in 0..self.n {
                out.push_str(&format!("{:>8}", self.msgs[s * self.n + d]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for CommMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Replays a trace with per-message logging and returns the run report
/// together with the processor-to-processor traffic matrix.
///
/// # Errors
///
/// Same as [`run_trace`](crate::run_trace).
///
/// # Example
///
/// ```
/// use lrc_sim::{run_traced, ProtocolKind, SimOptions};
/// use lrc_workloads::micro::migratory;
///
/// let trace = migratory(4, 10, 8);
/// let (report, matrix) =
///     run_traced(&trace, ProtocolKind::LazyInvalidate, 1024, &SimOptions::fast())?;
/// assert_eq!(matrix.total_msgs(), report.messages());
/// # Ok::<(), lrc_sim::SimError>(())
/// ```
pub fn run_traced(
    trace: &Trace,
    kind: ProtocolKind,
    page_bytes: usize,
    options: &SimOptions,
) -> Result<(RunReport, CommMatrix), SimError> {
    let meta = trace.meta();
    let params = EngineParams {
        n_procs: meta.n_procs(),
        mem_bytes: meta.mem_bytes(),
        page_bytes,
        n_locks: meta.n_locks().max(1),
        n_barriers: meta.n_barriers().max(1),
        piggyback_notices: options.piggyback_notices,
        full_page_misses: options.full_page_misses,
        gc_at_barriers: options.gc_at_barriers,
        ..EngineParams::default()
    };
    let mut engine = AnyEngine::build(kind, &params)?;
    engine.enable_net_trace();
    let report = crate::runner::replay(trace, kind, page_bytes, options, &mut engine)?;
    let matrix = CommMatrix::from_records(meta.n_procs(), &engine.net_records());
    Ok((report, matrix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_workloads::micro::{migratory, producer_consumer};

    #[test]
    fn matrix_totals_match_the_report() {
        let trace = migratory(4, 20, 8);
        for kind in ProtocolKind::ALL {
            let (report, matrix) = run_traced(&trace, kind, 512, &SimOptions::fast()).unwrap();
            assert_eq!(matrix.total_msgs(), report.messages(), "{kind}");
            assert_eq!(matrix.total_bytes(), report.data_bytes(), "{kind}");
            assert_eq!(matrix.n_procs(), 4);
        }
    }

    #[test]
    fn eager_update_is_denser_than_lazy() {
        let trace = producer_consumer(6, 30, 8);
        let (_, lazy) =
            run_traced(&trace, ProtocolKind::LazyUpdate, 512, &SimOptions::fast()).unwrap();
        let (_, eager) =
            run_traced(&trace, ProtocolKind::EagerUpdate, 512, &SimOptions::fast()).unwrap();
        assert!(
            eager.total_msgs() > lazy.total_msgs(),
            "EU floods more traffic overall"
        );
        assert!(eager.active_pairs() >= lazy.active_pairs());
    }

    #[test]
    fn hotspots_and_render() {
        let trace = migratory(3, 10, 8);
        let (_, matrix) = run_traced(
            &trace,
            ProtocolKind::LazyInvalidate,
            512,
            &SimOptions::fast(),
        )
        .unwrap();
        let hot = matrix.hotspots(3);
        assert!(!hot.is_empty());
        assert!(
            hot.windows(2).all(|w| w[0].2 >= w[1].2),
            "sorted descending"
        );
        let text = matrix.render();
        assert!(text.contains("->p0"));
        assert_eq!(text.lines().count(), 4, "header + one row per processor");
        // Diagonal is empty: processors never message themselves.
        for i in 0..3u16 {
            assert_eq!(matrix.msgs(ProcId::new(i), ProcId::new(i)), 0);
        }
    }
}
