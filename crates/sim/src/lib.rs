//! Trace-driven DSM protocol simulator.
//!
//! This crate is the experimental apparatus of the reproduction: it replays
//! a [`lrc_trace::Trace`] over any of the paper's four protocols —
//!
//! | kind | engine | policy |
//! |------|--------|--------|
//! | [`ProtocolKind::LazyInvalidate`] (LI) | [`lrc_core::LrcEngine`] | invalidate |
//! | [`ProtocolKind::LazyUpdate`] (LU) | [`lrc_core::LrcEngine`] | update |
//! | [`ProtocolKind::EagerInvalidate`] (EI) | [`lrc_eager::EagerEngine`] | invalidate |
//! | [`ProtocolKind::EagerUpdate`] (EU) | [`lrc_eager::EagerEngine`] | update |
//!
//! — and reports the two quantities the paper measures: **messages** and
//! **data** exchanged, per operation class (Table 1's columns).
//!
//! Because both engines maintain real page contents, the simulator can run
//! with a **sequential-consistency oracle** ([`SimOptions::check_sc`]):
//! every write deterministically synthesizes its bytes, a flat memory
//! replays them in trace order, and every read of every protocol is
//! compared against it. On a properly-labeled trace (see
//! [`lrc_trace::check_labeling`]) any mismatch is a protocol bug; the test
//! suites lean on this heavily.
//!
//! [`sweep`] replays one trace across page sizes × protocols — exactly how
//! the paper produces Figures 5–14 — and renders the series as tables.
//!
//! # Example
//!
//! ```
//! use lrc_sim::{run_trace, ProtocolKind, SimOptions};
//! use lrc_trace::{TraceBuilder, TraceMeta};
//! use lrc_sync::LockId;
//! use lrc_vclock::ProcId;
//!
//! let mut b = TraceBuilder::new(TraceMeta::new("demo", 2, 1, 0, 1 << 16));
//! let (p0, p1, l) = (ProcId::new(0), ProcId::new(1), LockId::new(0));
//! b.acquire(p0, l)?;
//! b.write(p0, 0, 8)?;
//! b.release(p0, l)?;
//! b.acquire(p1, l)?;
//! b.read(p1, 0, 8)?;
//! b.release(p1, l)?;
//! let trace = b.finish()?;
//!
//! let li = run_trace(&trace, ProtocolKind::LazyInvalidate, 4096, &SimOptions::checked())?;
//! let ei = run_trace(&trace, ProtocolKind::EagerInvalidate, 4096, &SimOptions::checked())?;
//! assert!(li.messages() <= ei.messages());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine_any;
mod matrix;
mod protocol;
mod runner;
mod sweep;

pub use engine_any::{AnyCheckpoint, AnyEngine, EngineParams};
pub use matrix::{run_traced, CommMatrix};
pub use protocol::ProtocolKind;
pub use runner::{run_trace, synth_write_bytes, RunReport, SimError, SimOptions};
pub use sweep::{sweep, Metric, SweepConfig, SweepResult};
