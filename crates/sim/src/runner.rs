use std::error::Error;
use std::fmt;

use lrc_core::ConfigError;
use lrc_pagemem::Memory;
use lrc_simnet::{Counter, NetStats, OpClass};
use lrc_trace::{Op, Trace};

use crate::engine_any::EngineParams;
use crate::{AnyEngine, ProtocolKind};

/// Options of a simulation run.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Compare every read against a sequentially consistent replay. The
    /// trace must be properly labeled for this to be meaningful.
    pub check_sc: bool,
    /// Disable write-notice piggybacking (lazy protocols; ablation A2).
    pub piggyback_notices: bool,
    /// Ship whole pages on warm misses (lazy protocols; ablation A1).
    pub full_page_misses: bool,
    /// Garbage-collect consistency information at barriers (lazy
    /// protocols; the TreadMarks extension the paper defers to future
    /// work). Bounds the history at the cost of extra barrier traffic.
    pub gc_at_barriers: bool,
}

impl SimOptions {
    /// Fast options: no oracle, paper-faithful protocol settings.
    pub fn fast() -> Self {
        SimOptions {
            check_sc: false,
            piggyback_notices: true,
            full_page_misses: false,
            gc_at_barriers: false,
        }
    }

    /// Checked options: oracle on, paper-faithful protocol settings.
    pub fn checked() -> Self {
        SimOptions {
            check_sc: true,
            ..SimOptions::fast()
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::fast()
    }
}

/// Errors from a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// Invalid engine parameters.
    Config(ConfigError),
    /// A synchronization event was illegal for the engine (the trace was
    /// not validated, or the engine disagrees with the trace's legality).
    Protocol {
        /// Index of the offending event.
        at: usize,
        /// Engine error text.
        detail: String,
    },
    /// A read returned different bytes than sequential consistency — a
    /// protocol bug or an improperly labeled trace.
    ReadDivergence {
        /// Index of the offending event.
        at: usize,
        /// Protocol under test.
        kind: ProtocolKind,
        /// Accessed address.
        addr: u64,
        /// Bytes sequential consistency requires.
        expected: Vec<u8>,
        /// Bytes the protocol returned.
        got: Vec<u8>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "bad configuration: {e}"),
            SimError::Protocol { at, detail } => write!(f, "event {at}: {detail}"),
            SimError::ReadDivergence {
                at,
                kind,
                addr,
                expected,
                got,
            } => write!(
                f,
                "event {at}: {kind} read at {addr:#x} diverged from sequential \
                 consistency (expected {expected:?}, got {got:?})"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// The outcome of replaying one trace over one protocol at one page size.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Protocol that ran.
    pub kind: ProtocolKind,
    /// Page size used.
    pub page_bytes: usize,
    /// Full per-kind traffic statistics.
    pub net: NetStats,
    /// Events replayed.
    pub events: usize,
    /// Wire bytes of diff history retained at end of run (lazy engines
    /// only; `Some(0)` once garbage collection has run at the last
    /// barrier).
    pub history_bytes: Option<u64>,
}

impl RunReport {
    /// Total messages — the y-axis of the paper's odd-numbered figures.
    pub fn messages(&self) -> u64 {
        self.net.total().msgs
    }

    /// Total bytes on the wire.
    pub fn data_bytes(&self) -> u64 {
        self.net.total().bytes
    }

    /// Total kilobytes — the y-axis of the even-numbered figures.
    pub fn data_kbytes(&self) -> f64 {
        self.net.total().kbytes()
    }

    /// Traffic of one operation class (Table 1 column).
    pub fn class(&self, class: OpClass) -> Counter {
        self.net.class(class)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @{}B: {} msgs, {:.1} kbytes",
            self.kind,
            self.page_bytes,
            self.messages(),
            self.data_kbytes()
        )
    }
}

/// Deterministically synthesizes the bytes written by trace event
/// `event_index` — a splitmix64 stream, so the protocol replay and the
/// sequential-consistency oracle write identical data without the trace
/// having to carry payloads.
pub fn synth_write_bytes(event_index: usize, len: usize) -> Vec<u8> {
    let mut state =
        (event_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let chunk = z.to_le_bytes();
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&chunk[..take]);
    }
    out
}

/// Replays `trace` over protocol `kind` with pages of `page_bytes`.
///
/// # Errors
///
/// * [`SimError::Config`] for invalid parameters;
/// * [`SimError::Protocol`] if the trace is illegal for the engine
///   (validate traces first);
/// * [`SimError::ReadDivergence`] if [`SimOptions::check_sc`] is set and a
///   read disagrees with the sequentially consistent replay.
pub fn run_trace(
    trace: &Trace,
    kind: ProtocolKind,
    page_bytes: usize,
    options: &SimOptions,
) -> Result<RunReport, SimError> {
    let meta = trace.meta();
    let params = EngineParams {
        n_procs: meta.n_procs(),
        mem_bytes: meta.mem_bytes(),
        page_bytes,
        n_locks: meta.n_locks().max(1),
        n_barriers: meta.n_barriers().max(1),
        piggyback_notices: options.piggyback_notices,
        full_page_misses: options.full_page_misses,
        gc_at_barriers: options.gc_at_barriers,
        ..EngineParams::default()
    };
    let mut engine = AnyEngine::build(kind, &params)?;
    replay(trace, kind, page_bytes, options, &mut engine)
}

/// Replays `trace` through a pre-built engine (shared by [`run_trace`] and
/// [`run_traced`](crate::run_traced)).
pub(crate) fn replay(
    trace: &Trace,
    kind: ProtocolKind,
    page_bytes: usize,
    options: &SimOptions,
    engine: &mut AnyEngine,
) -> Result<RunReport, SimError> {
    let mut oracle = options.check_sc.then(|| Memory::zeroed(engine.space()));

    let mut read_buf = Vec::new();
    for (at, event) in trace.events().iter().enumerate() {
        let p = event.proc;
        match event.op {
            Op::Read { addr, len } => {
                read_buf.clear();
                read_buf.resize(len as usize, 0);
                engine.read_into(p, addr, &mut read_buf);
                if let Some(oracle) = &oracle {
                    let expected = oracle.read_vec(addr, len as usize);
                    if expected != read_buf {
                        return Err(SimError::ReadDivergence {
                            at,
                            kind,
                            addr,
                            expected,
                            got: read_buf,
                        });
                    }
                }
            }
            Op::Write { addr, len } => {
                let data = synth_write_bytes(at, len as usize);
                engine.write(p, addr, &data);
                if let Some(oracle) = &mut oracle {
                    oracle.write(addr, &data);
                }
            }
            Op::Acquire(lock) => {
                engine.acquire(p, lock).map_err(|e| SimError::Protocol {
                    at,
                    detail: e.to_string(),
                })?;
            }
            Op::Release(lock) => {
                engine.release(p, lock).map_err(|e| SimError::Protocol {
                    at,
                    detail: e.to_string(),
                })?;
            }
            Op::Barrier(barrier) => {
                engine.barrier(p, barrier).map_err(|e| SimError::Protocol {
                    at,
                    detail: e.to_string(),
                })?;
            }
        }
    }
    let history_bytes = engine.as_lazy().map(|e| e.store().diff_bytes());
    Ok(RunReport {
        kind,
        page_bytes,
        net: engine.net_stats(),
        events: trace.len(),
        history_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_sync::{BarrierId, LockId};
    use lrc_trace::{TraceBuilder, TraceMeta};
    use lrc_vclock::ProcId;

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn lock_trace() -> Trace {
        let mut b = TraceBuilder::new(TraceMeta::new("t", 4, 1, 1, 1 << 14));
        for round in 0..8u16 {
            let proc = p(round % 4);
            b.acquire(proc, LockId::new(0)).unwrap();
            b.read(proc, 0, 8).unwrap();
            b.write(proc, 0, 8).unwrap();
            b.release(proc, LockId::new(0)).unwrap();
        }
        b.barrier_all(BarrierId::new(0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn all_protocols_pass_the_oracle_on_a_labeled_trace() {
        let trace = lock_trace();
        for kind in ProtocolKind::ALL {
            let report = run_trace(&trace, kind, 512, &SimOptions::checked()).unwrap();
            assert!(report.messages() > 0, "{kind}");
            assert_eq!(report.events, trace.len());
        }
    }

    #[test]
    fn lazy_sends_fewer_messages_than_eager_on_migratory_data() {
        let trace = lock_trace();
        let li = run_trace(
            &trace,
            ProtocolKind::LazyInvalidate,
            512,
            &SimOptions::fast(),
        )
        .unwrap();
        let eu = run_trace(&trace, ProtocolKind::EagerUpdate, 512, &SimOptions::fast()).unwrap();
        let ei = run_trace(
            &trace,
            ProtocolKind::EagerInvalidate,
            512,
            &SimOptions::fast(),
        )
        .unwrap();
        assert!(li.messages() < eu.messages());
        assert!(li.messages() <= ei.messages());
        assert!(li.data_bytes() < ei.data_bytes());
    }

    #[test]
    fn oracle_flags_racy_traces() {
        // p0 writes page 1 (home p1) without synchronization; p1's read of
        // its own home page sees the initial zeros: divergence from SC.
        let mut b = TraceBuilder::new(TraceMeta::new("racy", 4, 0, 0, 1 << 14));
        b.write(p(0), 512, 8).unwrap(); // page 1 under 512-byte pages
        b.read(p(1), 512, 8).unwrap();
        let racy = b.finish().unwrap();
        assert!(
            lrc_trace::check_labeling(&racy).is_err(),
            "trace really is racy"
        );
        for kind in [ProtocolKind::LazyInvalidate, ProtocolKind::EagerInvalidate] {
            let err = run_trace(&racy, kind, 512, &SimOptions::checked()).unwrap_err();
            assert!(
                matches!(err, SimError::ReadDivergence { at: 1, .. }),
                "{kind}: {err}"
            );
        }
    }

    #[test]
    fn synth_bytes_are_deterministic_and_distinct() {
        assert_eq!(synth_write_bytes(7, 16), synth_write_bytes(7, 16));
        assert_ne!(synth_write_bytes(7, 16), synth_write_bytes(8, 16));
        assert_eq!(synth_write_bytes(3, 5).len(), 5);
        assert!(synth_write_bytes(0, 8).iter().any(|&b| b != 0));
    }

    #[test]
    fn illegal_event_reports_position() {
        // Build a trace that is legal for the builder but mismatched for a
        // smaller engine: a lock id beyond the engine's table cannot happen
        // (params derive from meta), so exercise double-acquire instead by
        // replaying a hand-assembled illegal trace.
        let meta = TraceMeta::new("bad", 2, 1, 0, 4096);
        let events = vec![
            lrc_trace::Event::new(p(0), Op::Acquire(LockId::new(0))),
            lrc_trace::Event::new(p(1), Op::Acquire(LockId::new(0))),
        ];
        // Bypass validation deliberately.
        let trace = Trace::from_parts(meta, events);
        assert!(trace.is_err(), "the validating constructor refuses it");
    }

    #[test]
    fn report_accessors() {
        let trace = lock_trace();
        let r = run_trace(
            &trace,
            ProtocolKind::LazyInvalidate,
            1024,
            &SimOptions::fast(),
        )
        .unwrap();
        assert_eq!(r.page_bytes, 1024);
        assert_eq!(r.data_bytes(), r.net.total().bytes);
        assert!(r.to_string().contains("LI @1024B"));
        let by_class: u64 = lrc_simnet::OpClass::ALL
            .iter()
            .map(|&c| r.class(c).msgs)
            .sum();
        assert_eq!(by_class, r.messages(), "classes partition the traffic");
    }
}
