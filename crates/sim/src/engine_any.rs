use std::sync::Arc;

use lrc_core::{
    CheckpointError, ConfigError, DeathReport, EngineCheckpoint, EngineOp, EngineOpError,
    LrcConfig, LrcEngine, ProtocolMutation,
};
use lrc_eager::{EagerCheckpoint, EagerConfig, EagerEngine};
use lrc_hist::HistoryRecorder;
use lrc_pagemem::AddrSpace;
use lrc_simnet::NetStats;
use lrc_sync::{BarrierArrival, BarrierError, BarrierId, LockError, LockId};
use lrc_vclock::ProcId;

use crate::ProtocolKind;

/// A protocol engine of either family behind one interface.
///
/// The simulator, the runtime DSM, and the benches all drive protocols
/// through this type so a run is parameterized by [`ProtocolKind`] alone.
// The variants' sizes diverge as the lazy engine grows recovery state,
// but every construction site makes exactly one engine and keeps it for
// the whole run — boxing would tax every access to save one allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnyEngine {
    /// A lazy release consistency engine (LI or LU).
    Lazy(LrcEngine),
    /// An eager release consistency engine (EI or EU).
    Eager(EagerEngine),
}

/// Construction parameters shared by both engine families.
#[derive(Clone, Debug)]
pub struct EngineParams {
    /// Number of processors.
    pub n_procs: usize,
    /// Shared space in bytes.
    pub mem_bytes: u64,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Locks available.
    pub n_locks: usize,
    /// Barriers available.
    pub n_barriers: usize,
    /// Disable write-notice piggybacking (lazy engines only; ablation).
    pub piggyback_notices: bool,
    /// Merge same-destination protocol messages that travel together
    /// anyway (see [`lrc_core::LrcConfig::coalesce_notices`]). Both
    /// families.
    pub coalesce_notices: bool,
    /// Ship whole pages on warm misses (lazy engines only; ablation).
    pub full_page_misses: bool,
    /// Garbage-collect consistency information at barriers (lazy engines
    /// only; the TreadMarks extension).
    pub gc_at_barriers: bool,
    /// Deliberately-broken protocol variant for mutation-testing the
    /// history checker. Lazy engines only: [`AnyEngine::build`] *rejects*
    /// a non-stock mutation for the eager kinds rather than silently
    /// building a faithful engine.
    pub mutation: ProtocolMutation,
    /// Serialize every slow path on one engine-wide mutex — the pre-split
    /// measurement baseline (see
    /// [`lrc_core::LrcConfig::serialize_slow_paths`]). Benchmarks only.
    pub serialize_slow_paths: bool,
    /// Bound on how many barrier episodes a dead processor may hold back
    /// garbage collection before its rejoin lease expires (lazy engines
    /// only; `None` defers GC for as long as any processor is dead — see
    /// [`lrc_core::LrcConfig::death_lease_episodes`]).
    pub death_lease_episodes: Option<u64>,
}

impl Default for EngineParams {
    /// A minimal single-processor system with the builder defaults
    /// (4 KiB pages, 16 locks, 4 barriers, no ablations, stock
    /// protocol). Construction sites spell out the fields they mean and
    /// take the rest from here, so adding a knob touches one place.
    fn default() -> Self {
        EngineParams {
            n_procs: 1,
            mem_bytes: 1 << 16,
            page_bytes: 4096,
            n_locks: 16,
            n_barriers: 4,
            piggyback_notices: true,
            coalesce_notices: false,
            full_page_misses: false,
            gc_at_barriers: false,
            mutation: ProtocolMutation::Stock,
            serialize_slow_paths: false,
            death_lease_episodes: None,
        }
    }
}

impl AnyEngine {
    /// Builds an engine of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the parameters do not validate.
    pub fn build(kind: ProtocolKind, params: &EngineParams) -> Result<Self, ConfigError> {
        if kind.is_lazy() {
            let mut cfg = LrcConfig::new(params.n_procs, params.mem_bytes)
                .page_size(params.page_bytes)
                .policy(kind.policy())
                .locks(params.n_locks)
                .barriers(params.n_barriers);
            if !params.piggyback_notices {
                cfg = cfg.no_piggyback();
            }
            if params.coalesce_notices {
                cfg = cfg.coalesce_notices();
            }
            if params.full_page_misses {
                cfg = cfg.full_page_misses();
            }
            if params.gc_at_barriers {
                cfg = cfg.gc_at_barriers();
            }
            if params.serialize_slow_paths {
                cfg = cfg.serialize_slow_paths();
            }
            if let Some(lease) = params.death_lease_episodes {
                cfg = cfg.death_lease(lease);
            }
            cfg = cfg.mutate(params.mutation);
            Ok(AnyEngine::Lazy(LrcEngine::new(cfg)?))
        } else {
            if params.mutation != ProtocolMutation::Stock {
                // Silently building a *stock* eager engine would make a
                // mutation test vacuously green.
                return Err(ConfigError::UnsupportedMutation(params.mutation));
            }
            let mut cfg = EagerConfig::new(params.n_procs, params.mem_bytes)
                .page_size(params.page_bytes)
                .policy(kind.policy())
                .locks(params.n_locks)
                .barriers(params.n_barriers);
            if params.coalesce_notices {
                cfg = cfg.coalesce_notices();
            }
            if params.serialize_slow_paths {
                cfg = cfg.serialize_slow_paths();
            }
            Ok(AnyEngine::Eager(EagerEngine::new(cfg)?))
        }
    }

    /// The engine's address space.
    pub fn space(&self) -> AddrSpace {
        match self {
            AnyEngine::Lazy(e) => e.space(),
            AnyEngine::Eager(e) => e.space(),
        }
    }

    /// Reads bytes, resolving misses.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range accesses (see the engines' docs).
    pub fn read_into(&self, p: ProcId, addr: u64, buf: &mut [u8]) {
        match self {
            AnyEngine::Lazy(e) => e.read_into(p, addr, buf),
            AnyEngine::Eager(e) => e.read_into(p, addr, buf),
        }
    }

    /// Writes bytes, twinning as needed.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range accesses (see the engines' docs).
    pub fn write(&self, p: ProcId, addr: u64, data: &[u8]) {
        match self {
            AnyEngine::Lazy(e) => e.write(p, addr, data),
            AnyEngine::Eager(e) => e.write(p, addr, data),
        }
    }

    /// Acquires a lock.
    ///
    /// # Errors
    ///
    /// Propagates [`LockError`].
    pub fn acquire(&self, p: ProcId, lock: LockId) -> Result<(), LockError> {
        match self {
            AnyEngine::Lazy(e) => e.acquire(p, lock),
            AnyEngine::Eager(e) => e.acquire(p, lock),
        }
    }

    /// Releases a lock.
    ///
    /// # Errors
    ///
    /// Propagates [`LockError`].
    pub fn release(&self, p: ProcId, lock: LockId) -> Result<(), LockError> {
        match self {
            AnyEngine::Lazy(e) => e.release(p, lock),
            AnyEngine::Eager(e) => e.release(p, lock),
        }
    }

    /// Arrives at a barrier.
    ///
    /// # Errors
    ///
    /// Propagates [`BarrierError`].
    pub fn barrier(&self, p: ProcId, barrier: BarrierId) -> Result<BarrierArrival, BarrierError> {
        match self {
            AnyEngine::Lazy(e) => e.barrier(p, barrier),
            AnyEngine::Eager(e) => e.barrier(p, barrier),
        }
    }

    /// Dispatches one decoded remote request (the network nodes' single
    /// entry point into either engine family).
    ///
    /// # Errors
    ///
    /// Propagates [`EngineOpError`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range accesses (see the engines' docs).
    pub fn apply_op(&self, p: ProcId, op: &EngineOp) -> Result<Vec<u8>, EngineOpError> {
        match self {
            AnyEngine::Lazy(e) => e.apply_op(p, op),
            AnyEngine::Eager(e) => e.apply_op(p, op),
        }
    }

    /// Attaches a history recorder to either engine family (see
    /// [`lrc_core::LrcEngine::attach_recorder`]).
    ///
    /// # Panics
    ///
    /// Panics if a recorder is already attached or its processor count
    /// differs from the engine's.
    pub fn attach_recorder(&self, recorder: Arc<HistoryRecorder>) {
        match self {
            AnyEngine::Lazy(e) => e.attach_recorder(recorder),
            AnyEngine::Eager(e) => e.attach_recorder(recorder),
        }
    }

    /// The current holder of `lock`, if any (diagnostics).
    pub fn lock_holder(&self, lock: LockId) -> Option<ProcId> {
        match self {
            AnyEngine::Lazy(e) => e.lock_holder(lock),
            AnyEngine::Eager(e) => e.lock_holder(lock),
        }
    }

    /// The live processors the current episode of `barrier` is still
    /// waiting for (empty for unknown barriers) — the failure detector's
    /// suspect list when a barrier wait times out.
    pub fn barrier_absentees(&self, barrier: BarrierId) -> Vec<ProcId> {
        match self {
            AnyEngine::Lazy(e) => e.barrier_absentees(barrier),
            AnyEngine::Eager(e) => e.barrier_absentees(barrier),
        }
    }

    /// Installs the miss-fetch instrumentation hook on either engine
    /// family (see [`lrc_core::LrcEngine::set_fetch_hook`]).
    ///
    /// # Panics
    ///
    /// Panics if a hook is already installed.
    pub fn set_fetch_hook(&self, hook: lrc_core::FetchHook) {
        match self {
            AnyEngine::Lazy(e) => e.set_fetch_hook(hook),
            AnyEngine::Eager(e) => e.set_fetch_hook(hook),
        }
    }

    /// Enables per-message logging on the engine's fabric.
    pub fn enable_net_trace(&self) {
        match self {
            AnyEngine::Lazy(e) => e.enable_net_trace(),
            AnyEngine::Eager(e) => e.enable_net_trace(),
        }
    }

    /// The logged messages (empty unless tracing was enabled).
    pub fn net_records(&self) -> Vec<lrc_simnet::MsgRecord> {
        match self {
            AnyEngine::Lazy(e) => e.net().traced(),
            AnyEngine::Eager(e) => e.net().traced(),
        }
    }

    /// Records one checkpoint cut shipped by the runtime's automatic
    /// policy on either engine family (pure statistics — see
    /// [`lrc_core::LrcEngine::note_checkpoint`]).
    pub fn note_checkpoint(&self, shipped_bytes: u64) {
        match self {
            AnyEngine::Lazy(e) => e.note_checkpoint(shipped_bytes),
            AnyEngine::Eager(e) => e.note_checkpoint(shipped_bytes),
        }
    }

    /// Snapshot of the network statistics.
    pub fn net_stats(&self) -> NetStats {
        match self {
            AnyEngine::Lazy(e) => e.net().stats(),
            AnyEngine::Eager(e) => e.net().stats(),
        }
    }

    /// The lazy engine, if this is one.
    pub fn as_lazy(&self) -> Option<&LrcEngine> {
        match self {
            AnyEngine::Lazy(e) => Some(e),
            AnyEngine::Eager(_) => None,
        }
    }

    /// The eager engine, if this is one.
    pub fn as_eager(&self) -> Option<&EagerEngine> {
        match self {
            AnyEngine::Lazy(_) => None,
            AnyEngine::Eager(e) => Some(e),
        }
    }

    // ---- crash tolerance ----

    /// Captures a checkpoint of either engine family. Call at a
    /// synchronization point so the cut is consistent (see
    /// [`lrc_core::LrcEngine::checkpoint`]).
    pub fn checkpoint(&self) -> AnyCheckpoint {
        match self {
            AnyEngine::Lazy(e) => AnyCheckpoint::Lazy(e.checkpoint()),
            AnyEngine::Eager(e) => AnyCheckpoint::Eager(e.checkpoint()),
        }
    }

    /// Restores a checkpoint into this (freshly built) engine.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Incompatible`] if the checkpoint belongs to the
    /// other engine family or describes a different shape.
    pub fn restore(&self, ckpt: &AnyCheckpoint) -> Result<(), CheckpointError> {
        match (self, ckpt) {
            (AnyEngine::Lazy(e), AnyCheckpoint::Lazy(c)) => e.restore(c),
            (AnyEngine::Eager(e), AnyCheckpoint::Eager(c)) => e.restore(c),
            _ => Err(CheckpointError::Incompatible(
                "checkpoint belongs to the other engine family".into(),
            )),
        }
    }

    /// Declares a processor dead (lazy engines only — see
    /// [`lrc_core::LrcEngine::declare_dead`]).
    ///
    /// # Panics
    ///
    /// Panics on an eager engine: the eager baseline has no crash story.
    pub fn declare_dead(&self, p: ProcId) -> DeathReport {
        self.as_lazy()
            .expect("crash tolerance is a lazy-engine feature")
            .declare_dead(p)
    }

    /// Whether a processor is declared dead (always `false` on eager
    /// engines, which have no crash story).
    pub fn is_dead(&self, p: ProcId) -> bool {
        self.as_lazy().is_some_and(|e| e.is_dead(p))
    }

    /// Whether any processor is dead with an unexpired rejoin lease (see
    /// [`lrc_core::LrcEngine::awaiting_rejoin`]; always `false` on eager
    /// engines).
    pub fn awaiting_rejoin(&self) -> bool {
        self.as_lazy().is_some_and(LrcEngine::awaiting_rejoin)
    }

    /// Rejoins a dead processor from a checkpoint (lazy engines only —
    /// see [`lrc_core::LrcEngine::rejoin`]).
    ///
    /// # Errors
    ///
    /// Propagates [`CheckpointError`]. An eager *engine* cannot rejoin at
    /// all — that is [`CheckpointError::Unsupported`] (no checkpoint could
    /// make it work). A lazy engine handed an eager *checkpoint* is
    /// [`CheckpointError::Incompatible`] (a matching checkpoint would).
    pub fn rejoin(&self, p: ProcId, ckpt: &AnyCheckpoint) -> Result<(), CheckpointError> {
        let Some(engine) = self.as_lazy() else {
            return Err(CheckpointError::Unsupported(
                "rejoin is a lazy-engine feature; the eager baseline has no crash story".into(),
            ));
        };
        let AnyCheckpoint::Lazy(ckpt) = ckpt else {
            return Err(CheckpointError::Incompatible(
                "cannot rejoin a lazy engine from an eager-family checkpoint".into(),
            ));
        };
        engine.rejoin(p, ckpt)
    }
}

/// A checkpoint of either engine family (the [`AnyEngine`] counterpart of
/// [`EngineCheckpoint`] and [`EagerCheckpoint`]).
#[derive(Clone, PartialEq, Debug)]
pub enum AnyCheckpoint {
    /// A lazy engine's checkpoint.
    Lazy(EngineCheckpoint),
    /// An eager engine's checkpoint.
    Eager(EagerCheckpoint),
}

impl AnyCheckpoint {
    /// Serializes the checkpoint, tagged with its family.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AnyCheckpoint::Lazy(c) => {
                let mut out = vec![0u8];
                out.extend_from_slice(&c.encode());
                out
            }
            AnyCheckpoint::Eager(c) => {
                let mut out = vec![1u8];
                out.extend_from_slice(&c.encode());
                out
            }
        }
    }

    /// Deserializes a checkpoint produced by [`AnyCheckpoint::encode`].
    ///
    /// # Errors
    ///
    /// Propagates [`CheckpointError::Corrupt`].
    pub fn decode(bytes: &[u8]) -> Result<AnyCheckpoint, CheckpointError> {
        match bytes.first() {
            Some(0) => Ok(AnyCheckpoint::Lazy(EngineCheckpoint::decode(&bytes[1..])?)),
            Some(1) => Ok(AnyCheckpoint::Eager(EagerCheckpoint::decode(&bytes[1..])?)),
            Some(tag) => Err(CheckpointError::Corrupt(format!(
                "unknown checkpoint family tag {tag}"
            ))),
            None => Err(CheckpointError::Corrupt("empty checkpoint".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EngineParams {
        EngineParams {
            n_procs: 2,
            mem_bytes: 1 << 14,
            page_bytes: 512,
            n_locks: 2,
            n_barriers: 1,
            ..EngineParams::default()
        }
    }

    #[test]
    fn builds_all_kinds() {
        for kind in ProtocolKind::ALL {
            let engine = AnyEngine::build(kind, &params()).unwrap();
            assert_eq!(engine.space().page_size().bytes(), 512);
            assert_eq!(engine.as_lazy().is_some(), kind.is_lazy());
            assert_eq!(engine.as_eager().is_some(), !kind.is_lazy());
        }
    }

    #[test]
    fn dispatch_works_end_to_end() {
        for kind in ProtocolKind::ALL {
            let e = AnyEngine::build(kind, &params()).unwrap();
            let (p0, p1) = (ProcId::new(0), ProcId::new(1));
            let l = LockId::new(0);
            e.acquire(p0, l).unwrap();
            e.write(p0, 0, &[1, 2, 3]);
            e.release(p0, l).unwrap();
            e.acquire(p1, l).unwrap();
            let mut buf = [0u8; 3];
            e.read_into(p1, 0, &mut buf);
            assert_eq!(buf, [1, 2, 3], "{kind}");
            e.release(p1, l).unwrap();
            assert!(e.net_stats().total().msgs > 0);
        }
    }

    #[test]
    fn bad_params_error() {
        let mut bad = params();
        bad.page_bytes = 1000;
        assert!(AnyEngine::build(ProtocolKind::LazyInvalidate, &bad).is_err());
    }

    #[test]
    fn checkpoint_round_trips_through_either_family() {
        for kind in ProtocolKind::ALL {
            let e = AnyEngine::build(kind, &params()).unwrap();
            let (p0, p1) = (ProcId::new(0), ProcId::new(1));
            let l = LockId::new(0);
            e.acquire(p0, l).unwrap();
            e.write(p0, 8, &[9, 9]);
            e.release(p0, l).unwrap();
            e.acquire(p1, l).unwrap();
            let mut buf = [0u8; 2];
            e.read_into(p1, 8, &mut buf);
            e.release(p1, l).unwrap();

            let ckpt = e.checkpoint();
            let decoded = AnyCheckpoint::decode(&ckpt.encode()).unwrap();
            assert_eq!(decoded, ckpt, "{kind}");
            assert_eq!(matches!(ckpt, AnyCheckpoint::Lazy(_)), kind.is_lazy());

            let fresh = AnyEngine::build(kind, &params()).unwrap();
            fresh.restore(&ckpt).unwrap();
            let mut buf = [0u8; 2];
            fresh.read_into(p1, 8, &mut buf);
            assert_eq!(buf, [9, 9], "{kind}");

            // Cross-family restore must be refused, not misread.
            let other = ProtocolKind::ALL
                .into_iter()
                .find(|k| k.is_lazy() != kind.is_lazy())
                .unwrap();
            let wrong = AnyEngine::build(other, &params()).unwrap();
            assert!(matches!(
                wrong.restore(&ckpt),
                Err(CheckpointError::Incompatible(_))
            ));
        }
    }

    #[test]
    fn eager_engines_reject_mutations_instead_of_ignoring_them() {
        let mut mutated = params();
        mutated.mutation = ProtocolMutation::SkipTwinDiff;
        // Lazy engines implement the mutation...
        assert!(AnyEngine::build(ProtocolKind::LazyInvalidate, &mutated).is_ok());
        // ...eager engines must refuse rather than build a stock engine
        // (a silently-faithful "mutant" makes mutation tests vacuous).
        for kind in [ProtocolKind::EagerInvalidate, ProtocolKind::EagerUpdate] {
            assert_eq!(
                AnyEngine::build(kind, &mutated).err(),
                Some(ConfigError::UnsupportedMutation(
                    ProtocolMutation::SkipTwinDiff
                )),
                "{kind}"
            );
        }
    }
}
