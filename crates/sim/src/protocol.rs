use std::fmt;

use lrc_core::Policy;

/// One of the four protocols of the ISCA '92 evaluation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ProtocolKind {
    /// Lazy release consistency, invalidate policy ("LI").
    LazyInvalidate,
    /// Lazy release consistency, update policy ("LU").
    LazyUpdate,
    /// Eager (Munin write-shared) release consistency, invalidate ("EI").
    EagerInvalidate,
    /// Eager release consistency, update ("EU").
    EagerUpdate,
}

impl ProtocolKind {
    /// All four protocols, in the paper's legend order (LI, LU, EI, EU).
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::LazyInvalidate,
        ProtocolKind::LazyUpdate,
        ProtocolKind::EagerInvalidate,
        ProtocolKind::EagerUpdate,
    ];

    /// The paper's two-letter label.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::LazyInvalidate => "LI",
            ProtocolKind::LazyUpdate => "LU",
            ProtocolKind::EagerInvalidate => "EI",
            ProtocolKind::EagerUpdate => "EU",
        }
    }

    /// True for the lazy pair.
    pub fn is_lazy(self) -> bool {
        matches!(
            self,
            ProtocolKind::LazyInvalidate | ProtocolKind::LazyUpdate
        )
    }

    /// The data-movement policy.
    pub fn policy(self) -> Policy {
        match self {
            ProtocolKind::LazyInvalidate | ProtocolKind::EagerInvalidate => Policy::Invalidate,
            ProtocolKind::LazyUpdate | ProtocolKind::EagerUpdate => Policy::Update,
        }
    }

    /// Parses a paper label (case-insensitive).
    pub fn from_label(label: &str) -> Option<ProtocolKind> {
        match label.to_ascii_uppercase().as_str() {
            "LI" => Some(ProtocolKind::LazyInvalidate),
            "LU" => Some(ProtocolKind::LazyUpdate),
            "EI" => Some(ProtocolKind::EagerInvalidate),
            "EU" => Some(ProtocolKind::EagerUpdate),
            _ => None,
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(
            ProtocolKind::from_label("li"),
            Some(ProtocolKind::LazyInvalidate)
        );
        assert_eq!(ProtocolKind::from_label("xx"), None);
    }

    #[test]
    fn classification() {
        assert!(ProtocolKind::LazyInvalidate.is_lazy());
        assert!(!ProtocolKind::EagerUpdate.is_lazy());
        assert_eq!(ProtocolKind::LazyUpdate.policy(), Policy::Update);
        assert_eq!(ProtocolKind::EagerInvalidate.policy(), Policy::Invalidate);
    }

    #[test]
    fn display_uses_label() {
        assert_eq!(ProtocolKind::EagerUpdate.to_string(), "EU");
    }
}
