use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The engine's internal, thread-safe mirror of [`EagerCounters`]: one
/// relaxed atomic per event class, aggregated into the plain `Copy` struct
/// by [`SharedEagerCounters::snapshot`].
#[derive(Debug, Default)]
pub(crate) struct SharedEagerCounters {
    pub misses_2hop: AtomicU64,
    pub misses_3hop: AtomicU64,
    pub updates_sent: AtomicU64,
    pub invalidations_sent: AtomicU64,
    pub pages_invalidated: AtomicU64,
    pub writebacks: AtomicU64,
    pub excess_invalidators: AtomicU64,
    pub flushes: AtomicU64,
    pub acquires: AtomicU64,
    pub releases: AtomicU64,
    pub barrier_episodes: AtomicU64,
    pub slow_waits: AtomicU64,
    pub slow_waits_avoided: AtomicU64,
    pub miss_inflight_peak: AtomicU64,
    pub coalesced_msgs: AtomicU64,
    pub checkpoints_cut: AtomicU64,
    pub delta_bytes: AtomicU64,
}

/// Adds `n` to a counter field (statistics only — relaxed ordering).
pub(crate) fn bump(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

impl SharedEagerCounters {
    /// Aggregates the atomics into a plain snapshot.
    pub fn snapshot(&self) -> EagerCounters {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        EagerCounters {
            misses_2hop: get(&self.misses_2hop),
            misses_3hop: get(&self.misses_3hop),
            updates_sent: get(&self.updates_sent),
            invalidations_sent: get(&self.invalidations_sent),
            pages_invalidated: get(&self.pages_invalidated),
            writebacks: get(&self.writebacks),
            excess_invalidators: get(&self.excess_invalidators),
            flushes: get(&self.flushes),
            acquires: get(&self.acquires),
            releases: get(&self.releases),
            barrier_episodes: get(&self.barrier_episodes),
            slow_waits: get(&self.slow_waits),
            slow_waits_avoided: get(&self.slow_waits_avoided),
            miss_inflight_peak: get(&self.miss_inflight_peak),
            coalesced_msgs: get(&self.coalesced_msgs),
            checkpoints_cut: get(&self.checkpoints_cut),
            delta_bytes: get(&self.delta_bytes),
        }
    }
}

/// Protocol-level event counters of an [`EagerEngine`](crate::EagerEngine).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EagerCounters {
    /// Access misses served in two messages (directory home had the page).
    pub misses_2hop: u64,
    /// Access misses served in three messages (forwarded to the owner).
    pub misses_3hop: u64,
    /// Update messages sent at releases and barriers (EU).
    pub updates_sent: u64,
    /// Invalidation messages sent at releases (EI); barrier invalidations
    /// are piggybacked and not counted here.
    pub invalidations_sent: u64,
    /// Pages invalidated (EI), however delivered.
    pub pages_invalidated: u64,
    /// Diffs written back by concurrent writers hit by an invalidation.
    pub writebacks: u64,
    /// Excess invalidators resolved at barriers (Table 1's `v`).
    pub excess_invalidators: u64,
    /// Flush episodes (releases and barrier arrivals with dirty pages).
    pub flushes: u64,
    /// Lock acquires processed.
    pub acquires: u64,
    /// Lock releases processed.
    pub releases: u64,
    /// Barrier episodes completed.
    pub barrier_episodes: u64,
    /// Slow-path entries that blocked behind another in-flight slow path
    /// (same lock, overlapping flushed/missed pages, or — under the
    /// `serialize_slow_paths` baseline — any concurrent slow path).
    pub slow_waits: u64,
    /// Slow-path entries that overlapped another in-flight slow path
    /// without blocking — the serialization the retired engine-wide
    /// protocol mutex would have imposed.
    pub slow_waits_avoided: u64,
    /// High-water mark of directory misses resolving concurrently.
    pub miss_inflight_peak: u64,
    /// Protocol messages *not sent* because `coalesce_notices` merged them
    /// into another message bound for the same destination (an EI
    /// invalidation round's writeback replies sharing one frame). Each
    /// unit is one saved message header.
    pub coalesced_msgs: u64,
    /// Checkpoints cut through [`EagerEngine::note_checkpoint`](crate::EagerEngine::note_checkpoint)
    /// (the runtime's automatic policy cuts, full and delta alike) —
    /// parity with [`LazyCounters`](lrc_core::LazyCounters).
    pub checkpoints_cut: u64,
    /// Encoded bytes of those checkpoints as shipped to the sink (deltas
    /// count their delta size, not the full cut they stand for).
    pub delta_bytes: u64,
}

impl EagerCounters {
    /// Total access misses.
    pub fn misses(&self) -> u64 {
        self.misses_2hop + self.misses_3hop
    }
}

impl fmt::Display for EagerCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "misses {} (2hop {} / 3hop {}), updates {}, invalidations {}, writebacks {}, excess {}",
            self.misses(),
            self.misses_2hop,
            self.misses_3hop,
            self.updates_sent,
            self.invalidations_sent,
            self.writebacks,
            self.excess_invalidators,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_sum_hops() {
        let c = EagerCounters {
            misses_2hop: 4,
            misses_3hop: 1,
            ..Default::default()
        };
        assert_eq!(c.misses(), 5);
        assert!(c.to_string().contains("misses 5"));
    }
}
