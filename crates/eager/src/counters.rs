use std::fmt;

/// Protocol-level event counters of an [`EagerEngine`](crate::EagerEngine).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EagerCounters {
    /// Access misses served in two messages (directory home had the page).
    pub misses_2hop: u64,
    /// Access misses served in three messages (forwarded to the owner).
    pub misses_3hop: u64,
    /// Update messages sent at releases and barriers (EU).
    pub updates_sent: u64,
    /// Invalidation messages sent at releases (EI); barrier invalidations
    /// are piggybacked and not counted here.
    pub invalidations_sent: u64,
    /// Pages invalidated (EI), however delivered.
    pub pages_invalidated: u64,
    /// Diffs written back by concurrent writers hit by an invalidation.
    pub writebacks: u64,
    /// Excess invalidators resolved at barriers (Table 1's `v`).
    pub excess_invalidators: u64,
    /// Flush episodes (releases and barrier arrivals with dirty pages).
    pub flushes: u64,
    /// Lock acquires processed.
    pub acquires: u64,
    /// Lock releases processed.
    pub releases: u64,
    /// Barrier episodes completed.
    pub barrier_episodes: u64,
}

impl EagerCounters {
    /// Total access misses.
    pub fn misses(&self) -> u64 {
        self.misses_2hop + self.misses_3hop
    }
}

impl fmt::Display for EagerCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "misses {} (2hop {} / 3hop {}), updates {}, invalidations {}, writebacks {}, excess {}",
            self.misses(),
            self.misses_2hop,
            self.misses_3hop,
            self.updates_sent,
            self.invalidations_sent,
            self.writebacks,
            self.excess_invalidators,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_sum_hops() {
        let c = EagerCounters {
            misses_2hop: 4,
            misses_3hop: 1,
            ..Default::default()
        };
        assert_eq!(c.misses(), 5);
        assert!(c.to_string().contains("misses 5"));
    }
}
