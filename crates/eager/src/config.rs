use lrc_core::{ConfigError, Policy};
use lrc_pagemem::AddrSpace;

/// Configuration of an [`EagerEngine`](crate::EagerEngine).
///
/// Mirrors [`lrc_core::LrcConfig`] so sweeps can run both engines from the
/// same parameters.
///
/// ```
/// use lrc_core::Policy;
/// use lrc_eager::EagerConfig;
///
/// let cfg = EagerConfig::new(16, 1 << 20).page_size(1024).policy(Policy::Invalidate);
/// assert_eq!(cfg.page_bytes, 1024);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EagerConfig {
    /// Number of processors (1 to [`lrc_core::MAX_PROCS`]).
    pub n_procs: usize,
    /// Shared address space size in bytes.
    pub mem_bytes: u64,
    /// Page size in bytes (power of two, 64–65536). Default 4096.
    pub page_bytes: usize,
    /// Number of locks available. Default 16.
    pub n_locks: usize,
    /// Number of barriers available. Default 4.
    pub n_barriers: usize,
    /// Data-movement policy: update (EU) or invalidate (EI). Default EI.
    pub policy: Policy,
    /// Merge same-destination protocol messages that travel together
    /// anyway — for the eager engines, the per-page writeback replies an
    /// EI invalidation round collects from one destination. Same bytes,
    /// fewer message headers (see [`lrc_core::LrcConfig::coalesce_notices`]).
    /// Default `false`.
    pub coalesce_notices: bool,
    /// Measurement baseline: serialize every slow path on one engine-wide
    /// mutex, reproducing the pre-split `protocol`-mutex architecture (see
    /// [`lrc_core::LrcConfig::serialize_slow_paths`]). Benchmarks only.
    /// Default `false`.
    pub serialize_slow_paths: bool,
}

impl EagerConfig {
    /// Creates a configuration with defaults matching
    /// [`lrc_core::LrcConfig::new`].
    pub fn new(n_procs: usize, mem_bytes: u64) -> Self {
        EagerConfig {
            n_procs,
            mem_bytes,
            page_bytes: 4096,
            n_locks: 16,
            n_barriers: 4,
            policy: Policy::Invalidate,
            coalesce_notices: false,
            serialize_slow_paths: false,
        }
    }

    /// Sets the page size in bytes.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.page_bytes = bytes;
        self
    }

    /// Sets the data-movement policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the number of locks.
    pub fn locks(mut self, n: usize) -> Self {
        self.n_locks = n;
        self
    }

    /// Sets the number of barriers.
    pub fn barriers(mut self, n: usize) -> Self {
        self.n_barriers = n;
        self
    }

    /// Enables same-destination message coalescing (see
    /// [`EagerConfig::coalesce_notices`]).
    pub fn coalesce_notices(mut self) -> Self {
        self.coalesce_notices = true;
        self
    }

    /// Serializes every slow path on one engine-wide mutex — the pre-split
    /// baseline, for benchmarking only (see
    /// [`EagerConfig::serialize_slow_paths`]).
    pub fn serialize_slow_paths(mut self) -> Self {
        self.serialize_slow_paths = true;
        self
    }

    /// Validates the configuration and derives the address space.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] under the same rules as
    /// [`lrc_core::LrcConfig::address_space`].
    pub fn address_space(&self) -> Result<AddrSpace, ConfigError> {
        lrc_core::LrcConfig::new(self.n_procs, self.mem_bytes)
            .page_size(self.page_bytes)
            .address_space()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_core() {
        let cfg = EagerConfig::new(4, 1 << 16);
        assert_eq!(cfg.page_bytes, 4096);
        assert_eq!(cfg.policy, Policy::Invalidate);
        assert_eq!(cfg.address_space().unwrap().n_pages(), 16);
    }

    #[test]
    fn builder_chains() {
        let cfg = EagerConfig::new(2, 4096)
            .page_size(512)
            .policy(Policy::Update)
            .locks(1)
            .barriers(1);
        assert_eq!(cfg.page_bytes, 512);
        assert_eq!(cfg.policy, Policy::Update);
        assert_eq!(cfg.n_locks, 1);
        assert_eq!(cfg.n_barriers, 1);
    }

    #[test]
    fn validation_delegates_to_core() {
        assert!(EagerConfig::new(0, 4096).address_space().is_err());
        assert!(EagerConfig::new(2, 4096)
            .page_size(999)
            .address_space()
            .is_err());
    }
}
