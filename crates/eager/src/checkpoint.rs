//! Checkpoints of the eager baseline engine.
//!
//! Much simpler than the lazy engine's ([`lrc_core::EngineCheckpoint`]):
//! eager RC keeps no interval history and no vector clocks, so a
//! checkpoint is just the directory (copyset and owner per page) plus each
//! processor's committed page frames. The codec mirrors the lazy one —
//! little-endian, page-sized raw contents — and shares its error type.

use lrc_core::CheckpointError;
use lrc_pagemem::PageId;
use lrc_vclock::ProcId;

const MAGIC: &[u8; 4] = b"ERCK";
const FORMAT: u16 = 1;

/// One processor's frame of one page (committed contents only — a dirty
/// page contributes its twin, so uncommitted epoch writes are never
/// checkpointed).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EagerFrame {
    /// The page.
    pub page: PageId,
    /// Resident committed contents, if any.
    pub contents: Option<Vec<u8>>,
    /// Whether the copy was valid.
    pub valid: bool,
}

/// A full checkpoint of the eager engine at a synchronization point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EagerCheckpoint {
    /// Number of processors.
    pub n_procs: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Number of pages.
    pub n_pages: usize,
    /// Directory: `(copyset mask, owner)` per page.
    pub dir: Vec<(u64, ProcId)>,
    /// Per-processor non-default frames, index = processor id.
    pub procs: Vec<Vec<EagerFrame>>,
}

fn corrupt(why: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(why.into())
}

impl EagerCheckpoint {
    /// Serializes the checkpoint.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT.to_le_bytes());
        out.extend_from_slice(&(self.n_procs as u16).to_le_bytes());
        out.extend_from_slice(&(self.page_bytes as u32).to_le_bytes());
        out.extend_from_slice(&(self.n_pages as u32).to_le_bytes());
        for &(copyset, owner) in &self.dir {
            out.extend_from_slice(&copyset.to_le_bytes());
            out.extend_from_slice(&owner.raw().to_le_bytes());
        }
        for frames in &self.procs {
            out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
            for frame in frames {
                out.extend_from_slice(&frame.page.raw().to_le_bytes());
                let mut flags = 0u8;
                if frame.contents.is_some() {
                    flags |= 1;
                }
                if frame.valid {
                    flags |= 2;
                }
                out.push(flags);
                if let Some(contents) = &frame.contents {
                    assert_eq!(contents.len(), self.page_bytes, "page-sized contents");
                    out.extend_from_slice(contents);
                }
            }
        }
        out
    }

    /// Deserializes a checkpoint produced by [`EagerCheckpoint::encode`].
    pub fn decode(bytes: &[u8]) -> Result<EagerCheckpoint, CheckpointError> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], CheckpointError> {
            let end = at
                .checked_add(n)
                .filter(|&end| end <= bytes.len())
                .ok_or_else(|| corrupt(format!("truncated at byte {at}")))?;
            let out = &bytes[*at..end];
            *at = end;
            Ok(out)
        };
        if take(&mut at, 4)? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let b = take(&mut at, 2)?;
        let format = u16::from_le_bytes([b[0], b[1]]);
        if format != FORMAT {
            return Err(corrupt(format!("unsupported format {format}")));
        }
        let b = take(&mut at, 2)?;
        let n_procs = u16::from_le_bytes([b[0], b[1]]) as usize;
        let b = take(&mut at, 4)?;
        let page_bytes = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        let b = take(&mut at, 4)?;
        let n_pages = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        if n_procs == 0 || n_pages == 0 || page_bytes == 0 {
            return Err(corrupt("empty engine shape"));
        }
        if n_pages.saturating_mul(10) > bytes.len() {
            return Err(corrupt("directory larger than the buffer"));
        }
        let mut dir = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            let b = take(&mut at, 8)?;
            let copyset = u64::from_le_bytes(b.try_into().expect("eight bytes"));
            let b = take(&mut at, 2)?;
            let owner = ProcId::new(u16::from_le_bytes([b[0], b[1]]));
            if owner.index() >= n_procs {
                return Err(corrupt("directory owner out of range"));
            }
            dir.push((copyset, owner));
        }
        let mut procs = Vec::with_capacity(n_procs);
        for _ in 0..n_procs {
            let b = take(&mut at, 4)?;
            let n_frames = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
            if n_frames.saturating_mul(5) > bytes.len() - at {
                return Err(corrupt("frame count exceeds remaining bytes"));
            }
            let mut frames = Vec::with_capacity(n_frames);
            for _ in 0..n_frames {
                let b = take(&mut at, 4)?;
                let page = PageId::new(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
                if page.index() >= n_pages {
                    return Err(corrupt(format!("frame page {page} out of range")));
                }
                let flags = take(&mut at, 1)?[0];
                if flags & !3 != 0 {
                    return Err(corrupt(format!("unknown frame flags {flags:#x}")));
                }
                let contents = if flags & 1 != 0 {
                    Some(take(&mut at, page_bytes)?.to_vec())
                } else {
                    None
                };
                frames.push(EagerFrame {
                    page,
                    contents,
                    valid: flags & 2 != 0,
                });
            }
            procs.push(frames);
        }
        if at != bytes.len() {
            return Err(corrupt(format!("{} trailing bytes", bytes.len() - at)));
        }
        Ok(EagerCheckpoint {
            n_procs,
            page_bytes,
            n_pages,
            dir,
            procs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let ckpt = EagerCheckpoint {
            n_procs: 2,
            page_bytes: 64,
            n_pages: 2,
            dir: vec![(0b11, ProcId::new(0)), (0b10, ProcId::new(1))],
            procs: vec![
                vec![EagerFrame {
                    page: PageId::new(0),
                    contents: Some(vec![3u8; 64]),
                    valid: true,
                }],
                vec![EagerFrame {
                    page: PageId::new(1),
                    contents: None,
                    valid: false,
                }],
            ],
        };
        let bytes = ckpt.encode();
        assert_eq!(EagerCheckpoint::decode(&bytes).unwrap(), ckpt);
        assert!(matches!(
            EagerCheckpoint::decode(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::Corrupt(_))
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(EagerCheckpoint::decode(&bad).is_err());
    }
}
