use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};

use lrc_core::slowpath::{gate_lock, raise, settle_contention, FetchHookCell, InFlight};
use lrc_core::{ConfigError, EngineOp, EngineOpError, FetchHook, Policy};
use lrc_hist::HistoryRecorder;
use lrc_pagemem::{AddrSpace, Diff, PageBuf, PageId};
use lrc_simnet::{
    invalidation_bytes, Fabric, MsgKind, BARRIER_ID_BYTES, LOCK_ID_BYTES, PAGE_ID_BYTES,
};
use lrc_sync::{BarrierArrival, BarrierError, BarrierId, BarrierSet, LockError, LockId, LockTable};
use lrc_vclock::ProcId;
use parking_lot::lockdep::classes;
use parking_lot::{Mutex, MutexGuard};

use crate::counters::{bump, SharedEagerCounters};
use crate::{EagerConfig, EagerCounters};

/// One processor's view of one page under the eager protocol.
#[derive(Clone, Debug, Default)]
struct EPage {
    copy: Option<PageBuf>,
    twin: Option<PageBuf>,
    valid: bool,
}

/// One processor's private slice of the engine: page table and the pages
/// dirtied in the current epoch. Ordinary cached accesses take only this
/// shard's mutex.
#[derive(Debug)]
struct EagerShard {
    pages: Vec<EPage>,
    dirty: Vec<PageId>,
}

/// Directory entry: who caches the page and who reconciled it last.
#[derive(Clone, Copy, Debug)]
struct DirEntry {
    /// Bitmask of processors with valid copies.
    copyset: u64,
    /// The processor a miss is forwarded to when the home has no copy.
    owner: ProcId,
}

/// A modification buffered at a barrier arrival under EI, awaiting
/// episode-end resolution.
#[derive(Clone, Debug)]
struct EpochMod {
    writer: ProcId,
    page: PageId,
    diff: Diff,
}

/// The eager release consistency engine (Munin-style write-shared
/// protocol): modifications propagate to **all cachers at release time**,
/// access misses go through a directory, and acquires carry no consistency
/// information.
///
/// Like [`lrc_core::LrcEngine`], the engine is data-full and charges every
/// message to an internal [`Fabric`], so lazy and eager runs are directly
/// comparable. Also like the lazy engine it is internally synchronized —
/// per-processor shards behind their own mutexes, the directory and
/// synchronization tables behind fine-grained locks, and atomic statistics
/// — so every method takes `&self` and a threaded runtime can drive
/// processors concurrently.
///
/// # Concurrency
///
/// Slow paths carry no engine-wide mutex; they serialize on the objects
/// they touch:
///
/// * acquire and release of a lock hold that lock's **gate** (one mutex
///   per lock) — eager acquires perform no consistency actions at all, so
///   unrelated acquires are fully concurrent;
/// * a release's (or barrier arrival's) flush holds the **page gates** of
///   every page it flushes, acquired in ascending page order — the
///   deadlock-free ordering shared by every multi-gate path — so flushes
///   of disjoint page sets overlap, while same-page flush/flush and
///   flush/miss pairs serialize. The invalidation-writeback dance for a
///   page is therefore atomic: a concurrent writer either flushes before
///   the invalidator takes the page's gate or contributes its epoch's
///   writes as a writeback (its twin is consumed and the page leaves its
///   dirty set under the destination's shard lock);
/// * directory miss resolution holds the missed page's **gate**: the
///   directory decision, the content clone, the message charges (with no
///   directory lock held), and the copyset update cannot interleave with
///   a flush of the same page;
/// * an EI barrier episode's *completion* runs on the last arriver's
///   thread while every other processor is parked by the runtime awaiting
///   the episode, so it has the engine to itself.
///
/// Lock order: serialization mutex (baseline flag only) → lock gate →
/// page gates (ascending) → directory/table mutexes → shard mutexes. The
/// directory mutex may be held while taking a shard mutex, never the
/// reverse; no path holds two shard mutexes at once.
///
/// Like the lazy engine, concurrency assumes each processor is driven by
/// one thread at a time and that barrier arrivers issue nothing until
/// their episode completes (the `lrc-dsm` runtime enforces both).
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct EagerEngine {
    cfg: EagerConfig,
    space: AddrSpace,
    shards: Vec<Mutex<EagerShard>>,
    dir: Mutex<Vec<DirEntry>>,
    locks: Mutex<LockTable>,
    barriers: Mutex<BarrierSet>,
    /// EI: modifications buffered per barrier episode (keyed by barrier).
    epoch_mods: Mutex<HashMap<u32, Vec<EpochMod>>>,
    /// Per-lock gates: acquire/release of one lock serialize here.
    lock_gates: Vec<Mutex<()>>,
    /// Per-page gates: flushes and misses touching one page serialize
    /// here; disjoint pages proceed concurrently.
    page_gates: Vec<Mutex<()>>,
    /// The pre-split measurement baseline
    /// ([`EagerConfig::serialize_slow_paths`]): when present, every slow
    /// path locks this first, reproducing the retired engine-wide
    /// `protocol` mutex.
    serial_gate: Option<Mutex<()>>,
    /// Slow paths currently in flight (gauge behind
    /// [`EagerCounters::slow_waits_avoided`]).
    slow_inflight: AtomicU64,
    /// Misses currently in flight (gauge behind
    /// [`EagerCounters::miss_inflight_peak`]).
    miss_inflight: AtomicU64,
    /// Test/bench instrumentation (see [`lrc_core::FetchHook`]).
    fetch_hook: FetchHookCell,
    net: Fabric,
    counters: SharedEagerCounters,
    /// Optional history recorder (`lrc-hist`); see
    /// [`EagerEngine::attach_recorder`].
    recorder: OnceLock<Arc<HistoryRecorder>>,
}

impl EagerEngine {
    /// Builds an engine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration does not validate.
    pub fn new(cfg: EagerConfig) -> Result<Self, ConfigError> {
        let space = cfg.address_space()?;
        let n = cfg.n_procs;
        let dir = space
            .pages()
            .map(|g| {
                let home = ProcId::new((g.index() % n) as u16);
                // The home starts with the (all-zero) initial copy.
                DirEntry {
                    copyset: 1u64 << home.index(),
                    owner: home,
                }
            })
            .collect();
        Ok(EagerEngine {
            space,
            shards: (0..n)
                .map(|_| {
                    Mutex::new_in(
                        EagerShard {
                            pages: (0..space.n_pages()).map(|_| EPage::default()).collect(),
                            dirty: Vec::new(),
                        },
                        classes::ENGINE_SHARD,
                    )
                })
                .collect(),
            dir: Mutex::new_in(dir, classes::EAGER_DIRECTORY),
            locks: Mutex::new_in(LockTable::new(cfg.n_locks, n), classes::SYNC_LOCK_TABLE),
            barriers: Mutex::new_in(
                BarrierSet::new(cfg.n_barriers, n),
                classes::SYNC_BARRIER_SET,
            ),
            epoch_mods: Mutex::new_in(HashMap::new(), classes::EAGER_EPOCH_MODS),
            lock_gates: (0..cfg.n_locks)
                .map(|l| Mutex::new_in((), classes::ENGINE_LOCK_GATE.with_order(l as u64)))
                .collect(),
            page_gates: (0..space.n_pages())
                .map(|p| Mutex::new_in((), classes::ENGINE_PAGE_GATE.with_order(u64::from(p))))
                .collect(),
            serial_gate: cfg
                .serialize_slow_paths
                .then(|| Mutex::new_in((), classes::ENGINE_SERIAL_GATE)),
            slow_inflight: AtomicU64::new(0),
            miss_inflight: AtomicU64::new(0),
            fetch_hook: FetchHookCell::default(),
            net: Fabric::new(n),
            counters: SharedEagerCounters::default(),
            recorder: OnceLock::new(),
            cfg,
        })
    }

    /// Attaches a history recorder, exactly like
    /// [`lrc_core::LrcEngine::attach_recorder`]: both engine families
    /// feed the same conformance checker, with synchronization orders
    /// assigned by the lock table (grants) and barrier set (episodes).
    ///
    /// # Panics
    ///
    /// Panics if a recorder is already attached or its processor count
    /// differs from the engine's.
    pub fn attach_recorder(&self, recorder: Arc<HistoryRecorder>) {
        assert_eq!(
            recorder.n_procs(),
            self.cfg.n_procs,
            "recorder processor count does not match the engine"
        );
        assert!(
            self.recorder.set(recorder).is_ok(),
            "a history recorder is already attached"
        );
    }

    /// Installs the miss-fetch instrumentation hook, exactly like
    /// [`lrc_core::LrcEngine::set_fetch_hook`]: invoked once per directory
    /// miss after the messages are charged, with no directory lock held.
    ///
    /// # Panics
    ///
    /// Panics if a hook is already installed.
    pub fn set_fetch_hook(&self, hook: FetchHook) {
        assert!(
            self.fetch_hook.set(hook),
            "a fetch hook is already installed"
        );
    }

    #[inline]
    fn recorder(&self) -> Option<&HistoryRecorder> {
        self.recorder.get().map(Arc::as_ref)
    }

    /// The current holder of `lock`, if any (`None` for free or unknown
    /// locks) — diagnostics for stuck-waiter reports.
    pub fn lock_holder(&self, lock: LockId) -> Option<ProcId> {
        self.locks.lock().holder(lock)
    }

    /// The live processors the current episode of `barrier` is still
    /// waiting for (empty for unknown barriers) — diagnostics for stuck
    /// barrier waits.
    pub fn barrier_absentees(&self, barrier: BarrierId) -> Vec<ProcId> {
        self.barriers.lock().absent(barrier)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EagerConfig {
        &self.cfg
    }

    /// The derived address space.
    pub fn space(&self) -> AddrSpace {
        self.space
    }

    /// The network meter.
    pub fn net(&self) -> &Fabric {
        &self.net
    }

    /// Enables per-message logging on the internal fabric (for tests).
    pub fn enable_net_trace(&self) {
        self.net.enable_trace();
    }

    /// Snapshot of the protocol event counters.
    pub fn counters(&self) -> EagerCounters {
        self.counters.snapshot()
    }

    /// Records one checkpoint cut shipped by the runtime's automatic
    /// policy: bumps [`EagerCounters::checkpoints_cut`] and adds the
    /// encoded bytes that went to the sink to
    /// [`EagerCounters::delta_bytes`]. Pure statistics — the cut itself
    /// is [`EagerEngine::checkpoint`].
    pub fn note_checkpoint(&self, shipped_bytes: u64) {
        bump(&self.counters.checkpoints_cut, 1);
        bump(&self.counters.delta_bytes, shipped_bytes);
    }

    /// True if `p` holds a valid copy of `page` (the initial home copy
    /// counts, even before materialization).
    ///
    /// # Panics
    ///
    /// Panics if `p` or `page` is out of range.
    pub fn page_valid(&self, p: ProcId, page: PageId) -> bool {
        let resident = { self.shard(p).pages[page.index()].valid };
        resident || self.dir.lock()[page.index()].copyset & (1u64 << p.index()) != 0
    }

    /// Processors currently caching `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn copyset(&self, page: PageId) -> Vec<ProcId> {
        let mask = self.dir.lock()[page.index()].copyset;
        ProcId::all(self.cfg.n_procs)
            .filter(|p| mask & (1u64 << p.index()) != 0)
            .collect()
    }

    fn shard(&self, p: ProcId) -> MutexGuard<'_, EagerShard> {
        self.shards[p.index()].lock()
    }

    // ---- slow-path bookkeeping ----

    /// Marks one slow path in flight (decremented by the returned guard)
    /// and reports whether any *other* slow path was in flight at entry.
    fn enter_slow_path(&self) -> (InFlight<'_>, bool) {
        let (guard, others) = InFlight::enter(&self.slow_inflight);
        (guard, others > 0)
    }

    /// Locks the serialized-baseline mutex, when configured.
    fn serial_gate<'a>(&'a self, waited: &mut bool) -> Option<MutexGuard<'a, ()>> {
        self.serial_gate.as_ref().map(|g| gate_lock(g, waited))
    }

    /// Settles the contention counters for one slow-path entry.
    fn settle_slow_entry(&self, waited: bool, overlapped: bool) {
        settle_contention(
            waited,
            overlapped,
            &self.counters.slow_waits,
            &self.counters.slow_waits_avoided,
        );
    }

    /// The pages `p` has dirtied this epoch, ascending and deduplicated —
    /// the gate-acquisition order for a flush.
    fn dirty_pages_sorted(&self, p: ProcId) -> Vec<PageId> {
        let mut pages = self.shard(p).dirty.clone();
        pages.sort();
        pages.dedup();
        pages
    }

    /// Acquires the page gates for `pages` (which must be ascending),
    /// noting contention in `waited`.
    fn page_gates<'a>(&'a self, pages: &[PageId], waited: &mut bool) -> Vec<MutexGuard<'a, ()>> {
        pages
            .iter()
            .map(|g| gate_lock(&self.page_gates[g.index()], waited))
            .collect()
    }

    // ---- ordinary accesses ----

    /// Reads `buf.len()` bytes at `addr` as processor `p`, taking directory
    /// misses as needed. Hitting a valid cached page takes only `p`'s
    /// shard lock.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `p` is out of range.
    pub fn read_into(&self, p: ProcId, addr: u64, buf: &mut [u8]) {
        let mut cursor = 0;
        for seg in self.space.segments(addr, buf.len()) {
            loop {
                {
                    let shard = self.shard(p);
                    let entry = &shard.pages[seg.page.index()];
                    if entry.valid {
                        let copy = entry.copy.as_ref().expect("valid page has a copy");
                        copy.read(seg.offset, &mut buf[cursor..cursor + seg.len]);
                        break;
                    }
                }
                self.resolve_miss(p, seg.page);
            }
            cursor += seg.len;
        }
        if let Some(rec) = self.recorder() {
            rec.read(p, addr, buf);
        }
    }

    /// Reads `len` bytes at `addr` into a fresh vector.
    ///
    /// # Panics
    ///
    /// See [`EagerEngine::read_into`].
    pub fn read_vec(&self, p: ProcId, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read_into(p, addr, &mut buf);
        buf
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Panics
    ///
    /// See [`EagerEngine::read_into`].
    pub fn read_u64(&self, p: ProcId, addr: u64) -> u64 {
        let mut raw = [0u8; 8];
        self.read_into(p, addr, &mut raw);
        u64::from_le_bytes(raw)
    }

    /// Writes `data` at `addr` as processor `p` (twinning on the first
    /// write of the epoch — eager RC is also a multiple-writer protocol).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `p` is out of range.
    pub fn write(&self, p: ProcId, addr: u64, data: &[u8]) {
        let mut cursor = 0;
        for seg in self.space.segments(addr, data.len()) {
            loop {
                {
                    let mut shard = self.shard(p);
                    let gi = seg.page.index();
                    if shard.pages[gi].valid {
                        if shard.pages[gi].twin.is_none() {
                            let twin = shard.pages[gi]
                                .copy
                                .as_ref()
                                .expect("valid page has a copy")
                                .clone();
                            shard.pages[gi].twin = Some(twin);
                            shard.dirty.push(seg.page);
                        }
                        let copy = shard.pages[gi]
                            .copy
                            .as_mut()
                            .expect("valid page has a copy");
                        copy.write(seg.offset, &data[cursor..cursor + seg.len]);
                        break;
                    }
                }
                self.resolve_miss(p, seg.page);
            }
            cursor += seg.len;
        }
        if let Some(rec) = self.recorder() {
            rec.write(p, addr, data);
        }
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Panics
    ///
    /// See [`EagerEngine::write`].
    pub fn write_u64(&self, p: ProcId, addr: u64, value: u64) {
        self.write(p, addr, &value.to_le_bytes());
    }

    /// Dispatches one decoded remote request as processor `p` — the eager
    /// counterpart of [`lrc_core::LrcEngine::apply_op`], used by network
    /// nodes to service messages for processors they do not host locally.
    ///
    /// # Errors
    ///
    /// [`EngineOpError`] wrapping the lock or barrier failure.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range accesses, like the direct methods.
    pub fn apply_op(&self, p: ProcId, op: &EngineOp) -> Result<Vec<u8>, EngineOpError> {
        match op {
            EngineOp::Read { addr, len } => Ok(self.read_vec(p, *addr, *len as usize)),
            EngineOp::Write { addr, data } => {
                self.write(p, *addr, data);
                Ok(Vec::new())
            }
            EngineOp::Acquire(lock) => {
                self.acquire(p, *lock)?;
                Ok(Vec::new())
            }
            EngineOp::Release(lock) => {
                self.release(p, *lock)?;
                Ok(Vec::new())
            }
            EngineOp::Barrier(barrier) => {
                self.barrier(p, *barrier)?;
                Ok(Vec::new())
            }
        }
    }

    // ---- special accesses ----

    /// Acquires `lock`: find-and-transfer messages only. Eager RC performs
    /// **no consistency actions at acquires** (§3), so acquires of
    /// unrelated locks are fully concurrent (they serialize only on this
    /// lock's gate).
    ///
    /// # Errors
    ///
    /// Propagates [`LockError`].
    pub fn acquire(&self, p: ProcId, lock: LockId) -> Result<(), LockError> {
        let (_inflight, overlapped) = self.enter_slow_path();
        let mut waited = false;
        let _serial = self.serial_gate(&mut waited);
        let _gate = self
            .lock_gates
            .get(lock.index())
            .map(|g| gate_lock(g, &mut waited));
        self.settle_slow_entry(waited, overlapped);

        let path = self.locks.lock().acquire(p, lock)?;
        bump(&self.counters.acquires, 1);
        if let Some(rec) = self.recorder() {
            // Grant numbers come from the lock table, assigned inside this
            // lock's gate: the recorded order is the hand-over order.
            rec.acquire(p, lock, path.grant_seq);
        }
        if let Some((src, dst)) = path.request {
            self.net.send(src, dst, MsgKind::LockRequest, LOCK_ID_BYTES);
        }
        if let Some((src, dst)) = path.forward {
            self.net.send(src, dst, MsgKind::LockForward, LOCK_ID_BYTES);
        }
        if let Some((src, dst)) = path.grant {
            self.net.send(src, dst, MsgKind::LockGrant, LOCK_ID_BYTES);
        }
        Ok(())
    }

    /// Releases `lock`, first propagating every modification of the epoch
    /// to all other cachers (updates under EU, invalidations under EI) and
    /// blocking for their acknowledgments — Table 1's `2c`. The flush
    /// holds the gates of the flushed pages (ascending), so releases
    /// touching disjoint pages overlap.
    ///
    /// # Errors
    ///
    /// Propagates [`LockError::NotHolder`] and range errors.
    pub fn release(&self, p: ProcId, lock: LockId) -> Result<(), LockError> {
        let (_inflight, overlapped) = self.enter_slow_path();
        let mut waited = false;
        let _serial = self.serial_gate(&mut waited);
        let _gate = self
            .lock_gates
            .get(lock.index())
            .map(|g| gate_lock(g, &mut waited));
        // Validate before flushing so an illegal release has no effect.
        {
            let mut locks = self.locks.lock();
            if locks.holder(lock) != Some(p) {
                self.settle_slow_entry(waited, overlapped);
                locks.release(p, lock)?;
                unreachable!("release of unheld lock must error");
            }
        }
        let pages = self.dirty_pages_sorted(p);
        let _page_gates = self.page_gates(&pages, &mut waited);
        self.settle_slow_entry(waited, overlapped);
        self.flush_at_release(p);
        let grant = self
            .locks
            .lock()
            .release(p, lock)
            .expect("holder validated above");
        if let Some(rec) = self.recorder() {
            rec.release(p, lock, grant);
        }
        bump(&self.counters.releases, 1);
        Ok(())
    }

    /// Arrives at `barrier`, flushing like a release (under the flushed
    /// pages' gates). EU pushes update messages immediately (`2u`); EI
    /// piggybacks its invalidations on the barrier traffic and pays only
    /// `2v` to resolve multiple concurrent invalidators of one page
    /// (Table 1).
    ///
    /// # Errors
    ///
    /// Propagates [`BarrierError`].
    pub fn barrier(&self, p: ProcId, barrier: BarrierId) -> Result<BarrierArrival, BarrierError> {
        let (_inflight, overlapped) = self.enter_slow_path();
        let mut waited = false;
        let _serial = self.serial_gate(&mut waited);
        // Validate the arrival before performing any flush side effects.
        let checked = {
            let barriers = self.barriers.lock();
            barriers
                .check_arrival(p, barrier)
                .map(|()| barriers.master(barrier))
        };
        let master = match checked {
            Ok(master) => master,
            Err(e) => {
                self.settle_slow_entry(waited, overlapped);
                return Err(e);
            }
        };
        let diffs = {
            let pages = self.dirty_pages_sorted(p);
            let _page_gates = self.page_gates(&pages, &mut waited);
            self.settle_slow_entry(waited, overlapped);
            let diffs = self.take_epoch_diffs(p);
            if self.cfg.policy == Policy::Update {
                self.push_updates(p, &diffs, MsgKind::BarrierUpdate, MsgKind::BarrierUpdateAck);
            }
            diffs
        };
        let mut piggyback_pages = 0usize;
        if self.cfg.policy == Policy::Invalidate {
            piggyback_pages = diffs.len();
            let mut epoch_mods = self.epoch_mods.lock();
            let buffer = epoch_mods.entry(barrier.raw()).or_default();
            for (page, diff) in diffs {
                buffer.push(EpochMod {
                    writer: p,
                    page,
                    diff,
                });
            }
        }
        if p != master {
            let payload = BARRIER_ID_BYTES + invalidation_bytes(piggyback_pages);
            self.net.send(p, master, MsgKind::BarrierArrival, payload);
        }
        let outcome = self.barriers.lock().arrive(p, barrier)?;
        if let Some(rec) = self.recorder() {
            rec.barrier(p, barrier, outcome.episode());
        }
        if let BarrierArrival::Complete { .. } = outcome {
            self.complete_barrier(barrier, master);
        }
        Ok(outcome)
    }

    // ---- internals ----

    /// Ends `p`'s current epoch: diffs all dirty pages against their twins
    /// and transfers ownership to `p`. Callers hold the dirty pages'
    /// gates.
    fn take_epoch_diffs(&self, p: ProcId) -> Vec<(PageId, Diff)> {
        let mut out = Vec::new();
        {
            let mut shard = self.shard(p);
            let dirtied = std::mem::take(&mut shard.dirty);
            out.reserve(dirtied.len());
            for g in dirtied {
                let entry = &mut shard.pages[g.index()];
                // Defensive: a twin consumed by a concurrent invalidator's
                // writeback leaves the dirty list together with it (under
                // this shard's lock), but skipping an already-written-back
                // page is the right recovery either way.
                let Some(twin) = entry.twin.take() else {
                    continue;
                };
                let copy = entry.copy.as_ref().expect("dirty page has a copy");
                let diff = Diff::between(&twin, copy);
                if !diff.is_empty() {
                    out.push((g, diff));
                }
            }
        }
        if !out.is_empty() {
            let mut dir = self.dir.lock();
            for (g, _) in &out {
                dir[g.index()].owner = p;
            }
            bump(&self.counters.flushes, 1);
        }
        out
    }

    /// Release-time propagation: updates (EU) or invalidations (EI) to all
    /// other cachers, one merged message per destination, plus acks.
    /// Callers hold the dirty pages' gates.
    fn flush_at_release(&self, p: ProcId) {
        let diffs = self.take_epoch_diffs(p);
        if diffs.is_empty() {
            return;
        }
        match self.cfg.policy {
            Policy::Update => {
                self.push_updates(p, &diffs, MsgKind::ReleaseUpdate, MsgKind::ReleaseAck)
            }
            Policy::Invalidate => self.push_invalidations(p, &diffs),
        }
    }

    /// Destinations (other cachers) per page, merged per destination.
    fn destinations(&self, p: ProcId, diffs: &[(PageId, Diff)]) -> Vec<(ProcId, Vec<usize>)> {
        let dir = self.dir.lock();
        let mut per_dest: HashMap<ProcId, Vec<usize>> = HashMap::new();
        for (i, (g, _)) in diffs.iter().enumerate() {
            let mask = dir[g.index()].copyset & !(1u64 << p.index());
            for d in ProcId::all(self.cfg.n_procs) {
                if mask & (1u64 << d.index()) != 0 {
                    per_dest.entry(d).or_default().push(i);
                }
            }
        }
        let mut out: Vec<_> = per_dest.into_iter().collect();
        out.sort_by_key(|(d, _)| *d);
        out
    }

    /// EU: one update message per destination carrying the diffs of every
    /// modified page that destination caches, plus an ack each.
    fn push_updates(
        &self,
        p: ProcId,
        diffs: &[(PageId, Diff)],
        update_kind: MsgKind,
        ack_kind: MsgKind,
    ) {
        for (dest, indices) in self.destinations(p, diffs) {
            let payload: u64 = indices
                .iter()
                .map(|&i| diffs[i].1.encoded_size() as u64)
                .sum();
            self.net.send(p, dest, update_kind, payload);
            {
                let mut dest_shard = self.shard(dest);
                for &i in &indices {
                    let (g, ref diff) = diffs[i];
                    let entry = &mut dest_shard.pages[g.index()];
                    let copy = entry
                        .copy
                        .get_or_insert_with(|| PageBuf::zeroed(self.space.page_size()));
                    diff.apply_to(copy);
                    if let Some(twin) = entry.twin.as_mut() {
                        diff.apply_to(twin);
                    }
                    entry.valid = true;
                }
            }
            self.net.send(dest, p, ack_kind, 0);
            bump(&self.counters.updates_sent, 1);
        }
    }

    /// EI at a release: write notices to every other cacher; cachers drop
    /// their copies (writing back their own concurrent modifications
    /// first), leaving the releaser the only valid copy.
    fn push_invalidations(&self, p: ProcId, diffs: &[(PageId, Diff)]) {
        for (dest, indices) in self.destinations(p, diffs) {
            let payload = invalidation_bytes(indices.len());
            self.net.send(p, dest, MsgKind::ReleaseInvalidate, payload);
            bump(&self.counters.invalidations_sent, 1);
            // Invalidate at the destination, collecting writebacks from
            // concurrent writers (false sharing); never hold two shard
            // locks at once — the writebacks apply to the releaser after
            // the destination's shard is dropped.
            let mut writebacks: Vec<(PageId, Diff)> = Vec::new();
            {
                let mut dest_shard = self.shard(dest);
                for &i in &indices {
                    let g = diffs[i].0;
                    let gi = g.index();
                    if dest_shard.pages[gi].twin.is_some() {
                        // The destination wrote the page concurrently: its
                        // modifications ride back to the releaser before
                        // the copy is dropped.
                        let twin = dest_shard.pages[gi].twin.take().expect("checked above");
                        let copy = dest_shard.pages[gi]
                            .copy
                            .as_ref()
                            .expect("dirty page has a copy");
                        let wb = Diff::between(&twin, copy);
                        dest_shard.dirty.retain(|&d| d != g);
                        dest_shard.pages[gi].valid = false;
                        if !wb.is_empty() {
                            writebacks.push((g, wb));
                        }
                    } else {
                        dest_shard.pages[gi].valid = false;
                    }
                }
            }
            if self.cfg.coalesce_notices && writebacks.len() > 1 {
                // Coalescing: one invalidation round's writebacks all go
                // from `dest` to the releaser — one reply carries every
                // diff. Same bytes, one header instead of several.
                let payload: u64 = writebacks
                    .iter()
                    .map(|(_, wb)| wb.encoded_size() as u64)
                    .sum();
                self.net.send(dest, p, MsgKind::WritebackReply, payload);
                bump(&self.counters.coalesced_msgs, writebacks.len() as u64 - 1);
            }
            for (g, wb) in &writebacks {
                if !self.cfg.coalesce_notices || writebacks.len() <= 1 {
                    self.net
                        .send(dest, p, MsgKind::WritebackReply, wb.encoded_size() as u64);
                }
                bump(&self.counters.writebacks, 1);
                let mut releaser = self.shard(p);
                let copy = releaser.pages[g.index()]
                    .copy
                    .as_mut()
                    .expect("releaser has the page");
                wb.apply_to(copy);
            }
            {
                let mut dir = self.dir.lock();
                for &i in &indices {
                    let g = diffs[i].0;
                    dir[g.index()].copyset &= !(1u64 << dest.index());
                    bump(&self.counters.pages_invalidated, 1);
                }
            }
            self.net.send(dest, p, MsgKind::ReleaseAck, 0);
        }
        let mut dir = self.dir.lock();
        for (g, _) in diffs {
            // The releaser keeps the only valid copy.
            dir[g.index()].copyset |= 1u64 << p.index();
        }
    }

    /// EI barrier completion: resolve multiple invalidators per page (the
    /// `2v` term), invalidate all other cachers (piggybacked, free), and
    /// send exit messages carrying the aggregated notices. Runs on the
    /// last arriver's thread with every other processor parked by the
    /// runtime, so it needs no gates of its own.
    fn complete_barrier(&self, barrier: BarrierId, master: ProcId) {
        let mods = self
            .epoch_mods
            .lock()
            .remove(&barrier.raw())
            .unwrap_or_default();
        let mut by_page: HashMap<PageId, Vec<(ProcId, Diff)>> = HashMap::new();
        for m in mods {
            by_page.entry(m.page).or_default().push((m.writer, m.diff));
        }
        let total_pages = by_page.len();
        let mut pages: Vec<_> = by_page.into_iter().collect();
        pages.sort_by_key(|(g, _)| *g);
        for (g, mut writers) in pages {
            writers.sort_by_key(|(w, _)| *w);
            // The winner must hold the *authoritative* copy. That is the
            // directory owner — the page's last flusher — whenever its
            // copy is still valid: a release inside this episode already
            // reconciled concurrent modifications into the releaser's
            // copy (via writebacks) and invalidated the buffered writers,
            // so picking a buffered writer would resurrect a stale copy
            // and silently drop the releaser's writes. (Found by the
            // recorded-history checker: a processor lost its own
            // barrier-published write after flushing it at a release.)
            // When no flusher survives with a valid copy — the pure
            // barrier-phase case — any buffered writer's copy is previous
            // content plus its own writes, and the highest-numbered one
            // wins as before.
            let winner = {
                let owner = self.dir.lock()[g.index()].owner;
                if self.shard(owner).pages[g.index()].valid {
                    owner
                } else {
                    writers.last().expect("page has at least one writer").0
                }
            };
            for (w, diff) in &writers {
                if *w == winner {
                    continue;
                }
                // Excess invalidator: its modifications merge into the
                // winner's copy with one round trip.
                self.net.send(
                    *w,
                    winner,
                    MsgKind::BarrierResolve,
                    diff.encoded_size() as u64,
                );
                self.net.send(winner, *w, MsgKind::BarrierResolveAck, 0);
                {
                    let mut winner_shard = self.shard(winner);
                    let copy = winner_shard.pages[g.index()]
                        .copy
                        .as_mut()
                        .expect("winner holds a copy");
                    diff.apply_to(copy);
                }
                bump(&self.counters.excess_invalidators, 1);
            }
            // Everyone but the winner drops the page (notices piggybacked
            // on the barrier messages — no extra traffic).
            let mut dir = self.dir.lock();
            let mask = dir[g.index()].copyset;
            for d in ProcId::all(self.cfg.n_procs) {
                if d != winner && mask & (1u64 << d.index()) != 0 {
                    self.shard(d).pages[g.index()].valid = false;
                    bump(&self.counters.pages_invalidated, 1);
                }
            }
            dir[g.index()].copyset = 1u64 << winner.index();
            dir[g.index()].owner = winner;
        }
        for r in ProcId::all(self.cfg.n_procs) {
            if r != master {
                let payload = BARRIER_ID_BYTES + invalidation_bytes(total_pages);
                self.net.send(master, r, MsgKind::BarrierExit, payload);
            }
        }
        bump(&self.counters.barrier_episodes, 1);
    }

    /// Directory miss: two messages when the home has a valid copy, three
    /// when the request is forwarded to the owner (§3). Holds the page's
    /// gate for the whole resolution (a same-page flush or miss waits on
    /// it), but no directory lock across the message charges.
    fn resolve_miss(&self, p: ProcId, page: PageId) {
        let (_inflight, overlapped) = self.enter_slow_path();
        let (_miss_inflight, miss_others) = InFlight::enter(&self.miss_inflight);
        raise(&self.counters.miss_inflight_peak, miss_others + 1);
        let mut waited = false;
        let _serial = self.serial_gate(&mut waited);
        let _gate = gate_lock(&self.page_gates[page.index()], &mut waited);
        self.settle_slow_entry(waited, overlapped);

        {
            let shard = self.shard(p);
            if shard.pages[page.index()].valid {
                // Resolved while this processor waited for the gate (only
                // possible through this processor's own earlier call).
                return;
            }
        }
        let gi = page.index();
        let home = ProcId::new((gi % self.cfg.n_procs) as u16);
        let pbit = 1u64 << p.index();

        // Directory decision under the directory mutex; the page's gate
        // keeps the entry stable after the mutex drops (flushes touch a
        // page's entry only under its gate).
        enum Decision {
            InitialHomeCopy,
            Fetch { home_has: bool, source: ProcId },
        }
        let decision = {
            let dir = self.dir.lock();
            if dir[gi].copyset & pbit != 0 {
                Decision::InitialHomeCopy
            } else {
                let home_has = dir[gi].copyset & (1u64 << home.index()) != 0;
                Decision::Fetch {
                    home_has,
                    source: if home_has { home } else { dir[gi].owner },
                }
            }
        };
        let (home_has, source) = match decision {
            Decision::InitialHomeCopy => {
                // Initial home copy: materialize the zero page locally.
                let mut shard = self.shard(p);
                let entry = &mut shard.pages[gi];
                entry
                    .copy
                    .get_or_insert_with(|| PageBuf::zeroed(self.space.page_size()));
                entry.valid = true;
                return;
            }
            Decision::Fetch { home_has, source } => (home_has, source),
        };
        debug_assert_ne!(source, p, "a missing processor cannot be the source");

        // Materialize the source copy (the home's initial copy is zeros).
        // A dirty source serves its *twin* — the last reconciled contents —
        // never its live copy, whose unflushed epoch writes must not leak
        // to a cold miss under false sharing before the release-time flush
        // makes them visible everywhere (the eager analogue of the lazy
        // engine's twin-based base).
        let content = {
            let source_shard = self.shard(source);
            match (&source_shard.pages[gi].twin, &source_shard.pages[gi].copy) {
                (Some(twin), _) => twin.clone(),
                (None, Some(copy)) => copy.clone(),
                (None, None) => PageBuf::zeroed(self.space.page_size()),
            }
        };
        // Fetch phase: message charges with no directory lock held.
        let page_bytes = self.space.page_size().bytes() as u64;
        if home_has {
            if p != home {
                self.net.round_trip(
                    p,
                    home,
                    MsgKind::MissRequest,
                    PAGE_ID_BYTES,
                    MsgKind::MissReply,
                    page_bytes,
                );
                bump(&self.counters.misses_2hop, 1);
            }
            // p == home cannot happen here (its copyset bit would be set),
            // but the branch above keeps the accounting honest if the
            // directory ever says otherwise.
        } else if p != home {
            self.net.send(p, home, MsgKind::MissRequest, PAGE_ID_BYTES);
            self.net
                .send(home, source, MsgKind::MissForward, PAGE_ID_BYTES);
            self.net.send(source, p, MsgKind::MissReply, page_bytes);
            bump(&self.counters.misses_3hop, 1);
        } else {
            // The home itself misses: it forwards directly.
            self.net.round_trip(
                p,
                source,
                MsgKind::MissRequest,
                PAGE_ID_BYTES,
                MsgKind::MissReply,
                page_bytes,
            );
            bump(&self.counters.misses_2hop, 1);
        }
        if let Some(hook) = self.fetch_hook.get() {
            hook(p, page);
        }
        {
            let mut shard = self.shard(p);
            shard.pages[gi].copy = Some(content);
            shard.pages[gi].valid = true;
        }
        self.dir.lock()[gi].copyset |= pbit;
    }

    // ---- crash tolerance ----

    /// Captures a checkpoint: the directory plus each processor's
    /// committed frames (a dirty page contributes its twin — uncommitted
    /// epoch writes are never checkpointed). Call at a synchronization
    /// point so the cut is consistent.
    pub fn checkpoint(&self) -> crate::EagerCheckpoint {
        let dir: Vec<(u64, ProcId)> = self
            .dir
            .lock()
            .iter()
            .map(|e| (e.copyset, e.owner))
            .collect();
        let mut procs = Vec::with_capacity(self.cfg.n_procs);
        for p in ProcId::all(self.cfg.n_procs) {
            let shard = self.shard(p);
            let mut frames = Vec::new();
            for (gi, entry) in shard.pages.iter().enumerate() {
                let contents = match (&entry.twin, &entry.copy) {
                    (Some(twin), _) => Some(twin.as_bytes().to_vec()),
                    (None, Some(copy)) => Some(copy.as_bytes().to_vec()),
                    (None, None) => None,
                };
                if contents.is_none() && !entry.valid {
                    continue;
                }
                frames.push(crate::EagerFrame {
                    page: PageId::new(gi as u32),
                    contents,
                    valid: entry.valid,
                });
            }
            procs.push(frames);
        }
        crate::EagerCheckpoint {
            n_procs: self.cfg.n_procs,
            page_bytes: self.space.page_size().bytes(),
            n_pages: self.space.n_pages() as usize,
            dir,
            procs,
        }
    }

    /// Restores a checkpoint into this (freshly built) engine: directory
    /// and frames are replaced. Locks must be free and no barrier episode
    /// in progress — synchronization state is not checkpointed.
    ///
    /// # Errors
    ///
    /// [`lrc_core::CheckpointError::Incompatible`] if the checkpoint
    /// describes a different engine shape.
    pub fn restore(&self, ckpt: &crate::EagerCheckpoint) -> Result<(), lrc_core::CheckpointError> {
        let shape = (
            self.cfg.n_procs,
            self.space.page_size().bytes(),
            self.space.n_pages() as usize,
        );
        if (ckpt.n_procs, ckpt.page_bytes, ckpt.n_pages) != shape
            || ckpt.dir.len() != shape.2
            || ckpt.procs.len() != shape.0
        {
            return Err(lrc_core::CheckpointError::Incompatible(format!(
                "checkpoint is {}×{}B×{} pages, engine is {}×{}B×{}",
                ckpt.n_procs, ckpt.page_bytes, ckpt.n_pages, shape.0, shape.1, shape.2
            )));
        }
        {
            let mut dir = self.dir.lock();
            for (entry, &(copyset, owner)) in dir.iter_mut().zip(&ckpt.dir) {
                *entry = DirEntry { copyset, owner };
            }
        }
        for p in ProcId::all(self.cfg.n_procs) {
            let mut shard = self.shard(p);
            shard.dirty.clear();
            for entry in &mut shard.pages {
                *entry = EPage::default();
            }
            for frame in &ckpt.procs[p.index()] {
                let entry = &mut shard.pages[frame.page.index()];
                if let Some(contents) = &frame.contents {
                    if contents.len() != self.space.page_size().bytes() {
                        return Err(lrc_core::CheckpointError::Incompatible(
                            "frame contents are not page-sized".into(),
                        ));
                    }
                    let mut buf = PageBuf::zeroed(self.space.page_size());
                    buf.write(0, contents);
                    entry.copy = Some(buf);
                }
                entry.valid = frame.valid;
            }
        }
        Ok(())
    }
}
