//! The eager release consistency baseline (Munin's write-shared protocol).
//!
//! This crate implements the comparison point of the ISCA '92 LRC paper
//! (§3): an eager implementation of release consistency modeled on Munin's
//! write-shared protocol. A processor delays propagating its modifications
//! until it comes to a **release**; at that point it pushes them to *every*
//! processor caching the modified pages and blocks until all have
//! acknowledged:
//!
//! * under the **update** policy ("EU") the release sends each cacher a
//!   diff of every modified page it caches, merged into one message per
//!   destination (Figure 2 of the paper);
//! * under the **invalidate** policy ("EI") the release sends write
//!   notices; cachers drop their copies and reload whole pages from the
//!   directory on their next access — the behaviour that makes EI's data
//!   volume balloon on programs like Pthor (§5.3.5).
//!
//! Access misses go through a **directory manager** (the page's static
//! home): two messages when the home has a valid copy, three when it must
//! forward to the current owner. Barrier arrivals flush like releases; EI
//! piggybacks its invalidations on the barrier messages and pays only for
//! resolving multiple concurrent invalidators of one page (Table 1's `2v`).
//!
//! Acquires carry **no consistency information** — that is precisely what
//! [`lrc_core`] changes.
//!
//! # Example
//!
//! ```
//! use lrc_core::Policy;
//! use lrc_eager::{EagerConfig, EagerEngine};
//! use lrc_sync::LockId;
//! use lrc_vclock::ProcId;
//!
//! let dsm = EagerEngine::new(EagerConfig::new(2, 1 << 16).policy(Policy::Update))?;
//! let (p0, p1, l) = (ProcId::new(0), ProcId::new(1), LockId::new(0));
//!
//! dsm.acquire(p0, l)?;
//! dsm.write_u64(p0, 64, 7);
//! dsm.release(p0, l)?; // modifications pushed to all cachers *now*
//!
//! dsm.acquire(p1, l)?;
//! let mut buf = [0u8; 8];
//! dsm.read_into(p1, 64, &mut buf);
//! assert_eq!(u64::from_le_bytes(buf), 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod config;
mod counters;
mod engine;

pub use checkpoint::{EagerCheckpoint, EagerFrame};
pub use config::EagerConfig;
pub use counters::EagerCounters;
pub use engine::EagerEngine;
