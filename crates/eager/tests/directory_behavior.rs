//! Directory-manager edge cases: ownership migration across releases,
//! content freshness through the home, and late joiners.

use lrc_core::Policy;
use lrc_eager::{EagerConfig, EagerEngine};
use lrc_simnet::OpClass;
use lrc_sync::LockId;
use lrc_vclock::ProcId;

fn p(i: u16) -> ProcId {
    ProcId::new(i)
}

fn engine(policy: Policy) -> EagerEngine {
    EagerEngine::new(EagerConfig::new(4, 16 * 512).page_size(512).policy(policy)).unwrap()
}

#[test]
fn ownership_migrates_with_writers_under_ei() {
    let dsm = engine(Policy::Invalidate);
    let l = LockId::new(0);
    // Ownership moves p1 -> p2 through locked writes.
    for i in 1..3u16 {
        dsm.acquire(p(i), l).unwrap();
        dsm.write_u64(p(i), 0, i as u64 * 100);
        dsm.release(p(i), l).unwrap();
    }
    // p3's miss goes through the home (p0, which lost its copy to the
    // invalidations) and must forward to the *current* owner p2.
    let before = dsm.net().snapshot();
    dsm.acquire(p(3), l).unwrap();
    assert_eq!(dsm.read_u64(p(3), 0), 200);
    let delta = dsm.net().stats().since(&before);
    assert_eq!(
        delta.class(OpClass::Miss).msgs,
        3,
        "home lost its copy: 3-hop"
    );
    dsm.release(p(3), l).unwrap();
}

#[test]
fn home_copy_stays_fresh_under_eu() {
    let dsm = engine(Policy::Update);
    let l = LockId::new(0);
    // The home (p0) is in the copyset from the start, so every release
    // pushes it updates; a late reader served by the home sees everything.
    for round in 0..3u64 {
        for i in 1..3u16 {
            dsm.acquire(p(i), l).unwrap();
            dsm.write_u64(p(i), 8 * i as u64, round * 10 + i as u64);
            dsm.release(p(i), l).unwrap();
        }
    }
    let before = dsm.net().snapshot();
    dsm.acquire(p(3), l).unwrap();
    assert_eq!(dsm.read_u64(p(3), 8), 21);
    assert_eq!(dsm.read_u64(p(3), 16), 22);
    let delta = dsm.net().stats().since(&before);
    assert_eq!(
        delta.class(OpClass::Miss).msgs,
        2,
        "home still valid: 2-hop"
    );
    dsm.release(p(3), l).unwrap();
}

#[test]
fn late_joiner_receives_all_accumulated_updates() {
    let dsm = engine(Policy::Update);
    let l = LockId::new(0);
    for i in 0..8u64 {
        let proc = p((i % 3) as u16);
        dsm.acquire(proc, l).unwrap();
        dsm.write_u64(proc, 8 * i, i + 1);
        dsm.release(proc, l).unwrap();
    }
    // p3 never touched the page; its single miss must deliver all eight
    // words at once.
    dsm.acquire(p(3), l).unwrap();
    for i in 0..8u64 {
        assert_eq!(dsm.read_u64(p(3), 8 * i), i + 1);
    }
    dsm.release(p(3), l).unwrap();
    // And from now on, updates flow to it too.
    dsm.acquire(p(0), l).unwrap();
    dsm.write_u64(p(0), 0, 99);
    dsm.release(p(0), l).unwrap();
    let before = dsm.net().snapshot();
    dsm.acquire(p(3), l).unwrap();
    assert_eq!(dsm.read_u64(p(3), 0), 99);
    assert_eq!(
        dsm.net().stats().since(&before).class(OpClass::Miss).msgs,
        0,
        "the update already arrived"
    );
    dsm.release(p(3), l).unwrap();
}

#[test]
fn copyset_shrinks_under_ei_and_grows_under_eu() {
    let page0 = lrc_pagemem::PageId::new(0);
    // EI: after a locked write, only the writer caches the page.
    let ei = engine(Policy::Invalidate);
    for i in 0..4u16 {
        ei.read_u64(p(i), 0);
    }
    assert_eq!(ei.copyset(page0).len(), 4);
    ei.acquire(p(2), LockId::new(0)).unwrap();
    ei.write_u64(p(2), 0, 1);
    ei.release(p(2), LockId::new(0)).unwrap();
    assert_eq!(ei.copyset(page0), vec![p(2)]);

    // EU: the copyset only ever grows.
    let eu = engine(Policy::Update);
    for i in 0..4u16 {
        eu.read_u64(p(i), 0);
    }
    eu.acquire(p(2), LockId::new(0)).unwrap();
    eu.write_u64(p(2), 0, 1);
    eu.release(p(2), LockId::new(0)).unwrap();
    assert_eq!(eu.copyset(page0).len(), 4);
}

#[test]
fn unrelated_pages_do_not_travel() {
    // A release only touches cachers of the *modified* pages.
    let dsm = engine(Policy::Update);
    dsm.read_u64(p(2), 512); // p2 caches page 1 only
    dsm.acquire(p(1), LockId::new(0)).unwrap();
    dsm.write_u64(p(1), 0, 5); // page 0
    let before = dsm.net().snapshot();
    dsm.release(p(1), LockId::new(0)).unwrap();
    let delta = dsm.net().stats().since(&before);
    // Only the home of page 0 (p0) gets an update; p2 is not involved.
    assert_eq!(delta.kind(lrc_simnet::MsgKind::ReleaseUpdate).msgs, 1);
}
