//! Behavioral tests for the eager (Munin write-shared) baseline: release-
//! time propagation, directory misses, and the EI/EU barrier behaviour of
//! Table 1.

use lrc_core::Policy;
use lrc_eager::{EagerConfig, EagerEngine};
use lrc_simnet::{MsgKind, OpClass};
use lrc_sync::{BarrierId, LockId};
use lrc_vclock::ProcId;

fn p(i: u16) -> ProcId {
    ProcId::new(i)
}

fn l(i: u32) -> LockId {
    LockId::new(i)
}

fn b(i: u32) -> BarrierId {
    BarrierId::new(i)
}

fn engine(policy: Policy) -> EagerEngine {
    EagerEngine::new(EagerConfig::new(4, 16 * 512).page_size(512).policy(policy)).unwrap()
}

#[test]
fn acquires_carry_no_consistency_data() {
    let dsm = engine(Policy::Update);
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 0, 1);
    dsm.release(p(1), l(0)).unwrap();
    let before = dsm.net().snapshot();
    dsm.acquire(p(2), l(0)).unwrap();
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.class(OpClass::Lock).msgs, 3);
    // Each lock message carries only the lock id: 8 bytes + header.
    assert_eq!(delta.class(OpClass::Lock).bytes, 3 * (32 + 8));
}

#[test]
fn release_pushes_updates_to_all_cachers() {
    let dsm = engine(Policy::Update);
    // p1, p2, p3 cache page 0 (cold misses through the directory).
    for i in 1..4u16 {
        dsm.read_u64(p(i), 0);
    }
    // p1 writes it under a lock; its release updates every other cacher
    // (p0 the home, p2, p3): 2c = 6 messages.
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 0, 42);
    let before = dsm.net().snapshot();
    dsm.release(p(1), l(0)).unwrap();
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.kind(MsgKind::ReleaseUpdate).msgs, 3);
    assert_eq!(delta.kind(MsgKind::ReleaseAck).msgs, 3);
    assert_eq!(delta.class(OpClass::Unlock).msgs, 6);
    // All cachers see the new value with no further traffic.
    let before = dsm.net().snapshot();
    assert_eq!(dsm.read_u64(p(2), 0), 42);
    assert_eq!(dsm.read_u64(p(3), 0), 42);
    assert_eq!(dsm.net().stats().since(&before).total().msgs, 0);
}

#[test]
fn release_invalidates_under_ei() {
    let dsm = engine(Policy::Invalidate);
    for i in 1..4u16 {
        dsm.read_u64(p(i), 0);
    }
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 0, 42);
    let before = dsm.net().snapshot();
    dsm.release(p(1), l(0)).unwrap();
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.kind(MsgKind::ReleaseInvalidate).msgs, 3);
    assert_eq!(delta.kind(MsgKind::ReleaseAck).msgs, 3);
    // Only the releaser retains the page.
    assert_eq!(dsm.copyset(dsm.space().page_of(0)), vec![p(1)]);
    // A reader must now reload the whole page through the directory:
    // home p0 has no copy, so the request is forwarded to the owner p1.
    let before = dsm.net().snapshot();
    assert_eq!(dsm.read_u64(p(2), 0), 42);
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.class(OpClass::Miss).msgs, 3, "2 or 3 hops (Table 1)");
    assert!(delta.class(OpClass::Miss).bytes >= 512, "full page reload");
    assert_eq!(dsm.counters().misses_3hop, 1);
}

#[test]
fn miss_is_two_hops_when_home_has_copy() {
    let dsm = engine(Policy::Invalidate);
    // Page 0's home is p0 and holds the initial copy: first miss by p2 is
    // 2 messages.
    let before = dsm.net().snapshot();
    assert_eq!(dsm.read_u64(p(2), 0), 0);
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.class(OpClass::Miss).msgs, 2);
    assert_eq!(dsm.counters().misses_2hop, 1);
}

#[test]
fn repeated_lock_rounds_update_everyone_eagerly() {
    // The Figure 3 pathology: once all four processors cache the page,
    // every EU release updates all of them although only the next lock
    // holder needs the data.
    let dsm = engine(Policy::Update);
    for i in 0..4u16 {
        dsm.read_u64(p(i), 0);
    }
    for round in 0..4u16 {
        let proc = p(round);
        dsm.acquire(proc, l(0)).unwrap();
        dsm.write_u64(proc, 0, round as u64 + 1);
        let before = dsm.net().snapshot();
        dsm.release(proc, l(0)).unwrap();
        let delta = dsm.net().stats().since(&before);
        assert_eq!(
            delta.class(OpClass::Unlock).msgs,
            6,
            "round {round}: 2c with c = 3 other cachers"
        );
    }
}

#[test]
fn eu_barrier_pushes_2u_messages() {
    let dsm = engine(Policy::Update);
    // p1 and p2 cache page 0; p0 (home) also caches it implicitly.
    dsm.read_u64(p(1), 0);
    dsm.read_u64(p(2), 0);
    dsm.read_u64(p(3), 8 * 512 - 8); // unrelated page, no effect
    dsm.write_u64(p(1), 0, 5);
    let before = dsm.net().snapshot();
    for i in 0..4 {
        dsm.barrier(p(i), b(0)).unwrap();
    }
    let delta = dsm.net().stats().since(&before);
    // u = 2 (p0 home and p2 cache the page p1 modified): 2u = 4 update
    // messages on top of 2(n-1) barrier messages.
    assert_eq!(delta.kind(MsgKind::BarrierUpdate).msgs, 2);
    assert_eq!(delta.kind(MsgKind::BarrierUpdateAck).msgs, 2);
    assert_eq!(delta.class(OpClass::Barrier).msgs, 6 + 4);
}

#[test]
fn ei_barrier_piggybacks_invalidations() {
    let dsm = engine(Policy::Invalidate);
    dsm.read_u64(p(1), 0);
    dsm.read_u64(p(2), 0);
    dsm.write_u64(p(1), 0, 5);
    let before = dsm.net().snapshot();
    for i in 0..4 {
        dsm.barrier(p(i), b(0)).unwrap();
    }
    let delta = dsm.net().stats().since(&before);
    // Single writer: v = 0, so exactly 2(n-1) messages.
    assert_eq!(delta.class(OpClass::Barrier).msgs, 6);
    // p2's copy is gone; the next read reloads the page from the owner.
    let before = dsm.net().snapshot();
    assert_eq!(dsm.read_u64(p(2), 0), 5);
    assert!(dsm.net().stats().since(&before).class(OpClass::Miss).bytes >= 512);
}

#[test]
fn ei_excess_invalidators_pay_2v() {
    let dsm = engine(Policy::Invalidate);
    // Three processors write disjoint words of page 0 between barriers.
    for i in 0..3u16 {
        dsm.read_u64(p(i), 0);
        dsm.write_u64(p(i), 8 * i as u64, i as u64 + 1);
    }
    let before = dsm.net().snapshot();
    for i in 0..4 {
        dsm.barrier(p(i), b(0)).unwrap();
    }
    let delta = dsm.net().stats().since(&before);
    // k = 3 concurrent invalidators: v = k - 1 = 2, so 2v = 4 extra.
    assert_eq!(delta.kind(MsgKind::BarrierResolve).msgs, 2);
    assert_eq!(delta.kind(MsgKind::BarrierResolveAck).msgs, 2);
    assert_eq!(delta.class(OpClass::Barrier).msgs, 6 + 4);
    assert_eq!(dsm.counters().excess_invalidators, 2);
    // The winner (p2) merged everyone's writes; a fresh reader sees all.
    assert_eq!(dsm.read_u64(p(3), 0), 1);
    assert_eq!(dsm.read_u64(p(3), 8), 2);
    assert_eq!(dsm.read_u64(p(3), 16), 3);
}

#[test]
fn concurrent_writer_writes_back_on_invalidation() {
    let dsm = engine(Policy::Invalidate);
    // p1 and p2 write disjoint words of page 0; p1 releases a lock.
    dsm.read_u64(p(1), 0);
    dsm.read_u64(p(2), 0);
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 0, 10);
    dsm.write_u64(p(2), 8, 20); // no lock: false sharing, disjoint words
    let before = dsm.net().snapshot();
    dsm.release(p(1), l(0)).unwrap();
    let delta = dsm.net().stats().since(&before);
    assert_eq!(delta.kind(MsgKind::WritebackReply).msgs, 1);
    assert_eq!(dsm.counters().writebacks, 1);
    // p2's modification survived at the releaser.
    assert_eq!(dsm.read_u64(p(1), 8), 20);
    assert_eq!(dsm.read_u64(p(1), 0), 10);
    // p2 reloads and sees both words.
    assert_eq!(dsm.read_u64(p(2), 0), 10);
    assert_eq!(dsm.read_u64(p(2), 8), 20);
}

#[test]
fn empty_critical_sections_flush_nothing() {
    let dsm = engine(Policy::Update);
    dsm.read_u64(p(1), 0);
    dsm.acquire(p(2), l(0)).unwrap();
    let before = dsm.net().snapshot();
    dsm.release(p(2), l(0)).unwrap();
    assert_eq!(dsm.net().stats().since(&before).total().msgs, 0);
}

#[test]
fn migratory_chain_values_flow_correctly() {
    for policy in [Policy::Invalidate, Policy::Update] {
        let dsm = engine(policy);
        let mut expected = 0u64;
        for round in 0..8u16 {
            let proc = p(round % 4);
            dsm.acquire(proc, l(0)).unwrap();
            let v = dsm.read_u64(proc, 64);
            assert_eq!(v, expected, "round {round} under {policy}");
            expected += 1;
            dsm.write_u64(proc, 64, expected);
            dsm.release(proc, l(0)).unwrap();
        }
    }
}

#[test]
fn lock_and_barrier_errors_propagate() {
    let dsm = engine(Policy::Invalidate);
    dsm.acquire(p(0), l(0)).unwrap();
    assert!(dsm.acquire(p(1), l(0)).is_err());
    assert!(dsm.release(p(1), l(0)).is_err());
    dsm.release(p(0), l(0)).unwrap();
    dsm.barrier(p(0), b(0)).unwrap();
    assert!(dsm.barrier(p(0), b(0)).is_err(), "double arrival");
    assert!(dsm.barrier(p(0), BarrierId::new(99)).is_err());
}

#[test]
fn page_valid_reflects_directory_and_invalidations() {
    let dsm = engine(Policy::Invalidate);
    let page = dsm.space().page_of(0);
    assert!(
        dsm.page_valid(p(0), page),
        "home starts with the initial copy"
    );
    assert!(!dsm.page_valid(p(2), page));
    dsm.read_u64(p(2), 0);
    assert!(dsm.page_valid(p(2), page));
    dsm.acquire(p(1), l(0)).unwrap();
    dsm.write_u64(p(1), 0, 1);
    dsm.release(p(1), l(0)).unwrap();
    assert!(
        !dsm.page_valid(p(2), page),
        "EI release invalidated the reader"
    );
    assert!(dsm.page_valid(p(1), page));
}
