//! Regression tests for eager-engine protocol bugs: the cold-miss copy
//! leaking a supplier's *unflushed* epoch writes — the eager analogue of
//! the lazy engine's twin-leak bug (`crates/core/tests/regressions.rs`).
//! The eager leak is masked in most runs because releases flush eagerly,
//! but a cold miss that lands *mid-epoch* under false sharing observed the
//! supplier's live copy before the fix.

use lrc_core::Policy;
use lrc_eager::{EagerConfig, EagerEngine};
use lrc_sync::{BarrierId, LockId};
use lrc_vclock::ProcId;

fn p(i: u16) -> ProcId {
    ProcId::new(i)
}

fn l(i: u32) -> LockId {
    LockId::new(i)
}

/// 4 procs, 16 pages of 512 bytes (the lazy regression suite's geometry).
fn engine(policy: Policy) -> EagerEngine {
    EagerEngine::new(EagerConfig::new(4, 16 * 512).page_size(512).policy(policy)).unwrap()
}

/// A cold miss served by a processor with an *unflushed* epoch on the page
/// must receive the last reconciled contents (the supplier's twin), never
/// the live copy. Before the fix, the reader here saw 42 mid-epoch.
#[test]
fn cold_miss_does_not_leak_unflushed_epoch_writes() {
    for policy in [Policy::Invalidate, Policy::Update] {
        let dsm = engine(policy);
        // Page 0's home is p0, so p0 both writes it and supplies the copy.
        dsm.acquire(p(0), l(0)).unwrap();
        dsm.write_u64(p(0), 8, 42); // open epoch: twin is the zero page
        assert_eq!(
            dsm.read_u64(p(1), 8),
            0,
            "{policy}: p1's cold fetch must see the reconciled (initial) \
             contents, not p0's unflushed write"
        );
        // The release flushes to all cachers (p1 now caches the page):
        // updates apply directly under EU; EI invalidates and the re-read
        // refetches the reconciled copy.
        dsm.release(p(0), l(0)).unwrap();
        assert_eq!(
            dsm.read_u64(p(1), 8),
            42,
            "{policy}: flushed writes must still propagate normally"
        );
    }
}

/// EI barrier completion must crown the holder of the *authoritative*
/// copy. When a release inside the episode already reconciled the page
/// (writebacks into the releaser, buffered writers invalidated), the old
/// code still picked the highest-numbered *buffered* writer — a stale,
/// already-invalidated copy — dropping the releaser's writes, including
/// its own barrier-published data. Found by the recorded-history checker
/// (`tests/hist_threaded.rs`, seed 22); this is the single-threaded
/// reproduction, which fails before the fix.
#[test]
fn barrier_winner_is_the_reconciled_copy_not_a_stale_buffered_writer() {
    let dsm = engine(Policy::Invalidate);
    let b = BarrierId::new(0);
    // p1 writes word A of page 0 and arrives: its diff is buffered for
    // episode-end resolution, its twin is consumed.
    dsm.write_u64(p(1), 8, 111);
    dsm.barrier(p(1), b).unwrap();
    // p2 writes word B of the same page (false sharing) and flushes it at
    // a *release*: p2 becomes the reconciled copy holder and directory
    // owner; p1's copy is invalidated without a writeback (its epoch
    // already sits in the barrier buffer).
    dsm.write_u64(p(2), 16, 222);
    dsm.acquire(p(2), l(0)).unwrap();
    dsm.release(p(2), l(0)).unwrap();
    // The remaining processors arrive; the last arrival completes the
    // episode and resolves page 0: p1's buffered diff must merge into
    // p2's reconciled copy — not the other way around.
    dsm.barrier(p(0), b).unwrap();
    dsm.barrier(p(3), b).unwrap();
    dsm.barrier(p(2), b).unwrap();
    assert_eq!(
        dsm.read_u64(p(2), 16),
        222,
        "the releaser's own write must survive barrier resolution"
    );
    assert_eq!(dsm.read_u64(p(2), 8), 111, "the buffered diff must merge");
    assert_eq!(dsm.read_u64(p(0), 8), 111);
    assert_eq!(dsm.read_u64(p(0), 16), 222);
}

/// Same leak through the 3-hop path: the *owner* (not the home) supplies
/// the copy, and its current epoch's writes must not ride along.
#[test]
fn cold_miss_from_dirty_owner_serves_reconciled_contents() {
    let dsm = engine(Policy::Invalidate);
    // p0 takes ownership of page 1 (home p1) with a flushed write.
    dsm.acquire(p(0), l(0)).unwrap();
    dsm.write_u64(p(0), 512, 7);
    // The release invalidates the home's copy and makes p0 the owner.
    dsm.release(p(0), l(0)).unwrap();
    // p0 starts a new, unflushed epoch on the same page (false sharing:
    // a different word).
    dsm.acquire(p(0), l(0)).unwrap();
    dsm.write_u64(p(0), 512 + 16, 99);
    // p3's cold miss forwards through the home to the dirty owner p0. The
    // flushed 7 must arrive; the unflushed 99 must not.
    assert_eq!(dsm.read_u64(p(3), 512), 7, "reconciled write applies");
    assert_eq!(
        dsm.read_u64(p(3), 512 + 16),
        0,
        "open-epoch write must not leak"
    );
    dsm.release(p(0), l(0)).unwrap();
}
